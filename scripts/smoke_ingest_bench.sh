#!/bin/sh
# Quick perf-regression smoke for online ingestion: runs the
# ingest-while-serving benchmark in its small configuration and fails
# (non-zero exit) when corpus accounting breaks, live decisions diverge
# from the published artifact, or the sustained ingest rate drops below
# the conservative smoke floor.  Tier-1 runs the same checks via
# tests/test_ingest_bench_smoke.py; the full 10 samples/s floor is the
# benchmark's default (no --quick).
set -eu
repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
# Conservative smoke floor — hosted CI runners schedule the client
# threads noisily (later flags win, so callers can override via "$@").
PYTHONPATH="$repo_root/src${PYTHONPATH:+:$PYTHONPATH}" \
    exec python "$repo_root/benchmarks/bench_ingest.py" --quick \
    --min-ingest-rate 2 "$@"
