#!/bin/sh
# Quick perf-regression smoke for candidate generation: runs the
# array-postings-vs-legacy benchmark in its small configuration and
# fails (non-zero exit) when results diverge or the vectorised walk
# stops beating the legacy dict walk by the conservative smoke floors.
# Tier-1 runs the same identity check via
# tests/test_candidate_bench_smoke.py; the full >=3x / >=1.5x
# acceptance floors are the benchmark's defaults (no --quick).
set -eu
repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
# Conservative smoke floors — the quick corpus is small and CI machines
# are noisy (later flags win, so callers can still override via "$@").
PYTHONPATH="$repo_root/src${PYTHONPATH:+:$PYTHONPATH}" \
    exec python "$repo_root/benchmarks/bench_candidate_gen.py" --quick \
    --min-candidate-speedup 1.5 --min-topk-speedup 1.0 "$@"
