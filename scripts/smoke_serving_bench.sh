#!/bin/sh
# Quick perf-regression smoke for the serving tier: runs the
# coalesced-vs-sequential benchmark in its small configuration and
# fails (non-zero exit) when served decisions diverge from direct
# classify_bytes or coalescing stops beating the sequential baseline
# by the conservative smoke floor.  Tier-1 runs the same identity check
# via tests/test_serving_bench_smoke.py; the full >=2x acceptance floor
# at 16 clients is the benchmark's default (no --quick).
set -eu
repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
# Conservative smoke floor — hosted CI runners schedule 16 client
# threads noisily (later flags win, so callers can override via "$@").
PYTHONPATH="$repo_root/src${PYTHONPATH:+:$PYTHONPATH}" \
    exec python "$repo_root/benchmarks/bench_serving.py" --quick \
    --min-speedup 1.3 "$@"
