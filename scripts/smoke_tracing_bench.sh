#!/bin/sh
# Quick perf-regression smoke for the tracing layer: runs the
# tracing-on-vs-off benchmark in its small configuration and fails
# (non-zero exit) when served decisions diverge, traces stop covering
# the canonical stages, a stage sum exceeds its wall time, or tracing
# costs more than the overhead ceiling.  Tier-1 runs the same checks
# via tests/test_tracing_bench_smoke.py; the 5% acceptance ceiling is
# the benchmark's default (later flags win, so callers can override
# via "$@").
set -eu
repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
PYTHONPATH="$repo_root/src${PYTHONPATH:+:$PYTHONPATH}" \
    exec python "$repo_root/benchmarks/bench_tracing.py" --quick "$@"
