#!/bin/sh
# Quick perf-regression smoke for the similarity index: runs the top-k
# benchmark in its small configuration and fails (non-zero exit) when the
# prebuilt-index path stops beating the rebuild-per-query path by at
# least the --min-speedup floor.  Tier-1 runs the same check via
# tests/test_index_bench_smoke.py.
set -eu
repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
# --min-speedup 2: the full benchmark enforces the 5x acceptance floor;
# at smoke scale a loaded CI machine gets a conservative bar instead
# (later flags win, so callers can still override via "$@").
PYTHONPATH="$repo_root/src${PYTHONPATH:+:$PYTHONPATH}" \
    exec python "$repo_root/benchmarks/bench_index_topk.py" --quick \
    --min-speedup 2 "$@"
