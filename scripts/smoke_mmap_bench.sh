#!/bin/sh
# Quick regression smoke for the zero-copy mmap load mode: runs the
# model-load benchmark in its small configuration and fails (non-zero
# exit) when mapped arrays diverge from the eager read, a legacy
# unpadded pre-v4 container stops loading bit-identically, mmap-loaded
# decisions diverge from the eager load, or the raw container-read
# speedup drops below the floor.  Tier-1 runs the same checks via
# tests/test_mmap_bench_smoke.py; the full >=20x acceptance floor at
# the default 32 MiB payload is the benchmark's default (the quick
# 8 MiB payload typically clears it anyway — the explicit floor below
# is the conservative smoke bar for loaded CI runners).
set -eu
repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
# Later flags win, so callers can still override via "$@".
PYTHONPATH="$repo_root/src${PYTHONPATH:+:$PYTHONPATH}" \
    exec python "$repo_root/benchmarks/bench_model_load.py" --quick \
    --min-speedup 3 --min-mmap-speedup 10 "$@"
