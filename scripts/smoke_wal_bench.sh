#!/bin/sh
# Quick durability smoke for the write-ahead log: runs the WAL
# benchmark in its small configuration, including the live-server
# crash-after-ack check, and fails (non-zero exit) when an acked
# ingest is lost or duplicated after the SIGKILL, or when group-commit
# appends are not at least 3x faster than fsync-per-record.  Tier-1
# runs the same checks via tests/test_wal_bench_smoke.py.
set -eu
repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
# The 3x floor holds with a wide margin on real disks (measured ~7-15x
# on ext4); later flags win, so callers can override via "$@".
PYTHONPATH="$repo_root/src${PYTHONPATH:+:$PYTHONPATH}" \
    exec python "$repo_root/benchmarks/bench_wal.py" --quick \
    --crash-after-ack --min-speedup 3 "$@"
