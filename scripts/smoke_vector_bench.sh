#!/bin/sh
# Quick regression smoke for the second hash family: runs the
# vector-digest benchmark in its small configuration and fails
# (non-zero exit) when the packed kNN sweep diverges from the per-pair
# reference, dual-family recall drops below CTPH-only recall in any
# mutation scenario, or the packed sweep stops clearing the smoke
# speedup floor.  Tier-1 runs the same checks via
# tests/test_vector_bench_smoke.py; the full >=5x acceptance floor is
# the benchmark's default (no --quick override below — the sweep is
# typically two orders of magnitude faster, so 5x holds even on small
# quick corpora).
set -eu
repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
# Later flags win, so callers can still override via "$@".
PYTHONPATH="$repo_root/src${PYTHONPATH:+:$PYTHONPATH}" \
    exec python "$repo_root/benchmarks/bench_vector_digest.py" --quick "$@"
