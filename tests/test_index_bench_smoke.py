"""Tier-1 perf smoke for the similarity index.

Runs the top-k benchmark (``benchmarks/bench_index_topk.py``) at a small
scale so a regression that erodes the prebuilt-index advantage fails the
default test run, not just a manually-invoked benchmark.  The
full-size run is marked ``slow`` (``pytest -m slow`` opts in).
"""

import importlib.util
import sys
from pathlib import Path

import pytest

_BENCH_PATH = Path(__file__).resolve().parents[1] / "benchmarks" / \
    "bench_index_topk.py"


@pytest.fixture(scope="module")
def bench():
    spec = importlib.util.spec_from_file_location("bench_index_topk",
                                                  _BENCH_PATH)
    module = importlib.util.module_from_spec(spec)
    sys.modules.setdefault("bench_index_topk", module)
    spec.loader.exec_module(module)
    return module


def test_quick_benchmark_speedup_and_fidelity(bench, tmp_path):
    result = bench.run(n_corpus=150, n_queries=12,
                       index_path=tmp_path / "bench.rpsi")
    assert result.results_match, \
        "prebuilt/reloaded results diverged from the rebuild path"
    # The full benchmark demonstrates >=5x; the smoke floor is kept
    # conservative so a loaded CI machine cannot flake it.
    assert result.speedup >= 2.0, \
        f"prebuilt index only {result.speedup:.1f}x faster than rebuilding"


def test_benchmark_cli_quick_mode(bench, capsys, tmp_path, monkeypatch):
    monkeypatch.setattr(bench, "OUTPUT_DIR", tmp_path)
    code = bench.main(["--quick", "--corpus", "120", "--queries", "8",
                       "--min-speedup", "2"])
    out = capsys.readouterr().out
    assert code == 0
    assert "speedup" in out
    assert (tmp_path / "bench_index_topk.txt").is_file()


@pytest.mark.slow
def test_full_benchmark_meets_acceptance_floor(bench, tmp_path):
    """The acceptance-criterion configuration: ~1k digests, >=5x."""

    result = bench.run(n_corpus=1000, n_queries=100,
                       index_path=tmp_path / "bench-full.rpsi")
    assert result.results_match
    assert result.speedup >= 5.0
