"""Tests for the sharded-index and streaming CLI surface:
``index build --shards``, ``index stats --json``, ``index compact``,
``index merge`` (both directions), ``classify --jsonl`` and the global
``--jobs``/``--executor`` options."""

import json

import pytest

from repro.cli import build_parser, main
from repro.features.records import SampleFeatures, features_to_json
from repro.index import ShardedSimilarityIndex, SimilarityIndex

from test_index_core import make_corpus

FT = "ssdeep-file"


@pytest.fixture(scope="module")
def corpus():
    return make_corpus(30, seed=13)


@pytest.fixture(scope="module")
def features_json(tmp_path_factory, corpus):
    records = [SampleFeatures(sample_id=sid, class_name=cls, version="1",
                              executable=sid, digests=digests)
               for sid, digests, cls in corpus]
    path = tmp_path_factory.mktemp("feat") / "features.json"
    path.write_text(features_to_json(records), encoding="utf-8")
    return str(path)


@pytest.fixture(scope="module")
def sharded_dir(tmp_path_factory, features_json):
    out = tmp_path_factory.mktemp("idx") / "corpus.rpsd"
    assert main(["index", "build", features_json, "-o", str(out),
                 "--types", FT, "--shards", "3"]) == 0
    return str(out)


def test_parser_lists_new_subcommands_and_flags():
    text = build_parser().format_help()
    assert "--jobs" in text and "--executor" in text
    index_help = build_parser().parse_known_args(["index", "build", "x",
                                                  "-o", "y"])[0]
    assert hasattr(index_help, "shards")


def test_index_build_shards_creates_directory(sharded_dir, corpus):
    loaded = ShardedSimilarityIndex.load(sharded_dir)
    assert loaded.n_shards == 3
    assert loaded.n_members == len(corpus)


def test_index_stats_human_readable_on_sharded(sharded_dir, capsys):
    assert main(["index", "stats", sharded_dir]) == 0
    out = capsys.readouterr().out
    assert "shards: 3" in out
    assert "fnv32" in out
    assert "shard    0" in out


def test_index_stats_json_per_shard_breakdown(sharded_dir, corpus, capsys):
    assert main(["index", "stats", sharded_dir, "--json"]) == 0
    stats = json.loads(capsys.readouterr().out)
    assert stats["n_shards"] == 3
    assert stats["members"] == len(corpus)
    assert len(stats["shards"]) == 3
    for shard in stats["shards"]:
        assert {"members", "postings", "tombstones",
                "estimated_bytes"} <= set(shard)


def test_index_stats_json_on_single_file(tmp_path, corpus, capsys):
    single = SimilarityIndex([FT])
    single.add_many(corpus)
    path = single.save(tmp_path / "single.rpsi")
    assert main(["index", "stats", str(path), "--json"]) == 0
    stats = json.loads(capsys.readouterr().out)
    assert stats["members"] == len(corpus)
    assert "shards" not in stats


def test_index_query_works_on_sharded_directory(sharded_dir, corpus, capsys):
    digest = corpus[4][1][FT]
    assert main(["index", "query", sharded_dir, digest, "--digest",
                 "-k", "5"]) == 0
    out = capsys.readouterr().out
    assert "s0004" in out and "100" in out


def test_index_merge_sharded_to_single_and_back(sharded_dir, corpus,
                                                tmp_path, capsys):
    single_path = tmp_path / "merged.rpsi"
    assert main(["index", "merge", sharded_dir, "-o",
                 str(single_path)]) == 0
    assert "merged 30 members" in capsys.readouterr().out
    merged = SimilarityIndex.load(single_path)
    assert merged.n_members == len(corpus)

    back = tmp_path / "back.rpsd"
    assert main(["index", "merge", str(single_path), "-o", str(back),
                 "--shards", "2"]) == 0
    assert "across 2 shards" in capsys.readouterr().out
    resharded = ShardedSimilarityIndex.load(back)
    digest = corpus[7][1][FT]
    assert resharded.top_k(digest, 5, min_score=0) == \
        merged.top_k(digest, 5, min_score=0)


def test_index_compact_reclaims_tombstones(tmp_path, corpus, capsys):
    index = ShardedSimilarityIndex([FT], n_shards=2)
    index.add_many(corpus)
    index.remove(corpus[0][0])
    path = index.save(tmp_path / "idx.rpsd")
    assert main(["index", "compact", str(path)]) == 0
    out = capsys.readouterr().out
    assert "dropped 1 tombstoned" in out
    assert ShardedSimilarityIndex.load(path).n_tombstones == 0


def test_index_compact_rejects_single_file(tmp_path, corpus, capsys):
    single = SimilarityIndex([FT])
    single.add_many(corpus)
    path = single.save(tmp_path / "single.rpsi")
    assert main(["index", "compact", str(path)]) == 2
    err = capsys.readouterr().err
    assert "error:" in err and "Traceback" not in err


def test_index_build_sharded_with_executor_spec(tmp_path, features_json):
    out = tmp_path / "threaded.rpsd"
    assert main(["--executor", "thread:2", "index", "build", features_json,
                 "-o", str(out), "--types", FT, "--shards", "2"]) == 0
    assert ShardedSimilarityIndex.load(out).n_shards == 2


def test_bad_executor_spec_exits_two(features_json, tmp_path, capsys):
    code = main(["--executor", "warp:9", "index", "build", features_json,
                 "-o", str(tmp_path / "x.rpsd"), "--types", FT,
                 "--shards", "2"])
    captured = capsys.readouterr()
    assert code == 2
    assert "error:" in captured.err
    assert "Traceback" not in captured.err


# --------------------------------------------------------------- --jsonl
@pytest.fixture(scope="module")
def tiny_tree(tmp_path_factory):
    from repro.config import default_config
    from repro.corpus.builder import CorpusBuilder

    tree = tmp_path_factory.mktemp("tree") / "software"
    CorpusBuilder(config=default_config("small", seed=9)).materialize_tree(
        tree)
    return str(tree)


def test_classify_jsonl_streams_one_decision_per_line(tiny_tree, capsys):
    assert main(["classify", tiny_tree, tiny_tree, "--estimators", "10",
                 "--seed", "1", "--jsonl"]) == 0
    lines = [line for line in capsys.readouterr().out.splitlines() if line]
    assert lines, "expected at least one JSONL decision"
    for line in lines:
        decision = json.loads(line)
        assert {"sample_id", "predicted_class", "confidence",
                "decision"} == set(decision)
        assert 0.0 <= decision["confidence"] <= 1.0
