"""Tier-1 perf smoke for the zero-copy mmap load mode.

Runs the mmap section of ``benchmarks/bench_model_load.py`` at a small
scale so a regression that breaks mapped-vs-eager bit-identity, legacy
(pre-v4, unpadded) compatibility or the O(header) mapped read fails
the default test run.  The speedup floor asserted here is conservative
(the mapped read skips the whole payload copy, so it is typically an
order of magnitude faster even at the small smoke payload); the full
>=20x acceptance floor at the 32 MiB payload is the benchmark's own
default (``pytest -m slow`` opts in).
"""

import importlib.util
import sys
from pathlib import Path

import pytest

_BENCH_PATH = Path(__file__).resolve().parents[1] / "benchmarks" / \
    "bench_model_load.py"


@pytest.fixture(scope="module")
def bench():
    spec = importlib.util.spec_from_file_location("bench_model_load",
                                                  _BENCH_PATH)
    module = importlib.util.module_from_spec(spec)
    sys.modules.setdefault("bench_model_load", module)
    spec.loader.exec_module(module)
    return module


def test_quick_mmap_identity_and_speedup(bench):
    result = bench.run_mmap(4 * 1024 * 1024, n_estimators=20, repeats=5)
    assert result.raw_arrays_match, \
        "mapped arrays diverged from the eager read"
    assert result.legacy_arrays_match, \
        "legacy unpadded container no longer loads bit-identically"
    assert result.decisions_match, \
        "mmap-loaded decisions diverged from the eager load"
    # Even at a 4 MiB smoke payload the mapped read skips the whole
    # payload copy; 3x is a conservative bar for a loaded CI core.
    assert result.raw_speedup >= 3.0, \
        f"container-read mmap speedup only {result.raw_speedup:.1f}x"


@pytest.mark.slow
def test_full_benchmark_meets_acceptance_floor(bench):
    """The acceptance configuration: 32 MiB payload, >=20x."""

    result = bench.run_mmap(32 * 1024 * 1024, n_estimators=30, repeats=5)
    assert result.raw_arrays_match and result.legacy_arrays_match
    assert result.decisions_match
    assert result.raw_speedup >= 20.0
