"""Tests for the CART decision tree."""

import numpy as np
import pytest

from repro.exceptions import NotFittedError, ValidationError
from repro.ml.tree import DecisionTreeClassifier


@pytest.fixture()
def separable():
    rng = np.random.default_rng(0)
    X = np.vstack([rng.normal(0, 0.4, size=(60, 4)),
                   rng.normal(3, 0.4, size=(60, 4))])
    y = np.array([0] * 60 + [1] * 60)
    return X, y


def test_fits_separable_data_perfectly(separable):
    X, y = separable
    tree = DecisionTreeClassifier(random_state=0).fit(X, y)
    assert (tree.predict(X) == y).all()
    assert tree.get_depth() <= 3


def test_predict_proba_rows_sum_to_one(separable):
    X, y = separable
    tree = DecisionTreeClassifier(random_state=0).fit(X, y)
    proba = tree.predict_proba(X)
    assert proba.shape == (len(X), 2)
    assert np.allclose(proba.sum(axis=1), 1.0)


def test_string_labels_supported():
    X = np.array([[0.0], [0.1], [5.0], [5.1]])
    y = np.array(["cat", "cat", "dog", "dog"])
    tree = DecisionTreeClassifier().fit(X, y)
    assert list(tree.predict([[0.05], [5.05]])) == ["cat", "dog"]
    assert set(tree.classes_) == {"cat", "dog"}


def test_max_depth_limits_tree():
    rng = np.random.default_rng(1)
    X = rng.normal(size=(200, 5))
    y = (X[:, 0] + X[:, 1] ** 2 + rng.normal(0, 0.3, 200) > 0.5).astype(int)
    shallow = DecisionTreeClassifier(max_depth=2, random_state=0).fit(X, y)
    deep = DecisionTreeClassifier(max_depth=None, random_state=0).fit(X, y)
    assert shallow.get_depth() <= 2
    assert deep.node_count >= shallow.node_count


def test_min_samples_leaf_respected():
    rng = np.random.default_rng(2)
    X = rng.normal(size=(100, 3))
    y = rng.integers(0, 2, 100)
    tree = DecisionTreeClassifier(min_samples_leaf=10, random_state=0).fit(X, y)
    leaves = tree.apply(X)
    _, counts = np.unique(leaves, return_counts=True)
    assert counts.min() >= 10


def test_pure_node_stops_splitting():
    X = np.array([[1.0], [2.0], [3.0]])
    y = np.array([7, 7, 7])
    tree = DecisionTreeClassifier().fit(X, y)
    assert tree.node_count == 1
    assert (tree.predict(X) == 7).all()


def test_sample_weight_changes_majority():
    X = np.array([[0.0], [0.0], [0.0], [0.0]])
    y = np.array([0, 0, 0, 1])
    unweighted = DecisionTreeClassifier().fit(X, y)
    assert unweighted.predict([[0.0]])[0] == 0
    weighted = DecisionTreeClassifier().fit(X, y, sample_weight=[1, 1, 1, 10])
    assert weighted.predict([[0.0]])[0] == 1


def test_class_weight_balanced_helps_minority():
    rng = np.random.default_rng(3)
    # Overlapping classes with 10:1 imbalance.
    X = np.vstack([rng.normal(0, 1.0, size=(200, 2)),
                   rng.normal(1.0, 1.0, size=(20, 2))])
    y = np.array([0] * 200 + [1] * 20)
    plain = DecisionTreeClassifier(max_depth=3, random_state=0).fit(X, y)
    balanced = DecisionTreeClassifier(max_depth=3, class_weight="balanced",
                                      random_state=0).fit(X, y)
    minority_recall_plain = (plain.predict(X[y == 1]) == 1).mean()
    minority_recall_balanced = (balanced.predict(X[y == 1]) == 1).mean()
    assert minority_recall_balanced >= minority_recall_plain


def test_feature_importances_identify_informative_feature():
    rng = np.random.default_rng(4)
    X = rng.normal(size=(300, 5))
    y = (X[:, 2] > 0).astype(int)
    tree = DecisionTreeClassifier(random_state=0).fit(X, y)
    importances = tree.feature_importances_
    assert importances.sum() == pytest.approx(1.0)
    assert importances.argmax() == 2


def test_entropy_criterion_works(separable):
    X, y = separable
    tree = DecisionTreeClassifier(criterion="entropy", random_state=0).fit(X, y)
    assert (tree.predict(X) == y).all()


def test_invalid_parameters_rejected(separable):
    X, y = separable
    with pytest.raises(ValidationError):
        DecisionTreeClassifier(criterion="mse").fit(X, y)
    with pytest.raises(ValidationError):
        DecisionTreeClassifier(min_samples_split=1).fit(X, y)
    with pytest.raises(ValidationError):
        DecisionTreeClassifier(min_samples_leaf=0).fit(X, y)
    with pytest.raises(ValidationError):
        DecisionTreeClassifier(max_features=0).fit(X, y)
    with pytest.raises(ValidationError):
        DecisionTreeClassifier(max_features=1.5).fit(X, y)


def test_predict_before_fit_raises():
    with pytest.raises(NotFittedError):
        DecisionTreeClassifier().predict([[1.0]])


def test_feature_count_mismatch_rejected(separable):
    X, y = separable
    tree = DecisionTreeClassifier().fit(X, y)
    with pytest.raises(ValidationError):
        tree.predict(np.zeros((2, X.shape[1] + 1)))


def test_nan_inputs_rejected():
    X = np.array([[1.0], [np.nan]])
    with pytest.raises(ValidationError):
        DecisionTreeClassifier().fit(X, [0, 1])


def test_constant_features_yield_single_leaf():
    X = np.ones((20, 3))
    y = np.array([0, 1] * 10)
    tree = DecisionTreeClassifier().fit(X, y)
    assert tree.node_count == 1  # nothing to split on


def test_max_features_sqrt_and_int(separable):
    X, y = separable
    for max_features in ("sqrt", "log2", 2, 0.5):
        tree = DecisionTreeClassifier(max_features=max_features, random_state=0)
        tree.fit(X, y)
        assert (tree.predict(X) == y).mean() > 0.9
