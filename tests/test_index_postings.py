"""Unit tests for the columnar postings layer (`repro.index.postings`)
and the version-2 container format built on it."""

import numpy as np
import pytest

from repro.exceptions import IndexFormatError, SimilarityIndexError
from repro.hashing.fnv import fnv64_hash
from repro.hashing.ssdeep import fuzzy_hash
from repro.index import ShardedSimilarityIndex, SimilarityIndex
from repro.index.core import expand_digest, signature_grams
from repro.index.postings import block_prefix64, hash_windows, \
    signature_windows
from repro.index.storage import write_container


def make_corpus(n, seed=3):
    import random

    rnd = random.Random(seed)
    base = rnd.randbytes(3000)
    members = []
    for i in range(n):
        blob = bytearray(base)
        for _ in range(rnd.randrange(1, 8)):
            blob[rnd.randrange(len(blob))] = rnd.randrange(256)
        members.append((f"s{i:03d}", {"ssdeep-file": fuzzy_hash(bytes(blob))},
                        f"c{i % 3}"))
    return members


# ------------------------------------------------------------------ hashing
def test_hash_windows_matches_fnv64_reference():
    signature = "abcdefghijklmnop"
    windows = signature_windows(signature, 7)
    keys = hash_windows(block_prefix64(96), windows)
    for row, key in zip(windows, keys):
        data = (96).to_bytes(8, "little") + row.tobytes()
        assert int(np.uint64(key)) == fnv64_hash(data)


def test_signature_windows_short_signature_is_empty():
    assert signature_windows("abc", 7).shape == (0, 7)
    assert signature_windows("", 7).shape == (0, 7)
    assert signature_windows("abcdefg", 7).shape == (1, 7)


def test_hash_collision_detected_at_merge(monkeypatch):
    """A forced 64-bit key collision must fail loudly, never mis-score."""

    import repro.index.postings as postings_mod

    def colliding_hash(prefix, windows):
        return np.zeros(windows.shape[0], dtype=np.int64)

    monkeypatch.setattr(postings_mod, "hash_windows", colliding_hash)
    index = SimilarityIndex(["ssdeep-file"])
    index.add("a", {"ssdeep-file": "3:abcdefgh:ijklmnop"})
    with pytest.raises(SimilarityIndexError, match="collision"):
        index.seal()


# ----------------------------------------------------------- incrementality
def test_interleaved_adds_and_queries_match_bulk():
    corpus = make_corpus(40)
    bulk = SimilarityIndex(["ssdeep-file"])
    bulk.add_many(corpus)
    incremental = SimilarityIndex(["ssdeep-file"])
    query = corpus[0][1]["ssdeep-file"]
    for i, (sample_id, digests, class_name) in enumerate(corpus):
        incremental.add(sample_id, digests, class_name=class_name)
        if i % 7 == 0:   # query mid-build: forces tail merges on demand
            incremental.top_k(query, 5, min_score=0)
    assert incremental.top_k(query, 40, min_score=0) == \
        bulk.top_k(query, 40, min_score=0)
    assert incremental.stats() == bulk.stats()


def test_seal_is_idempotent_and_preserves_results(tmp_path):
    corpus = make_corpus(25)
    index = SimilarityIndex(["ssdeep-file"])
    index.add_many(corpus)
    query = corpus[3][1]["ssdeep-file"]
    before = index.top_k(query, 25, min_score=0)
    index.seal()
    index.seal()
    assert index.top_k(query, 25, min_score=0) == before
    sharded = ShardedSimilarityIndex(["ssdeep-file"], n_shards=3)
    sharded.add_many(corpus)
    sharded.seal()
    assert sharded.top_k(query, 25, min_score=0) == before


# ------------------------------------------------------------- memoisation
def test_expand_digest_memo_returns_fresh_lists():
    digest = "6:aaaaaabcdefg:hhhhhijk"
    first = expand_digest(digest)
    second = expand_digest(digest)
    assert first == second == [(6, "aaabcdefg"), (12, "hhhijk")]
    first.append((1, "mutated"))
    assert expand_digest(digest) == second


def test_signature_grams_memo_returns_mutable_sets():
    grams = signature_grams("abcdefghij", 7)
    assert grams == {"abcdefg", "bcdefgh", "cdefghi", "defghij"}
    grams.add("sentinel")
    assert "sentinel" not in signature_grams("abcdefghij", 7)


# -------------------------------------------------------------- persistence
def test_v2_round_trip_preserves_candidate_layer(tmp_path):
    corpus = make_corpus(30)
    index = SimilarityIndex(["ssdeep-file"])
    index.add_many(corpus)
    loaded = SimilarityIndex.load(index.save(tmp_path / "v2.rpsi"))
    for feature_type in index.feature_types:
        assert loaded.posting_members(feature_type) == \
            index.posting_members(feature_type)
        assert loaded.member_signatures(feature_type) == \
            index.member_signatures(feature_type)


def test_legacy_v1_arrays_rebuild_identically(tmp_path):
    """A container with the old flat-entry arrays (format v1 layout)
    loads through the rebuild path and answers identically."""

    corpus = make_corpus(30)
    index = SimilarityIndex(["ssdeep-file"])
    index.add_many(corpus)

    # Re-create the legacy payload the v1 writer produced.
    flat_types, flat_members, flat_blocks, signatures = [], [], [], []
    for member, sigs in sorted(index.member_signatures("ssdeep-file").items()):
        for block_size, signature in sorted(sigs.items()):
            flat_types.append(0)
            flat_members.append(member)
            flat_blocks.append(block_size)
            signatures.append(signature)
    sig_bytes = "".join(signatures).encode("ascii")
    offsets = np.zeros(len(signatures) + 1, dtype=np.int64)
    np.cumsum([len(s) for s in signatures], out=offsets[1:])
    path = write_container(tmp_path / "legacy.rpsi", {
        "ngram_length": 7,
        "feature_types": ["ssdeep-file"],
        "sample_ids": list(index.sample_ids),
        "class_names": list(index.class_names),
    }, {
        "entry_type": np.asarray(flat_types, dtype=np.int16),
        "entry_member": np.asarray(flat_members, dtype=np.int32),
        "entry_block": np.asarray(flat_blocks, dtype=np.int64),
        "sig_offsets": offsets,
        "sig_bytes": np.frombuffer(sig_bytes, dtype=np.uint8).copy(),
    })

    loaded = SimilarityIndex.load(path)
    for _, digests, _ in corpus[::5]:
        query = digests["ssdeep-file"]
        assert loaded.top_k(query, 30, min_score=0) == \
            index.top_k(query, 30, min_score=0)


@pytest.mark.parametrize("corruption, message", [
    (lambda a: a.__setitem__("pool_offsets",
                            np.array([0, 999], dtype=np.int64)),
     "pool offsets"),
    (lambda a: a.__setitem__("t0.post_keys",
                            a["t0.post_keys"][::-1].copy()),
     "unsorted posting keys"),
    (lambda a: a["t0.entry_member"].__setitem__(0, 999), "member"),
    (lambda a: a["t0.entry_sig"].__setitem__(0, 9999), "signature"),
    (lambda a: a["t0.post_entries"].__setitem__(0, 30000), "entry"),
    (lambda a: a.__setitem__("t0.post_offsets",
                            a["t0.post_offsets"][:-1].copy()),
     "posting array lengths"),
])
def test_corrupt_v2_state_rejected(tmp_path, corruption, message):
    corpus = make_corpus(15)
    index = SimilarityIndex(["ssdeep-file"])
    index.add_many(corpus)
    header, arrays = index.get_state()
    arrays = {name: array.copy() for name, array in arrays.items()}
    corruption(arrays)
    with pytest.raises(IndexFormatError, match=message):
        SimilarityIndex.from_state(header, arrays)


def test_postings_without_entries_rejected():
    """Corrupt state with zero entries but live postings must fail the
    format check, not crash later with a raw IndexError."""

    corpus = make_corpus(5)
    index = SimilarityIndex(["ssdeep-file"])
    index.add_many(corpus)
    header, arrays = index.get_state()
    arrays = {name: array.copy() for name, array in arrays.items()}
    for name in ("entry_member", "entry_block", "entry_sig"):
        arrays[f"t0.{name}"] = arrays[f"t0.{name}"][:0]
    with pytest.raises(IndexFormatError, match="entry"):
        SimilarityIndex.from_state(header, arrays)


def test_concurrent_first_queries_are_safe():
    """The first query merges the tail; concurrent readers must all see
    a consistent index (the merge is locked, the sealed arrays swap
    atomically)."""

    import threading

    corpus = make_corpus(60)
    index = SimilarityIndex(["ssdeep-file"])
    index.add_many(corpus)          # tail left unmerged on purpose
    expected = None
    query = corpus[1][1]["ssdeep-file"]
    results, errors = [], []

    def worker():
        try:
            results.append(index.top_k(query, 60, min_score=0))
        except Exception as exc:    # pragma: no cover - failure path
            errors.append(exc)

    threads = [threading.Thread(target=worker) for _ in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors
    reference = SimilarityIndex(["ssdeep-file"])
    reference.add_many(corpus)
    reference.seal()
    expected = reference.top_k(query, 60, min_score=0)
    assert all(result == expected for result in results)


def test_v2_header_declares_columnar_layout(tmp_path):
    index = SimilarityIndex(["ssdeep-file"])
    index.add_many(make_corpus(5))
    header, arrays = index.get_state()
    assert header["layout"] == "columnar"
    assert "pool_bytes" in arrays and "t0.post_keys" in arrays
