"""Tests for similarity-index save/load: round-trip fidelity and the
error handling of the on-disk container."""

import json
import struct

import pytest

from repro.exceptions import IndexFormatError
from repro.hashing.ssdeep import fuzzy_hash
from repro.index import SimilarityIndex
from repro.index.storage import FORMAT_VERSION, MAGIC, read_container, \
    write_container

from test_index_core import make_corpus


@pytest.fixture(scope="module")
def corpus():
    return make_corpus(80, seed=11)


@pytest.fixture(scope="module")
def index(corpus):
    idx = SimilarityIndex(["ssdeep-file"])
    idx.add_many(corpus)
    return idx


def test_round_trip_preserves_everything(index, corpus, tmp_path):
    path = index.save(tmp_path / "corpus.rpsi")
    loaded = SimilarityIndex.load(path)
    assert loaded.feature_types == index.feature_types
    assert loaded.ngram_length == index.ngram_length
    assert loaded.sample_ids == index.sample_ids
    assert loaded.class_names == index.class_names
    assert loaded.stats() == index.stats()
    for _, digests, _ in corpus[::7]:
        query = digests["ssdeep-file"]
        assert loaded.top_k(query, 30) == index.top_k(query, 30)
    assert loaded.pairwise_matrix(max_pairs=500) == \
        index.pairwise_matrix(max_pairs=500)


def test_loaded_index_stays_updatable(index, corpus, tmp_path):
    import random

    loaded = SimilarityIndex.load(index.save(tmp_path / "i.rpsi"))
    digest = fuzzy_hash(random.Random(3).randbytes(3000))
    member = loaded.add("newcomer", {"ssdeep-file": digest})
    assert member == len(corpus)
    assert loaded.top_k(digest, 1)[0].sample_id == "newcomer"


def test_empty_index_round_trips(tmp_path):
    path = SimilarityIndex(["ssdeep-file"]).save(tmp_path / "empty.rpsi")
    loaded = SimilarityIndex.load(path)
    assert loaded.n_members == 0
    assert loaded.top_k("3:abcdefgh:ijkl") == []


def test_missing_file_raises_clear_error(tmp_path):
    with pytest.raises(IndexFormatError, match="does not exist"):
        SimilarityIndex.load(tmp_path / "nope.rpsi")


def test_not_an_index_file(tmp_path):
    path = tmp_path / "junk.rpsi"
    path.write_bytes(b"definitely not an index" * 10)
    with pytest.raises(IndexFormatError, match="bad magic"):
        SimilarityIndex.load(path)
    path.write_bytes(b"xy")
    with pytest.raises(IndexFormatError, match="too short"):
        SimilarityIndex.load(path)


def test_future_version_rejected(index, tmp_path):
    path = index.save(tmp_path / "future.rpsi")
    data = bytearray(path.read_bytes())
    struct.pack_into("<I", data, len(MAGIC), FORMAT_VERSION + 1)
    path.write_bytes(bytes(data))
    with pytest.raises(IndexFormatError, match="format version"):
        SimilarityIndex.load(path)


def test_truncated_payload_rejected(index, tmp_path):
    path = index.save(tmp_path / "trunc.rpsi")
    data = path.read_bytes()
    path.write_bytes(data[:len(data) - 40])
    with pytest.raises(IndexFormatError, match="truncated"):
        SimilarityIndex.load(path)


def test_corrupt_header_rejected(index, tmp_path):
    path = index.save(tmp_path / "header.rpsi")
    data = bytearray(path.read_bytes())
    data[20] ^= 0xFF  # first header byte: JSON no longer parses
    path.write_bytes(bytes(data))
    with pytest.raises(IndexFormatError, match="header"):
        SimilarityIndex.load(path)


def test_inconsistent_header_fields_rejected(tmp_path):
    # A structurally valid container whose header lies about its arrays.
    import numpy as np

    path = write_container(tmp_path / "liar.rpsi", {
        "ngram_length": 7,
        "feature_types": ["ssdeep-file"],
        "sample_ids": ["a"],
        "class_names": ["x", "y"],          # one more than sample_ids
    }, {
        "entry_type": np.zeros(0, dtype=np.int16),
        "entry_member": np.zeros(0, dtype=np.int32),
        "entry_block": np.zeros(0, dtype=np.int64),
        "sig_offsets": np.zeros(1, dtype=np.int64),
        "sig_bytes": np.zeros(0, dtype=np.uint8),
    })
    with pytest.raises(IndexFormatError, match="class names"):
        SimilarityIndex.load(path)


def test_out_of_range_entry_references_rejected(tmp_path):
    import numpy as np

    arrays = {
        "entry_type": np.array([5], dtype=np.int16),    # no such type
        "entry_member": np.array([0], dtype=np.int32),
        "entry_block": np.array([3], dtype=np.int64),
        "sig_offsets": np.array([0, 4], dtype=np.int64),
        "sig_bytes": np.frombuffer(b"abcd", dtype=np.uint8).copy(),
    }
    header = {"ngram_length": 7, "feature_types": ["ssdeep-file"],
              "sample_ids": ["a"], "class_names": [""]}
    path = write_container(tmp_path / "badtype.rpsi", header, arrays)
    with pytest.raises(IndexFormatError, match="feature type"):
        SimilarityIndex.load(path)

    arrays["entry_type"] = np.array([0], dtype=np.int16)
    arrays["entry_member"] = np.array([9], dtype=np.int32)  # no such member
    path = write_container(tmp_path / "badmember.rpsi", header, arrays)
    with pytest.raises(IndexFormatError, match="member"):
        SimilarityIndex.load(path)


def test_header_with_absurd_shape_rejected_not_overflowed(tmp_path):
    """A corrupt header declaring huge dimensions must fail the size
    check (IndexFormatError), not wrap around int64 and crash later."""

    header = json.dumps({
        "format_version": FORMAT_VERSION,
        "arrays": [{"name": "entry_type", "dtype": "|u1",
                    "shape": [2 ** 32, 2 ** 32]}],
    }).encode("utf-8")
    path = tmp_path / "absurd.rpsi"
    path.write_bytes(struct.pack("<8sIQ", MAGIC, FORMAT_VERSION, len(header))
                     + header)
    with pytest.raises(IndexFormatError, match="truncated"):
        read_container(path)


def test_container_rejects_disallowed_dtype(tmp_path):
    import numpy as np

    with pytest.raises(IndexFormatError, match="dtype"):
        write_container(tmp_path / "f.rpsi", {},
                        {"x": np.zeros(2, dtype=np.float64)})


def test_container_rejects_trailing_garbage(tmp_path, index):
    path = index.save(tmp_path / "trail.rpsi")
    with open(path, "ab") as fh:
        fh.write(b"extra")
    with pytest.raises(IndexFormatError, match="trailing"):
        read_container(path)


def test_header_records_format_version(index, tmp_path):
    header, _ = read_container(index.save(tmp_path / "v.rpsi"))
    assert header["format_version"] == FORMAT_VERSION
    # The header is honest JSON all the way down.
    json.dumps(header)


def test_v2_container_carries_columnar_arrays(index, tmp_path):
    """Formats v2+ persist the postings verbatim: the reader adopts the
    arrays instead of re-hashing every gram on load."""

    assert FORMAT_VERSION == 4
    header, arrays = read_container(index.save(tmp_path / "cols.rpsi"))
    assert header["layout"] == "columnar"
    assert {"pool_bytes", "pool_offsets"} <= set(arrays)
    for name in ("entry_member", "entry_block", "entry_sig", "post_keys",
                 "post_blocks", "post_grams", "post_offsets", "post_entries"):
        assert f"t0.{name}" in arrays
    # Keys are sorted (searchsorted-ready) and offsets span the postings.
    import numpy as np

    keys = arrays["t0.post_keys"]
    assert np.all(np.diff(keys) > 0)
    assert arrays["t0.post_offsets"][-1] == len(arrays["t0.post_entries"])


def test_version_1_preamble_still_accepted(index, tmp_path):
    """A file stamped with the old format version (1) must keep loading
    — readers accept any version up to the current one."""

    import struct as _struct

    path = index.save(tmp_path / "old.rpsi")
    data = bytearray(path.read_bytes())
    _struct.pack_into("<I", data, len(MAGIC), 1)
    path.write_bytes(bytes(data))
    header, _ = read_container(path)
    assert header["layout"] == "columnar"
