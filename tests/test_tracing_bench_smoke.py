"""Tier-1 perf smoke for the tracing layer.

Runs ``benchmarks/bench_tracing.py`` at reduced cost so a regression
that breaks served-decision identity under tracing, stops sampling,
drops canonical stages from the attribution, or double-counts a stage
fails the default test run, not just a manually-invoked benchmark.
The 5% overhead ceiling itself is enforced by the CI benchmark job;
the smoke run uses a conservative bar so a loaded single-core CI
machine cannot flake it.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

_BENCH_PATH = Path(__file__).resolve().parents[1] / "benchmarks" / \
    "bench_tracing.py"


@pytest.fixture(scope="module")
def bench():
    spec = importlib.util.spec_from_file_location("bench_tracing",
                                                  _BENCH_PATH)
    module = importlib.util.module_from_spec(spec)
    sys.modules.setdefault("bench_tracing", module)
    spec.loader.exec_module(module)
    return module


def test_quick_benchmark_identity_and_attribution(bench):
    result = bench.run(n_estimators=40, n_requests=24, n_clients=4,
                       repeats=2)
    assert result.decisions_match, \
        "decisions diverged between tracing modes and direct classify_bytes"
    # Full sampling: every request (plus the warmup) must be traced.
    assert result.traces_sampled >= 24
    assert result.traces_in_ring >= 24
    assert set(bench.REQUIRED_STAGES) <= set(result.stages_observed)
    assert result.stage_sums_within_wall, \
        "a trace's stage sum exceeded its wall time (double counting)"
    # The acceptance ceiling is 5% (CI benchmark job, min-of-3 rounds);
    # the smoke bar is loose so scheduler noise on a busy runner cannot
    # flake tier 1 — a real hot-path regression blows well past it.
    assert result.overhead <= 0.5, \
        f"tracing overhead {result.overhead * 100:.1f}% even for smoke"


def test_benchmark_cli_mode(bench, capsys, tmp_path, monkeypatch):
    monkeypatch.setattr(bench, "OUTPUT_DIR", tmp_path)
    code = bench.main(["--quick", "--estimators", "40", "--requests", "16",
                       "--clients", "4", "--repeats", "1",
                       "--max-overhead", "0"])
    out = capsys.readouterr().out
    assert code == 0
    assert "tracing throughput overhead" in out
    assert (tmp_path / "bench_tracing.txt").is_file()
    assert (tmp_path / "BENCH_tracing.json").is_file()
