"""Tests for the corpus scanner (collection rules)."""

import pytest

from repro.binfmt.strip import strip_symbols
from repro.corpus.scanner import CorpusScanner
from repro.exceptions import CorpusLayoutError


def test_scan_recovers_all_generated_samples(disk_tree):
    root, dataset = disk_tree
    result = CorpusScanner(root).scan()
    assert len(result.dataset) == len(dataset)
    assert sorted(result.dataset.labels) == sorted(dataset.labels)


def test_labels_come_from_directory_names(disk_tree):
    root, _ = disk_tree
    result = CorpusScanner(root).scan()
    for record in result.dataset:
        assert record.path.startswith(str(root))
        assert f"/{record.class_name}/" in record.path


def test_stripped_binaries_are_skipped(disk_tree, tmp_path):
    root, _ = disk_tree
    # Copy the tree and strip one class entirely.
    import shutil

    copy_root = tmp_path / "tree"
    shutil.copytree(root, copy_root)
    target_class = sorted(p.name for p in copy_root.iterdir())[0]
    stripped_files = 0
    for path in (copy_root / target_class).rglob("*"):
        if path.is_file():
            path.write_bytes(strip_symbols(path.read_bytes()))
            stripped_files += 1
    result = CorpusScanner(copy_root).scan()
    assert len(result.skipped_stripped) == stripped_files
    assert target_class not in result.dataset.class_names

    permissive = CorpusScanner(copy_root, skip_stripped=False).scan()
    assert target_class in permissive.dataset.class_names


def test_classes_with_too_few_versions_are_skipped(disk_tree, tmp_path):
    import shutil

    root, _ = disk_tree
    copy_root = tmp_path / "tree"
    shutil.copytree(root, copy_root)
    target_class = sorted(p.name for p in copy_root.iterdir())[0]
    versions = sorted(p for p in (copy_root / target_class).iterdir() if p.is_dir())
    for version_dir in versions[2:]:
        shutil.rmtree(version_dir)
    for version_dir in versions[:2]:
        pass  # keep two versions -> below the min_versions=3 rule
    result = CorpusScanner(copy_root).scan()
    assert target_class in result.skipped_classes
    assert target_class not in result.dataset.class_names


def test_non_elf_files_are_skipped(disk_tree, tmp_path):
    import shutil

    root, _ = disk_tree
    copy_root = tmp_path / "tree"
    shutil.copytree(root, copy_root)
    target_class = sorted(p.name for p in copy_root.iterdir())[0]
    for version_dir in (copy_root / target_class).iterdir():
        (version_dir / "README.txt").write_text("not a binary")
    result = CorpusScanner(copy_root).scan()
    assert result.skipped_non_elf
    assert all(p.endswith("README.txt") for p in result.skipped_non_elf)


def test_executables_missing_from_some_versions(disk_tree, tmp_path):
    import shutil

    root, _ = disk_tree
    copy_root = tmp_path / "tree"
    shutil.copytree(root, copy_root)
    # Remove one executable from one version of a multi-executable class.
    target = copy_root / "VelvetLike"
    first_version = sorted(p for p in target.iterdir() if p.is_dir())[0]
    removed = sorted(p for p in first_version.iterdir())[0]
    removed.unlink()
    strict = CorpusScanner(copy_root, require_in_all_versions=True).scan()
    relaxed = CorpusScanner(copy_root, require_in_all_versions=False).scan()
    assert len(strict.dataset) < len(relaxed.dataset)
    assert strict.skipped_not_in_all_versions


def test_missing_root_rejected(tmp_path):
    with pytest.raises(CorpusLayoutError):
        CorpusScanner(tmp_path / "does-not-exist").scan()


def test_invalid_min_versions():
    with pytest.raises(CorpusLayoutError):
        CorpusScanner(".", min_versions=0)


def test_scan_summary_mentions_counts(disk_tree):
    root, _ = disk_tree
    result = CorpusScanner(root).scan()
    text = result.summary()
    assert "samples collected" in text
