"""Corpus lifecycle tests (``repro.serving.lifecycle``): config
validation, age-off / per-class caps / compaction / republish policies
under an injected fake clock, sweep-thread behaviour, and the
end-to-end live-server scenario: simultaneous ``/ingest`` +
``/classify`` traffic, age-off, and a hot republish that a fresh
process loads to bit-identical decisions.
"""

import base64
import threading
import time

import pytest

from repro.api.service import ClassificationService
from repro.exceptions import ReproError, ValidationError
from repro.serving import (
    ClassificationServer,
    LifecycleConfig,
    LifecycleManager,
    ServerConfig,
)
from repro.serving.metrics import MetricsRegistry
from repro.serving.model_manager import ModelManager
from repro.serving.protocol import decision_to_dict

from test_api_artifact import make_records
from test_serving_server import payloads, request_json


class FakeClock:
    """A deterministic, manually-advanced time source."""

    def __init__(self, start=1000.0):
        self.now = float(start)

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += float(seconds)


@pytest.fixture(scope="module")
def trained_records():
    return make_records(30, seed=21, n_families=3)


def make_manager(trained_records, tmp_path, **kwargs):
    live = tmp_path / "model.rpm"
    ClassificationService.train(
        trained_records, feature_types=["ssdeep-file"], n_estimators=10,
        random_state=1, confidence_threshold=0.1).save(live)
    kwargs.setdefault("poll_interval", 0)
    kwargs.setdefault("mutable", True)
    kwargs.setdefault("n_shards", 3)
    kwargs.setdefault("cache_size", 64)
    return ModelManager(live, **kwargs), live


def sample(tag, n, size=2048):
    return (f"{tag}-{n}", (f"{tag}-{n}|".encode() +
                           bytes((n * 37 + k) % 256 for k in range(size))))


def ingest_online(manager, lifecycle, tag, count, class_name, *, when=None):
    """Ingest ``count`` distinct samples and track them at ``when``."""

    items = [(sid, data, class_name)
             for sid, data in (sample(tag, n) for n in range(count))]
    reports, _ = manager.ingest_items(items)
    lifecycle.note_ingested(reports, when=when)
    return [r["sample_id"] for r in reports]


# ------------------------------------------------------------ validation
@pytest.mark.parametrize("kwargs", [
    {"max_age_seconds": 0}, {"max_age_seconds": -5},
    {"max_members_per_class": 0},
    {"compact_ratio": 0.0}, {"compact_ratio": 1.5},
    {"min_compact_tombstones": 0},
    {"republish_interval": 0},
    {"sweep_interval": 0},
])
def test_config_rejects_bad_knobs(kwargs):
    with pytest.raises(ValidationError):
        LifecycleConfig(**kwargs)


def test_lifecycle_requires_a_mutable_manager(trained_records, tmp_path):
    manager, _ = make_manager(trained_records, tmp_path, mutable=False)
    with pytest.raises(ValidationError, match="mutable"):
        LifecycleManager(manager, LifecycleConfig())


# -------------------------------------------------------------- policies
def test_age_off_purges_only_expired_tracked_samples(trained_records,
                                                     tmp_path):
    manager, _ = make_manager(trained_records, tmp_path)
    clock = FakeClock()
    registry = MetricsRegistry()
    lifecycle = LifecycleManager(
        manager, LifecycleConfig(max_age_seconds=60),
        metrics=registry, time_source=clock)
    old = ingest_online(manager, lifecycle, "old", 2, "fam0",
                        when=clock.now)
    clock.advance(40)
    young = ingest_online(manager, lifecycle, "young", 1, "fam1",
                          when=clock.now)
    clock.advance(25)                      # old: 65s > 60; young: 25s
    report = lifecycle.run_once()
    assert report["aged_off"] == old
    assert report["cap_evicted"] == []
    assert lifecycle.tracked_count == 1
    info = manager.corpus_info()
    assert info["members"] == 30 + len(young)
    assert info["tombstones"] == len(old)
    assert registry.snapshot()["lifecycle_aged_off_total"] == len(old)
    # The offline-trained corpus itself is never age-off eligible.
    clock.advance(10_000)
    lifecycle.run_once()
    assert manager.corpus_info()["members"] == 30
    assert lifecycle.tracked_count == 0


def test_caps_evict_oldest_online_members_first(trained_records, tmp_path):
    manager, _ = make_manager(trained_records, tmp_path)
    clock = FakeClock()
    registry = MetricsRegistry()
    lifecycle = LifecycleManager(
        manager, LifecycleConfig(max_members_per_class=11),
        metrics=registry, time_source=clock)
    first = ingest_online(manager, lifecycle, "early", 2, "fam2",
                          when=clock.now)
    clock.advance(5)
    later = ingest_online(manager, lifecycle, "late", 1, "fam2",
                          when=clock.now)
    # fam2 is at 13 members against a cap of 11: the two oldest online
    # samples go; the freshest one and the whole offline corpus stay.
    report = lifecycle.run_once()
    assert report["cap_evicted"] == first
    assert manager.corpus_info()["classes"]["fam2"] == 11
    assert lifecycle.tracked_count == 1
    assert registry.snapshot()["lifecycle_cap_evicted_total"] == 2
    assert lifecycle.run_once()["cap_evicted"] == []      # converged
    assert manager.corpus_info()["classes"]["fam2"] == 11
    del later


def test_compaction_waits_for_floor_and_ratio(trained_records, tmp_path):
    manager, _ = make_manager(trained_records, tmp_path)
    clock = FakeClock()
    lifecycle = LifecycleManager(
        manager, LifecycleConfig(max_age_seconds=10, compact_ratio=0.2,
                                 min_compact_tombstones=4),
        time_source=clock)
    ingest_online(manager, lifecycle, "batch", 3, "fam0", when=clock.now)
    clock.advance(60)
    report = lifecycle.run_once()
    # 3 tombstones / 33 resident: below both floor (4) and ratio (0.2).
    assert len(report["aged_off"]) == 3
    assert report["compacted"] == 0
    assert manager.corpus_info()["tombstones"] == 3
    ingest_online(manager, lifecycle, "more", 6, "fam1", when=clock.now)
    clock.advance(60)
    report = lifecycle.run_once()
    # 9 tombstones / 39 resident = 0.23: past both the 0.2 ratio and
    # the floor of 4, so this sweep compacts.
    assert len(report["aged_off"]) == 6
    assert report["compacted"] == 9
    info = manager.corpus_info()
    assert info["tombstones"] == 0
    assert info["members"] == 30


def test_republish_runs_on_interval_and_on_demand(trained_records,
                                                  tmp_path):
    manager, live = make_manager(trained_records, tmp_path)
    side = tmp_path / "replica.rpm"
    clock = FakeClock()
    registry = MetricsRegistry()
    lifecycle = LifecycleManager(
        manager, LifecycleConfig(republish_interval=300,
                                 republish_path=side),
        metrics=registry, time_source=clock)
    ingest_online(manager, lifecycle, "grown", 2, "fam0", when=clock.now)
    assert lifecycle.run_once()["published"] is None     # not due yet
    clock.advance(301)
    assert lifecycle.run_once()["published"] == str(side)
    assert ClassificationService.load(side).similarity_index.n_members == 32
    # The interval resets from the publish...
    assert lifecycle.run_once()["published"] is None
    # ...but force_publish ignores it (the shutdown hook's path).
    assert lifecycle.run_once(force_publish=True)["published"] == str(side)
    assert registry.snapshot()["lifecycle_publishes_total"] == 2


def test_failed_purge_is_dropped_from_tracking_not_retried(
        trained_records, tmp_path, monkeypatch):
    manager, _ = make_manager(trained_records, tmp_path)
    clock = FakeClock()
    lifecycle = LifecycleManager(
        manager, LifecycleConfig(max_age_seconds=10), time_source=clock)
    ingest_online(manager, lifecycle, "doomed", 1, "fam0", when=clock.now)
    calls = {"n": 0}

    def broken_purge(sample_id):
        calls["n"] += 1
        raise ReproError("purge path wedged")

    monkeypatch.setattr(manager, "purge", broken_purge)
    clock.advance(60)
    report = lifecycle.run_once()
    # The failed purge is not reported as aged off, and the sample is
    # dropped from tracking so the next sweep does not retry forever.
    assert report["aged_off"] == []
    assert lifecycle.tracked_count == 0
    lifecycle.run_once()
    assert calls["n"] == 1


def test_sweep_thread_applies_policies_and_stops(trained_records,
                                                 tmp_path):
    manager, _ = make_manager(trained_records, tmp_path)
    clock = FakeClock()
    lifecycle = LifecycleManager(
        manager, LifecycleConfig(max_age_seconds=30, sweep_interval=0.02),
        time_source=clock)
    ingest_online(manager, lifecycle, "swept", 2, "fam1", when=clock.now)
    lifecycle.start()
    lifecycle.start()                                    # idempotent
    try:
        clock.advance(60)
        deadline = time.monotonic() + 10
        while lifecycle.tracked_count and time.monotonic() < deadline:
            time.sleep(0.01)
        assert lifecycle.tracked_count == 0
        assert manager.corpus_info()["members"] == 30
    finally:
        lifecycle.stop()
    lifecycle.stop()                                     # idempotent


# -------------------------------------------- end-to-end live scenario
def test_live_server_ingest_age_off_and_hot_republish(trained_records,
                                                      tmp_path):
    """The full lifecycle under live traffic: concurrent ``/ingest`` and
    ``/classify``, age-off of the older online batch, then a hot
    republish whose artifact a fresh process loads to bit-identical
    decisions.  No members are lost or resurrected, and every response
    carries exactly one model generation."""

    manager, live = make_manager(trained_records, tmp_path,
                                 poll_interval=0.05)
    clock = FakeClock()
    # Timeline: the old batch lands at t+0, the young batch at t+40,
    # age-off (horizon 60) catches only the old one at t+65, and the
    # republish (interval 70) comes due at t+75 — while the young
    # batch, at age 35, is still alive to be published.
    lifecycle = LifecycleManager(
        manager, LifecycleConfig(max_age_seconds=60, republish_interval=70,
                                 compact_ratio=0.01, min_compact_tombstones=1,
                                 sweep_interval=0.02),
        time_source=clock)
    server = ClassificationServer(
        manager, ServerConfig(port=0, workers=2, max_batch=8,
                              enable_ingest=True),
        lifecycle=lifecycle).start()

    def wait_for_corpus(predicate, what):
        deadline = time.monotonic() + 15
        while time.monotonic() < deadline:
            _, _, health = request_json(server.port, "GET", "/healthz")
            if predicate(health["corpus"]):
                return health["corpus"]
            time.sleep(0.02)
        raise AssertionError(f"corpus never reached: {what} "
                             f"(last: {health['corpus']})")

    import random

    def distinct_payloads(count, tag):
        # Mutually dissimilar blobs (unlike ``payloads``, whose shifted
        # sequences are fuzzy-similar to each other): each ingested
        # sample must anchor only its own class.
        return [(f"{tag}-{n}",
                 random.Random(f"{tag}-{n}").randbytes(4096))
                for n in range(count)]

    classes = ["fam0", "fam1", "fam2"]
    old_batch = distinct_payloads(6, "old")      # will age off
    new_batch = distinct_payloads(6, "new")      # will survive
    probes = payloads(6, tag="probe")
    generations = []
    errors = []
    lock = threading.Lock()

    def ingest_client(worker, batch):
        try:
            sid, data = batch[worker]
            status, _, report = request_json(
                server.port, "POST", "/ingest",
                {"items": [{"id": sid, "class": classes[worker % 3],
                            "data": base64.b64encode(data).decode()}]})
            assert status == 200, report
            with lock:
                generations.append(report["model_generation"])
        except Exception as exc:  # noqa: BLE001 — surface in main thread
            with lock:
                errors.append(exc)

    def classify_client(worker):
        try:
            sid, data = probes[worker]
            status, _, answer = request_json(
                server.port, "POST", "/classify",
                {"items": [{"id": sid,
                            "data": base64.b64encode(data).decode()}]})
            assert status == 200, answer
            assert len(answer["decisions"]) == 1
            with lock:
                generations.append(answer["model_generation"])
        except Exception as exc:  # noqa: BLE001 — surface in main thread
            with lock:
                errors.append(exc)

    try:
        # Phase 1: simultaneous ingest + classify traffic.
        threads = ([threading.Thread(target=ingest_client, args=(w, old_batch))
                    for w in range(6)] +
                   [threading.Thread(target=classify_client, args=(w,))
                    for w in range(6)])
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors
        assert manager.corpus_info()["members"] == 36    # nothing lost
        # Every response saw exactly one model generation.
        assert generations.count(1) == len(generations) == 12

        # Phase 2: a younger batch arrives 40 fake-seconds later.
        clock.advance(40)
        threads = [threading.Thread(target=ingest_client, args=(w, new_batch))
                   for w in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors
        wait_for_corpus(lambda c: c["members"] == 42, "42 members")

        # Phase 3: 25 more fake-seconds expire only the old batch
        # (65s > 60s horizon); the sweep also compacts the tombstones.
        clock.advance(25)
        corpus = wait_for_corpus(
            lambda c: c["members"] == 36 and c.get("tombstones") == 0,
            "36 members, 0 tombstones")
        # Survivors are exactly the offline corpus + the young batch:
        # aged-off ids answer 404, surviving ids still purge-able (but
        # we only probe one of each — purging would change the corpus).
        status, _, _ = request_json(server.port, "DELETE",
                                    "/samples/" + old_batch[0][0])
        assert status == 404                             # gone for good
        assert sum(corpus["classes"].values()) == 36

        # Phase 4: the republish interval elapses (young batch still
        # within its age horizon); the sweep atomically rewrites the
        # live artifact.  The server must NOT reload its own snapshot
        # (generation stays 1)...
        clock.advance(10)
        deadline = time.monotonic() + 15
        fresh = None
        while time.monotonic() < deadline:
            candidate = ClassificationService.load(live, cache_size=0)
            if candidate.similarity_index.n_members == 36:
                fresh = candidate
                break
            time.sleep(0.05)
        assert fresh is not None, "republish never landed in the artifact"
        time.sleep(0.2)                   # a few watcher polls
        _, _, health = request_json(server.port, "GET", "/healthz")
        assert health["model_generation"] == 1
        # ...and a fresh process loading the republished artifact makes
        # bit-identical decisions to the live server.
        check = payloads(8, tag="check")
        expected = [decision_to_dict(d) for d in fresh.classify_bytes(check)]
        status, _, answer = request_json(
            server.port, "POST", "/classify",
            {"items": [{"id": sid,
                        "data": base64.b64encode(data).decode()}
                       for sid, data in check]})
        assert status == 200
        assert answer["model_generation"] == 1
        assert answer["decisions"] == expected
        # The republished corpus carries the survivors, so the young
        # ingested samples classify as their labelled classes even
        # after a cold restart.
        for worker in (0, 1, 2):
            sid, data = new_batch[worker]
            decision = fresh.classify_bytes([(sid, data)])[0]
            assert decision.predicted_class == classes[worker % 3]
    finally:
        server.shutdown()


# --------------------------------------------------- republish backoff
class FlakyPublishManager:
    """A stub manager whose publish fails on demand — for exercising
    the republish backoff without a real artifact write."""

    mutable = True

    def __init__(self):
        self.publish_calls = 0
        self.fail = True

    def corpus_info(self):
        return {"members": 0, "classes": {}, "tombstones": 0,
                "tombstone_ratio": 0.0}

    def publish(self, path=None):
        self.publish_calls += 1
        if self.fail:
            raise ReproError("disk full")
        return "/published/model.rpm"


def test_republish_failure_backs_off_exponentially():
    clock = FakeClock()
    manager = FlakyPublishManager()
    registry = MetricsRegistry()
    lifecycle = LifecycleManager(
        manager,
        LifecycleConfig(republish_interval=10, sweep_interval=5,
                        republish_backoff_max=60),
        metrics=registry, time_source=clock)

    clock.advance(10)                          # due: first attempt fails
    assert lifecycle.run_once()["published"] is None
    assert manager.publish_calls == 1
    assert registry.snapshot()["lifecycle_republish_failures"] == 1

    # Still due, but inside the 5 * 2^1 = 10 s backoff window: no retry.
    assert lifecycle.run_once()["published"] is None
    clock.advance(9.5)
    lifecycle.run_once()
    assert manager.publish_calls == 1

    clock.advance(1)                           # past the window: retry
    lifecycle.run_once()
    assert manager.publish_calls == 2          # fails again; window 20 s
    clock.advance(19)
    lifecycle.run_once()
    assert manager.publish_calls == 2
    clock.advance(2)
    lifecycle.run_once()
    assert manager.publish_calls == 3          # window now 40 s
    assert registry.snapshot()["lifecycle_republish_failures"] == 3

    manager.fail = False                       # the disk comes back
    clock.advance(41)
    report = lifecycle.run_once()
    assert report["published"] == "/published/model.rpm"
    assert registry.snapshot()["lifecycle_publishes_total"] == 1

    # Success reset the consecutive-failure count: the next failure
    # starts the schedule over at the shortest window.
    manager.fail = True
    clock.advance(10)
    lifecycle.run_once()
    assert manager.publish_calls == 5
    clock.advance(9)
    lifecycle.run_once()
    assert manager.publish_calls == 5          # 10 s window again
    clock.advance(2)
    lifecycle.run_once()
    assert manager.publish_calls == 6


def test_republish_backoff_is_capped():
    clock = FakeClock()
    manager = FlakyPublishManager()
    lifecycle = LifecycleManager(
        manager,
        LifecycleConfig(republish_interval=1, sweep_interval=5,
                        republish_backoff_max=15),
        metrics=None, time_source=clock)
    for _ in range(6):                         # drive failures up
        clock.advance(1000)
        lifecycle.run_once()
    calls = manager.publish_calls
    clock.advance(15.5)                        # capped at 15 s, not 2^n
    lifecycle.run_once()
    assert manager.publish_calls == calls + 1


def test_forced_publish_bypasses_backoff_and_raises():
    clock = FakeClock()
    manager = FlakyPublishManager()
    registry = MetricsRegistry()
    lifecycle = LifecycleManager(
        manager, LifecycleConfig(republish_interval=10),
        metrics=registry, time_source=clock)
    clock.advance(10)
    lifecycle.run_once()                       # failure arms the backoff
    assert manager.publish_calls == 1
    # force_publish (the shutdown hook) ignores the backoff window and
    # surfaces the error to its caller instead of swallowing it.
    with pytest.raises(ReproError, match="disk full"):
        lifecycle.run_once(force_publish=True)
    assert manager.publish_calls == 2
    assert registry.snapshot()["lifecycle_republish_failures"] == 2


def test_config_rejects_bad_backoff():
    with pytest.raises(ValidationError):
        LifecycleConfig(republish_backoff_max=0)
