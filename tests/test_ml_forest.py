"""Tests for the Random Forest classifier."""

import numpy as np
import pytest

from repro.exceptions import NotFittedError, ValidationError
from repro.ml.forest import RandomForestClassifier
from repro.ml.metrics import accuracy_score


@pytest.fixture(scope="module")
def blobs():
    rng = np.random.default_rng(0)
    centers = np.array([[0, 0, 0], [4, 0, 0], [0, 4, 0], [2, 2, 4]])
    y = rng.integers(0, 4, size=400)
    X = centers[y] + rng.normal(0, 0.8, size=(400, 3))
    return X, y


def test_high_accuracy_on_blobs(blobs):
    X, y = blobs
    forest = RandomForestClassifier(n_estimators=40, random_state=0).fit(X, y)
    assert accuracy_score(y, forest.predict(X)) > 0.95


def test_predict_proba_shape_and_normalisation(blobs):
    X, y = blobs
    forest = RandomForestClassifier(n_estimators=25, random_state=0).fit(X, y)
    proba = forest.predict_proba(X[:17])
    assert proba.shape == (17, 4)
    assert np.allclose(proba.sum(axis=1), 1.0)
    assert proba.min() >= 0.0


def test_deterministic_given_random_state(blobs):
    X, y = blobs
    a = RandomForestClassifier(n_estimators=15, random_state=42).fit(X, y)
    b = RandomForestClassifier(n_estimators=15, random_state=42).fit(X, y)
    assert np.array_equal(a.predict(X), b.predict(X))
    assert np.allclose(a.feature_importances_, b.feature_importances_)


def test_different_seeds_differ_somewhere(blobs):
    X, y = blobs
    a = RandomForestClassifier(n_estimators=5, random_state=1).fit(X, y)
    b = RandomForestClassifier(n_estimators=5, random_state=2).fit(X, y)
    assert not np.allclose(a.feature_importances_, b.feature_importances_)


def test_feature_importances_normalised(blobs):
    X, y = blobs
    forest = RandomForestClassifier(n_estimators=20, random_state=0).fit(X, y)
    assert forest.feature_importances_.shape == (X.shape[1],)
    assert forest.feature_importances_.sum() == pytest.approx(1.0)


def test_string_labels_and_classes_attribute():
    rng = np.random.default_rng(1)
    X = np.vstack([rng.normal(0, 0.3, (30, 2)), rng.normal(3, 0.3, (30, 2))])
    y = np.array(["benign"] * 30 + ["malware"] * 30)
    forest = RandomForestClassifier(n_estimators=10, random_state=0).fit(X, y)
    assert set(forest.classes_) == {"benign", "malware"}
    assert set(forest.predict(X)) <= {"benign", "malware"}


def test_class_weight_balanced_improves_minority_recall():
    rng = np.random.default_rng(5)
    X = np.vstack([rng.normal(0, 1.2, size=(300, 3)),
                   rng.normal(1.2, 1.2, size=(24, 3))])
    y = np.array([0] * 300 + [1] * 24)
    plain = RandomForestClassifier(n_estimators=30, max_depth=4,
                                   random_state=0).fit(X, y)
    balanced = RandomForestClassifier(n_estimators=30, max_depth=4,
                                      class_weight="balanced",
                                      random_state=0).fit(X, y)
    recall_plain = (plain.predict(X[y == 1]) == 1).mean()
    recall_balanced = (balanced.predict(X[y == 1]) == 1).mean()
    assert recall_balanced >= recall_plain


def test_parallel_fit_matches_serial(blobs):
    X, y = blobs
    serial = RandomForestClassifier(n_estimators=12, random_state=3, n_jobs=1).fit(X, y)
    parallel = RandomForestClassifier(n_estimators=12, random_state=3, n_jobs=2).fit(X, y)
    assert np.array_equal(serial.predict(X), parallel.predict(X))


def test_bootstrap_false_uses_full_data(blobs):
    X, y = blobs
    forest = RandomForestClassifier(n_estimators=5, bootstrap=False,
                                    random_state=0).fit(X, y)
    assert accuracy_score(y, forest.predict(X)) > 0.95


def test_not_fitted_raises(blobs):
    X, _ = blobs
    with pytest.raises(NotFittedError):
        RandomForestClassifier().predict(X)


def test_invalid_n_estimators(blobs):
    X, y = blobs
    with pytest.raises(ValidationError):
        RandomForestClassifier(n_estimators=0).fit(X, y)


def test_feature_mismatch_on_predict(blobs):
    X, y = blobs
    forest = RandomForestClassifier(n_estimators=5, random_state=0).fit(X, y)
    with pytest.raises(ValidationError):
        forest.predict(np.zeros((3, X.shape[1] + 2)))


def test_get_set_params_roundtrip():
    forest = RandomForestClassifier(n_estimators=7, max_depth=3)
    params = forest.get_params()
    assert params["n_estimators"] == 7
    forest.set_params(n_estimators=11)
    assert forest.n_estimators == 11
    with pytest.raises(ValidationError):
        forest.set_params(not_a_parameter=1)
