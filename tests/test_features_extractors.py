"""Tests for per-sample feature extraction."""

import pytest

from repro.binfmt.strip import strip_symbols
from repro.exceptions import FeatureExtractionError
from repro.features.extractors import FEATURE_TYPES, FeatureExtractor
from repro.hashing.compare import compare_digests
from repro.hashing.crypto import crypto_digest
from repro.hashing.ssdeep import SsdeepDigest


def test_feature_types_constant():
    assert FEATURE_TYPES == ("ssdeep-file", "ssdeep-strings", "ssdeep-symbols")


def test_extract_produces_all_digests(sample_elf):
    features = FeatureExtractor().extract(sample_elf, sample_id="demo",
                                          class_name="Demo", version="1.2",
                                          executable="demo")
    assert set(features.digests) == set(FEATURE_TYPES)
    for digest in features.digests.values():
        SsdeepDigest.parse(digest)  # must be well-formed
    assert features.sha256 == crypto_digest(sample_elf)
    assert features.file_size == len(sample_elf)
    assert features.n_symbols > 20
    assert features.n_strings > 0
    assert not features.stripped


def test_subset_of_feature_types(sample_elf):
    extractor = FeatureExtractor(["ssdeep-symbols"])
    features = extractor.extract(sample_elf)
    assert list(features.digests) == ["ssdeep-symbols"]


def test_unknown_feature_type_rejected():
    with pytest.raises(FeatureExtractionError):
        FeatureExtractor(["ssdeep-imports"])
    with pytest.raises(FeatureExtractionError):
        FeatureExtractor([])


def test_empty_input_rejected():
    with pytest.raises(FeatureExtractionError):
        FeatureExtractor().extract(b"", sample_id="x")


def test_stripped_binary_flagged_and_symbols_empty(sample_elf):
    stripped = strip_symbols(sample_elf)
    features = FeatureExtractor().extract(stripped, sample_id="stripped")
    assert features.stripped
    assert features.n_symbols == 0
    digest = SsdeepDigest.parse(features.digest("ssdeep-symbols"))
    assert digest.is_empty


def test_symbols_digest_is_robust_to_code_changes(sample_elf):
    """Changing only .text leaves the symbols digest identical and keeps
    the file digest similar — the core premise of the paper."""

    from repro.binfmt.reader import ElfReader
    import random

    extractor = FeatureExtractor()
    original = extractor.extract(sample_elf, sample_id="a")

    # Rebuild the same binary with different code bytes.
    reader = ElfReader(sample_elf)
    from repro.binfmt.structs import SymbolSpec
    from repro.binfmt.writer import build_executable

    symbols = [SymbolSpec(s.name) for s in reader.symbols if s.is_global]
    rebuilt = build_executable(
        code=random.Random(123).randbytes(4096),
        strings=["Demo application v1.2", "usage: demo [options]",
                 "error: cannot open file '%s'"],
        symbols=symbols,
        comment="GCC: (GNU) 11.2.0",
    )
    modified = extractor.extract(rebuilt, sample_id="b")
    symbol_similarity = compare_digests(original.digest("ssdeep-symbols"),
                                        modified.digest("ssdeep-symbols"))
    file_similarity = compare_digests(original.digest("ssdeep-file"),
                                      modified.digest("ssdeep-file"))
    assert symbol_similarity >= 90
    assert symbol_similarity >= file_similarity


def test_extract_file_matches_extract_bytes(tmp_path, sample_elf):
    path = tmp_path / "binary"
    path.write_bytes(sample_elf)
    from_file = FeatureExtractor().extract_file(str(path))
    from_bytes = FeatureExtractor().extract(sample_elf)
    assert from_file.digests == from_bytes.digests


def test_extract_missing_file_raises(tmp_path):
    with pytest.raises(FeatureExtractionError):
        FeatureExtractor().extract_file(str(tmp_path / "nope"))


def test_non_elf_input_counts_as_stripped():
    features = FeatureExtractor().extract(b"#!/bin/sh\necho hello world\n" * 20,
                                          sample_id="script")
    assert features.stripped
    assert features.digest("ssdeep-file")
    assert features.digest("ssdeep-strings")
