"""Tests for the batched edit-distance engine."""

import random

import numpy as np
import pytest

from repro.distance.batch import BatchEditDistance, batch_edit_distances
from repro.distance.damerau import osa_distance, weighted_edit_distance


def _random_pairs(n, seed=0, alphabet="ABCDEFGH+/ab01", max_len=40):
    rnd = random.Random(seed)
    return [
        ("".join(rnd.choices(alphabet, k=rnd.randint(0, max_len))),
         "".join(rnd.choices(alphabet, k=rnd.randint(0, max_len))))
        for _ in range(n)
    ]


def test_unit_costs_match_osa_reference():
    pairs = _random_pairs(400, seed=1)
    result = batch_edit_distances([a for a, _ in pairs], [b for _, b in pairs])
    expected = [osa_distance(a, b) for a, b in pairs]
    assert result.tolist() == expected


def test_ssdeep_weights_match_reference():
    pairs = _random_pairs(400, seed=2)
    engine = BatchEditDistance(substitute_cost=3, transpose_cost=5)
    result = engine.distances_two_lists([a for a, _ in pairs], [b for _, b in pairs])
    expected = [weighted_edit_distance(a, b) for a, b in pairs]
    assert result.tolist() == expected


def test_empty_strings_handled():
    left = ["", "abc", "", "xy"]
    right = ["", "", "abcd", "xy"]
    result = batch_edit_distances(left, right)
    assert result.tolist() == [0, 3, 4, 0]


def test_all_empty_right_side():
    result = batch_edit_distances(["abc", "de", ""], ["", "", ""])
    assert result.tolist() == [3, 2, 0]


def test_chunking_gives_same_result():
    pairs = _random_pairs(97, seed=3)
    left = [a for a, _ in pairs]
    right = [b for _, b in pairs]
    small_chunks = BatchEditDistance(chunk_size=8).distances_two_lists(left, right)
    one_chunk = BatchEditDistance(chunk_size=10_000).distances_two_lists(left, right)
    assert small_chunks.tolist() == one_chunk.tolist()


def test_one_vs_many():
    engine = BatchEditDistance()
    refs = ["kitten", "mitten", "sitting", ""]
    result = engine.one_vs_many("kitten", refs)
    assert result.tolist() == [0, 1, 3, 6]


def test_mismatched_lengths_rejected():
    engine = BatchEditDistance()
    with pytest.raises(ValueError):
        engine.distances_two_lists(["a"], ["a", "b"])


def test_invalid_parameters_rejected():
    with pytest.raises(ValueError):
        BatchEditDistance(chunk_size=0)
    with pytest.raises(ValueError):
        BatchEditDistance(insert_cost=-1)


def test_returns_int64_array():
    result = batch_edit_distances(["abc"], ["abd"])
    assert isinstance(result, np.ndarray)
    assert result.dtype == np.int64


def test_lone_surrogates_and_astral_codepoints():
    """The bulk UTF-32 packing path must accept every str Python can
    hold — astral plane characters and lone surrogates (e.g. from
    surrogateescape decoding) — and agree with the scalar reference
    (``osa_distance``, the unit-cost restricted Damerau–Levenshtein the
    engine's defaults implement)."""

    pairs = [("a\ud800b", "ab"), ("\ud800", "\ud801"),
             ("naïve\U0001F600", "naive\U0001F601"),
             ("\ud800" * 3, "")]
    engine = BatchEditDistance()
    result = engine.distances_two_lists([a for a, _ in pairs],
                                        [b for _, b in pairs])
    expected = [osa_distance(a, b) for a, b in pairs]
    assert result.tolist() == expected
