"""Tests for batch feature extraction and the on-disk feature store."""

import pytest

from repro.exceptions import FeatureExtractionError
from repro.features.extractors import FEATURE_TYPES
from repro.features.pipeline import FeatureExtractionPipeline
from repro.features.records import SampleFeatures, features_from_json, features_to_json
from repro.features.store import FeatureStore


def test_extract_generated_covers_all_samples(tiny_samples, tiny_features):
    assert len(tiny_features) == len(tiny_samples)
    assert all(set(f.digests) == set(FEATURE_TYPES) for f in tiny_features)
    # Labels propagate from the corpus.
    assert {f.class_name for f in tiny_features} == {s.class_name for s in tiny_samples}


def test_extract_dataset_from_disk(disk_tree):
    _, dataset = disk_tree
    features = FeatureExtractionPipeline().extract_dataset(dataset)
    assert len(features) == len(dataset)
    by_id = {f.sample_id: f for f in features}
    for record in dataset:
        assert record.sample_id in by_id
        assert by_id[record.sample_id].class_name == record.class_name


def test_in_memory_and_on_disk_extraction_agree(disk_tree, tiny_samples):
    _, dataset = disk_tree
    disk_features = {f.sample_id: f for f in
                     FeatureExtractionPipeline().extract_dataset(dataset)}
    memory_features = {f.sample_id: f for f in
                       FeatureExtractionPipeline().extract_generated(tiny_samples)}
    shared = set(disk_features) & set(memory_features)
    assert shared
    for sample_id in shared:
        assert disk_features[sample_id].digests == memory_features[sample_id].digests


def test_parallel_extraction_matches_serial(tiny_samples):
    serial = FeatureExtractionPipeline(n_jobs=1).extract_generated(tiny_samples)
    parallel = FeatureExtractionPipeline(n_jobs=2).extract_generated(tiny_samples)
    assert [f.sample_id for f in serial] == [f.sample_id for f in parallel]
    assert all(a.digests == b.digests for a, b in zip(serial, parallel))


def test_extract_paths_without_labels(disk_tree):
    root, dataset = disk_tree
    paths = dataset.paths[:4]
    features = FeatureExtractionPipeline().extract_paths(paths)
    assert len(features) == 4
    assert all(f.class_name == "" for f in features)


def test_empty_input_rejected():
    with pytest.raises(FeatureExtractionError):
        FeatureExtractionPipeline().extract_generated([])


def test_feature_json_roundtrip(tiny_features):
    text = features_to_json(tiny_features[:10])
    loaded = features_from_json(text)
    assert len(loaded) == 10
    assert loaded[0] == tiny_features[0]


def test_feature_json_rejects_garbage():
    with pytest.raises(FeatureExtractionError):
        features_from_json("{not json")
    with pytest.raises(FeatureExtractionError):
        features_from_json('{"samples": [{"sample_id": "x"}]}')


def test_feature_store_roundtrip(tmp_path, tiny_features):
    store = FeatureStore(tmp_path / "cache")
    key = store.key_for([(f.sample_id, f.file_size) for f in tiny_features],
                        FEATURE_TYPES)
    assert store.load(key) is None
    store.save(key, tiny_features)
    loaded = store.load(key)
    assert loaded is not None
    assert len(loaded) == len(tiny_features)
    assert loaded[3].digests == tiny_features[3].digests


def test_feature_store_key_changes_with_content(tmp_path, tiny_features):
    store = FeatureStore(tmp_path)
    descriptors = [(f.sample_id, f.file_size) for f in tiny_features]
    key_a = store.key_for(descriptors, FEATURE_TYPES)
    key_b = store.key_for(descriptors, FEATURE_TYPES[:1])
    key_c = store.key_for(descriptors[:-1], FEATURE_TYPES)
    assert len({key_a, key_b, key_c}) == 3


def test_feature_store_ignores_corrupt_files(tmp_path, tiny_features):
    store = FeatureStore(tmp_path)
    key = "deadbeef"
    store.path_for(key).write_text("corrupted{")
    assert store.load(key) is None


def test_feature_store_clear(tmp_path, tiny_features):
    store = FeatureStore(tmp_path)
    store.save("k1", tiny_features[:2])
    store.save("k2", tiny_features[:2])
    assert store.clear() == 2
    assert store.load("k1") is None


def test_feature_store_save_is_atomic(tmp_path, tiny_features, monkeypatch):
    """save writes via a same-directory temp file + os.replace, so an
    interrupted run never leaves a half-written cache entry under the
    final name."""

    import os

    store = FeatureStore(tmp_path)
    replaced = []
    real_replace = os.replace

    def spy(src, dst):
        replaced.append((str(src), str(dst)))
        return real_replace(src, dst)

    monkeypatch.setattr(os, "replace", spy)
    path = store.save("atomic", tiny_features[:2])
    assert replaced, "save() must go through os.replace"
    src, dst = replaced[-1]
    assert dst == str(path)
    assert src.endswith(".tmp")
    assert os.path.dirname(src) == os.path.dirname(dst)
    # No temp litter, and the entry loads back.
    assert not list(tmp_path.glob("*.tmp"))
    assert store.load("atomic") is not None


def test_feature_store_interrupted_save_leaves_old_entry_intact(
        tmp_path, tiny_features, monkeypatch):
    """A crash mid-write must not clobber the previous cache entry."""

    import os

    store = FeatureStore(tmp_path)
    store.save("key", tiny_features[:3])
    before = store.path_for("key").read_text(encoding="utf-8")

    def boom(src, dst):
        raise OSError("disk full")

    monkeypatch.setattr(os, "replace", boom)
    with pytest.raises(OSError):
        store.save("key", tiny_features[:1])
    monkeypatch.undo()
    assert store.path_for("key").read_text(encoding="utf-8") == before
    assert not list(tmp_path.glob("*.tmp"))
    assert len(store.load("key")) == 3


def test_pipeline_extract_bytes(tiny_samples):
    pipeline = FeatureExtractionPipeline(["ssdeep-file"])
    items = [(s.relative_path, s.data) for s in tiny_samples[:3]]
    records = pipeline.extract_bytes(items)
    assert [r.sample_id for r in records] == [i[0] for i in items]
    assert all(r.digest("ssdeep-file") for r in records)
    # Same bytes as extract_generated -> same digests.
    generated = pipeline.extract_generated(tiny_samples[:3])
    assert [r.digests for r in records] == [g.digests for g in generated]
