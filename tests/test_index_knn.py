"""Tests for the packed vector kNN index.

The central invariant: :meth:`VectorKNNIndex.top_k` — the vectorised
XOR + popcount sweep over the packed ``(n, 4)`` ``uint64`` matrix — is
bit-identical to :func:`brute_force_top_k`, the per-pair Python loop,
for any corpus and query.  Lifecycle (remove/compact) and persistence
are checked around the same equivalence.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.exceptions import SimilarityIndexError, ValidationError
from repro.hashing.vector import vector_hash
from repro.index import VectorKNNIndex, brute_force_top_k
from repro.index.knn import PackedDigestStore

_settings = settings(max_examples=25, deadline=None,
                     suppress_health_check=[HealthCheck.too_slow])


def _make_members(seed: int, n: int):
    rnd = random.Random(seed)
    bases = [rnd.randbytes(600 + rnd.randrange(600)) for _ in range(3)]
    members = []
    for i in range(n):
        blob = bytearray(bases[i % 3])
        for _ in range(rnd.randrange(0, 6)):
            blob[rnd.randrange(len(blob))] = rnd.randrange(256)
        members.append((f"m{i:04d}", f"class-{i % 3}",
                        vector_hash(bytes(blob))))
    return members


@_settings
@given(st.integers(min_value=0, max_value=2 ** 31 - 1),
       st.integers(min_value=1, max_value=40),
       st.integers(min_value=1, max_value=12))
def test_packed_top_k_matches_brute_force(seed, n, k):
    members = _make_members(seed, n)
    index = VectorKNNIndex()
    index.add_many(members)
    rnd = random.Random(seed ^ 0x5EED)
    query = vector_hash(rnd.randbytes(500)) if rnd.random() < 0.3 \
        else members[rnd.randrange(n)][2]
    for min_score in (0, 1, 40):
        assert index.top_k(query, k, min_score=min_score) == \
            brute_force_top_k(members, query, k, min_score=min_score)


def test_add_remove_compact_lifecycle():
    members = _make_members(7, 12)
    index = VectorKNNIndex()
    index.add_many(members)
    assert len(index) == 12
    assert "m0003" in index

    index.remove("m0003")
    assert "m0003" not in index
    assert len(index) == 11
    query = members[0][2]
    survivors = [m for m in members if m[0] != "m0003"]
    assert index.top_k(query, 11, min_score=0) == \
        brute_force_top_k(survivors, query, 11, min_score=0)

    dropped = index.compact()
    assert dropped == 1
    assert index.stats()["tombstones"] == 0
    assert index.top_k(query, 11, min_score=0) == \
        brute_force_top_k(survivors, query, 11, min_score=0)


def test_remove_unknown_raises():
    index = VectorKNNIndex()
    with pytest.raises(SimilarityIndexError):
        index.remove("nope")


def test_duplicate_sample_id_raises():
    index = VectorKNNIndex()
    index.add("a", "c", vector_hash(b"x" * 100))
    with pytest.raises(SimilarityIndexError):
        index.add("a", "c", vector_hash(b"y" * 100))


def test_save_load_round_trip(tmp_path):
    members = _make_members(11, 9)
    index = VectorKNNIndex()
    index.add_many(members)
    index.remove(members[4][0])

    path = tmp_path / "knn.rpsi"
    index.save(path)
    loaded = VectorKNNIndex.load(path)

    assert len(loaded) == len(index)
    for _, _, digest in members:
        assert loaded.top_k(digest, 9, min_score=0) == \
            index.top_k(digest, 9, min_score=0)
    assert loaded.stats() == index.stats()


def test_top_k_exclude_and_empty():
    index = VectorKNNIndex()
    assert index.top_k(vector_hash(b"q" * 64), 3) == []
    members = _make_members(3, 5)
    index.add_many(members)
    query = members[0][2]
    hits = index.top_k(query, 5, min_score=0,
                       exclude={members[0][0], members[1][0]})
    returned = {h.sample_id for h in hits}
    assert members[0][0] not in returned
    assert members[1][0] not in returned
    with pytest.raises(ValidationError):
        index.top_k(query, 0)


def test_stats_family_breakdown():
    members = _make_members(5, 6)
    index = VectorKNNIndex()
    index.add_many(members)
    stats = index.stats()
    assert stats["members"] == 6
    assert stats["digest_bits"] == 256
    assert stats["words_per_digest"] == 4
    assert stats["members_with_digest"] == 6
    assert stats["packed_matrix_bytes"] > 0
    assert stats["classes"] == ["class-0", "class-1", "class-2"]


def test_packed_store_subset_and_missing_digests():
    store = PackedDigestStore()
    d0, d1 = vector_hash(b"a" * 128), vector_hash(b"b" * 128)
    store.append(d0)
    store.append(None)           # member without a digest
    store.append(d1)
    assert len(store) == 3
    assert store.present.tolist() == [True, False, True]
    assert store.digest_string(0) == d0
    sub = store.subset([2, 0])
    assert sub.digest_string(0) == d1
    assert sub.digest_string(1) == d0
    # A missing digest can never win a distance sweep.
    assert store.distances(d0)[1] > 256 or not store.present[1]
