"""Tests for model-artifact format v2: sharded anchor-index payloads
round-trip bit-identically, and v1 artifacts keep loading."""

import dataclasses

import pytest

from repro.api.artifact import (
    MODEL_CONTAINER,
    MODEL_FORMAT_VERSION,
    inspect_model,
    load_model,
    save_model,
    validate_model,
)
from repro.api.service import ClassificationService
from repro.exceptions import ModelFormatError
from repro.features.records import SampleFeatures
from repro.index import ShardedSimilarityIndex
from repro.index.storage import read_container, write_container

from test_index_core import make_corpus

FT = "ssdeep-file"


@pytest.fixture(scope="module")
def records():
    return [SampleFeatures(sample_id=sid, class_name=cls, version="1",
                           executable=sid, digests=digests)
            for sid, digests, cls in make_corpus(48, seed=21)]


@pytest.fixture(scope="module")
def sharded_service(records):
    index = ShardedSimilarityIndex([FT], n_shards=3)
    index.add_many(records)
    return ClassificationService.train(records, feature_types=(FT,),
                                       n_estimators=15, random_state=4,
                                       index=index)


def test_format_version_is_four():
    assert MODEL_FORMAT_VERSION == 4


def test_sharded_artifact_round_trips_bit_identically(tmp_path, records,
                                                      sharded_service):
    path = tmp_path / "sharded.rpm"
    save_model(sharded_service.classifier, path)
    loaded = ClassificationService.load(path)
    assert isinstance(loaded.similarity_index, ShardedSimilarityIndex)
    assert loaded.similarity_index.n_shards == 3
    assert loaded.classify_features(records) == \
        sharded_service.classify_features(records)


def test_sharded_artifact_inspect_and_validate(tmp_path, sharded_service):
    path = tmp_path / "sharded.rpm"
    save_model(sharded_service.classifier, path)
    info = inspect_model(path)
    assert info["format_version"] == MODEL_FORMAT_VERSION
    assert info["index_sharded"] is True
    assert info["index_shards"] == 3
    assert info["index_members"] == 48
    assert validate_model(path)["index_sharded"] is True


def test_headless_artifact_accepts_sharded_index_path(tmp_path, records,
                                                      sharded_service):
    model_path = tmp_path / "headless.rpm"
    save_model(sharded_service.classifier, model_path, include_index=False)
    index_path = sharded_service.similarity_index.save(tmp_path / "idx.rpsd")
    with pytest.raises(ModelFormatError, match="without its anchor index"):
        load_model(model_path)
    loaded = load_model(model_path, index=index_path)
    first = sharded_service.classifier.predict(records)
    assert list(loaded.predict(records)) == list(first)


def test_v1_artifact_still_loads_and_predicts_identically(tmp_path, records):
    # A v1 artifact is byte-for-byte a v2 single-index artifact with the
    # old container version stamped; simulate an old writer by reusing
    # the current payload under a version-1 container format.
    service = ClassificationService.train(records, feature_types=(FT,),
                                          n_estimators=15, random_state=4)
    modern = tmp_path / "modern.rpm"
    save_model(service.classifier, modern)
    header, arrays = read_container(modern, fmt=MODEL_CONTAINER)
    header.pop("arrays")
    header.pop("format_version")
    v1_format = dataclasses.replace(MODEL_CONTAINER, version=1)
    legacy = tmp_path / "legacy.rpm"
    write_container(legacy, header, arrays, fmt=v1_format)

    loaded = ClassificationService.load(legacy)
    assert inspect_model(legacy)["format_version"] == 1
    assert loaded.classify_features(records) == \
        service.classify_features(records)


def test_service_executor_reaches_restored_sharded_index(tmp_path,
                                                         sharded_service):
    path = tmp_path / "sharded.rpm"
    save_model(sharded_service.classifier, path)
    loaded = ClassificationService.load(path, executor="thread:2")
    anchor = loaded.similarity_index
    assert anchor.executor.name == "thread"
    assert anchor.executor.n_workers == 2
    anchor.close()
    # Without an explicit executor the restored index stays serial.
    assert ClassificationService.load(path).similarity_index.executor.name \
        == "serial"


def test_future_artifact_version_is_rejected(tmp_path, records,
                                             sharded_service):
    modern = tmp_path / "modern.rpm"
    save_model(sharded_service.classifier, modern)
    header, arrays = read_container(modern, fmt=MODEL_CONTAINER)
    header.pop("arrays")
    header.pop("format_version")
    future = dataclasses.replace(MODEL_CONTAINER, version=99)
    path = tmp_path / "future.rpm"
    write_container(path, header, arrays, fmt=future)
    with pytest.raises(ModelFormatError, match="version 99"):
        load_model(path)
