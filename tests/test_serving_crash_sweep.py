"""Crash-point sweep: kill a live ingesting server at every registered
failpoint, restart over the same artifact + WAL, and prove that

* no acknowledged ingest was lost,
* no mutation was applied twice, and
* the recovered corpus makes decisions bit-identical to a replica that
  never crashed.

The server under test is a real ``repro-classify serve`` subprocess
with ``REPRO_FAULTS=<site>:crash[@after]`` in its environment — the
``crash`` action is ``os._exit``, the closest an in-process harness
gets to ``kill -9``.
"""

import base64
import json
import os
import re
import subprocess
import sys
import time
from http.client import HTTPConnection
from pathlib import Path

import numpy as np
import pytest

from repro.serving.model_manager import ModelManager
from repro.serving.protocol import decision_to_dict
from repro.testing import CRASH_EXIT_CODE, CRASH_SWEEP_SITES, injector

from test_api_artifact import make_records

SRC_DIR = str(Path(__file__).resolve().parent.parent / "src")


@pytest.fixture(autouse=True)
def _disarm_faults():
    injector.disarm()
    yield
    injector.disarm()


@pytest.fixture(scope="module")
def pristine_artifact(tmp_path_factory):
    from repro.api.service import ClassificationService

    directory = tmp_path_factory.mktemp("sweep-models")
    records = make_records(24, seed=21, n_families=3)
    service = ClassificationService.train(
        records, feature_types=["ssdeep-file"], n_estimators=8,
        random_state=1, confidence_threshold=0.1)
    path = directory / "model.rpm"
    service.save(path)
    return path


def ingest_batches(n_batches, *, per_batch=2, seed=17):
    rng = np.random.default_rng(seed)
    batches = []
    for b in range(n_batches):
        batches.append([
            (f"crash-{seed}-{b}-{i}",
             bytes(rng.integers(0, 256, size=2048, dtype=np.uint8)),
             "fam0")
            for i in range(per_batch)])
    return batches


def probe_payloads(count=6, *, size=1024):
    return [(f"probe-{n}", (f"probe-{n}|".encode() +
                            bytes((n * 31 + k) % 256 for k in range(size))))
            for n in range(count)]


def start_server(model, wal_dir, faults, *, publish_interval=None):
    cmd = [sys.executable, "-m", "repro.cli", "serve",
           "--model", str(model), "--port", "0", "--ingest",
           "--wal-dir", str(wal_dir), "--reload-interval", "0",
           "--workers", "1"]
    if publish_interval is not None:
        cmd += ["--republish-interval", str(publish_interval),
                "--lifecycle-interval", "0.1"]
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    env["REPRO_FAULTS"] = faults
    proc = subprocess.Popen(cmd, stdout=subprocess.PIPE,
                            stderr=subprocess.STDOUT, text=True, env=env)
    deadline = time.monotonic() + 90
    banner = ""
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            if proc.poll() is not None:
                raise AssertionError(
                    f"server died during startup (rc={proc.returncode})")
            time.sleep(0.05)
            continue
        banner += line
        match = re.search(r"http://127\.0\.0\.1:(\d+)", line)
        if match:
            return proc, int(match.group(1))
    proc.kill()
    raise AssertionError(f"server never announced a port; output: {banner}")


def post_ingest(port, batch, *, timeout=30):
    """Send one ingest batch; returns the parsed body or ``None`` when
    the server crashed before answering (a connection-level failure)."""

    items = [{"id": sid, "class": cls,
              "data": base64.b64encode(data).decode("ascii")}
             for sid, data, cls in batch]
    conn = HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        conn.request("POST", "/ingest",
                     json.dumps({"items": items}).encode("utf-8"))
        response = conn.getresponse()
        body = json.loads(response.read())
        return body if response.status == 200 else None
    except (OSError, json.JSONDecodeError):
        return None                     # crashed mid-request: never acked
    finally:
        conn.close()


def wait_for_crash(proc, *, timeout=60):
    try:
        rc = proc.wait(timeout=timeout)
    except subprocess.TimeoutExpired:
        proc.kill()
        raise AssertionError("the armed server never crashed")
    assert rc == CRASH_EXIT_CODE, \
        f"expected the injected crash exit {CRASH_EXIT_CODE}, got {rc}"


def member_ids(manager):
    return list(manager.service.similarity_index.sample_ids)


# The per-site plan: how many ingest batches get acked before the
# crash, and whether the crash rides the ingest path (hit counts on the
# failpoint) or the publish path (triggered by the lifecycle republish
# after the acked batches).
SITE_PLANS = {
    "wal.append": dict(spec="wal.append:crash@2", publish=False),
    "wal.fsync": dict(spec="wal.fsync:crash@2", publish=False),
    "wal.checkpoint": dict(spec="wal.checkpoint:crash", publish=True),
    "artifact.replace": dict(spec="artifact.replace:crash", publish=True),
}


def test_every_registered_crash_site_has_a_sweep_plan():
    assert set(SITE_PLANS) == set(CRASH_SWEEP_SITES)


@pytest.mark.parametrize("site", CRASH_SWEEP_SITES)
def test_crash_sweep_loses_no_acked_ingest(site, pristine_artifact,
                                           tmp_path):
    plan = SITE_PLANS[site]
    model = tmp_path / "model.rpm"
    model.write_bytes(pristine_artifact.read_bytes())
    wal_dir = tmp_path / "wal"

    proc, port = start_server(
        model, wal_dir, plan["spec"],
        publish_interval=0.3 if plan["publish"] else None)
    batches = ingest_batches(3)
    acked = []
    try:
        for batch in batches:
            body = post_ingest(port, batch)
            if body is None:
                break
            assert body["durable"] is True
            acked.extend(sid for sid, _, _ in batch)
        wait_for_crash(proc)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=30)

    if plan["publish"]:
        # The publish-path crashes must not have interfered with
        # ingestion: all three batches were acknowledged first.
        assert len(acked) == sum(len(b) for b in batches)
    else:
        assert len(acked) == 4          # 2 batches past the @2 grace

    # Restart over the same artifact + WAL (the operator's systemd
    # restart) and examine the recovered corpus in-process.
    restarted = ModelManager(model, poll_interval=0, mutable=True,
                             wal_dir=wal_dir, cache_size=0)
    try:
        present = member_ids(restarted)
        for sample_id in acked:
            occurrences = present.count(sample_id)
            assert occurrences == 1, \
                (f"{site}: acked ingest {sample_id!r} appears "
                 f"{occurrences} times after recovery")

        # A replica that never crashed: the pristine artifact plus
        # every batch the recovered corpus contains (an unacked batch
        # that became durable before the crash is legitimate survivor
        # state — the guarantee is acked ⊆ recovered, applied once).
        replica_model = tmp_path / "replica.rpm"
        replica_model.write_bytes(pristine_artifact.read_bytes())
        replica = ModelManager(replica_model, poll_interval=0,
                               mutable=True, cache_size=0)
        try:
            present_set = set(present)
            for batch in batches:
                if all(sid in present_set for sid, _, _ in batch):
                    replica.ingest_items(batch)
            assert sorted(member_ids(replica)) == sorted(present)

            probes = probe_payloads()
            recovered_decisions, _ = restarted.classify_items(probes)
            replica_decisions, _ = replica.classify_items(probes)
            assert [decision_to_dict(d) for d in recovered_decisions] == \
                [decision_to_dict(d) for d in replica_decisions], \
                f"{site}: recovered decisions drifted from the replica"
        finally:
            replica.stop()
    finally:
        restarted.stop()
