"""Tests for the Damerau–Levenshtein distance variants."""

import pytest

from repro.distance.damerau import (
    damerau_levenshtein_distance,
    osa_distance,
    weighted_edit_distance,
)
from repro.distance.levenshtein import levenshtein_distance


def test_transposition_costs_one():
    assert osa_distance("ab", "ba") == 1
    assert damerau_levenshtein_distance("ab", "ba") == 1
    # ...whereas plain Levenshtein needs two edits.
    assert levenshtein_distance("ab", "ba") == 2


def test_classic_ca_abc_difference():
    # The canonical example separating OSA from unrestricted DL:
    # "CA" -> "ABC" is 2 with unrestricted DL but 3 under OSA.
    assert damerau_levenshtein_distance("CA", "ABC") == 2
    assert osa_distance("CA", "ABC") == 3


@pytest.mark.parametrize("a, b, expected", [
    ("", "", 0),
    ("abc", "abc", 0),
    ("abc", "", 3),
    ("", "xyz", 3),
    ("kitten", "sitting", 3),
    ("abcdef", "abcfed", 2),
])
def test_known_values_both_variants(a, b, expected):
    assert osa_distance(a, b) == expected
    assert damerau_levenshtein_distance(a, b) == expected


def test_dl_never_exceeds_osa_and_osa_never_exceeds_levenshtein():
    import random

    rnd = random.Random(11)
    alphabet = "abcde"
    for _ in range(200):
        a = "".join(rnd.choices(alphabet, k=rnd.randint(0, 12)))
        b = "".join(rnd.choices(alphabet, k=rnd.randint(0, 12)))
        dl = damerau_levenshtein_distance(a, b)
        osa = osa_distance(a, b)
        lev = levenshtein_distance(a, b)
        assert dl <= osa <= lev


def test_triangle_inequality_unrestricted():
    import random

    rnd = random.Random(5)
    alphabet = "abcd"
    for _ in range(50):
        a, b, c = ("".join(rnd.choices(alphabet, k=rnd.randint(0, 8))) for _ in range(3))
        assert damerau_levenshtein_distance(a, c) <= (
            damerau_levenshtein_distance(a, b) + damerau_levenshtein_distance(b, c))


def test_weighted_edit_distance_defaults():
    # Under ssdeep's weights (insert/delete 1, substitute 3, transpose 5)
    # a substitution is effectively realised as insert+delete (cost 2),
    # exactly like the reference edit_distn behaves.
    assert weighted_edit_distance("abc", "axc") == 2
    assert weighted_edit_distance("abc", "abcd") == 1
    assert weighted_edit_distance("abcd", "abc") == 1
    # A transposition costs 5, but insert+delete (2) is cheaper, so the
    # effective cost of a swap is 2.
    assert weighted_edit_distance("ab", "ba") == 2


def test_weighted_edit_distance_custom_costs():
    assert weighted_edit_distance("ab", "ba", substitute_cost=1, transpose_cost=1) == 1
    assert weighted_edit_distance("", "aaaa", insert_cost=2) == 8
    assert weighted_edit_distance("aaaa", "", delete_cost=3) == 12


def test_symmetry_of_default_weights():
    assert weighted_edit_distance("openmalaria", "openmalarja") == \
        weighted_edit_distance("openmalarja", "openmalaria")
