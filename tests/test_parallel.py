"""Tests for the parallel execution helpers."""

import os

import pytest

from repro.exceptions import ValidationError
from repro.parallel.partition import chunk_indices, partition_evenly
from repro.parallel.pool import effective_n_jobs, parallel_map
from repro.parallel.timing import Stopwatch, ThroughputReport


def _square(x):
    return x * x


def test_effective_n_jobs_semantics():
    cpus = os.cpu_count() or 1
    assert effective_n_jobs(None) == 1
    assert effective_n_jobs(1) == 1
    assert effective_n_jobs(0) == 1
    assert effective_n_jobs(-1) == cpus
    assert effective_n_jobs(10_000) == cpus
    assert effective_n_jobs(2) == min(2, cpus)


def test_parallel_map_serial_path_preserves_order():
    items = list(range(50))
    assert parallel_map(_square, items, n_jobs=1) == [x * x for x in items]


def test_parallel_map_process_path_preserves_order():
    items = list(range(64))
    result = parallel_map(_square, items, n_jobs=2, min_items_per_worker=1)
    assert result == [x * x for x in items]


def test_parallel_map_small_workload_stays_serial():
    # With a high min_items_per_worker the pool should not be used; the
    # result must still be correct.
    items = [1, 2, 3]
    assert parallel_map(_square, items, n_jobs=8, min_items_per_worker=100) == [1, 4, 9]


def test_parallel_map_empty_input():
    assert parallel_map(_square, [], n_jobs=4) == []


def test_chunk_indices_cover_range():
    chunks = chunk_indices(10, 3)
    assert chunks == [(0, 3), (3, 6), (6, 9), (9, 10)]
    assert chunk_indices(0, 5) == []
    with pytest.raises(ValidationError):
        chunk_indices(10, 0)
    with pytest.raises(ValidationError):
        chunk_indices(-1, 1)


def test_partition_evenly():
    parts = partition_evenly(list(range(10)), 3)
    assert len(parts) == 3
    assert sum(len(p) for p in parts) == 10
    assert max(len(p) for p in parts) - min(len(p) for p in parts) <= 1
    flat = [x for part in parts for x in part]
    assert flat == list(range(10))
    with pytest.raises(ValidationError):
        partition_evenly([1], 0)


def test_partition_more_parts_than_items():
    parts = partition_evenly([1, 2], 5)
    assert sum(len(p) for p in parts) == 2
    assert len(parts) == 5


def test_stopwatch_accumulates_laps():
    watch = Stopwatch()
    watch.start("a")
    watch.start("b")       # implicitly stops "a"
    watch.stop()
    laps = watch.laps
    assert set(laps) == {"a", "b"}
    assert all(v >= 0 for v in laps.values())
    assert watch.total() == pytest.approx(sum(laps.values()))
    assert "total" in watch.report()


def test_throughput_report():
    report = ThroughputReport(stage="hashing", n_items=100, seconds=2.0, n_workers=2)
    assert report.items_per_second == pytest.approx(50.0)
    assert "hashing" in str(report)
    instant = ThroughputReport(stage="x", n_items=5, seconds=0.0)
    assert instant.items_per_second == float("inf")
