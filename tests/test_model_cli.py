"""Tests for the model-artifact CLI surface: ``repro train``,
``repro classify --model``, ``repro model inspect|validate`` and the
top-level ``--version`` flag.

Operator-facing failures (missing/corrupt/truncated artifacts, bad
argument combinations) must exit with status 2 and a one-line message,
never a traceback.
"""

import pytest

from repro.cli import build_parser, main
from repro.features.records import SampleFeatures, features_to_json
from repro.version_info import version_string

from test_index_core import make_corpus


@pytest.fixture(scope="module")
def features_json(tmp_path_factory):
    """A features-JSON training source (no ELF hashing needed)."""

    records = [SampleFeatures(sample_id=sid, class_name=cls, version="1",
                              executable=sid, digests=digests)
               for sid, digests, cls in make_corpus(30, seed=17,
                                                    n_families=3)]
    path = tmp_path_factory.mktemp("train") / "features.json"
    path.write_text(features_to_json(records), encoding="utf-8")
    return str(path)


@pytest.fixture(scope="module")
def target_dir(tmp_path_factory):
    root = tmp_path_factory.mktemp("collected")
    for i in range(4):
        (root / f"job-exe-{i}").write_bytes(bytes(range(256)) * (4 + i))
    return str(root)


@pytest.fixture(scope="module")
def model_file(features_json, tmp_path_factory):
    out = tmp_path_factory.mktemp("model") / "model.rpm"
    assert main(["train", features_json, "--out", str(out),
                 "--estimators", "10", "--seed", "4"]) == 0
    return str(out)


# ------------------------------------------------------------------ train
def test_parser_lists_new_subcommands():
    text = build_parser().format_help()
    for command in ("train", "model", "--version"):
        assert command in text


def test_version_flag(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["--version"])
    assert excinfo.value.code == 0
    assert version_string() in capsys.readouterr().out


def test_train_writes_artifact(model_file, capsys):
    import pathlib

    assert pathlib.Path(model_file).is_file()


def test_model_inspect(model_file, capsys):
    assert main(["model", "inspect", model_file]) == 0
    out = capsys.readouterr().out
    assert "repro.fuzzy-hash-classifier" in out
    assert "10 trees" in out
    assert "ssdeep-file" in out
    assert "embedded" in out


def test_model_validate(model_file, capsys):
    assert main(["model", "validate", model_file]) == 0
    assert "OK" in capsys.readouterr().out


# --------------------------------------------------------------- classify
def test_classify_with_model_matches_train_then_classify(
        features_json, model_file, target_dir, capsys):
    """Acceptance: `classify --model` must produce decisions identical
    to the retrain path on the same inputs."""

    assert main(["classify", "--model", model_file, target_dir]) == 0
    from_model = capsys.readouterr().out
    # Retrain with the exact configuration the artifact was trained with.
    assert main(["classify", features_json, target_dir,
                 "--estimators", "10", "--seed", "4",
                 "--threshold", "0.5"]) == 0
    retrained = capsys.readouterr().out
    assert from_model == retrained
    assert "executables classified" in from_model


def test_classify_model_with_allowed_classes(model_file, target_dir, capsys):
    assert main(["classify", "--model", model_file, target_dir,
                 "--allowed", "fam0"]) == 0
    out = capsys.readouterr().out
    assert "executables classified" in out


def test_train_then_save_model_flag_round_trips(features_json, target_dir,
                                                tmp_path, capsys):
    saved = tmp_path / "via-classify.rpm"
    assert main(["classify", features_json, target_dir,
                 "--save-model", str(saved)]) == 0
    first = capsys.readouterr().out
    assert saved.is_file()
    assert main(["classify", "--model", str(saved), target_dir]) == 0
    second = capsys.readouterr().out
    # The report block (everything after the save notice) is identical.
    assert first.splitlines()[-1] == second.splitlines()[-1]


# ------------------------------------------------------------ error paths
def test_classify_model_rejects_extra_positional(model_file, target_dir,
                                                 capsys):
    code = main(["classify", "--model", model_file, target_dir, "extra"])
    captured = capsys.readouterr()
    assert code == 2
    assert "error:" in captured.err
    assert "Traceback" not in captured.err


def test_classify_without_target_exits_nonzero(features_json, capsys):
    code = main(["classify", features_json])
    captured = capsys.readouterr()
    assert code == 2
    assert "target directory" in captured.err


def test_classify_model_with_save_model_exits_nonzero(model_file, target_dir,
                                                      tmp_path, capsys):
    code = main(["classify", "--model", model_file, target_dir,
                 "--save-model", str(tmp_path / "x.rpm")])
    assert code == 2
    assert "error:" in capsys.readouterr().err


def test_classify_missing_model_exits_nonzero(target_dir, tmp_path, capsys):
    code = main(["classify", "--model", str(tmp_path / "missing.rpm"),
                 target_dir])
    captured = capsys.readouterr()
    assert code == 2
    assert "does not exist" in captured.err
    assert "Traceback" not in captured.err


def test_inspect_corrupt_model_exits_nonzero(tmp_path, capsys):
    corrupt = tmp_path / "corrupt.rpm"
    corrupt.write_bytes(b"\x00\x01garbage" * 32)
    code = main(["model", "inspect", str(corrupt)])
    captured = capsys.readouterr()
    assert code == 2
    assert "error:" in captured.err
    assert "Traceback" not in captured.err


def test_validate_truncated_model_exits_nonzero(model_file, tmp_path, capsys):
    from pathlib import Path

    truncated = tmp_path / "truncated.rpm"
    truncated.write_bytes(Path(model_file).read_bytes()[:-25])
    code = main(["model", "validate", str(truncated)])
    captured = capsys.readouterr()
    assert code == 2
    assert "truncated" in captured.err
    assert "Traceback" not in captured.err


def test_train_from_nonexistent_source_exits_nonzero(tmp_path, capsys):
    code = main(["train", str(tmp_path / "nothing"),
                 "--out", str(tmp_path / "out.rpm")])
    captured = capsys.readouterr()
    assert code == 2
    assert "neither a software tree" in captured.err
