"""Tests for the persistent similarity index: construction, queries,
exact agreement with brute-force scoring, and the pairwise budget."""

import logging
import random

import numpy as np
import pytest

from repro.distance.damerau import weighted_edit_distance
from repro.distance.scoring import ssdeep_score_from_distance
from repro.exceptions import DigestFormatError, ValidationError
from repro.hashing.compare import has_common_substring, normalize_repeats
from repro.hashing.ssdeep import fuzzy_hash
from repro.index import SimilarityIndex, expand_digest


def make_corpus(n, *, seed=0, n_families=12, feature_type="ssdeep-file"):
    """Synthetic digest corpus with family structure (non-trivial top-k)."""

    rnd = random.Random(seed)
    bases = [bytes(rnd.randrange(256) for _ in range(2500))
             for _ in range(n_families)]
    members = []
    for i in range(n):
        blob = bytearray(bases[i % n_families])
        for _ in range(rnd.randrange(1, 50)):
            blob[rnd.randrange(len(blob))] = rnd.randrange(256)
        members.append((f"s{i:04d}", {feature_type: fuzzy_hash(bytes(blob))},
                        f"fam{i % n_families}"))
    return members


def brute_force_score(query_digest, member_digest):
    """Reference scorer implementing the index's documented semantics:
    equal-block-size expansion, run normalisation, the 7-gram
    precondition, weighted edit distance, identical -> 100."""

    best = 0
    for bs_q, sig_q in expand_digest(query_digest):
        for bs_m, sig_m in expand_digest(member_digest):
            if bs_q != bs_m:
                continue
            if not has_common_substring(sig_q, sig_m):
                continue
            if sig_q == sig_m:
                score = 100
            else:
                score = int(ssdeep_score_from_distance(
                    weighted_edit_distance(sig_q, sig_m),
                    len(sig_q), len(sig_m), bs_q))
            best = max(best, score)
    return best


@pytest.fixture(scope="module")
def corpus300():
    return make_corpus(300, seed=42)


@pytest.fixture(scope="module")
def index300(corpus300):
    index = SimilarityIndex(["ssdeep-file"])
    index.add_many(corpus300)
    return index


# ------------------------------------------------------------- construction
def test_add_returns_consecutive_member_indices():
    index = SimilarityIndex(["ssdeep-file"])
    d = fuzzy_hash(b"hello world" * 50)
    assert index.add("a", {"ssdeep-file": d}) == 0
    assert index.add("b", {"ssdeep-file": d}, class_name="X") == 1
    assert index.n_members == 2
    assert len(index) == 2
    assert index.sample_ids == ("a", "b")
    assert index.class_names == ("", "X")
    assert index.members_for_id("a") == frozenset({0})
    assert index.members_for_id("missing") == frozenset()


def test_incremental_add_equals_add_many(corpus300):
    subset = corpus300[:60]
    bulk = SimilarityIndex(["ssdeep-file"])
    bulk.add_many(subset)
    incremental = SimilarityIndex(["ssdeep-file"])
    for sample_id, digests, class_name in subset:
        incremental.add(sample_id, digests, class_name=class_name)
    query = subset[7][1]["ssdeep-file"]
    assert bulk.top_k(query, 20) == incremental.top_k(query, 20)
    assert bulk.stats() == incremental.stats()


def test_add_rejects_bad_inputs():
    index = SimilarityIndex(["ssdeep-file"])
    with pytest.raises(ValidationError):
        index.add("", {})
    with pytest.raises(ValidationError):
        index.add("x", "3:abc:def")  # digests must be a mapping
    with pytest.raises(DigestFormatError):
        index.add("x", {"ssdeep-file": "not a digest"})
    # A failed add must not leave a half-registered member behind.
    assert index.n_members == 0
    assert index.members_for_id("x") == frozenset()


def test_constructor_validation():
    with pytest.raises(ValidationError):
        SimilarityIndex([])
    with pytest.raises(ValidationError):
        SimilarityIndex(["a", "a"])
    with pytest.raises(ValidationError):
        SimilarityIndex(["a"], ngram_length=0)


def test_unknown_feature_type_rejected(index300):
    with pytest.raises(ValidationError):
        index300.top_k("3:abc:def", feature_type="nope")
    with pytest.raises(ValidationError):
        index300.score_matrix("nope", ["3:abc:def"])
    with pytest.raises(ValidationError):
        index300.pairwise_matrix("nope")


# ------------------------------------------------------------------ queries
def test_top_k_exact_agreement_with_brute_force(corpus300, index300):
    """Acceptance criterion: top_k must agree exactly with brute-force
    scoring on a randomized 300-digest corpus."""

    rnd = random.Random(7)
    queries = [rnd.choice(corpus300)[1]["ssdeep-file"] for _ in range(12)]
    queries += [fuzzy_hash(rnd.randbytes(4000)) for _ in range(3)]
    for query in queries:
        expected = {}
        for member, (_, digests, _) in enumerate(corpus300):
            score = brute_force_score(query, digests["ssdeep-file"])
            if score >= 1:
                expected[member] = score
        got = index300.top_k(query, k=len(corpus300), min_score=1)
        assert {m.member_index: m.score for m in got} == expected
        # Ordering: descending score, ties by ascending member index.
        keys = [(-m.score, m.member_index) for m in got]
        assert keys == sorted(keys)


def test_top_k_respects_k_min_score_and_exclusions(corpus300, index300):
    query_id, query_digests, _ = corpus300[5]
    query = query_digests["ssdeep-file"]
    top = index300.top_k(query, 5)
    assert len(top) <= 5
    assert top[0].sample_id == query_id and top[0].score == 100
    filtered = index300.top_k(query, 300, min_score=80)
    assert all(m.score >= 80 for m in filtered)
    excluded = index300.top_k(query, 5, exclude_ids=[query_id])
    assert all(m.sample_id != query_id for m in excluded)
    with pytest.raises(ValidationError):
        index300.top_k(query, 0)
    with pytest.raises(ValidationError):
        index300.top_k(query, 5, min_score=101)


def test_top_k_on_empty_index():
    assert SimilarityIndex(["ssdeep-file"]).top_k("3:abcdefgh:ijkl") == []


def test_score_matrix_exclude_broadcasts(index300, corpus300):
    digests = [corpus300[i][1]["ssdeep-file"] for i in (0, 1)]
    full = index300.score_matrix("ssdeep-file", digests)
    masked = index300.score_matrix("ssdeep-file", digests, exclude=[{0, 1}])
    assert masked[:, [0, 1]].max() == 0
    keep = np.ones(index300.n_members, dtype=bool)
    keep[[0, 1]] = False
    assert np.array_equal(masked[:, keep], full[:, keep])
    with pytest.raises(ValidationError):
        index300.score_matrix("ssdeep-file", digests, exclude=[{0}, {1}, {2}])


def test_short_identical_signatures_never_match():
    """The documented 7-gram precondition: signatures shorter than the
    n-gram length never match, even when identical."""

    index = SimilarityIndex(["ssdeep-file"])
    index.add("short", {"ssdeep-file": "3:abc:de"})
    assert index.top_k("3:abc:de") == []


# ----------------------------------------------------------------- pairwise
def test_pairwise_matrix_scores_match_brute_force(corpus300):
    subset = corpus300[:80]
    index = SimilarityIndex(["ssdeep-file"])
    index.add_many(subset)
    pairs = index.pairwise_matrix(min_score=1)
    assert pairs, "family corpus must produce similar pairs"
    by_pair = {(p.i, p.j): p.score for p in pairs}
    # Candidate generation must not miss any above-zero pair...
    for i in range(len(subset)):
        for j in range(i + 1, len(subset)):
            expected = brute_force_score(subset[i][1]["ssdeep-file"],
                                         subset[j][1]["ssdeep-file"])
            assert by_pair.get((i, j), 0) == expected
    # ...and the result is (i, j)-sorted with i < j.
    assert list(by_pair) == sorted(by_pair)
    assert all(i < j for i, j in by_pair)


def test_pairwise_budget_logs_dropped_pairs(corpus300, caplog):
    index = SimilarityIndex(["ssdeep-file"])
    index.add_many(corpus300[:60])
    unbudgeted = index.pairwise_matrix(min_score=0)
    budget = max(1, len(unbudgeted) // 3)
    with caplog.at_level(logging.WARNING, logger="repro.index.core"):
        budgeted = index.pairwise_matrix(max_pairs=budget, min_score=0)
    assert len(budgeted) <= budget
    assert any("dropping" in record.message and "max_pairs" in record.message
               for record in caplog.records), \
        "truncation must be logged, never silent"
    with pytest.raises(ValidationError):
        index.pairwise_matrix(max_pairs=0)


# -------------------------------------------------------------------- stats
def test_stats_counters(index300, corpus300):
    stats = index300.stats()
    assert stats["members"] == 300
    assert stats["classes"] == 12
    assert stats["labelled_members"] == 300
    assert stats["ngram_length"] == 7
    info = stats["feature_types"]["ssdeep-file"]
    assert info["entries"] > 0
    assert info["postings"] > 0
    assert info["block_sizes"] == sorted(info["block_sizes"])


def test_expand_digest_normalises_and_doubles():
    pairs = expand_digest("6:aaaaaabcdefg:hhhhhijk")
    assert pairs == [(6, "aaabcdefg"), (12, "hhhijk")]
    assert expand_digest("") == []
    assert expand_digest("3::") == []
