"""Tests for the FNV piecewise chunk hash."""

import random

import pytest

from repro.hashing.fnv import FNV_INIT, FNV_PRIME, fnv_hash, fnv_update, piecewise_low6


def test_constants_match_spamsum():
    assert FNV_INIT == 0x28021967
    assert FNV_PRIME == 0x01000193


def test_fnv_update_is_32_bit():
    value = fnv_update(0xFFFFFFFF, 0xFF)
    assert 0 <= value <= 0xFFFFFFFF


def test_fnv_hash_known_sequence():
    # Manually folded reference for a short input.
    h = FNV_INIT
    for byte in b"abc":
        h = ((h * FNV_PRIME) & 0xFFFFFFFF) ^ byte
    assert fnv_hash(b"abc") == h


def test_piecewise_low6_matches_full_fnv_mod64():
    data = random.Random(0).randbytes(512)
    boundaries = [63, 130, 200, 400]
    chunk_states, tail_state = piecewise_low6(data, boundaries)
    # Reference: full 32-bit FNV per chunk, reduced mod 64.
    start = 0
    expected = []
    for boundary in boundaries:
        expected.append(fnv_hash(data[start:boundary + 1]) % 64)
        start = boundary + 1
    expected_tail = fnv_hash(data[start:]) % 64
    assert chunk_states == expected
    assert tail_state == expected_tail


def test_piecewise_low6_without_boundaries():
    data = b"hello world, this is one chunk"
    chunk_states, tail_state = piecewise_low6(data, [])
    assert chunk_states == []
    assert tail_state == fnv_hash(data) % 64


def test_piecewise_low6_boundary_at_last_byte():
    data = b"0123456789"
    chunk_states, tail_state = piecewise_low6(data, [len(data) - 1])
    assert chunk_states == [fnv_hash(data) % 64]
    # Nothing after the last boundary: tail is the initial state.
    assert tail_state == FNV_INIT & 0x3F


def test_piecewise_states_are_six_bit():
    data = random.Random(2).randbytes(1000)
    states, tail = piecewise_low6(data, [100, 400, 800])
    assert all(0 <= s < 64 for s in states)
    assert 0 <= tail < 64
