"""Tests for splits, cross-validation and grid search."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.ml.model_selection import (
    GridSearchCV,
    KFold,
    ParameterGrid,
    StratifiedKFold,
    cross_val_score,
    train_test_split,
)
from repro.ml.tree import DecisionTreeClassifier


@pytest.fixture()
def data():
    rng = np.random.default_rng(0)
    X = rng.normal(size=(120, 4))
    y = np.array(([0] * 60) + ([1] * 40) + ([2] * 20))
    X[y == 1] += 2.5
    X[y == 2] -= 2.5
    return X, y


def test_train_test_split_sizes(data):
    X, y = data
    X_train, X_test, y_train, y_test = train_test_split(X, y, test_size=0.25,
                                                        random_state=0)
    assert len(X_train) + len(X_test) == len(X)
    assert len(X_test) == 30
    assert len(y_train) == len(X_train)


def test_train_test_split_stratified_preserves_ratios(data):
    X, y = data
    _, _, y_train, y_test = train_test_split(X, y, test_size=0.4, stratify=y,
                                             random_state=1)
    for label in (0, 1, 2):
        total = (y == label).sum()
        in_test = (y_test == label).sum()
        assert in_test == pytest.approx(total * 0.4, abs=1)


def test_train_test_split_no_overlap(data):
    X, y = data
    indices = np.arange(len(y))
    train_idx, test_idx = train_test_split(indices, test_size=0.3, random_state=2)
    assert set(train_idx) & set(test_idx) == set()
    assert set(train_idx) | set(test_idx) == set(indices)


def test_train_test_split_validation(data):
    X, y = data
    with pytest.raises(ValidationError):
        train_test_split(X, y, test_size=1.5)
    with pytest.raises(ValidationError):
        train_test_split(X, y[:10])
    with pytest.raises(ValidationError):
        train_test_split()


def test_train_size_parameter(data):
    X, y = data
    X_train, X_test, *_ = train_test_split(X, y, train_size=0.6, random_state=0)
    assert len(X_train) == pytest.approx(0.6 * len(X), abs=1)


def test_stratified_kfold_covers_all_samples(data):
    X, y = data
    splitter = StratifiedKFold(n_splits=4, shuffle=True, random_state=0)
    seen = []
    for train_idx, test_idx in splitter.split(X, y):
        assert set(train_idx) & set(test_idx) == set()
        # every fold contains every class
        assert set(y[test_idx]) == {0, 1, 2}
        seen.extend(test_idx.tolist())
    assert sorted(seen) == list(range(len(y)))


def test_kfold_basic(data):
    X, y = data
    folds = list(KFold(n_splits=5).split(X))
    assert len(folds) == 5
    sizes = [len(test) for _, test in folds]
    assert sum(sizes) == len(X)


def test_kfold_validation():
    with pytest.raises(ValidationError):
        KFold(n_splits=1)
    with pytest.raises(ValidationError):
        list(KFold(n_splits=10).split(np.zeros((3, 1))))


def test_parameter_grid_product():
    grid = ParameterGrid({"a": [1, 2], "b": ["x", "y", "z"]})
    combos = list(grid)
    assert len(combos) == 6
    assert len(grid) == 6
    assert {"a": 1, "b": "x"} in combos


def test_parameter_grid_list_of_dicts():
    grid = ParameterGrid([{"a": [1]}, {"b": [2, 3]}])
    assert len(grid) == 3


def test_parameter_grid_rejects_empty_values():
    with pytest.raises(ValidationError):
        ParameterGrid({"a": []})


def test_grid_search_finds_reasonable_params(data):
    X, y = data
    search = GridSearchCV(DecisionTreeClassifier(random_state=0),
                          {"max_depth": [1, None]}, cv=3, scoring="accuracy")
    search.fit(X, y)
    assert search.best_params_["max_depth"] is None or search.best_score_ > 0.8
    assert hasattr(search, "best_estimator_")
    assert len(search.cv_results_["params"]) == 2
    predictions = search.predict(X)
    assert predictions.shape == (len(X),)


def test_grid_search_scorer_names(data):
    X, y = data
    for scoring in ("accuracy", "f1_macro", "f1_micro", "f1_weighted", None):
        search = GridSearchCV(DecisionTreeClassifier(random_state=0),
                              {"max_depth": [2]}, cv=2, scoring=scoring)
        search.fit(X, y)
        assert 0.0 <= search.best_score_ <= 1.0
    with pytest.raises(ValidationError):
        GridSearchCV(DecisionTreeClassifier(), {"max_depth": [2]},
                     scoring="nonsense").fit(X, y)


def test_cross_val_score_returns_per_fold_scores(data):
    X, y = data
    scores = cross_val_score(DecisionTreeClassifier(random_state=0), X, y, cv=4)
    assert scores.shape == (4,)
    assert np.all((scores >= 0) & (scores <= 1))
