"""Tier-1 smoke for the sharded-index benchmark.

Runs ``benchmarks/bench_sharded_index.py`` at a small scale so a
regression that breaks the sharded/unsharded result identity fails the
default test run.  The speedup floor needs real cores (the fan-out runs
worker processes), so it is only asserted on machines with at least
four CPUs — and conservatively there, since shared CI machines are
noisy; the full ≥2x acceptance floor is the benchmark's own default
(``pytest -m slow`` opts in).
"""

import importlib.util
import os
import sys
from pathlib import Path

import pytest

_BENCH_PATH = Path(__file__).resolve().parents[1] / "benchmarks" / \
    "bench_sharded_index.py"

_MULTICORE = (os.cpu_count() or 1) >= 4


@pytest.fixture(scope="module")
def bench():
    spec = importlib.util.spec_from_file_location("bench_sharded_index",
                                                  _BENCH_PATH)
    module = importlib.util.module_from_spec(spec)
    sys.modules.setdefault("bench_sharded_index", module)
    spec.loader.exec_module(module)
    return module


def test_quick_benchmark_results_are_bit_identical(bench):
    result = bench.run(300, 6, n_shards=3, max_pairs=10_000)
    assert result.results_match, \
        "sharded results diverged from the single-index reference"
    if _MULTICORE:
        # The full benchmark demonstrates >=2x; the smoke floor is kept
        # conservative so a loaded CI machine cannot flake it.
        assert result.min_speedup >= 1.1, \
            f"multi-worker fan-out only {result.min_speedup:.1f}x faster"


def test_benchmark_cli_quick_mode(bench, capsys, tmp_path, monkeypatch):
    monkeypatch.setattr(bench, "OUTPUT_DIR", tmp_path)
    code = bench.main(["--quick", "--corpus", "200", "--queries", "4",
                       "--max-pairs", "5000", "--min-speedup", "0"])
    out = capsys.readouterr().out
    assert code == 0
    assert "bit-identical" in out
    assert (tmp_path / "bench_sharded_index.txt").is_file()


@pytest.mark.slow
def test_full_benchmark_meets_acceptance_floor(bench):
    """The acceptance-criterion configuration: 4 shards, >=2x, identical."""

    if not _MULTICORE:
        pytest.skip("needs >= 4 CPUs to demonstrate multi-worker speedup")
    result = bench.run(4000, 40, n_shards=4, max_pairs=150_000)
    assert result.results_match
    assert result.min_speedup >= 2.0
