"""Tests for the batched classification service (``repro.api.service``)
and the decision logic shared with ``ClassificationWorkflow``.

The decision-path tests use a stub classifier whose predictions are
scripted, so each of the three decisions (within-allocation /
unexpected-application / unknown-application) is exercised exactly,
independent of real model quality.
"""

import numpy as np
import pytest

from repro.api.service import (
    DECISION_EXPECTED,
    DECISION_UNEXPECTED,
    DECISION_UNKNOWN,
    ClassificationService,
    Decision,
)
from repro.core.classifier import FuzzyHashClassifier
from repro.core.workflow import ClassificationWorkflow, JobClassification
from repro.exceptions import (
    EvaluationError,
    NotFittedError,
    ReproError,
    ValidationError,
)
from repro.features.records import SampleFeatures

from test_api_artifact import make_records


class ScriptedClassifier:
    """Duck-typed fitted classifier with scripted predictions."""

    feature_types = ("ssdeep-file",)
    unknown_label = -1
    model_ = object()          # satisfies the is-fitted check

    def __init__(self, script):
        # sample_id -> (label, confidence)
        self.script = script

    def predict_with_confidence(self, features, confidence_threshold=None):
        labels = np.array([self.script[f.sample_id][0] for f in features],
                          dtype=object)
        conf = np.array([self.script[f.sample_id][1] for f in features])
        return labels, conf


def record(sample_id):
    return SampleFeatures(sample_id=sample_id, class_name="", version="",
                          executable=sample_id, digests={"ssdeep-file": ""})


@pytest.fixture()
def scripted_service():
    script = {
        "job-a": ("GROMACS", 0.93),
        "job-b": ("LAMMPS", 0.80),
        "job-c": (-1, 0.31),
    }
    return ClassificationService(ScriptedClassifier(script),
                                 allowed_classes=["GROMACS"]), script


# --------------------------------------------------------- decision paths
def test_decision_paths_cover_all_three_outcomes(scripted_service):
    service, _ = scripted_service
    decisions = service.classify_features(
        [record("job-a"), record("job-b"), record("job-c")])
    assert [d.decision for d in decisions] == \
        [DECISION_EXPECTED, DECISION_UNEXPECTED, DECISION_UNKNOWN]
    assert [d.is_suspicious() for d in decisions] == [False, True, True]
    assert decisions[0].predicted_class == "GROMACS"
    assert decisions[2].predicted_class == -1
    assert decisions[2].confidence == pytest.approx(0.31)


def test_no_allowed_classes_means_every_known_class_is_expected():
    script = {"job-a": ("GROMACS", 0.9), "job-b": (-1, 0.2)}
    service = ClassificationService(ScriptedClassifier(script))
    decisions = service.classify_features([record("job-a"), record("job-b")])
    assert [d.decision for d in decisions] == \
        [DECISION_EXPECTED, DECISION_UNKNOWN]


def test_workflow_decision_paths_match_service(scripted_service):
    service, script = scripted_service
    workflow = ClassificationWorkflow(ScriptedClassifier(script),
                                      allowed_classes=["GROMACS"])
    results = workflow.classify_features(
        [record("job-a"), record("job-b"), record("job-c")])
    assert all(isinstance(r, JobClassification) for r in results)
    assert [r.decision for r in results] == \
        [DECISION_EXPECTED, DECISION_UNEXPECTED, DECISION_UNKNOWN]
    # The workflow's report renders every decision row.
    report = workflow.report(results)
    for token in (DECISION_EXPECTED, DECISION_UNEXPECTED, DECISION_UNKNOWN,
                  "job-a", "job-b", "job-c"):
        assert token in report


def test_workflow_requires_fitted_classifier_with_evaluation_error():
    with pytest.raises(EvaluationError):
        ClassificationWorkflow(FuzzyHashClassifier())


def test_service_requires_fitted_classifier():
    with pytest.raises(NotFittedError):
        ClassificationService(FuzzyHashClassifier())


# ----------------------------------------------------------- real model
@pytest.fixture(scope="module")
def trained_service():
    records = make_records(30, seed=21, n_families=3)
    service = ClassificationService.train(
        records, feature_types=["ssdeep-file"], n_estimators=10,
        random_state=1)
    return service, records


def test_train_save_load_round_trip(trained_service, tmp_path):
    service, records = trained_service
    path = service.save(tmp_path / "svc.rpm")
    loaded = ClassificationService.load(path)
    assert [d.predicted_class for d in loaded.classify_features(records)] == \
        [d.predicted_class for d in service.classify_features(records)]
    assert sorted(loaded.classes_) == sorted(service.classes_)


def test_classify_stream_preserves_input_order_and_batches(trained_service):
    service, records = trained_service
    batched = list(service.classify_stream(iter(records), batch_size=7))
    whole = service.classify_features(records)
    assert batched == whole
    assert [d.sample_id for d in batched] == [r.sample_id for r in records]


def test_classify_stream_mixes_item_kinds(trained_service, tmp_path):
    service, records = trained_service
    blob = tmp_path / "exe.bin"
    blob.write_bytes(b"\x7fELF-not-really" + bytes(range(256)) * 8)
    items = [records[0], ("in-memory", blob.read_bytes()), str(blob)]
    decisions = list(service.classify_stream(items, batch_size=2))
    assert [d.sample_id for d in decisions] == \
        [records[0].sample_id, "in-memory", str(blob)]
    # Same bytes, same features -> same prediction for items 2 and 3.
    assert decisions[1].predicted_class == decisions[2].predicted_class


def test_classify_stream_rejects_unknown_items(trained_service):
    service, _ = trained_service
    with pytest.raises(ValidationError, match="classify_stream items"):
        list(service.classify_stream([42]))
    with pytest.raises(ValidationError):
        list(service.classify_stream([], batch_size=0))


def test_classify_bytes_accepts_mapping_and_pairs(trained_service):
    service, _ = trained_service
    payload = bytes(range(256)) * 4
    from_mapping = service.classify_bytes({"sample-x": payload})
    from_pairs = service.classify_bytes([("sample-x", payload)])
    assert from_mapping == from_pairs
    assert from_mapping[0].sample_id == "sample-x"
    assert service.classify_bytes([]) == []


def test_classify_paths_and_directory(trained_service, tmp_path):
    service, _ = trained_service
    for i in range(3):
        (tmp_path / f"exe-{i}").write_bytes(bytes(range(256)) * (i + 2))
    by_dir = service.classify_directory(tmp_path)
    by_paths = service.classify_paths(sorted(str(p)
                                             for p in tmp_path.iterdir()))
    assert by_dir == by_paths
    assert service.classify_paths([]) == []
    with pytest.raises(EvaluationError):
        service.classify_directory(tmp_path / "not-a-dir")


def test_decision_is_plain_typed_record(trained_service):
    service, records = trained_service
    [decision] = service.classify_features(records[:1])
    assert isinstance(decision, Decision)
    assert isinstance(decision.confidence, float)
    assert decision.decision in (DECISION_EXPECTED, DECISION_UNEXPECTED,
                                 DECISION_UNKNOWN)


def test_workflow_save_model_round_trips(tmp_path):
    records = make_records(24, seed=8, n_families=3)
    clf = FuzzyHashClassifier(feature_types=["ssdeep-file"], n_estimators=8,
                              random_state=3).fit(records)
    workflow = ClassificationWorkflow(clf)
    path = workflow.save_model(tmp_path / "wf.rpm")
    loaded = ClassificationService.load(path)
    assert [d.predicted_class for d in loaded.classify_features(records)] == \
        [r.predicted_class for r in workflow.classify_features(records)]


def test_train_rejects_unlabelled_records():
    with pytest.raises(ReproError):
        ClassificationService.train([record("x")],
                                    feature_types=["ssdeep-file"])
