"""Tests for the serving-path LRU digest→score cache and the service's
execution-backend plumbing."""

import threading

import numpy as np
import pytest

from repro.api.service import ClassificationService
from repro.features.records import SampleFeatures


class CountingClassifier:
    """Duck-typed fitted classifier that counts prediction batches."""

    feature_types = ("ssdeep-file",)
    unknown_label = -1

    class _Model:
        confidence_threshold = 0.5

    model_ = _Model()

    def __init__(self, confidence=0.9):
        self.calls = 0
        self.records_seen = 0
        self.confidence = confidence

    def predict_with_confidence(self, features, confidence_threshold=None):
        self.calls += 1
        self.records_seen += len(features)
        # With the cache active the service always disables the
        # threshold here and re-applies it itself.
        assert confidence_threshold == 0.0
        labels = np.array([f.sample_id.split("/")[0] for f in features],
                          dtype=object)
        conf = np.full(len(features), self.confidence)
        return labels, conf


def record(sample_id, digest="3:abcdefghijk:xyzuvw"):
    return SampleFeatures(sample_id=sample_id, class_name="", version="",
                          executable=sample_id,
                          digests={"ssdeep-file": digest})


def test_cache_hits_skip_the_classifier():
    classifier = CountingClassifier()
    service = ClassificationService(classifier, cache_size=16)
    first = service.classify_features([record("app/a", "3:aaa:bbb"),
                                       record("app/b", "3:ccc:ddd")])
    assert classifier.records_seen == 2
    again = service.classify_features([record("app/a", "3:aaa:bbb"),
                                       record("app/b", "3:ccc:ddd")])
    assert classifier.records_seen == 2          # all served from cache
    assert service.cache_hits == 2 and service.cache_misses == 2
    assert [d.predicted_class for d in again] == \
        [d.predicted_class for d in first]
    assert [d.confidence for d in again] == [d.confidence for d in first]


def test_cache_key_is_the_digest_tuple_not_the_sample_id():
    classifier = CountingClassifier()
    service = ClassificationService(classifier, cache_size=16)
    service.classify_features([record("app/a", "3:same:digest")])
    # Same digest under a different id: a hit; the decision carries the
    # new sample id.
    decisions = service.classify_features([record("app/b", "3:same:digest")])
    assert classifier.records_seen == 1
    assert decisions[0].sample_id == "app/b"


def test_cache_respects_capacity_lru():
    classifier = CountingClassifier()
    service = ClassificationService(classifier, cache_size=2)
    service.classify_features([record("a", "3:digest-a:a")])
    service.classify_features([record("b", "3:digest-b:b")])
    service.classify_features([record("a", "3:digest-a:a")])  # refresh a
    service.classify_features([record("c", "3:digest-c:c")])  # evicts b
    assert classifier.records_seen == 3
    service.classify_features([record("b", "3:digest-b:b")])  # miss again
    assert classifier.records_seen == 4                       # (evicts a)
    service.classify_features([record("c", "3:digest-c:c")])  # still cached
    assert classifier.records_seen == 4


def test_cache_disabled_with_zero_size():
    classifier = CountingClassifier()
    service = ClassificationService(classifier, cache_size=0)

    # cache_size=0 keeps the duck-typed threshold contract too.
    def no_cache_predict(features, confidence_threshold=None):
        classifier.records_seen += len(features)
        labels = np.array(["app"] * len(features), dtype=object)
        return labels, np.full(len(features), 0.9)

    classifier.predict_with_confidence = no_cache_predict
    service.classify_features([record("x", "3:d:d")])
    service.classify_features([record("x", "3:d:d")])
    assert classifier.records_seen == 2
    assert service.cache_hits == 0


def test_threshold_change_after_caching_takes_effect():
    classifier = CountingClassifier(confidence=0.6)
    service = ClassificationService(classifier, cache_size=16)
    first = service.classify_features([record("app/a")])
    assert first[0].predicted_class == "app"     # 0.6 >= 0.5
    classifier.model_.confidence_threshold = 0.75
    second = service.classify_features([record("app/a")])
    assert classifier.records_seen == 1          # served from cache...
    assert second[0].predicted_class == -1       # ...but re-thresholded
    classifier.model_.confidence_threshold = 0.5


def test_cache_size_must_be_non_negative():
    from repro.exceptions import ValidationError

    with pytest.raises(ValidationError):
        ClassificationService(CountingClassifier(), cache_size=-1)


def test_service_executor_is_forwarded_to_the_pipeline():
    service = ClassificationService(CountingClassifier(),
                                    executor="thread:2")
    assert service._pipeline.executor == "thread:2"


def test_cache_info_reports_consistent_counters():
    service = ClassificationService(CountingClassifier(), cache_size=8)
    service.classify_features([record("app/a", "3:aaa:bbb")])
    service.classify_features([record("app/a", "3:aaa:bbb")])
    assert service.cache_info() == {"hits": 1, "misses": 1, "size": 1,
                                    "capacity": 8}


def test_cache_is_thread_safe_under_concurrent_classification():
    """The concurrent-server workload: many threads, overlapping keys.

    The bare OrderedDict used to be mutated without a lock, which can
    corrupt the dict or lose counter updates under free threading.  With
    the lock, every lookup is either an exact hit or an exact miss
    (hits + misses == total lookups), the LRU never exceeds capacity,
    and no thread observes an exception.
    """

    class LockedCountingClassifier(CountingClassifier):
        # The stub's own counters need a lock too, so the final
        # records_seen == misses assertion cannot race on the stub side.
        _count_lock = threading.Lock()

        def predict_with_confidence(self, features,
                                    confidence_threshold=None):
            with self._count_lock:
                self.calls += 1
                self.records_seen += len(features)
            assert confidence_threshold == 0.0
            labels = np.array([f.sample_id.split("/")[0] for f in features],
                              dtype=object)
            return labels, np.full(len(features), self.confidence)

    classifier = LockedCountingClassifier()
    service = ClassificationService(classifier, cache_size=16)
    n_threads, n_rounds, n_keys = 8, 60, 24        # keys > capacity: evicts
    errors: list = []
    barrier = threading.Barrier(n_threads)

    def hammer(worker):
        try:
            barrier.wait(timeout=30)
            for round_number in range(n_rounds):
                key = (worker * 7 + round_number) % n_keys
                service.classify_features(
                    [record(f"app/k{key}", f"3:digest-{key}:x")])
        except Exception as exc:  # noqa: BLE001 — surface in main thread
            errors.append(exc)

    threads = [threading.Thread(target=hammer, args=(w,))
               for w in range(n_threads)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors
    info = service.cache_info()
    assert info["hits"] + info["misses"] == n_threads * n_rounds
    assert info["size"] <= 16
    # Every record the classifier was actually asked about was a
    # counted miss (duplicate concurrent misses included).
    assert classifier.records_seen == info["misses"]
