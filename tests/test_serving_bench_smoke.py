"""Tier-1 perf smoke for the serving tier.

Runs ``benchmarks/bench_serving.py`` at reduced cost so a regression
that breaks served-decision identity — or erodes the request-coalescing
advantage — fails the default test run, not just a manually-invoked
benchmark.  The acceptance-floor configuration (16 clients, >=2x) is
marked ``slow`` (``pytest -m slow`` opts in).
"""

import importlib.util
import sys
from pathlib import Path

import pytest

_BENCH_PATH = Path(__file__).resolve().parents[1] / "benchmarks" / \
    "bench_serving.py"


@pytest.fixture(scope="module")
def bench():
    spec = importlib.util.spec_from_file_location("bench_serving",
                                                  _BENCH_PATH)
    module = importlib.util.module_from_spec(spec)
    sys.modules.setdefault("bench_serving", module)
    spec.loader.exec_module(module)
    return module


def test_quick_benchmark_identity_and_coalescing_speedup(bench):
    result = bench.run(n_estimators=40, n_requests=32, n_clients=8)
    assert result.decisions_match, \
        "served decisions diverged from direct classify_bytes"
    # Both serving runs (sequential + coalesced) plus the warmup hit
    # the latency histogram, and its quantiles must be ordered.
    assert result.latency_count >= 64
    assert result.latency_p50 <= result.latency_p95 <= result.latency_p99
    # The full benchmark enforces the >=2x acceptance floor at 16
    # clients; the smoke run uses 8 clients and a conservative bar so a
    # loaded single-core CI machine cannot flake it.
    assert result.speedup >= 1.3, \
        f"coalesced serving only {result.speedup:.2f}x the sequential baseline"


def test_benchmark_cli_mode(bench, capsys, tmp_path, monkeypatch):
    monkeypatch.setattr(bench, "OUTPUT_DIR", tmp_path)
    code = bench.main(["--quick", "--estimators", "40", "--requests", "24",
                       "--clients", "8", "--min-speedup", "1.1"])
    out = capsys.readouterr().out
    assert code == 0
    assert "coalesced throughput speedup" in out
    assert (tmp_path / "bench_serving.txt").is_file()
    assert (tmp_path / "BENCH_serving.json").is_file()


def test_quick_benchmark_worker_mode_identity(bench):
    """score_workers decisions are bit-identical, whatever the cores."""

    result = bench.run(n_estimators=40, n_requests=24, n_clients=4,
                       score_workers=2)
    assert result.decisions_match
    assert result.worker_decisions_match, \
        "multi-worker decisions diverged from direct classify_bytes"
    assert result.worker_batches >= 1, \
        "the scoring worker pool drained no micro-batches"


@pytest.mark.slow
def test_full_benchmark_meets_acceptance_floor(bench):
    """The acceptance-criterion configuration: 16 clients, >=2x."""

    result = bench.run(n_estimators=60, n_requests=96, n_clients=16)
    assert result.decisions_match
    assert result.speedup >= 2.0


@pytest.mark.slow
@pytest.mark.skipif((__import__("os").cpu_count() or 1) < 4,
                    reason="the >=2x multi-worker floor needs >=4 cores "
                           "(scoring is CPU-bound)")
def test_full_worker_benchmark_meets_acceptance_floor(bench):
    """The multi-process acceptance configuration: 4 workers, 16
    clients, >=2x the single-process coalesced throughput."""

    result = bench.run(n_estimators=60, n_requests=96, n_clients=16,
                       score_workers=4)
    assert result.worker_decisions_match
    assert result.worker_speedup >= 2.0
