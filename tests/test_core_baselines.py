"""Tests for the baseline classifiers and the comparison harness."""

import numpy as np
import pytest

from repro.core.baselines import (
    CryptoHashBaseline,
    ExecutableNameBaseline,
    run_baseline_comparison,
)
from repro.core.splits import two_phase_split
from repro.exceptions import NotFittedError
from repro.features.similarity import SimilarityFeatureBuilder


@pytest.fixture(scope="module")
def split_data(tiny_features, tiny_labels):
    split = two_phase_split(tiny_labels, mode="paper", random_state=5)
    train = [tiny_features[i] for i in split.train_indices]
    test = [tiny_features[i] for i in split.test_indices]
    return split, train, test


def test_crypto_baseline_only_matches_identical_binaries(split_data):
    split, train, test = split_data
    baseline = CryptoHashBaseline().fit(train, split.train_labels)
    predictions = baseline.predict(test)
    expected = np.asarray(split.expected_test_labels, dtype=object)
    # Different versions have different bytes, so essentially everything
    # outside the training set is labelled unknown...
    assert (predictions == -1).mean() > 0.9
    # ...and anything it does label is labelled correctly.
    labelled = predictions != -1
    if labelled.any():
        assert (predictions[labelled] == expected[labelled]).all()


def test_crypto_baseline_recognises_exact_duplicates(split_data):
    split, train, _ = split_data
    baseline = CryptoHashBaseline().fit(train, split.train_labels)
    again = baseline.predict(train)
    assert (again == np.asarray(split.train_labels, dtype=object)).all()


def test_name_baseline_uses_majority_vote(tiny_features):
    baseline = ExecutableNameBaseline().fit(tiny_features)
    predictions = baseline.predict(tiny_features)
    accuracy = (predictions == np.asarray([f.class_name for f in tiny_features],
                                          dtype=object)).mean()
    # Executable names are strong identifiers in the synthetic corpus...
    assert accuracy > 0.9
    # ...but unseen names fall back to unknown.
    from dataclasses import replace

    renamed = replace(tiny_features[0], executable="a.out")
    assert baseline.predict([renamed])[0] == -1


def test_baselines_require_fit(tiny_features):
    with pytest.raises(NotFittedError):
        CryptoHashBaseline().predict(tiny_features[:1])
    with pytest.raises(NotFittedError):
        ExecutableNameBaseline().predict(tiny_features[:1])


def test_run_baseline_comparison_ranks_fuzzy_hash_first(split_data):
    split, train, test = split_data
    builder = SimilarityFeatureBuilder()
    X_train = builder.fit_transform(train, exclude_self=True).X
    X_test = builder.transform(test).X
    outcomes = run_baseline_comparison(
        train, split.train_labels, test, split.expected_test_labels,
        X_train, X_test, n_estimators=30, confidence_threshold=0.35,
        random_state=0)
    by_name = {o.name: o for o in outcomes}
    assert len(outcomes) == 5
    forest = by_name["fuzzy-hash random forest"]
    crypto = by_name["crypto-hash exact match"]
    # The paper's core claim: fuzzy hashing generalises across versions,
    # exact hashing does not.
    assert forest.macro_f1 > crypto.macro_f1
    assert forest.micro_f1 > crypto.micro_f1
    # Every outcome row serialises cleanly.
    for outcome in outcomes:
        row = outcome.as_row()
        assert set(row) == {"baseline", "macro_f1", "micro_f1", "weighted_f1",
                            "unknown_recall"}
