"""Tests for the end-to-end experiment runner."""

import numpy as np
import pytest

from repro.config import default_config
from repro.core.evaluation import ExperimentRunner
from repro.exceptions import EvaluationError


@pytest.fixture(scope="module")
def small_result(tiny_catalog):
    config = default_config("small", seed=99)
    runner = ExperimentRunner(config, split_mode="paper", catalog=tiny_catalog,
                              run_grid_search=False)
    return runner.run()


def test_result_contains_full_report(small_result):
    report = small_result.report
    assert 0.0 <= report.macro_f1 <= 1.0
    assert len(report.per_class) >= 4
    labels = [row.label for row in report.per_class]
    assert -1 in labels  # the unknown class shows up in the report


def test_reasonable_classification_quality(small_result):
    # The synthetic corpus is easy at this scale: well above chance,
    # in the same regime as the paper's ~0.9.
    assert small_result.macro_f1 > 0.7
    assert small_result.micro_f1 > 0.7


def test_feature_importance_ordering(small_result):
    grouped = small_result.grouped_importance
    assert sum(grouped.values()) == pytest.approx(1.0)
    assert grouped["ssdeep-symbols"] > grouped["ssdeep-file"]


def test_unknown_classes_match_paper_mode(small_result, tiny_catalog):
    unknown = set(small_result.split.unknown_classes)
    assert unknown == {c.name for c in tiny_catalog if c.paper_unknown}


def test_predictions_align_with_expected(small_result):
    assert len(small_result.predictions) == len(small_result.expected)
    assert len(small_result.predictions) == small_result.split.n_test
    assert len(small_result.test_sample_ids) == small_result.split.n_test


def test_timings_and_summary(small_result):
    assert set(small_result.timings) >= {"corpus", "features", "similarity",
                                         "final-fit", "predict"}
    assert "macro f1" in small_result.summary()
    confusion = small_result.confusion()
    assert confusion.sum() == small_result.split.n_test


def test_grid_search_path_produces_sweep(tiny_catalog):
    config = default_config("small", seed=5)
    runner = ExperimentRunner(config, split_mode="paper", catalog=tiny_catalog,
                              run_grid_search=True)
    # Shrink the search to keep the test fast.
    result = runner.run()
    assert result.grid_outcome is not None
    assert result.threshold_sweep is not None
    assert len(result.threshold_sweep.points) > 3
    assert result.best_threshold in [p.threshold for p in result.threshold_sweep.points]


def test_fixed_threshold_override(tiny_catalog):
    config = default_config("small", seed=5, confidence_threshold=0.7)
    runner = ExperimentRunner(config, split_mode="paper", catalog=tiny_catalog,
                              run_grid_search=False)
    result = runner.run()
    assert result.best_threshold == 0.7


def test_disk_pipeline_requires_workdir(tiny_catalog):
    with pytest.raises(EvaluationError):
        ExperimentRunner(default_config("small"), use_disk=True)


def test_disk_pipeline_runs(tmp_path, tiny_catalog):
    config = default_config("small", seed=13)
    runner = ExperimentRunner(config, split_mode="paper", catalog=tiny_catalog,
                              use_disk=True, workdir=tmp_path / "tree",
                              run_grid_search=False)
    result = runner.run()
    assert result.macro_f1 > 0.6
    assert (tmp_path / "tree").is_dir()
