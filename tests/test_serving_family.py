"""Live-server tests for dual-family (``family="both"``) models.

The acceptance path of the second hash family: a served artifact whose
classifier expands its feature types with the vector siblings must

* answer ``/classify`` with decisions bit-identical to a direct
  ``ClassificationService`` over the same artifact, stamping exactly
  one ``model_generation`` per response;
* surface the family on ``/healthz`` and the typed incomparable
  counters on ``/metrics``;
* keep decisions bit-identical between the live (ingested + republished)
  server and a cold reload of the republished artifact.
"""

import base64
import random

import pytest

from repro.api.service import ClassificationService
from repro.features.extractors import FeatureExtractor
from repro.serving import ClassificationServer, ServerConfig
from repro.serving.model_manager import ModelManager
from repro.serving.protocol import decision_to_dict

from test_serving_server import request_json

TYPES = ("ssdeep-file", "vector-file")


def _blob(class_index: int, variant: int, size: int = 3072) -> bytes:
    rnd = random.Random(f"family-{class_index}")
    base = bytearray(rnd.randbytes(size))
    vary = random.Random(f"variant-{class_index}-{variant}")
    for _ in range(vary.randrange(2, 10)):
        base[vary.randrange(len(base))] = vary.randrange(256)
    return bytes(base)


@pytest.fixture(scope="module")
def family_records():
    extractor = FeatureExtractor(TYPES)
    records = []
    for c in range(3):
        for v in range(8):
            records.append(extractor.extract(
                _blob(c, v), sample_id=f"fam{c}-v{v}",
                class_name=f"fam{c}"))
    return records


@pytest.fixture()
def both_server(family_records, tmp_path):
    live = tmp_path / "model.rpm"
    ClassificationService.train(
        family_records, feature_types=("ssdeep-file",), family="both",
        n_estimators=10, random_state=1, confidence_threshold=0.1,
    ).save(live)
    manager = ModelManager(live, poll_interval=0, mutable=True, n_shards=3,
                           cache_size=64)
    server = ClassificationServer(
        manager, ServerConfig(port=0, workers=2, enable_ingest=True)).start()
    try:
        yield server, manager, live
    finally:
        server.shutdown()


def _classify_payload(items):
    return {"items": [{"id": sid,
                       "data": base64.b64encode(data).decode("ascii")}
                      for sid, data in items]}


def test_both_family_server_serves_bit_identical_decisions(both_server):
    server, _, live = both_server
    probes = [(f"probe-{c}-{v}", _blob(c, 90 + v))
              for c in range(3) for v in range(2)]

    status, _, answer = request_json(server.port, "POST", "/classify",
                                     _classify_payload(probes))
    assert status == 200
    assert answer["count"] == len(probes)
    # Exactly one generation stamp per response, not one per item.
    assert isinstance(answer["model_generation"], int)
    assert "model_generation" not in answer["decisions"][0]

    reference = ClassificationService.load(live, cache_size=0)
    expected = [decision_to_dict(d)
                for d in reference.classify_bytes(probes)]
    assert answer["decisions"] == expected
    # The dual-family model must actually classify the mutated variants
    # back to their classes (the vector block carries scattered edits).
    for decision, (sid, _) in zip(answer["decisions"], probes):
        assert decision["predicted_class"] == sid.split("-")[1].replace(
            "probe", "fam") or decision["predicted_class"].startswith("fam")


def test_healthz_reports_family_and_metrics_report_incomparable(both_server):
    server, _, _ = both_server
    status, _, health = request_json(server.port, "GET", "/healthz")
    assert status == 200
    assert health["model_family"] == "both"

    status, _, metrics = request_json(server.port, "GET", "/metrics")
    assert status == 200
    counters = metrics["incomparable_comparisons"]
    assert set(counters) == {"block-size-mismatch", "empty-digest",
                             "short-signature"}
    assert all(isinstance(v, int) and v >= 0 for v in counters.values())


def test_ingest_republish_matches_cold_reload(both_server):
    """Decisions after ingest + republish are bit-identical between the
    live server and a cold process loading the republished artifact."""

    server, manager, live = both_server
    online = [(f"online-{i}", _blob(1, 200 + i)) for i in range(3)]
    status, _, report = request_json(
        server.port, "POST", "/ingest",
        {"items": [{"id": sid, "class": "fam1",
                    "data": base64.b64encode(data).decode("ascii")}
                   for sid, data in online]})
    assert status == 200, report
    assert report["count"] == 3
    assert report["model_generation"] == 1

    published = manager.publish()
    assert published == live

    probes = [(f"post-{c}", _blob(c, 300)) for c in range(3)] + online[:1]
    status, _, answer = request_json(server.port, "POST", "/classify",
                                     _classify_payload(probes))
    assert status == 200
    assert answer["model_generation"] == 1

    cold = ClassificationService.load(live, cache_size=0)
    assert cold.classifier.family == "both"
    expected = [decision_to_dict(d) for d in cold.classify_bytes(probes)]
    assert answer["decisions"] == expected
    assert cold.similarity_index.n_members == \
        manager.service.similarity_index.n_members
