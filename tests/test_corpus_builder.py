"""Tests for the corpus builder."""

import pytest

from repro.binfmt.reader import ElfReader, is_elf
from repro.binfmt.symbols import is_stripped
from repro.config import default_config
from repro.corpus.builder import CorpusBuilder
from repro.corpus.catalog import default_catalog


def test_samples_follow_class_version_executable_layout(tiny_samples):
    for sample in tiny_samples:
        parts = sample.relative_path.split("/")
        assert len(parts) == 3
        assert parts[0] == sample.class_name
        assert parts[1] == sample.version
        assert parts[2] == sample.executable


def test_every_sample_is_valid_unstripped_elf(tiny_samples):
    for sample in tiny_samples:
        assert is_elf(sample.data)
        assert not is_stripped(sample.data)
        reader = ElfReader(sample.data)
        assert len(reader.symbols) > 10


def test_every_class_has_at_least_three_versions(tiny_samples):
    versions = {}
    for sample in tiny_samples:
        versions.setdefault(sample.class_name, set()).add(sample.version)
    assert all(len(v) >= 3 for v in versions.values())


def test_all_catalogue_classes_generated(tiny_samples, tiny_catalog):
    generated = {s.class_name for s in tiny_samples}
    assert generated == set(tiny_catalog.class_names)


def test_generation_is_deterministic(tiny_builder, tiny_samples):
    again = tiny_builder.build_samples()
    assert len(again) == len(tiny_samples)
    assert [s.relative_path for s in again] == [s.relative_path for s in tiny_samples]
    assert all(a.data == b.data for a, b in zip(again, tiny_samples))


def test_explicit_executables_and_versions_respected(tiny_samples):
    velvet_like = [s for s in tiny_samples if s.class_name == "VelvetLike"]
    assert {s.executable for s in velvet_like} == {"velh", "velg"}
    assert {s.version for s in velvet_like} == {
        "1.0-GCC-10.3.0", "1.1-foss-2021a", "2.0-intel-2020a"}
    assert len(velvet_like) == 6  # 3 versions x 2 executables


def test_scale_cap_limits_per_class_samples():
    config = default_config("small", seed=3)
    builder = CorpusBuilder(config=config)
    counts = {}
    for spec in builder.catalog:
        versions, n_exec = builder.plan_class(spec)
        counts[spec.name] = len(versions) * n_exec
    cap = config.scale.max_samples_per_class
    # The plan may exceed the cap slightly because every version carries
    # every executable, but it must stay in the same ballpark.
    assert all(count <= cap + max(4, cap // 2) for count in counts.values())


def test_materialize_tree_writes_files(disk_tree):
    root, dataset = disk_tree
    assert len(dataset) > 0
    for record in dataset:
        path = root / record.sample_id
        assert path.is_file()
        assert path.stat().st_size == record.file_size


def test_class_filter_in_iter_samples(tiny_builder):
    only = list(tiny_builder.iter_samples(class_names=["AlphaFold"]))
    assert only
    assert all(s.class_name == "AlphaFold" for s in only)


def test_full_catalog_plan_matches_paper_scale():
    config = default_config("full", seed=1)
    builder = CorpusBuilder(catalog=default_catalog(), config=config)
    total = 0
    for spec in builder.catalog:
        versions, n_exec = builder.plan_class(spec)
        assert len(versions) >= 3
        total += len(versions) * n_exec
    # Total sample count of the plan is close to the paper's 5333.
    assert 4800 <= total <= 6200
