"""Integration tests spanning the whole pipeline.

These tests follow the paper's storyline end to end on the tiny corpus:
scrape a software tree from disk, extract fuzzy-hash features, train
the Fuzzy Hash Classifier, evaluate with the two-phase split, and use
the production workflow to spot out-of-allocation software.
"""

import numpy as np
import pytest

from repro import (
    ClassificationWorkflow,
    CorpusScanner,
    FeatureExtractionPipeline,
    FuzzyHashClassifier,
    classification_report,
    two_phase_split,
)
from repro.analysis.misclassification import confused_pairs
from repro.binfmt.strip import strip_symbols
from repro.features.extractors import FeatureExtractor


def test_full_pipeline_from_disk(disk_tree):
    root, _ = disk_tree

    # 1. collection (paper Section 3, "Data Collection")
    scan = CorpusScanner(root).scan()
    assert len(scan.dataset) > 40

    # 2. feature extraction
    features = FeatureExtractionPipeline().extract_dataset(scan.dataset)

    # 3. two-phase split and training
    labels = scan.dataset.labels
    split = two_phase_split(labels, mode="paper", random_state=17)
    train = [features[i] for i in split.train_indices]
    test = [features[i] for i in split.test_indices]
    clf = FuzzyHashClassifier(n_estimators=60, confidence_threshold=0.5,
                              random_state=0).fit(train)

    # 4. evaluation
    predictions = clf.predict(test)
    report = classification_report(split.expected_test_labels, predictions)
    assert report.macro_f1 > 0.6
    assert report.micro_f1 > 0.6

    # 5. the dominant feature is the symbol hash, like the paper found
    grouped = clf.feature_importances_by_type()
    assert grouped["ssdeep-symbols"] == max(grouped.values())


def test_unknown_application_detection_scenario(tiny_features, tiny_labels):
    """A user suddenly runs software from classes the model never saw."""

    split = two_phase_split(tiny_labels, mode="paper", random_state=23)
    train = [tiny_features[i] for i in split.train_indices]
    clf = FuzzyHashClassifier(n_estimators=40, confidence_threshold=0.4,
                              random_state=1).fit(train)

    unknown_samples = [f for f in tiny_features
                       if f.class_name in split.unknown_classes]
    known_samples = [tiny_features[i] for i in split.test_indices
                     if tiny_features[i].class_name in split.known_classes]

    unknown_predictions = clf.predict(unknown_samples)
    known_predictions = clf.predict(known_samples)
    unknown_detection_rate = float(np.mean(unknown_predictions == -1))
    false_unknown_rate = float(np.mean(known_predictions == -1))
    assert unknown_detection_rate > 0.6
    assert false_unknown_rate < 0.4
    assert unknown_detection_rate > false_unknown_rate


def test_version_change_is_bridged_but_strip_breaks_symbols(tiny_samples):
    """Fuzzy hashes bridge version changes (unlike exact hashes); stripped
    binaries lose the dominant feature — both paper claims."""

    extractor = FeatureExtractor()
    by_key = {}
    for sample in tiny_samples:
        by_key.setdefault((sample.class_name, sample.executable), []).append(sample)
    # Find one executable present in several versions.
    (class_name, executable), versions = next(
        (key, items) for key, items in by_key.items() if len(items) >= 3)
    features = [extractor.extract(s.data, sample_id=s.relative_path)
                for s in versions[:2]]

    from repro.hashing.compare import compare_digests

    assert features[0].sha256 != features[1].sha256          # exact hash fails
    symbol_sim = compare_digests(features[0].digest("ssdeep-symbols"),
                                 features[1].digest("ssdeep-symbols"))
    assert symbol_sim > 50                                    # fuzzy hash bridges it

    stripped = extractor.extract(strip_symbols(versions[0].data), sample_id="stripped")
    assert stripped.stripped
    stripped_sim = compare_digests(stripped.digest("ssdeep-symbols"),
                                   features[1].digest("ssdeep-symbols"))
    assert stripped_sim == 0                                  # limitation reproduced


def test_workflow_end_to_end_with_allocation_policy(disk_tree, tiny_features,
                                                    tiny_labels):
    root, _ = disk_tree
    split = two_phase_split(tiny_labels, mode="paper", random_state=29)
    train = [tiny_features[i] for i in split.train_indices]
    clf = FuzzyHashClassifier(n_estimators=30, confidence_threshold=0.35,
                              random_state=2).fit(train)

    allocation_app = split.known_classes[0]
    workflow = ClassificationWorkflow(clf, allowed_classes=[allocation_app])
    all_results = workflow.classify_directory(root)
    assert len(all_results) == sum(1 for _ in root.rglob("*") if _.is_file())
    suspicious = [r for r in all_results if r.is_suspicious()]
    expected_ok = [r for r in all_results if not r.is_suspicious()]
    # Executables of the allowed application are mostly accepted, the rest
    # is mostly flagged.
    assert suspicious and expected_ok
    accepted_paths = {r.path for r in expected_ok}
    assert any(f"/{allocation_app}/" in path for path in accepted_paths)


def test_alias_classes_confuse_the_classifier(tiny_features, tiny_labels):
    """Sanity check of the analysis tooling on a deliberately confusable
    configuration (mirrors the CellRanger / Cell-Ranger discussion)."""

    predictions = ["CellRanger" if label == "Cell-Ranger" else label
                   for label in tiny_labels]
    pairs = confused_pairs(tiny_labels, predictions)
    if any(label == "Cell-Ranger" for label in tiny_labels):
        assert pairs[0].true_class == "Cell-Ranger"
    else:
        assert pairs == [] or pairs[0].count >= 1
