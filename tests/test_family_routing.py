"""Hash-family routing tests: extractor expansion, classifier wiring,
artifact round-trips and the pre-family legacy-artifact guarantee.

``family="ctph"`` (the default) must behave exactly as the library did
before the second hash family existed; ``"vector"`` swaps every
``ssdeep-*`` type for its ``vector-*`` sibling; ``"both"`` runs the two
families side by side as parallel per-class feature blocks.
"""

import dataclasses
import random

import numpy as np
import pytest

from repro.api.artifact import (MODEL_CONTAINER, inspect_model, save_model)
from repro.api.service import ClassificationService
from repro.core.classifier import FuzzyHashClassifier
from repro.exceptions import FeatureExtractionError
from repro.features.extractors import (ALL_FEATURE_TYPES, FEATURE_TYPES,
                                       FeatureExtractor, HASH_FAMILIES,
                                       resolve_family_feature_types)
from repro.features.records import SampleFeatures
from repro.hashing.ssdeep import fuzzy_hash
from repro.hashing.vector import is_vector_digest, vector_hash
from repro.index.storage import read_container, write_container


# ------------------------------------------------- family resolution
def test_resolve_ctph_is_identity():
    assert resolve_family_feature_types(FEATURE_TYPES, "ctph") == \
        tuple(FEATURE_TYPES)


def test_resolve_vector_maps_siblings():
    assert resolve_family_feature_types(("ssdeep-file", "ssdeep-strings"),
                                        "vector") == \
        ("vector-file", "vector-strings")
    # Vector types map to themselves.
    assert resolve_family_feature_types(("vector-file",), "vector") == \
        ("vector-file",)


def test_resolve_both_appends_vector_block():
    resolved = resolve_family_feature_types(("ssdeep-file", "ssdeep-libs"),
                                            "both")
    assert resolved == ("ssdeep-file", "ssdeep-libs",
                        "vector-file", "vector-libs")


def test_resolve_deduplicates_preserving_order():
    resolved = resolve_family_feature_types(
        ("ssdeep-file", "vector-file"), "both")
    assert resolved == ("ssdeep-file", "vector-file")


def test_resolve_rejects_unknown_family_and_type():
    with pytest.raises(FeatureExtractionError):
        resolve_family_feature_types(FEATURE_TYPES, "tlsh")
    with pytest.raises(FeatureExtractionError):
        resolve_family_feature_types(("ssdeep-nope",), "both")
    assert HASH_FAMILIES == ("ctph", "vector", "both")


def test_all_feature_types_cover_both_families():
    vector_types = [ft for ft in ALL_FEATURE_TYPES
                    if ft.startswith("vector-")]
    assert len(vector_types) == 4
    for ft in FEATURE_TYPES:
        assert ft in ALL_FEATURE_TYPES


# ------------------------------------------------------- extraction
def test_extractor_produces_vector_digests():
    extractor = FeatureExtractor(("ssdeep-file", "vector-file",
                                  "vector-strings"))
    data = b"\x7fELF" + b"printf\x00scanf\x00" * 200
    sample = extractor.extract(data, sample_id="s1")
    assert not is_vector_digest(sample.digest("ssdeep-file"))
    assert is_vector_digest(sample.digest("vector-file"))
    assert is_vector_digest(sample.digest("vector-strings"))
    # Deterministic across extractor instances.
    again = FeatureExtractor(("vector-file",)).extract(data, sample_id="s2")
    assert again.digest("vector-file") == sample.digest("vector-file")


# ------------------------------------------------------- classifier
def _make_records(n: int, seed: int, family: str):
    types = resolve_family_feature_types(("ssdeep-file",), family)
    rnd = random.Random(seed)
    bases = [rnd.randbytes(3000 + rnd.randrange(1000)) for _ in range(3)]
    records = []
    for i in range(n):
        blob = bytearray(bases[i % 3])
        for _ in range(rnd.randrange(1, 6)):
            blob[rnd.randrange(len(blob))] = rnd.randrange(256)
        blob = bytes(blob)
        digests = {}
        for ft in types:
            digests[ft] = vector_hash(blob) if ft.startswith("vector-") \
                else fuzzy_hash(blob)
        records.append(SampleFeatures(sample_id=f"s{i:03d}",
                                      class_name=f"class-{i % 3}",
                                      version="1", executable=f"s{i:03d}",
                                      digests=digests))
    return records


def test_classifier_active_feature_types_follow_family():
    clf = FuzzyHashClassifier(feature_types=("ssdeep-file",), family="both")
    assert clf.active_feature_types == ("ssdeep-file", "vector-file")
    assert FuzzyHashClassifier(feature_types=("ssdeep-file",)) \
        .active_feature_types == ("ssdeep-file",)
    # sklearn-style parameter plumbing picks family up automatically.
    assert clf.get_params()["family"] == "both"


@pytest.mark.parametrize("family", ["ctph", "vector", "both"])
def test_family_model_artifact_round_trip(tmp_path, family):
    """Digests of every active family round-trip through the ``.rpm``
    container and reproduce the exact same decisions after load."""

    records = _make_records(24, 5, family)
    service = ClassificationService.train(
        records, feature_types=("ssdeep-file",), family=family,
        n_estimators=10, random_state=3)
    expected_width = {"ctph": 1, "vector": 1, "both": 2}[family] * 3
    assert service.classifier.builder_.transform(records).n_features == \
        expected_width

    path = tmp_path / f"model-{family}.rpm"
    save_model(service.classifier, path)
    loaded = ClassificationService.load(path)
    assert loaded.classifier.family == family
    assert loaded.classifier.active_feature_types == \
        service.classifier.active_feature_types
    assert loaded.classify_features(records) == \
        service.classify_features(records)

    info = inspect_model(path)
    assert info["family"] == family
    assert info["active_feature_types"] == \
        list(service.classifier.active_feature_types)
    vector_active = [ft for ft in info["active_feature_types"]
                     if ft.startswith("vector-")]
    assert info["families"]["vector"] == vector_active


def test_pre_family_legacy_artifact_loads_bit_identically(tmp_path):
    """The acceptance regression: an artifact written before the family
    parameter existed (v2 container, no ``family`` key in params) loads
    and classifies exactly as a modern ctph model."""

    records = _make_records(24, 9, "ctph")
    service = ClassificationService.train(
        records, feature_types=("ssdeep-file",),
        n_estimators=10, random_state=3)
    modern = tmp_path / "modern.rpm"
    save_model(service.classifier, modern)

    header, arrays = read_container(modern, fmt=MODEL_CONTAINER)
    header.pop("arrays")
    header.pop("format_version")
    assert header["params"].pop("family") == "ctph"
    v2_format = dataclasses.replace(MODEL_CONTAINER, version=2)
    legacy = tmp_path / "legacy.rpm"
    write_container(legacy, header, arrays, fmt=v2_format)

    loaded = ClassificationService.load(legacy)
    assert loaded.classifier.family == "ctph"
    assert loaded.classifier.active_feature_types == ("ssdeep-file",)
    assert loaded.classify_features(records) == \
        service.classify_features(records)
    info = inspect_model(legacy)
    assert info["format_version"] == 2
    assert info["family"] == "ctph"


def test_both_family_widens_feature_matrix_consistently():
    records = _make_records(18, 13, "both")
    ctph_only = [SampleFeatures(sample_id=r.sample_id,
                                class_name=r.class_name, version=r.version,
                                executable=r.executable,
                                digests={"ssdeep-file":
                                         r.digests["ssdeep-file"]})
                 for r in records]
    both = FuzzyHashClassifier(feature_types=("ssdeep-file",), family="both",
                               n_estimators=10, random_state=1)
    both.fit(records)
    ctph = FuzzyHashClassifier(feature_types=("ssdeep-file",),
                               n_estimators=10, random_state=1)
    ctph.fit(ctph_only)

    X_both = both.builder_.transform(records).X
    X_ctph = ctph.builder_.transform(ctph_only).X
    n_classes = X_ctph.shape[1]
    assert X_both.shape[1] == 2 * n_classes
    # The CTPH block of the dual-family matrix is the CTPH-only matrix.
    assert np.array_equal(X_both[:, :n_classes], X_ctph)
