"""Tests for the similarity feature-matrix builder."""

import numpy as np
import pytest

from repro.exceptions import NotFittedError, ValidationError
from repro.features.extractors import FEATURE_TYPES
from repro.features.similarity import SimilarityFeatureBuilder
from repro.hashing.compare import compare_digests


@pytest.fixture(scope="module")
def fitted_builder(tiny_features):
    builder = SimilarityFeatureBuilder()
    builder.fit(tiny_features)
    return builder


def test_matrix_shape_class_max(tiny_features, fitted_builder):
    matrix = fitted_builder.transform(tiny_features[:20])
    n_classes = len(fitted_builder.classes_)
    assert matrix.X.shape == (20, n_classes * len(FEATURE_TYPES))
    assert len(matrix.feature_names) == matrix.X.shape[1]
    assert set(matrix.feature_groups) == set(FEATURE_TYPES)


def test_scores_are_in_0_100(tiny_features, fitted_builder):
    matrix = fitted_builder.transform(tiny_features)
    assert matrix.X.min() >= 0.0
    assert matrix.X.max() <= 100.0


def test_reduceat_aggregation_matches_per_class_loop(tiny_features,
                                                     fitted_builder):
    """The vectorised per-class max (one reduceat over class-grouped
    anchors) must equal the straightforward per-class column loop."""

    rng = np.random.default_rng(11)
    scores = rng.uniform(0.0, 100.0,
                         size=(7, len(fitted_builder.anchor_classes_)))
    expected = np.zeros((7, len(fitted_builder.classes_)))
    for class_idx in range(len(fitted_builder.classes_)):
        members = np.flatnonzero(
            fitted_builder._anchor_class_idx == class_idx)
        expected[:, class_idx] = scores[:, members].max(axis=1)
    assert np.array_equal(fitted_builder._aggregate(scores), expected)


def test_own_class_column_scores_highest_for_most_samples(tiny_features, fitted_builder):
    matrix = fitted_builder.transform(tiny_features)
    classes = fitted_builder.classes_
    groups = matrix.feature_groups["ssdeep-symbols"]
    block = matrix.X[:, groups]
    correct = 0
    for row, features in zip(block, tiny_features):
        best_class = classes[int(np.argmax(row))]
        correct += int(best_class == features.class_name)
    assert correct / len(tiny_features) > 0.8


def test_self_similarity_excluded_when_requested(tiny_features):
    builder = SimilarityFeatureBuilder()
    with_self = builder.fit(tiny_features).transform(tiny_features, exclude_self=False)
    without_self = builder.transform(tiny_features, exclude_self=True)
    # Excluding self matches can only lower (or keep) the scores.
    assert np.all(without_self.X <= with_self.X + 1e-9)
    assert (without_self.X < with_self.X).any()


def test_matrix_matches_pairwise_compare_for_class_max(tiny_features):
    """The vectorised candidate/batch path must agree with naive pairwise
    ssdeep comparison."""

    anchors = tiny_features[::3]
    queries = tiny_features[1::5][:10]
    builder = SimilarityFeatureBuilder(["ssdeep-symbols"]).fit(anchors)
    matrix = builder.transform(queries)
    classes = builder.classes_
    for qi, query in enumerate(queries):
        for ci, class_name in enumerate(classes):
            expected = 0
            for anchor in anchors:
                if anchor.class_name != class_name:
                    continue
                score = compare_digests(query.digest("ssdeep-symbols"),
                                        anchor.digest("ssdeep-symbols"))
                expected = max(expected, score)
            assert matrix.X[qi, ci] == pytest.approx(expected), \
                f"mismatch for query {query.sample_id} vs class {class_name}"


def test_all_train_strategy_has_one_column_per_anchor(tiny_features):
    anchors = tiny_features[:30]
    builder = SimilarityFeatureBuilder(anchor_strategy="all-train").fit(anchors)
    matrix = builder.transform(tiny_features[:5])
    assert matrix.X.shape == (5, 30 * len(FEATURE_TYPES))


def test_class_medoids_strategy_reduces_anchor_count(tiny_features):
    builder = SimilarityFeatureBuilder(anchor_strategy="class-medoids",
                                       medoids_per_class=2).fit(tiny_features)
    per_class = {}
    for name in builder.anchor_classes_:
        per_class[name] = per_class.get(name, 0) + 1
    assert all(count <= 2 for count in per_class.values())
    matrix = builder.transform(tiny_features[:4])
    assert matrix.X.shape[1] == len(builder.classes_) * len(FEATURE_TYPES)


def test_fitted_builder_exposes_its_index(fitted_builder):
    from repro.index import SimilarityIndex

    assert isinstance(fitted_builder.index_, SimilarityIndex)
    assert fitted_builder.index_.n_members == len(fitted_builder.anchor_ids_)
    assert list(fitted_builder.index_.class_names) == \
        fitted_builder.anchor_classes_


def test_fit_from_index_matches_direct_fit(tiny_features):
    direct = SimilarityFeatureBuilder(["ssdeep-file"]).fit(tiny_features)
    adopted = SimilarityFeatureBuilder(["ssdeep-file"])
    adopted.fit_from_index(direct.index_)
    queries = tiny_features[:8]
    assert np.array_equal(adopted.transform(queries).X,
                          direct.transform(queries).X)


def test_fit_from_index_validates_compatibility(tiny_features):
    from repro.index import SimilarityIndex

    builder = SimilarityFeatureBuilder(["ssdeep-file"])
    with pytest.raises(ValidationError, match="empty"):
        builder.fit_from_index(SimilarityIndex(["ssdeep-file"]))
    wrong_type = SimilarityIndex(["ssdeep-strings"])
    wrong_type.add("a", {}, class_name="X")
    with pytest.raises(ValidationError, match="feature types"):
        builder.fit_from_index(wrong_type)
    wrong_ngram = SimilarityIndex(["ssdeep-file"], ngram_length=5)
    wrong_ngram.add("a", {}, class_name="X")
    with pytest.raises(ValidationError, match="n-gram"):
        builder.fit_from_index(wrong_ngram)
    unlabelled = SimilarityIndex(["ssdeep-file"])
    unlabelled.add("a", {})
    with pytest.raises(ValidationError, match="class label"):
        builder.fit_from_index(unlabelled)


def test_transform_before_fit_raises(tiny_features):
    with pytest.raises(NotFittedError):
        SimilarityFeatureBuilder().transform(tiny_features[:2])


def test_empty_anchor_set_rejected():
    with pytest.raises(ValidationError):
        SimilarityFeatureBuilder().fit([])


def test_invalid_strategy_rejected():
    with pytest.raises(ValidationError):
        SimilarityFeatureBuilder(anchor_strategy="centroid")


def test_columns_for_selects_feature_type(tiny_features, fitted_builder):
    matrix = fitted_builder.transform(tiny_features[:6])
    block = matrix.columns_for("ssdeep-file")
    assert block.shape == (6, len(fitted_builder.classes_))
    assert matrix.columns_for("not-a-type").shape == (6, 0)
