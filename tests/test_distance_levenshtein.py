"""Tests for the Levenshtein distance implementations."""

import pytest

from repro.distance.levenshtein import levenshtein_distance, levenshtein_distance_numpy


KNOWN_CASES = [
    ("", "", 0),
    ("", "abc", 3),
    ("abc", "", 3),
    ("abc", "abc", 0),
    ("kitten", "sitting", 3),
    ("flaw", "lawn", 2),
    ("intention", "execution", 5),
    ("saturday", "sunday", 3),
    ("a", "b", 1),
    ("ab", "ba", 2),          # plain Levenshtein has no transpositions
]


@pytest.mark.parametrize("a, b, expected", KNOWN_CASES)
def test_reference_known_values(a, b, expected):
    assert levenshtein_distance(a, b) == expected


@pytest.mark.parametrize("a, b, expected", KNOWN_CASES)
def test_numpy_known_values(a, b, expected):
    assert levenshtein_distance_numpy(a, b) == expected


def test_symmetry():
    assert levenshtein_distance("abcdef", "azced") == levenshtein_distance("azced", "abcdef")


def test_accepts_bytes():
    assert levenshtein_distance(b"abc", b"abd") == 1
    assert levenshtein_distance_numpy(b"abc", b"abd") == 1


def test_numpy_matches_reference_on_random_strings():
    import random

    rnd = random.Random(7)
    alphabet = "ABCDEFab01+/"
    for _ in range(100):
        a = "".join(rnd.choices(alphabet, k=rnd.randint(0, 30)))
        b = "".join(rnd.choices(alphabet, k=rnd.randint(0, 30)))
        assert levenshtein_distance_numpy(a, b) == levenshtein_distance(a, b)


def test_upper_bound_is_length_of_longer_string():
    assert levenshtein_distance("aaaa", "bbbbbbbb") <= 8
    assert levenshtein_distance("aaaa", "bbbbbbbb") >= 4
