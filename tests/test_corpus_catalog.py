"""Tests for the 92-class application catalogue."""

import pytest

from repro.corpus.catalog import (
    PAPER_UNKNOWN_CLASSES,
    ApplicationCatalog,
    ApplicationClassSpec,
    default_catalog,
)
from repro.exceptions import CorpusError


def test_catalogue_has_92_classes():
    catalog = default_catalog()
    assert len(catalog) == 92


def test_19_paper_unknown_classes():
    catalog = default_catalog()
    assert len(catalog.paper_unknown_names) == 19
    assert set(catalog.paper_unknown_names) == set(PAPER_UNKNOWN_CLASSES)


def test_total_samples_close_to_paper():
    # The paper reports 5333 samples; the reconstruction from Tables 3+4
    # lands within a percent of that.
    total = default_catalog().total_samples()
    assert abs(total - 5333) <= 55


def test_unknown_class_counts_match_table3():
    catalog = default_catalog()
    assert catalog["Schrodinger"].total_samples() == 195
    assert catalog["QuantumESPRESSO"].total_samples() == 178
    assert catalog["SAMtools"].total_samples() == 108
    assert catalog["CHARMM"].total_samples() == 3
    assert catalog["OpenMalaria"].total_samples() == 25


def test_known_class_counts_derive_from_support():
    catalog = default_catalog()
    # support 352 -> ~880 total at a 40% test fraction
    assert catalog["kentUtils"].total_samples() == 880
    assert catalog["FSL"].total_samples() == 878
    # tiny classes never drop below the 3-sample collection rule
    assert catalog["CapnProto"].total_samples() == 3
    assert catalog["JAGS"].total_samples() == 3


def test_velvet_matches_table1():
    velvet = default_catalog()["Velvet"]
    assert velvet.executables == ("velveth", "velvetg")
    assert len(velvet.versions) == 3
    assert all("1.2.10" in v for v in velvet.versions)


def test_alias_pairs_present():
    catalog = default_catalog()
    assert catalog["Cell-Ranger"].alias_of == "CellRanger"
    assert catalog["AUGUSTUS"].alias_of == "Augustus"
    assert catalog["AUGUSTUS"].paper_unknown
    assert not catalog["Augustus"].paper_unknown


def test_unknown_class_lookup_raises():
    with pytest.raises(CorpusError):
        default_catalog()["NotARealApplication"]


def test_duplicate_names_rejected():
    spec = ApplicationClassSpec(name="X", paper_test_support=3)
    with pytest.raises(CorpusError):
        ApplicationCatalog([spec, spec])


def test_alias_to_missing_class_rejected():
    with pytest.raises(CorpusError):
        ApplicationCatalog([ApplicationClassSpec(name="X", alias_of="Missing",
                                                 paper_test_support=3)])


def test_subset_keeps_imbalance_and_unknowns():
    catalog = default_catalog()
    subset = catalog.subset(12)
    assert 12 <= len(subset) <= 14  # alias completion may add a class
    counts = [spec.total_samples() for spec in subset]
    assert max(counts) > 3 * min(counts)  # still clearly imbalanced
    assert any(spec.paper_unknown for spec in subset)


def test_subset_none_returns_everything():
    catalog = default_catalog()
    assert len(catalog.subset(None)) == len(catalog)


def test_subset_too_small_rejected():
    with pytest.raises(CorpusError):
        default_catalog().subset(1)


def test_total_samples_respects_cap():
    catalog = default_catalog()
    capped = catalog.total_samples(max_samples_per_class=10)
    assert capped < catalog.total_samples()
    assert capped >= 10 * 10  # at least the big classes hit the cap


def test_describe_mentions_every_class():
    catalog = default_catalog()
    text = catalog.describe()
    for name in ("kentUtils", "Velvet", "Schrodinger"):
        assert name in text
