"""End-to-end tracing tests over a live server: the ``X-Request-Id``
lifecycle (response header → decision-log lines → ingest acks), the
``GET /debug/trace`` per-stage breakdown with span sum ≈ wall time —
across the in-process, ``--score-workers`` and ``--ingest --wal-dir``
serving modes — the ``/healthz`` schema, Prometheus exposition of
``GET /metrics`` and the ``/debug/profile`` gate.
"""

import base64
import json
import threading
from http.client import HTTPConnection

import pytest

from repro.api.service import ClassificationService
from repro.observability.promtext import parse_prometheus
from repro.serving import ClassificationServer, DecisionLog, ServerConfig
from repro.serving.model_manager import ModelManager

from test_api_artifact import make_records
from test_serving_server import classify_item, payloads, request_json

#: Stages every in-process classify trace must attribute.
CLASSIFY_STAGES = {"parse", "queue_wait", "batch_assembly",
                   "extract_features", "candidate_gen", "dp_scoring",
                   "forest_predict", "serialize"}


# ------------------------------------------------------------- fixtures
@pytest.fixture(scope="module")
def model_artifact(tmp_path_factory):
    directory = tmp_path_factory.mktemp("trace-models")
    records = make_records(30, seed=21, n_families=3)
    artifact = directory / "model.rpm"
    ClassificationService.train(
        records, feature_types=["ssdeep-file"], n_estimators=10,
        random_state=1, confidence_threshold=0.1).save(artifact)
    return artifact


def make_server(model_artifact, tmp_path, *, config=None, decision_log=None,
                **manager_kwargs):
    live = tmp_path / "model.rpm"
    live.write_bytes(model_artifact.read_bytes())
    manager = ModelManager(live, poll_interval=0, cache_size=0,
                           **manager_kwargs)
    return ClassificationServer(
        manager, config or ServerConfig(port=0, workers=2, max_batch=16),
        decision_log=decision_log).start()


def request_text(port, method, path, timeout=30):
    """Like ``request_json`` but for non-JSON bodies (exposition text)."""

    conn = HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        conn.request(method, path, None)
        response = conn.getresponse()
        return response.status, dict(response.getheaders()), \
            response.read().decode("utf-8")
    finally:
        conn.close()


def classify(server, items):
    status, headers, body = request_json(
        server.port, "POST", "/classify",
        {"items": [classify_item(sid, data) for sid, data in items]})
    assert status == 200, body
    return headers, body


def trace_by_id(server, request_id):
    status, _, body = request_json(server.port, "GET", "/debug/trace")
    assert status == 200
    matches = [t for t in body["recent"] if t["request_id"] == request_id]
    assert matches, f"request {request_id} not in the trace ring"
    return matches[0]


def assert_stage_sum_approximates_wall(trace, required_stages):
    assert required_stages <= set(trace["stages"]), trace["stages"]
    assert all(ms >= 0.0 for ms in trace["stages"].values())
    stage_sum = sum(trace["stages"].values())
    # Top-level stages partition the request: their sum must not exceed
    # the wall (beyond rounding) and must account for most of it — the
    # slack is HTTP dispatch and future hand-off, not a missing stage.
    assert stage_sum <= trace["wall_ms"] * 1.05 + 1.0
    assert stage_sum >= trace["wall_ms"] * 0.5


# ----------------------------------------------------- request-id lifecycle
def test_request_id_header_matches_decision_log_lines(model_artifact,
                                                      tmp_path):
    log_path = tmp_path / "decisions.jsonl"
    server = make_server(model_artifact, tmp_path,
                         decision_log=DecisionLog(log_path))
    try:
        first_headers, _ = classify(server, payloads(3, tag="rid-a"))
        second_headers, _ = classify(server, payloads(2, tag="rid-b"))
    finally:
        server.shutdown()
    first_id = first_headers["X-Request-Id"]
    second_id = second_headers["X-Request-Id"]
    assert first_id != second_id
    int(first_id, 16)                              # 16-hex-char id
    assert len(first_id) == 16
    lines = [json.loads(line) for line in
             log_path.read_text().splitlines()]
    assert len(lines) == 5
    # Regression: every decision-log line carries the id of the request
    # that produced it — the audit trail is greppable by response header.
    assert [line["request_id"] for line in lines] == \
        [first_id] * 3 + [second_id] * 2


def test_every_response_carries_a_request_id(model_artifact, tmp_path):
    server = make_server(model_artifact, tmp_path)
    try:
        status, headers, _ = request_json(
            server.port, "POST", "/classify", {"items": []})
        assert status == 400                       # protocol error
        assert len(headers["X-Request-Id"]) == 16
        status, headers, _ = request_json(
            server.port, "POST", "/ingest", {"items": []})
        assert status == 403                       # ingest disabled
        assert len(headers["X-Request-Id"]) == 16
    finally:
        server.shutdown()


# ------------------------------------------------------------ /debug/trace
def test_debug_trace_breaks_a_request_into_stages(model_artifact, tmp_path):
    server = make_server(model_artifact, tmp_path,
                         decision_log=DecisionLog(tmp_path / "d.jsonl"))
    try:
        headers, _ = classify(server, payloads(4, tag="stages"))
        trace = trace_by_id(server, headers["X-Request-Id"])
    finally:
        server.shutdown()
    assert trace["kind"] == "classify"
    assert trace["status"] == 200
    assert trace["items"] == 4
    assert_stage_sum_approximates_wall(
        trace, CLASSIFY_STAGES | {"decision_log"})
    # Spans carry offsets within the request and batch metadata.
    by_name = {s["name"]: s for s in trace["spans"]}
    assert by_name["batch_assembly"]["batch_items"] == 4
    assert all(s["offset_ms"] >= -1.0 for s in trace["spans"])


def test_debug_trace_limit_and_validation(model_artifact, tmp_path):
    server = make_server(model_artifact, tmp_path)
    try:
        for n in range(3):
            classify(server, payloads(1, tag=f"lim-{n}"))
        status, _, body = request_json(server.port, "GET",
                                       "/debug/trace?limit=1")
        assert status == 200
        assert len(body["recent"]) == 1
        assert body["config"]["sample_rate"] == 1.0
        status, _, body = request_json(server.port, "GET",
                                       "/debug/trace?limit=banana")
        assert status == 400
    finally:
        server.shutdown()


def test_sampling_off_still_issues_request_ids(model_artifact, tmp_path):
    config = ServerConfig(port=0, workers=2, trace_sample=0.0)
    server = make_server(model_artifact, tmp_path, config=config)
    try:
        headers, _ = classify(server, payloads(2, tag="off"))
        assert len(headers["X-Request-Id"]) == 16
        status, _, body = request_json(server.port, "GET", "/debug/trace")
        assert status == 200
        assert body["recent"] == []                # nothing sampled
        assert body["config"]["enabled"] is False
        status, _, health = request_json(server.port, "GET", "/healthz")
        assert health["tracing"]["enabled"] is False
    finally:
        server.shutdown()


# ------------------------------------------------------- score-worker mode
def test_worker_mode_traces_ship_spans_across_processes(model_artifact,
                                                        tmp_path):
    server = make_server(model_artifact, tmp_path, mmap=True,
                         score_workers=2)
    try:
        headers, body = classify(server, payloads(4, tag="workers"))
        trace = trace_by_id(server, headers["X-Request-Id"])
    finally:
        server.shutdown()
    # The model pass ran in worker processes: the parent's stage rollup
    # shows worker_dispatch, and the workers' own stages come back as
    # worker-labeled detail spans re-based onto the parent clock.
    assert_stage_sum_approximates_wall(
        trace, {"parse", "queue_wait", "batch_assembly", "worker_dispatch",
                "serialize"})
    worker_spans = [s for s in trace["spans"] if "worker" in s]
    assert worker_spans, trace["spans"]
    assert {s["name"] for s in worker_spans} >= {"extract_features",
                                                 "candidate_gen",
                                                 "dp_scoring"}
    dispatch = next(s for s in trace["spans"]
                    if s["name"] == "worker_dispatch")
    for span_ in worker_spans:
        assert span_["ms"] <= dispatch["ms"] * 1.05 + 1.0


# --------------------------------------------------------- ingest+WAL mode
def test_ingest_wal_mode_traces_fsync_and_acks_request_id(model_artifact,
                                                          tmp_path):
    wal_dir = tmp_path / "wal"
    config = ServerConfig(port=0, workers=2, enable_ingest=True)
    server = make_server(model_artifact, tmp_path, config=config,
                         mutable=True, n_shards=3, wal_dir=wal_dir)
    try:
        alien = b"\x7fALIEN" + bytes((11 * k) % 241
                                     for k in range(4096)) * 4
        status, headers, ack = request_json(
            server.port, "POST", "/ingest",
            {"items": [{"id": "online-1", "class": "fam1",
                        "data": base64.b64encode(alien).decode("ascii")}]})
        assert status == 200, ack
        request_id = headers["X-Request-Id"]
        assert ack["request_id"] == request_id     # ack ↔ header ↔ trace
        assert ack["durable"] is True
        trace = trace_by_id(server, request_id)
        status, _, health = request_json(server.port, "GET", "/healthz")
    finally:
        server.shutdown()
    assert trace["kind"] == "ingest"
    assert trace["items"] == 1
    assert_stage_sum_approximates_wall(
        trace, {"parse", "queue_wait", "batch_assembly", "ingest_apply",
                "wal_fsync", "serialize"})
    assert health["durability"]["wal_records"] >= 1


# ---------------------------------------------------------------- /healthz
def check_tracing_block(tracing):
    assert isinstance(tracing["enabled"], bool)
    assert isinstance(tracing["sample_rate"], float)
    assert isinstance(tracing["slow_request_ms"], float)
    assert isinstance(tracing["ring_size"], int)
    assert isinstance(tracing["profiling_enabled"], bool)


def test_healthz_schema_default_mode(model_artifact, tmp_path):
    server = make_server(model_artifact, tmp_path)
    try:
        status, _, health = request_json(server.port, "GET", "/healthz")
    finally:
        server.shutdown()
    assert status == 200
    assert health["status"] == "ok"
    assert isinstance(health["model_generation"], int)
    assert isinstance(health["uptime_seconds"], float)
    assert health["ingest_enabled"] is False
    assert isinstance(health["load_mode"], str)
    assert isinstance(health["score_workers"], int)
    assert "corpus" not in health                  # ingest-mode only
    check_tracing_block(health["tracing"])
    assert health["tracing"]["profiling_enabled"] is False


def test_healthz_schema_ingest_wal_mode(model_artifact, tmp_path):
    config = ServerConfig(port=0, workers=2, enable_ingest=True,
                          trace_sample=0.5, slow_request_ms=250.0,
                          enable_profiling=True)
    server = make_server(model_artifact, tmp_path, config=config,
                         mutable=True, n_shards=3, wal_dir=tmp_path / "wal")
    try:
        status, _, health = request_json(server.port, "GET", "/healthz")
    finally:
        server.shutdown()
    assert status == 200
    assert health["ingest_enabled"] is True
    assert isinstance(health["corpus"]["members"], int)
    assert isinstance(health["durability"], dict)
    check_tracing_block(health["tracing"])
    assert health["tracing"] == {"enabled": True, "sample_rate": 0.5,
                                 "slow_request_ms": 250.0,
                                 "ring_size": 128,
                                 "profiling_enabled": True}


# ----------------------------------------------------------------- /metrics
def test_metrics_prometheus_exposition_parses(model_artifact, tmp_path):
    server = make_server(model_artifact, tmp_path)
    try:
        classify(server, payloads(3, tag="prom"))
        status, headers, text = request_text(
            server.port, "GET", "/metrics?format=prometheus")
        status_json, _, snapshot = request_json(server.port, "GET",
                                                "/metrics")
        status_bad, _, _ = request_json(server.port, "GET",
                                        "/metrics?format=xml")
    finally:
        server.shutdown()
    assert status == 200
    assert headers["Content-Type"].startswith("text/plain; version=0.0.4")
    families = parse_prometheus(text)              # raises on bad format
    assert families["http_requests_total"]["type"] == "counter"
    assert families["request_latency_seconds"]["type"] == "histogram"
    stage_samples = families["stage_latency_seconds"]["samples"]
    stages = {labels["stage"] for _, labels, _ in stage_samples
              if "stage" in labels}
    assert CLASSIFY_STAGES <= stages
    # The JSON snapshot keeps its pre-existing shape alongside.
    assert status_json == 200
    assert snapshot["http_requests_total"] >= 1
    assert snapshot["stage_latency_seconds"]["labels"] == \
        ["stage", "shard", "worker"]
    assert status_bad == 400


# ------------------------------------------------------------ /debug/profile
def test_debug_profile_is_gated_by_flag(model_artifact, tmp_path):
    server = make_server(model_artifact, tmp_path)
    try:
        status, _, body = request_json(server.port, "GET", "/debug/profile")
        assert status == 403
        assert "--enable-profiling" in body["error"]
    finally:
        server.shutdown()


def test_debug_profile_captures_batches_in_window(model_artifact, tmp_path):
    config = ServerConfig(port=0, workers=2, enable_profiling=True)
    server = make_server(model_artifact, tmp_path, config=config)
    stop = threading.Event()

    def traffic():
        n = 0
        while not stop.is_set():
            classify(server, payloads(1, tag=f"prof-{n}"))
            n += 1

    thread = threading.Thread(target=traffic)
    thread.start()
    try:
        status, _, text = request_text(
            server.port, "GET", "/debug/profile?seconds=0.5")
        status_bad, _, _ = request_text(
            server.port, "GET", "/debug/profile?seconds=banana")
        status_zero, _, _ = request_text(
            server.port, "GET", "/debug/profile?seconds=0")
    finally:
        stop.set()
        thread.join()
        server.shutdown()
    assert status == 200
    assert "profiled" in text and "worker thread" in text
    assert "cumtime" in text                       # pstats table rendered
    assert status_bad == 400
    assert status_zero == 400
