"""Tests for the CTPH (SSDeep) digest computation."""

import random

import pytest

from repro.exceptions import DigestFormatError, HashingError
from repro.hashing.b64 import B64_ALPHABET, is_digest_alphabet
from repro.hashing.ssdeep import (
    MIN_BLOCKSIZE,
    SPAMSUM_LENGTH,
    FuzzyHasher,
    SsdeepDigest,
    fuzzy_hash,
    fuzzy_hash_file,
)


def test_digest_has_three_fields_and_valid_alphabet():
    digest = fuzzy_hash(random.Random(0).randbytes(4096))
    parsed = SsdeepDigest.parse(digest)
    assert parsed.block_size >= MIN_BLOCKSIZE
    assert 0 < len(parsed.chunk) <= SPAMSUM_LENGTH
    assert 0 < len(parsed.double_chunk) <= SPAMSUM_LENGTH // 2
    assert is_digest_alphabet(parsed.chunk)
    assert is_digest_alphabet(parsed.double_chunk)


def test_block_size_is_min_blocksize_times_power_of_two():
    for size in (10, 1_000, 20_000, 200_000):
        digest = SsdeepDigest.parse(fuzzy_hash(random.Random(size).randbytes(size)))
        ratio = digest.block_size / MIN_BLOCKSIZE
        assert ratio == int(ratio)
        assert int(ratio) & (int(ratio) - 1) == 0  # power of two


def test_deterministic():
    data = random.Random(1).randbytes(10_000)
    assert fuzzy_hash(data) == fuzzy_hash(data)


def test_different_inputs_give_different_digests():
    a = fuzzy_hash(random.Random(2).randbytes(8192))
    b = fuzzy_hash(random.Random(3).randbytes(8192))
    assert a != b


def test_empty_input():
    digest = FuzzyHasher().hash(b"")
    assert digest.is_empty
    assert str(digest) == f"{MIN_BLOCKSIZE}::"


def test_text_input_is_utf8_encoded():
    assert fuzzy_hash("some text input") == fuzzy_hash(b"some text input")


def test_small_input_uses_min_blocksize():
    digest = SsdeepDigest.parse(fuzzy_hash(b"tiny"))
    assert digest.block_size == MIN_BLOCKSIZE


def test_block_size_grows_with_input_size():
    small = SsdeepDigest.parse(fuzzy_hash(random.Random(4).randbytes(1_000)))
    large = SsdeepDigest.parse(fuzzy_hash(random.Random(5).randbytes(100_000)))
    assert large.block_size > small.block_size


def test_chunk_signature_is_about_full_length_for_random_data():
    # The retry loop halves the block size until the signature has at
    # least SPAMSUM_LENGTH/2 characters (for inputs large enough).
    digest = SsdeepDigest.parse(fuzzy_hash(random.Random(6).randbytes(50_000)))
    assert len(digest.chunk) >= SPAMSUM_LENGTH // 2


def test_hash_file(tmp_path):
    data = random.Random(7).randbytes(5000)
    path = tmp_path / "binary.bin"
    path.write_bytes(data)
    assert fuzzy_hash_file(path) == fuzzy_hash(data)


def test_hash_many_preserves_order():
    hasher = FuzzyHasher()
    items = [b"first input", b"second input", b"third input"]
    digests = hasher.hash_many(items)
    assert [str(d) for d in digests] == [str(hasher.hash(i)) for i in items]


def test_parse_rejects_malformed_digests():
    with pytest.raises(DigestFormatError):
        SsdeepDigest.parse("notadigest")
    with pytest.raises(DigestFormatError):
        SsdeepDigest.parse("abc:def")          # only two fields
    with pytest.raises(DigestFormatError):
        SsdeepDigest.parse("x:ABC:DEF")        # non-integer block size
    with pytest.raises(DigestFormatError):
        SsdeepDigest.parse("1:ABC:DEF")        # block size below minimum
    with pytest.raises(DigestFormatError):
        SsdeepDigest.parse("3:A!C:DEF")        # invalid alphabet
    with pytest.raises(DigestFormatError):
        SsdeepDigest.parse(1234)               # not a string


def test_roundtrip_parse_format():
    digest = fuzzy_hash(random.Random(8).randbytes(3000))
    assert str(SsdeepDigest.parse(digest)) == digest


def test_invalid_hasher_configuration():
    with pytest.raises(HashingError):
        FuzzyHasher(min_blocksize=0)
    with pytest.raises(HashingError):
        FuzzyHasher(spamsum_length=7)  # must be even


def test_alphabet_is_standard_base64():
    assert len(B64_ALPHABET) == 64
    assert len(set(B64_ALPHABET)) == 64


def test_hash_file_reads_in_bounded_chunks(tmp_path):
    """A tiny chunk size must yield the same digest as one big read."""

    data = random.Random(5).randbytes(40_000)
    path = tmp_path / "streamed.bin"
    path.write_bytes(data)
    hasher = FuzzyHasher()
    assert hasher.hash_file(path, chunk_size=7) == hasher.hash(data)
    assert hasher.hash_file(path, chunk_size=1 << 16) == hasher.hash(data)


def test_hash_file_enforces_max_bytes(tmp_path):
    data = random.Random(6).randbytes(10_000)
    path = tmp_path / "big.bin"
    path.write_bytes(data)
    hasher = FuzzyHasher()
    with pytest.raises(HashingError, match="hashing limit"):
        hasher.hash_file(path, max_bytes=9_999)
    # At exactly the limit, and with the cap disabled, hashing succeeds.
    assert hasher.hash_file(path, max_bytes=10_000) == hasher.hash(data)
    assert hasher.hash_file(path, max_bytes=None) == hasher.hash(data)


def test_hash_file_rejects_bad_parameters(tmp_path):
    path = tmp_path / "x.bin"
    path.write_bytes(b"abc")
    with pytest.raises(HashingError):
        FuzzyHasher().hash_file(path, chunk_size=0)
    with pytest.raises(HashingError):
        FuzzyHasher().hash_file(path, max_bytes=-1)
