"""Tests for the ``repro-classify index`` sub-commands, in particular
the operator-facing error paths: a missing or corrupt index file must
exit non-zero with a one-line message, never a traceback."""

import pytest

from repro.cli import build_parser, main
from repro.hashing.ssdeep import fuzzy_hash
from repro.index import SimilarityIndex

from test_index_core import make_corpus


@pytest.fixture(scope="module")
def index_file(tmp_path_factory):
    index = SimilarityIndex(["ssdeep-file"])
    index.add_many(make_corpus(40, seed=5))
    return str(index.save(tmp_path_factory.mktemp("idx") / "corpus.rpsi"))


def test_parser_lists_index_subcommands():
    text = build_parser().format_help()
    assert "index" in text


def test_index_stats_command(index_file, capsys):
    assert main(["index", "stats", index_file]) == 0
    out = capsys.readouterr().out
    assert "members: 40" in out
    assert "ssdeep-file" in out
    assert "postings" in out


def test_index_query_with_digest(index_file, capsys):
    corpus = make_corpus(40, seed=5)
    digest = corpus[3][1]["ssdeep-file"]
    assert main(["index", "query", index_file, digest, "--digest", "-k", "5"]) == 0
    out = capsys.readouterr().out
    assert "s0003" in out          # the member itself scores 100
    assert "100" in out
    assert "fam3" in out


def test_index_query_no_matches(index_file, capsys):
    lonely = fuzzy_hash(bytes(range(256)) * 40)
    assert main(["index", "query", index_file, lonely, "--digest",
                 "--min-score", "95"]) == 0
    assert "no matches" in capsys.readouterr().out


def test_index_build_from_features_json(tmp_path, capsys):
    from repro.features.records import SampleFeatures, features_to_json

    corpus = make_corpus(10, seed=9)
    records = [SampleFeatures(sample_id=sid, class_name=cls, version="1",
                              executable=sid, digests=digests)
               for sid, digests, cls in corpus]
    source = tmp_path / "features.json"
    source.write_text(features_to_json(records), encoding="utf-8")
    out_file = tmp_path / "built.rpsi"
    assert main(["index", "build", str(source), "-o", str(out_file),
                 "--types", "ssdeep-file"]) == 0
    assert "indexed 10 samples" in capsys.readouterr().out
    assert SimilarityIndex.load(out_file).n_members == 10


# -------------------------------------------------------------- error paths
def test_query_missing_index_exits_nonzero(tmp_path, capsys):
    missing = str(tmp_path / "missing.rpsi")
    code = main(["index", "query", missing, "3:abcdefgh:ijkl", "--digest"])
    captured = capsys.readouterr()
    assert code == 2
    assert "error:" in captured.err
    assert "does not exist" in captured.err
    assert "Traceback" not in captured.err


def test_query_corrupt_index_exits_nonzero(tmp_path, capsys):
    corrupt = tmp_path / "corrupt.rpsi"
    corrupt.write_bytes(b"\x00\x01garbage" * 64)
    code = main(["index", "query", str(corrupt), "3:abcdefgh:ijkl", "--digest"])
    captured = capsys.readouterr()
    assert code == 2
    assert "error:" in captured.err
    assert "Traceback" not in captured.err


def test_stats_truncated_index_exits_nonzero(index_file, tmp_path, capsys):
    from pathlib import Path

    truncated = tmp_path / "truncated.rpsi"
    truncated.write_bytes(Path(index_file).read_bytes()[:-30])
    code = main(["index", "stats", str(truncated)])
    captured = capsys.readouterr()
    assert code == 2
    assert "truncated" in captured.err
    assert "Traceback" not in captured.err


def test_query_invalid_digest_exits_nonzero(index_file, capsys):
    code = main(["index", "query", index_file, "definitely-not-a-digest",
                 "--digest"])
    captured = capsys.readouterr()
    assert code == 2
    assert "error:" in captured.err


def test_build_from_nonexistent_source_exits_nonzero(tmp_path, capsys):
    code = main(["index", "build", str(tmp_path / "nothing"),
                 "-o", str(tmp_path / "out.rpsi")])
    captured = capsys.readouterr()
    assert code == 2
    assert "neither a software tree" in captured.err


def test_build_from_binary_source_exits_nonzero(tmp_path, capsys):
    """Passing a non-JSON file (e.g. an index by mistake) must give a
    one-line error, not a UnicodeDecodeError traceback."""

    source = tmp_path / "binary.rpsi"
    source.write_bytes(bytes(range(256)) * 8)
    code = main(["index", "build", str(source),
                 "-o", str(tmp_path / "out.rpsi")])
    captured = capsys.readouterr()
    assert code == 2
    assert "error:" in captured.err
    assert "Traceback" not in captured.err


def test_build_rejects_types_absent_from_source(tmp_path, capsys):
    """--types naming a feature absent from every record must fail loudly
    instead of silently building a dead index."""

    from repro.features.records import SampleFeatures, features_to_json

    corpus = make_corpus(5, seed=3)       # ssdeep-file digests only
    records = [SampleFeatures(sample_id=sid, class_name=cls, version="1",
                              executable=sid, digests=digests)
               for sid, digests, cls in corpus]
    source = tmp_path / "features.json"
    source.write_text(features_to_json(records), encoding="utf-8")
    code = main(["index", "build", str(source),
                 "-o", str(tmp_path / "out.rpsi"),
                 "--types", "ssdeep-strings"])
    captured = capsys.readouterr()
    assert code == 2
    assert "ssdeep-strings" in captured.err
    assert "available" in captured.err


def test_classifier_rejects_index_missing_training_classes():
    from repro.core.classifier import FuzzyHashClassifier
    from repro.exceptions import ValidationError
    from repro.features.records import SampleFeatures

    corpus = make_corpus(20, seed=13, n_families=4)
    records = [SampleFeatures(sample_id=sid, class_name=cls, version="1",
                              executable=sid, digests=digests)
               for sid, digests, cls in corpus]
    stale = SimilarityIndex(["ssdeep-file"])
    stale.add_many(r for r in records if r.class_name != "fam0")
    clf = FuzzyHashClassifier(feature_types=["ssdeep-file"], n_estimators=5,
                              random_state=0)
    with pytest.raises(ValidationError, match="fam0"):
        clf.fit(records, index=stale)
