"""Tests for the ``strings`` equivalent."""

import pytest

from repro.binfmt.strings_extract import DEFAULT_MIN_LENGTH, extract_strings, strings_output


def test_default_min_length_is_four():
    assert DEFAULT_MIN_LENGTH == 4


def test_finds_printable_runs():
    data = b"\x00\x01hello world\x02\x7f\x80usage: tool\xff"
    runs = extract_strings(data)
    assert "hello world" in runs
    assert "usage: tool" in runs


def test_respects_min_length():
    data = b"\x00abc\x00abcd\x00abcde\x00"
    assert extract_strings(data) == ["abcd", "abcde"]
    assert extract_strings(data, min_length=5) == ["abcde"]
    assert extract_strings(data, min_length=2) == ["abc", "abcd", "abcde"]


def test_tab_counts_as_printable_but_newline_does_not():
    data = b"\x00col1\tcol2\x00line1\nline2\x00"
    runs = extract_strings(data)
    assert "col1\tcol2" in runs
    assert "line1\nline2" not in runs
    assert "line1" in runs and "line2" in runs


def test_run_at_start_and_end_of_buffer():
    data = b"leading text\x00\x01\x02trailing text"
    runs = extract_strings(data)
    assert runs[0] == "leading text"
    assert runs[-1] == "trailing text"


def test_entirely_printable_buffer():
    data = b"only printable content here"
    assert extract_strings(data) == ["only printable content here"]


def test_empty_and_binary_only_input():
    assert extract_strings(b"") == []
    assert extract_strings(bytes(range(0, 8)) * 10) == []


def test_invalid_min_length():
    with pytest.raises(ValueError):
        extract_strings(b"abc", min_length=0)


def test_strings_output_format():
    data = b"\x00first\x00\x01second\x00"
    text = strings_output(data)
    assert text == "first\nsecond\n"
    assert strings_output(b"\x00\x01\x02") == ""


def test_order_of_appearance_preserved():
    data = b"\x00zzzz\x00aaaa\x00mmmm\x00"
    assert extract_strings(data) == ["zzzz", "aaaa", "mmmm"]
