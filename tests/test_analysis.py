"""Tests for the analysis helpers (importance, misclassification, usage)."""

import numpy as np
import pytest

from repro.analysis.importance import group_importances, importance_by_class
from repro.analysis.misclassification import confused_pairs, per_class_discrepancies
from repro.analysis.usage_report import build_usage_report
from repro.exceptions import ValidationError


def test_group_importances_sums_and_normalises():
    importances = [0.1, 0.2, 0.3, 0.4]
    groups = {"file": [0, 1], "symbols": [2, 3]}
    grouped = group_importances(importances, groups)
    assert grouped["file"] == pytest.approx(0.3)
    assert grouped["symbols"] == pytest.approx(0.7)
    assert sum(grouped.values()) == pytest.approx(1.0)


def test_group_importances_handles_all_zero():
    grouped = group_importances([0.0, 0.0], {"a": [0], "b": [1]})
    assert grouped == {"a": 0.0, "b": 0.0}


def test_group_importances_validation():
    with pytest.raises(ValidationError):
        group_importances([[0.1]], {"a": [0]})
    with pytest.raises(ValidationError):
        group_importances([0.1], {"a": [5]})


def test_importance_by_class_top_columns():
    importances = [0.05, 0.6, 0.35]
    names = ["ssdeep-file|A", "ssdeep-symbols|B", "ssdeep-symbols|A"]
    top = importance_by_class(importances, names, top=2)
    assert top[0] == ("ssdeep-symbols|B", 0.6)
    assert len(top) == 2
    with pytest.raises(ValidationError):
        importance_by_class([0.1], ["a", "b"])


def test_confused_pairs_orders_by_frequency():
    y_true = ["CellRanger"] * 5 + ["Cell-Ranger"] * 3 + ["FSL"] * 4
    y_pred = ["Cell-Ranger"] * 5 + ["CellRanger"] * 2 + ["Cell-Ranger"] + ["FSL"] * 4
    pairs = confused_pairs(y_true, y_pred)
    assert pairs[0].true_class == "CellRanger"
    assert pairs[0].predicted_class == "Cell-Ranger"
    assert pairs[0].count == 5
    assert "predicted as" in pairs[0].describe()
    # Correct predictions are not reported.
    assert all(p.true_class != p.predicted_class for p in pairs)


def test_confused_pairs_can_include_correct():
    pairs = confused_pairs(["a", "a"], ["a", "a"], ignore_correct=False)
    assert pairs[0].count == 2


def test_per_class_discrepancies_flags_imbalanced_precision_recall():
    # Class "BigDFT"-like: everything predicted as it (high recall, low precision).
    y_true = ["BigDFT"] * 10 + ["Other"] * 10
    y_pred = ["BigDFT"] * 10 + ["BigDFT"] * 6 + ["Other"] * 4
    rows = per_class_discrepancies(y_true, y_pred, min_support=5, min_gap=0.2)
    assert any(row["class"] == "BigDFT" for row in rows)
    big = [row for row in rows if row["class"] == "BigDFT"][0]
    assert big["recall"] > big["precision"]


def test_per_class_discrepancies_respects_min_support():
    rows = per_class_discrepancies(["a"] * 2 + ["b"] * 2, ["b", "a", "b", "b"],
                                   min_support=5)
    assert rows == []


def test_usage_report_aggregates_and_flags_deviations():
    predictions = ["GROMACS", "GROMACS", "LAMMPS", -1, "Miner"]
    users = ["alice", "alice", "bob", "bob", "alice"]
    report = build_usage_report(
        predictions, users=users,
        allowed_per_user={"alice": ["GROMACS"], "bob": ["LAMMPS"]})
    assert report.class_counts["GROMACS"] == 2
    assert report.unknown_count == 1
    assert report.per_user_counts["bob"]["<unknown>"] == 1
    assert len(report.deviations) == 1
    assert report.deviations[0]["user"] == "alice"
    assert report.deviations[0]["class"] == "Miner"
    text = report.as_text()
    assert "GROMACS" in text and "deviations" in text.lower()


def test_usage_report_without_users():
    report = build_usage_report(["App"] * 3 + [-1])
    assert report.class_counts == {"App": 3}
    assert report.unknown_count == 1
    assert report.top_classes() == [("App", 3)]


def test_usage_report_length_mismatch():
    with pytest.raises(ValueError):
        build_usage_report(["a"], users=["u1", "u2"])
