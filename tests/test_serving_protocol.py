"""Unit tests for the serving wire protocol
(``repro.serving.protocol``): request parsing for both submission
styles, the payload caps, and JSON encoding of decisions.
"""

import base64
import json

import pytest

from repro.api.service import Decision
from repro.exceptions import ProtocolError, ReproError
from repro.serving.protocol import (
    decision_to_dict,
    encode_decisions,
    parse_classify_request,
)


def body(items):
    return json.dumps({"items": items}).encode("utf-8")


def b64(data: bytes) -> str:
    return base64.b64encode(data).decode("ascii")


def test_parses_inline_and_path_items_in_order(tmp_path):
    exe = tmp_path / "exe.bin"
    exe.write_bytes(b"from-disk")
    work = parse_classify_request(body([
        {"id": "inline-1", "data": b64(b"from-wire")},
        {"id": "local-2", "path": str(exe)},
    ]))
    assert [(w.sample_id, w.data) for w in work] == \
        [("inline-1", b"from-wire"), ("local-2", b"from-disk")]


@pytest.mark.parametrize("raw", [
    b"not json at all",
    b"[1, 2, 3]",
    b'{"no_items": true}',
    b'{"items": []}',
    b'{"items": ["not-an-object"]}',
    b'{"items": [{"data": "QQ=="}]}',                       # missing id
    b'{"items": [{"id": "", "data": "QQ=="}]}',             # empty id
    b'{"items": [{"id": "x"}]}',                            # neither field
    b'{"items": [{"id": "x", "data": "QQ==", "path": "/p"}]}',  # both
    b'{"items": [{"id": "x", "data": "@@not-base64@@"}]}',
    b'{"items": [{"id": "x", "data": ""}]}',                # empty payload
    b'{"items": [{"id": "x", "path": "/no/such/file"}]}',
])
def test_malformed_requests_raise_protocol_error(raw):
    with pytest.raises(ProtocolError):
        parse_classify_request(raw)
    # ProtocolError stays inside the library's exception hierarchy.
    assert issubclass(ProtocolError, ReproError)
    assert issubclass(ProtocolError, ValueError)


def test_item_count_cap():
    items = [{"id": f"i{n}", "data": b64(b"x")} for n in range(3)]
    with pytest.raises(ProtocolError, match="per-request cap"):
        parse_classify_request(body(items), max_items=2)
    assert len(parse_classify_request(body(items), max_items=3)) == 3


def test_payload_cap_applies_to_inline_and_path(tmp_path):
    big = tmp_path / "big.bin"
    big.write_bytes(b"x" * 64)
    with pytest.raises(ProtocolError, match="cap"):
        parse_classify_request(body([{"id": "a", "data": b64(b"y" * 64)}]),
                               max_item_bytes=32)
    with pytest.raises(ProtocolError, match="cap"):
        parse_classify_request(body([{"id": "a", "path": str(big)}]),
                               max_item_bytes=32)


def test_decision_round_trips_through_json_bit_identically():
    decision = Decision(sample_id="node/job/a.out",
                        predicted_class="GROMACS",
                        confidence=0.123456789012345678,
                        decision="within-allocation")
    unknown = Decision(sample_id="b", predicted_class=-1, confidence=0.25,
                       decision="unknown-application")
    encoded = encode_decisions([decision, unknown], generation=3)
    payload = json.loads(encoded)
    assert payload["model_generation"] == 3
    assert payload["count"] == 2
    assert payload["decisions"][0] == decision_to_dict(decision)
    # json round-trips Python floats exactly (shortest-repr), which is
    # what makes served decisions bit-identical to classify_bytes.
    assert payload["decisions"][0]["confidence"] == decision.confidence
    assert payload["decisions"][1]["predicted_class"] == -1


def test_decision_to_dict_stringifies_exotic_classes():
    decision = Decision(sample_id="s", predicted_class=("tuple", "class"),
                        confidence=0.5, decision="unknown-application")
    assert decision_to_dict(decision)["predicted_class"] == \
        str(("tuple", "class"))
