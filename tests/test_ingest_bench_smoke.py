"""Tier-1 perf smoke for online ingestion.

Runs ``benchmarks/bench_ingest.py`` at reduced cost so a regression
that loses ingested members, breaks publish/reload identity, or starves
classification during ingest fails the default test run, not just a
manually-invoked benchmark.  The full-cost configuration is marked
``slow`` (``pytest -m slow`` opts in).
"""

import importlib.util
import sys
from pathlib import Path

import pytest

_BENCH_PATH = Path(__file__).resolve().parents[1] / "benchmarks" / \
    "bench_ingest.py"


@pytest.fixture(scope="module")
def bench():
    spec = importlib.util.spec_from_file_location("bench_ingest",
                                                  _BENCH_PATH)
    module = importlib.util.module_from_spec(spec)
    sys.modules.setdefault("bench_ingest", module)
    spec.loader.exec_module(module)
    return module


def test_quick_benchmark_accounting_and_identity(bench):
    result = bench.run(n_estimators=40, n_ingest=16, n_clients=4)
    assert result.corpus_accounted, \
        (f"corpus accounting broke: {result.members_before} + "
         f"{result.n_ingested} != {result.members_after} live / "
         f"{result.reloaded_members} reloaded")
    assert result.decisions_match, \
        "live decisions diverged from the published artifact"
    # Classification kept flowing while the corpus grew.
    assert result.classify_requests_during_ingest >= 1
    # Conservative rate floor so a loaded CI machine cannot flake it;
    # the full benchmark enforces the real --min-ingest-rate floor.
    assert result.ingest_rate >= 2.0, \
        f"ingest rate collapsed to {result.ingest_rate:.2f} samples/s"


def test_benchmark_cli_mode(bench, capsys, tmp_path, monkeypatch):
    monkeypatch.setattr(bench, "OUTPUT_DIR", tmp_path)
    code = bench.main(["--quick", "--estimators", "40", "--samples", "12",
                       "--clients", "4", "--min-ingest-rate", "1"])
    out = capsys.readouterr().out
    assert code == 0
    assert "sustained ingest rate" in out
    assert (tmp_path / "bench_ingest.txt").is_file()
    assert (tmp_path / "BENCH_ingest.json").is_file()


@pytest.mark.slow
def test_full_benchmark_meets_rate_floor(bench):
    """The full configuration: 96 samples, 8 clients, >=10 samples/s."""

    result = bench.run(n_estimators=60, n_ingest=96, n_clients=8)
    assert result.corpus_accounted
    assert result.decisions_match
    assert result.ingest_rate >= 10.0
