"""Tests for the two-phase train/test split."""

import numpy as np
import pytest

from repro.core.splits import two_phase_split
from repro.corpus.catalog import PAPER_UNKNOWN_CLASSES
from repro.exceptions import ValidationError


def _labels():
    labels = []
    for name, count in [("A", 40), ("B", 25), ("C", 10), ("D", 6), ("E", 4),
                        ("Schrodinger", 12), ("SAMtools", 8)]:
        labels += [name] * count
    return labels


def test_split_partitions_all_samples():
    labels = _labels()
    split = two_phase_split(labels, random_state=0)
    assert split.n_train + split.n_test == len(labels)
    assert set(split.train_indices.tolist()) & set(split.test_indices.tolist()) == set()


def test_unknown_classes_never_in_training():
    labels = _labels()
    split = two_phase_split(labels, random_state=3)
    for class_name in split.unknown_classes:
        assert class_name not in split.train_labels
    # All unknown-class samples are in the test set.
    unknown_total = sum(labels.count(c) for c in split.unknown_classes)
    assert split.n_unknown_test == unknown_total


def test_expected_labels_use_unknown_marker():
    labels = _labels()
    split = two_phase_split(labels, random_state=1, unknown_label=-1)
    for true_label, expected in zip(split.test_labels, split.expected_test_labels):
        if true_label in split.unknown_classes:
            assert expected == -1
        else:
            assert expected == true_label


def test_known_classes_split_roughly_60_40():
    labels = _labels()
    split = two_phase_split(labels, test_sample_fraction=0.4, random_state=5)
    for class_name in split.known_classes:
        total = labels.count(class_name)
        in_train = split.train_labels.count(class_name)
        in_test = split.test_labels.count(class_name)
        assert in_train + in_test == total
        assert in_test == pytest.approx(total * 0.4, abs=1)


def test_class_fraction_controls_unknown_count():
    labels = _labels()
    small = two_phase_split(labels, unknown_class_fraction=0.15, random_state=2)
    large = two_phase_split(labels, unknown_class_fraction=0.5, random_state=2)
    assert len(large.unknown_classes) >= len(small.unknown_classes)


def test_paper_mode_uses_table3_classes():
    labels = _labels()
    split = two_phase_split(labels, mode="paper", random_state=0)
    assert set(split.unknown_classes) == {"Schrodinger", "SAMtools"}
    assert all(c in PAPER_UNKNOWN_CLASSES for c in split.unknown_classes)


def test_paper_mode_requires_table3_class_present():
    with pytest.raises(ValidationError):
        two_phase_split(["A"] * 5 + ["B"] * 5, mode="paper")


def test_explicit_mode():
    labels = _labels()
    split = two_phase_split(labels, mode="explicit", unknown_classes=["C", "D"])
    assert split.unknown_classes == ["C", "D"]
    with pytest.raises(ValidationError):
        two_phase_split(labels, mode="explicit")
    with pytest.raises(ValidationError):
        two_phase_split(labels, mode="explicit", unknown_classes=["NotThere"])


def test_deterministic_given_seed():
    labels = _labels()
    a = two_phase_split(labels, random_state=11)
    b = two_phase_split(labels, random_state=11)
    assert a.unknown_classes == b.unknown_classes
    assert a.train_indices.tolist() == b.train_indices.tolist()


def test_unknown_class_counts_table():
    labels = _labels()
    split = two_phase_split(labels, mode="paper", random_state=0)
    counts = split.unknown_class_counts()
    assert counts == {"Schrodinger": 12, "SAMtools": 8}


def test_validation_errors():
    with pytest.raises(ValidationError):
        two_phase_split([])
    with pytest.raises(ValidationError):
        two_phase_split(["only-one-class"] * 10)
    with pytest.raises(ValidationError):
        two_phase_split(_labels(), unknown_class_fraction=1.5)
    with pytest.raises(ValidationError):
        two_phase_split(_labels(), mode="bogus")


def test_summary_text():
    split = two_phase_split(_labels(), random_state=0)
    text = split.summary()
    assert "known classes" in text and "train" in text
