"""Tests for the v4 aligned container layout and the zero-copy mmap
load mode (``repro.index.storage`` and the loaders built on it).

Covers the alignment invariant, bit-identical mapped round trips,
read-only view semantics, survival of the mapping across
``os.replace``, legacy (v1–v3, unpadded) files loading bit-identically
through the materialising fallback, write durability (fsync of the
temp file and its directory), and the serving hot-reload path keeping
a stable file-descriptor count under repeated mapped reloads.
"""

import json
import os
import struct

import numpy as np
import pytest

from repro.exceptions import IndexFormatError
from repro.index import SimilarityIndex
from repro.index.storage import (
    ARRAY_ALIGNMENT,
    FORMAT_VERSION,
    MAGIC,
    read_container,
    write_container,
)

from test_index_core import make_corpus

PREAMBLE = struct.Struct("<8sIQ")


def sample_arrays():
    rng = np.random.default_rng(7)
    return {
        "small": np.arange(5, dtype=np.int64),
        "matrix": rng.integers(0, 2**63, size=(17, 3)).astype("<u8"),
        "bytes": rng.integers(0, 256, size=201).astype("|u1"),
        "empty": np.zeros(0, dtype=np.int32),
        "wide": np.arange(33, dtype=np.int16),
    }


def payload_offsets(path):
    """``(name, offset, n_bytes)`` per array, derived like the reader."""

    data = path.read_bytes()
    _magic, _version, header_len = PREAMBLE.unpack_from(data)
    header = json.loads(data[PREAMBLE.size:PREAMBLE.size + header_len])
    align = header.get("payload_alignment", 1)
    offset = PREAMBLE.size + header_len
    plan = []
    for descriptor in header["arrays"]:
        offset += -offset % align
        n_bytes = np.dtype(descriptor["dtype"]).itemsize * int(
            np.prod(descriptor["shape"], dtype=np.int64))
        plan.append((descriptor["name"], offset, n_bytes))
        offset += n_bytes
    return header, plan


def downgrade_to_unpadded(path, out_path, *, version=3):
    """Re-emit a v4 container as an old-style packed (unpadded) file."""

    data = path.read_bytes()
    magic, _version, header_len = PREAMBLE.unpack_from(data)
    header = json.loads(data[PREAMBLE.size:PREAMBLE.size + header_len])
    header.pop("payload_alignment")
    header["format_version"] = version
    _header, plan = payload_offsets(path)
    new_header = json.dumps(header, separators=(",", ":"),
                            sort_keys=True).encode("utf-8")
    out = bytearray(PREAMBLE.pack(magic, version, len(new_header)))
    out += new_header
    for _name, offset, n_bytes in plan:
        out += data[offset:offset + n_bytes]
    out_path.write_bytes(bytes(out))
    return out_path


# ----------------------------------------------------------- v4 layout
def test_v4_payloads_start_on_aligned_offsets(tmp_path):
    path = write_container(tmp_path / "c.rpsi", {"k": 1}, sample_arrays())
    header, plan = payload_offsets(path)
    assert header["format_version"] == FORMAT_VERSION == 4
    assert header["payload_alignment"] == ARRAY_ALIGNMENT == 64
    for name, offset, _n_bytes in plan:
        assert offset % ARRAY_ALIGNMENT == 0, name
    # The padding is real: the file is larger than the packed layout.
    _name, last_offset, last_bytes = plan[-1]
    assert path.stat().st_size == last_offset + last_bytes


def test_mmap_round_trip_is_bit_identical(tmp_path):
    arrays = sample_arrays()
    path = write_container(tmp_path / "c.rpsi", {"k": 1}, arrays)
    eager_header, eager = read_container(path)
    mapped_header, mapped = read_container(path, mmap_mode="r")
    assert mapped_header == eager_header
    assert set(mapped) == set(arrays)
    for name, original in arrays.items():
        assert np.array_equal(mapped[name], original), name
        assert np.array_equal(eager[name], original), name
        assert mapped[name].dtype == eager[name].dtype
        assert mapped[name].shape == eager[name].shape


def test_mmap_views_are_read_only(tmp_path):
    path = write_container(tmp_path / "c.rpsi", {}, sample_arrays())
    _header, arrays = read_container(path, mmap_mode="r")
    for name, array in arrays.items():
        if not array.size:
            continue
        assert not array.flags.writeable, name
        with pytest.raises(ValueError):
            array.reshape(-1)[0] = 0
    # The eager path still hands out private writeable arrays.
    _header, eager = read_container(path)
    for array in eager.values():
        assert array.flags.writeable


def test_unknown_mmap_mode_is_rejected(tmp_path):
    path = write_container(tmp_path / "c.rpsi", {}, sample_arrays())
    with pytest.raises(ValueError, match="mmap_mode"):
        read_container(path, mmap_mode="r+")


def test_mmap_views_survive_os_replace(tmp_path):
    arrays = sample_arrays()
    path = write_container(tmp_path / "c.rpsi", {"gen": 1}, arrays)
    _header, mapped = read_container(path, mmap_mode="r")
    # An operator publishes a different container over the same path.
    replacement = {"other": np.full(1000, 7, dtype=np.int64)}
    write_container(tmp_path / "next.rpsi", {"gen": 2}, replacement)
    os.replace(tmp_path / "next.rpsi", path)
    # The mapping pinned the old inode: every view still reads the
    # original bytes, bit-identically.
    for name, original in arrays.items():
        assert np.array_equal(mapped[name], original), name
    header, fresh = read_container(path, mmap_mode="r")
    assert header["gen"] == 2
    assert np.array_equal(fresh["other"], replacement["other"])


# -------------------------------------------------------- legacy files
def test_unpadded_legacy_container_loads_bit_identically(tmp_path):
    arrays = sample_arrays()
    modern = write_container(tmp_path / "modern.rpsi", {"k": 1}, arrays)
    for version in (3, 2):
        legacy = downgrade_to_unpadded(modern, tmp_path / f"v{version}.rpsi",
                                       version=version)
        assert legacy.stat().st_size < modern.stat().st_size
        header, loaded = read_container(legacy)
        assert header["format_version"] == version
        for name, original in arrays.items():
            assert np.array_equal(loaded[name], original), (version, name)
        # mmap_mode on an unaligned file silently falls back to the
        # materialising path: same arrays, but private and writeable.
        _header, fallback = read_container(legacy, mmap_mode="r")
        for name, original in arrays.items():
            assert np.array_equal(fallback[name], original), (version, name)
            assert fallback[name].flags.writeable or not original.size


def test_legacy_index_file_loads_and_answers_identically(tmp_path):
    corpus = make_corpus(24, seed=13)
    index = SimilarityIndex(["ssdeep-file"])
    index.add_many(corpus)
    modern = index.save(tmp_path / "modern.rpsi")
    legacy = downgrade_to_unpadded(modern, tmp_path / "legacy.rpsi")
    digest = corpus[0][1]["ssdeep-file"]
    expected = SimilarityIndex.load(modern).top_k(digest, k=5)
    assert expected  # the probe is a corpus member: never empty
    assert SimilarityIndex.load(legacy).top_k(digest, k=5) == expected
    assert SimilarityIndex.load(legacy, mmap_mode="r").top_k(digest, k=5) \
        == expected


def test_absurd_declared_alignment_is_rejected(tmp_path):
    path = write_container(tmp_path / "c.rpsi", {}, sample_arrays())
    data = bytearray(path.read_bytes())
    _magic, _version, header_len = PREAMBLE.unpack_from(data)
    header = json.loads(data[PREAMBLE.size:PREAMBLE.size + header_len])
    header["payload_alignment"] = "sixty-four"
    new_header = json.dumps(header, separators=(",", ":"),
                            sort_keys=True).encode("utf-8")
    # Keep the preamble length honest for the mutated header.
    out = PREAMBLE.pack(MAGIC, FORMAT_VERSION, len(new_header)) + new_header \
        + bytes(data[PREAMBLE.size + header_len:])
    bad = tmp_path / "bad.rpsi"
    bad.write_bytes(out)
    with pytest.raises(IndexFormatError, match="payload alignment"):
        read_container(bad)


# ----------------------------------------------------------- durability
def test_write_fsyncs_file_and_directory(tmp_path, monkeypatch):
    synced = []
    real_fsync = os.fsync

    def recording_fsync(fd):
        synced.append(os.fstat(fd).st_mode)
        return real_fsync(fd)

    monkeypatch.setattr(os, "fsync", recording_fsync)
    write_container(tmp_path / "c.rpsi", {}, sample_arrays())
    import stat

    # One fsync of the temp file (regular) and one of the parent
    # directory, in that order — the pair that makes the publish
    # crash-durable, not just atomic.
    assert len(synced) == 2
    assert stat.S_ISREG(synced[0])
    assert stat.S_ISDIR(synced[1])


# --------------------------------------------------- serving FD hygiene
@pytest.mark.skipif(not os.path.isdir("/proc/self/fd"),
                    reason="needs /proc (Linux)")
def test_mmap_hot_reload_does_not_leak_file_descriptors(tmp_path):
    from repro.api.service import ClassificationService
    from repro.serving.model_manager import ModelManager

    from test_api_artifact import make_records

    records = make_records(24, seed=3, n_families=3)
    service = ClassificationService.train(records,
                                          feature_types=["ssdeep-file"],
                                          n_estimators=6, random_state=0)
    live = tmp_path / "model.rpm"
    service.save(live)
    manager = ModelManager(live, poll_interval=0, mmap=True, cache_size=0)
    assert manager.load_mode == "mmap"
    items = [(r.sample_id, r.sample_id.encode() * 64) for r in records[:4]]
    baseline_decisions, _gen = manager.classify_items(items)

    def open_fds():
        return len(os.listdir("/proc/self/fd"))

    manager.classify_items(items)
    before = open_fds()
    for round_no in range(5):
        # Publish fresh bytes (new mtime/inode) and hot-reload: each
        # reload maps the new file and drops the old mapping with its
        # generation — no descriptor may survive either step.
        staging = tmp_path / f"stage-{round_no}.rpm"
        service.save(staging)
        os.replace(staging, live)
        assert manager.maybe_reload() is True
        decisions, _gen = manager.classify_items(items)
        assert decisions == baseline_decisions
    assert open_fds() == before
    assert manager.generation == 6
