"""Write-ahead-log tests: the record codec (round-trip and
torn/corrupt input handling), :class:`WriteAheadLog` recovery /
rollback / checkpoint semantics, and :class:`ModelManager` replay —
the durable-ingestion core of the serving tier.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ServingError, WALCorruptionError, WALError
from repro.serving.metrics import MetricsRegistry
from repro.serving.model_manager import ModelManager
from repro.serving.wal import (
    WAL_MAGIC,
    WALRecord,
    WriteAheadLog,
    decode_records,
    encode_record,
)
from repro.testing import FaultInjectedError, injector

from test_api_artifact import make_records


@pytest.fixture(autouse=True)
def _disarm_faults():
    injector.disarm()
    yield
    injector.disarm()


# ------------------------------------------------------------------ codec
_payload_values = st.one_of(
    st.integers(min_value=-2**31, max_value=2**31),
    st.text(max_size=30),
    st.booleans(),
    st.none(),
    st.lists(st.integers(min_value=0, max_value=255), max_size=4),
)
_payloads = st.dictionaries(
    keys=st.text(min_size=1, max_size=12).filter(
        lambda k: k not in ("seq", "op")),
    values=_payload_values, max_size=4)


@settings(max_examples=60, deadline=None)
@given(seq=st.integers(min_value=1, max_value=2**40),
       op=st.sampled_from(["ingest", "purge", "compact"]),
       payload=_payloads)
def test_record_round_trips_through_the_codec(seq, op, payload):
    record = WALRecord(seq=seq, op=op, payload=payload)
    records, valid, dropped = decode_records(encode_record(record))
    assert records == [record]
    assert valid == len(encode_record(record))
    assert dropped == 0


@settings(max_examples=25, deadline=None)
@given(payloads=st.lists(_payloads, min_size=1, max_size=6))
def test_record_streams_round_trip(payloads):
    written = [WALRecord(seq=i + 1, op="ingest", payload=p)
               for i, p in enumerate(payloads)]
    blob = b"".join(encode_record(r) for r in written)
    records, valid, dropped = decode_records(blob)
    assert records == written and valid == len(blob) and dropped == 0


def test_record_rejects_unknown_op_and_negative_seq():
    with pytest.raises(WALError, match="unknown WAL op"):
        WALRecord(seq=1, op="frobnicate", payload={})
    with pytest.raises(WALError, match="seq must be"):
        WALRecord(seq=-1, op="ingest", payload={})


def test_decode_rejects_non_monotonic_sequences():
    blob = (encode_record(WALRecord(seq=5, op="ingest", payload={})) +
            encode_record(WALRecord(seq=3, op="ingest", payload={})))
    with pytest.raises(WALCorruptionError, match="backwards"):
        decode_records(blob)


def test_torn_final_record_truncates_at_every_byte_offset(tmp_path):
    """Cutting the log anywhere inside its final record must recover
    exactly the earlier records — at *every* byte offset."""

    records = [WALRecord(seq=i + 1, op="ingest",
                         payload={"items": [[f"s{i}", "QUJD", "fam0"]]})
               for i in range(3)]
    frames = [encode_record(r) for r in records]
    intact = WAL_MAGIC + frames[0] + frames[1]
    full = intact + frames[2]
    path = tmp_path / "wal.log"
    for cut in range(len(intact), len(full)):
        path.write_bytes(full[:cut])
        wal = WriteAheadLog(path)
        recovery = wal.recover()
        assert recovery.records == tuple(records[:2]), f"cut at {cut}"
        assert recovery.truncated_bytes == cut - len(intact)
        assert recovery.dropped_records == 0
        assert wal.last_seq == 2
        # The torn bytes are physically gone: appends continue cleanly.
        assert wal.append("purge", {"sample_id": "x"}) == 3
        wal.close()
        reopened = WriteAheadLog(path)
        assert [r.seq for r in reopened.recover().records] == [1, 2, 3]
        reopened.close()


def test_mid_log_corruption_refuses_without_repair(tmp_path):
    frames = [encode_record(WALRecord(seq=i + 1, op="compact", payload={}))
              for i in range(3)]
    blob = bytearray(WAL_MAGIC + b"".join(frames))
    blob[len(WAL_MAGIC) + len(frames[0]) + 10] ^= 0xFF   # inside record 2
    path = tmp_path / "wal.log"
    path.write_bytes(bytes(blob))
    with pytest.raises(WALCorruptionError, match="before its final record"):
        WriteAheadLog(path).recover()
    # repair truncates at the first bad record and counts the losses.
    recovery = WriteAheadLog(path).recover(repair=True)
    assert [r.seq for r in recovery.records] == [1]
    assert recovery.dropped_records == 2


def test_recover_rejects_foreign_files_and_recreates_torn_magic(tmp_path):
    alien = tmp_path / "wal.log"
    alien.write_bytes(b"NOTAWAL0" + b"x" * 32)
    with pytest.raises(WALCorruptionError, match="bad magic"):
        WriteAheadLog(alien).recover()
    torn = tmp_path / "torn" / "wal.log"
    torn.parent.mkdir()
    torn.write_bytes(WAL_MAGIC[:3])
    recovery = WriteAheadLog(torn).recover()
    assert recovery.records == () and recovery.truncated_bytes == 3
    assert torn.read_bytes() == WAL_MAGIC


# ------------------------------------------------------------------- log
def test_append_sync_and_metrics(tmp_path):
    registry = MetricsRegistry()
    wal = WriteAheadLog(tmp_path / "d", metrics=registry)
    wal.recover()
    assert wal.append("ingest", {"items": []}, sync=False) == 1
    assert wal.append("ingest", {"items": []}, sync=False) == 2
    wal.sync()
    wal.sync()                      # nothing new: no extra fsync counted
    snapshot = registry.snapshot()
    assert snapshot["wal_records"] == 2
    assert snapshot["wal_fsyncs"] == 1
    assert snapshot["wal_bytes"] == wal.size_bytes - len(WAL_MAGIC)
    wal.close()


def test_rollback_discards_unsynced_records_only(tmp_path):
    wal = WriteAheadLog(tmp_path / "wal.log")
    wal.recover()
    wal.append("compact", {})                       # synced
    mark = wal.mark()
    wal.append("purge", {"sample_id": "x"}, sync=False)
    wal.rollback(mark)
    assert wal.last_seq == 1
    mark = wal.mark()
    wal.append("purge", {"sample_id": "y"}, sync=False)
    wal.sync()
    with pytest.raises(WALError, match="already"):
        wal.rollback(mark)                          # durable: refuse
    wal.close()
    assert [r.op for r in WriteAheadLog(wal.path).recover().records] == \
        ["compact", "purge"]


def test_checkpoint_truncates_and_preserves_sequence(tmp_path):
    wal = WriteAheadLog(tmp_path / "wal.log")
    wal.recover()
    for _ in range(4):
        wal.append("compact", {})
    with pytest.raises(WALError, match="reaches"):
        wal.checkpoint(sequence=2, generation=1)    # would drop 3 and 4
    wal.checkpoint(sequence=4, generation=7)
    assert wal.append("compact", {}) == 5           # seq never reused
    wal.close()
    recovery = WriteAheadLog(wal.path).recover()
    assert recovery.checkpoint == {"sequence": 4, "generation": 7}
    assert [r.seq for r in recovery.records] == [5]


def test_checkpoint_crash_before_replace_keeps_the_old_log(tmp_path):
    """A failure at the wal.checkpoint failpoint (just before the
    atomic os.replace) must leave the old log intact and appendable."""

    wal = WriteAheadLog(tmp_path / "wal.log")
    wal.recover()
    for _ in range(3):
        wal.append("compact", {})
    injector.arm("wal.checkpoint", "raise")
    with pytest.raises(FaultInjectedError):
        wal.checkpoint(sequence=3, generation=2)
    injector.disarm()
    assert wal.append("compact", {}) == 4           # still appendable
    wal.close()
    recovery = WriteAheadLog(wal.path).recover()
    assert recovery.checkpoint is None
    assert [r.seq for r in recovery.records] == [1, 2, 3, 4]


def test_wal_refuses_double_recover_and_append_before_recover(tmp_path):
    wal = WriteAheadLog(tmp_path / "wal.log")
    with pytest.raises(WALError, match="recover"):
        wal.append("compact", {})
    wal.recover()
    with pytest.raises(WALError, match="already open"):
        wal.recover()
    wal.close()


# -------------------------------------------------------- manager replay
@pytest.fixture(scope="module")
def trained_artifact(tmp_path_factory):
    from repro.api.service import ClassificationService

    directory = tmp_path_factory.mktemp("wal-models")
    records = make_records(30, seed=21, n_families=3)
    service = ClassificationService.train(
        records, feature_types=["ssdeep-file"], n_estimators=10,
        random_state=1, confidence_threshold=0.1)
    path = directory / "model.rpm"
    service.save(path)
    return path


def fresh_copy(source, tmp_path):
    target = tmp_path / "model.rpm"
    target.write_bytes(source.read_bytes())
    return target


def sample_blobs(n, *, seed=3):
    rng = np.random.default_rng(seed)
    return [(f"wal-{seed}-{i}",
             bytes(rng.integers(0, 256, size=4096, dtype=np.uint8)),
             "fam0") for i in range(n)]


def member_ids(manager):
    return list(manager.service.similarity_index.sample_ids)


def test_manager_requires_mutable_for_wal(trained_artifact, tmp_path):
    with pytest.raises(ServingError, match="mutable"):
        ModelManager(fresh_copy(trained_artifact, tmp_path),
                     poll_interval=0, wal_dir=tmp_path / "wal")


def test_manager_replay_is_idempotent(trained_artifact, tmp_path):
    model = fresh_copy(trained_artifact, tmp_path)
    wal_dir = tmp_path / "wal"
    first = ModelManager(model, poll_interval=0, mutable=True,
                         wal_dir=wal_dir, cache_size=0)
    first.ingest_items(sample_blobs(3))
    first.purge("wal-3-0")
    baseline = member_ids(first)
    first.stop()

    # Two successive reboots replay the same tail to the same corpus.
    for _ in range(2):
        rebooted = ModelManager(model, poll_interval=0, mutable=True,
                                wal_dir=wal_dir, cache_size=0)
        assert member_ids(rebooted) == baseline
        assert rebooted._replayed_at_boot == 2      # ingest + purge
        rebooted.stop()


def test_manager_publish_checkpoints_and_skips_replay(trained_artifact,
                                                      tmp_path):
    model = fresh_copy(trained_artifact, tmp_path)
    wal_dir = tmp_path / "wal"
    registry = MetricsRegistry()
    manager = ModelManager(model, poll_interval=0, mutable=True,
                           wal_dir=wal_dir, metrics=registry, cache_size=0)
    manager.ingest_items(sample_blobs(4, seed=11))
    manager.publish()
    durability = manager.durability_info()
    assert durability["last_checkpoint_sequence"] == 1
    assert durability["last_checkpoint_generation"] == 1
    assert registry.snapshot()["last_checkpoint_generation"] == 1
    baseline = member_ids(manager)
    manager.stop()

    rebooted = ModelManager(model, poll_interval=0, mutable=True,
                            wal_dir=wal_dir, cache_size=0)
    assert rebooted._replayed_at_boot == 0          # all checkpointed
    assert member_ids(rebooted) == baseline
    rebooted.stop()


def test_manager_skips_records_the_artifact_already_covers(trained_artifact,
                                                           tmp_path):
    """A crash *between* the artifact replace and the WAL truncation
    leaves stale records behind; replay must skip them (exactly-once)."""

    model = fresh_copy(trained_artifact, tmp_path)
    wal_dir = tmp_path / "wal"
    manager = ModelManager(model, poll_interval=0, mutable=True,
                           wal_dir=wal_dir, cache_size=0)
    manager.ingest_items(sample_blobs(3, seed=13))
    stale = (wal_dir / "wal.log").read_bytes()
    manager.publish()                               # checkpoint truncates
    baseline = member_ids(manager)
    manager.stop()

    # Re-install the pre-checkpoint log: the crash-window state.
    (wal_dir / "wal.log").write_bytes(stale)
    rebooted = ModelManager(model, poll_interval=0, mutable=True,
                            wal_dir=wal_dir, cache_size=0)
    assert rebooted._replayed_at_boot == 0
    assert member_ids(rebooted) == baseline         # applied exactly once
    rebooted.stop()


def test_manager_rolls_back_failed_ingest_records(trained_artifact,
                                                  tmp_path):
    from repro.exceptions import ValidationError

    model = fresh_copy(trained_artifact, tmp_path)
    wal_dir = tmp_path / "wal"
    manager = ModelManager(model, poll_interval=0, mutable=True,
                           wal_dir=wal_dir, cache_size=0)
    with pytest.raises(ValidationError, match="unknown class"):
        manager.ingest_items([("bad", b"\x00" * 64, "no-such-class")])
    removed, _ = manager.purge("never-there")       # no-op purge
    assert removed == 0
    assert manager._wal.last_seq == 0               # nothing kept
    manager.stop()
    recovery = WriteAheadLog(wal_dir / "wal.log").recover()
    assert recovery.records == ()
