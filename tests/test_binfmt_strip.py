"""Tests for the ``strip`` equivalent."""

import random

import pytest

from repro.binfmt.reader import ElfReader
from repro.binfmt.strings_extract import extract_strings
from repro.binfmt.structs import SymbolSpec
from repro.binfmt.strip import strip_symbols
from repro.binfmt.symbols import is_stripped
from repro.binfmt.writer import build_executable


@pytest.fixture()
def full_binary():
    return build_executable(
        code=random.Random(0).randbytes(1024),
        strings=["important banner text", "usage: tool FILE"],
        symbols=[SymbolSpec(f"api_call_{i}") for i in range(12)],
        comment="GCC: (GNU) 12.2.0",
    )


def test_strip_removes_symbol_table(full_binary):
    stripped = strip_symbols(full_binary)
    assert is_stripped(stripped)
    reader = ElfReader(stripped)
    assert not reader.has_symbol_table
    assert ".symtab" not in reader.section_names()
    assert ".strtab" not in reader.section_names()


def test_strip_preserves_other_sections(full_binary):
    original = ElfReader(full_binary)
    stripped = ElfReader(strip_symbols(full_binary))
    assert stripped.section(".text").data == original.section(".text").data
    assert stripped.section(".rodata").data == original.section(".rodata").data
    assert stripped.section(".comment").data == original.section(".comment").data


def test_strip_preserves_strings_feature(full_binary):
    stripped = strip_symbols(full_binary)
    assert "important banner text" in extract_strings(stripped)


def test_strip_shrinks_the_file(full_binary):
    assert len(strip_symbols(full_binary)) < len(full_binary)


def test_strip_is_idempotent(full_binary):
    once = strip_symbols(full_binary)
    twice = strip_symbols(once)
    assert ElfReader(twice).section_names() == ElfReader(once).section_names()


def test_stripped_output_is_still_valid_elf(full_binary):
    stripped = strip_symbols(full_binary)
    reader = ElfReader(stripped)
    assert reader.header.e_shnum == len(reader.section_headers)
    assert reader.section(".shstrtab") is not None
