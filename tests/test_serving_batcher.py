"""Unit tests for the request coalescer (``repro.serving.batcher``):
batch assembly across requests, per-request ordering, whole-request
batches, bounded-queue admission control and the drain/abandon
shutdown paths.
"""

import threading
import time

import pytest

from repro.exceptions import ServerClosedError, ServerOverloadedError
from repro.serving.batcher import RequestCoalescer
from repro.serving.metrics import MetricsRegistry


class RecordingClassifier:
    """classify_fn stub: echoes items, records batch compositions."""

    def __init__(self, generation=7):
        self.batches = []
        self.generation = generation
        self.gate = None                 # optional throttling event
        self.entered = threading.Event()

    def __call__(self, items):
        self.entered.set()
        if self.gate is not None:
            assert self.gate.wait(timeout=10)
        self.batches.append(list(items))
        return [f"scored:{item}" for item in items], self.generation


def make_coalescer(classify, **kwargs):
    kwargs.setdefault("workers", 1)
    return RequestCoalescer(classify, **kwargs)


def test_single_request_round_trip_preserves_order():
    classify = RecordingClassifier()
    coalescer = make_coalescer(classify, max_batch=8)
    results, generation = coalescer.submit(["a", "b", "c"]).result(timeout=10)
    coalescer.close()
    assert results == ["scored:a", "scored:b", "scored:c"]
    assert generation == 7
    assert classify.batches == [["a", "b", "c"]]


def test_concurrent_requests_coalesce_into_one_batch():
    classify = RecordingClassifier()
    classify.gate = threading.Event()
    coalescer = make_coalescer(classify, max_batch=16, queue_depth=64)
    # First request occupies the single worker; the next three queue up
    # and must be drained as ONE batch once the gate opens.
    first = coalescer.submit(["warm"])
    assert classify.entered.wait(timeout=10)
    futures = [coalescer.submit([f"r{i}-a", f"r{i}-b"]) for i in range(3)]
    time.sleep(0.05)                       # let the submissions queue
    classify.gate.set()
    assert first.result(timeout=10)[0] == ["scored:warm"]
    for i, future in enumerate(futures):
        results, generation = future.result(timeout=10)
        assert results == [f"scored:r{i}-a", f"scored:r{i}-b"]
        assert generation == 7
    coalescer.close()
    assert classify.batches[0] == ["warm"]
    assert classify.batches[1] == ["r0-a", "r0-b", "r1-a", "r1-b",
                                   "r2-a", "r2-b"]


def test_batches_take_whole_requests_only():
    classify = RecordingClassifier()
    classify.gate = threading.Event()
    coalescer = make_coalescer(classify, max_batch=4, queue_depth=64)
    warm = coalescer.submit(["warm"])
    assert classify.entered.wait(timeout=10)
    a = coalescer.submit(["a1", "a2", "a3"])
    b = coalescer.submit(["b1", "b2"])
    time.sleep(0.05)
    classify.gate.set()
    for future in (warm, a, b):
        future.result(timeout=10)
    coalescer.close()
    # a (3 items) + b (2 items) exceed max_batch=4, so b must wait for
    # the next batch rather than being split or partially taken.
    assert classify.batches[1:] == [["a1", "a2", "a3"], ["b1", "b2"]]


def test_oversized_request_forms_its_own_batch():
    classify = RecordingClassifier()
    coalescer = make_coalescer(classify, max_batch=2)
    results, _ = coalescer.submit(["x1", "x2", "x3", "x4"]).result(timeout=10)
    coalescer.close()
    assert len(results) == 4
    assert classify.batches == [["x1", "x2", "x3", "x4"]]


def test_full_queue_rejects_with_overload_error():
    classify = RecordingClassifier()
    classify.gate = threading.Event()
    coalescer = make_coalescer(classify, max_batch=1, queue_depth=2)
    in_flight = coalescer.submit(["busy"])     # dequeued, worker blocked
    assert classify.entered.wait(timeout=10)
    queued = coalescer.submit(["q1", "q2"])    # fills the queue exactly
    with pytest.raises(ServerOverloadedError):
        coalescer.submit(["overflow"])
    classify.gate.set()
    assert in_flight.result(timeout=10)
    assert queued.result(timeout=10)
    coalescer.close()


def test_close_drains_queued_requests():
    classify = RecordingClassifier()
    classify.gate = threading.Event()
    coalescer = make_coalescer(classify, max_batch=1, queue_depth=16)
    futures = [coalescer.submit([f"item-{i}"]) for i in range(4)]
    classify.gate.set()
    coalescer.close(drain=True)
    for i, future in enumerate(futures):
        assert future.result(timeout=1)[0] == [f"scored:item-{i}"]
    with pytest.raises(ServerClosedError):
        coalescer.submit(["late"])


def test_close_without_drain_abandons_queued_requests():
    classify = RecordingClassifier()
    classify.gate = threading.Event()
    coalescer = make_coalescer(classify, max_batch=1, queue_depth=16)
    running = coalescer.submit(["running"])
    assert classify.entered.wait(timeout=10)
    queued = coalescer.submit(["queued"])
    # The worker is parked on the gate, so close() abandons "queued"
    # deterministically; the timer then releases the in-flight batch so
    # the worker join inside close() can complete.
    threading.Timer(0.1, classify.gate.set).start()
    coalescer.close(drain=False)
    assert running.result(timeout=10)          # in-flight batch finishes
    with pytest.raises(ServerClosedError):
        queued.result(timeout=1)


def test_classify_failure_fans_out_to_every_request_in_the_batch():
    boom = RuntimeError("forest fell over")

    def classify(items):
        raise boom

    coalescer = make_coalescer(classify)
    future = coalescer.submit(["a"])
    with pytest.raises(RuntimeError, match="forest fell over"):
        future.result(timeout=10)
    # The worker survives a failing batch and keeps serving.
    ok = RecordingClassifier()
    coalescer._handlers["classify"] = ok
    assert coalescer.submit(["b"]).result(timeout=10)[0] == ["scored:b"]
    coalescer.close()


def test_result_count_mismatch_is_an_error_not_a_hang():
    coalescer = make_coalescer(lambda items: ([], 1))
    future = coalescer.submit(["a", "b"])
    with pytest.raises(ServerClosedError, match="returned 0 results"):
        future.result(timeout=10)
    coalescer.close()


def test_metrics_track_queue_and_batches():
    registry = MetricsRegistry()
    classify = RecordingClassifier()
    coalescer = make_coalescer(classify, metrics=registry)
    coalescer.submit(["a"]).result(timeout=10)
    coalescer.close()
    snapshot = registry.snapshot()
    assert snapshot["batches_total"] == 1
    assert snapshot["queue_items"] == 0
    assert snapshot["batch_size"]["count"] == 1


def test_constructor_validation():
    with pytest.raises(ValueError):
        RequestCoalescer(lambda items: ([], 1), max_batch=0)
    with pytest.raises(ValueError):
        RequestCoalescer(lambda items: ([], 1), queue_depth=0)
    with pytest.raises(ValueError):
        RequestCoalescer(lambda items: ([], 1), workers=0)
    coalescer = RequestCoalescer(lambda items: ([], 1))
    with pytest.raises(ValueError):
        coalescer.submit([])
    coalescer.close()
