"""Unit tests for the tracing layer (``repro.observability.trace``):
the no-op fast path, contextvar sink plumbing, detail-span exclusion
from stage rollups, cross-process span re-basing, tracer sampling,
ring-buffer bounds and the slow-request capture path.
"""

import json
import logging

import pytest

from repro.observability.trace import (
    DEFAULT_RING_SIZE,
    NOOP_SPAN,
    REQUEST_ID_HEADER,
    RequestTrace,
    Span,
    SpanCollector,
    Tracer,
    activate,
    current_sink,
    deactivate,
    new_request_id,
    record_shipped_spans,
    span,
)
from repro.serving.metrics import MetricsRegistry


# ------------------------------------------------------------ request ids
def test_request_ids_are_distinct_hex():
    ids = {new_request_id() for _ in range(64)}
    assert len(ids) == 64
    for request_id in ids:
        assert len(request_id) == 16
        int(request_id, 16)                       # parses as hex
    assert REQUEST_ID_HEADER == "X-Request-Id"


# ------------------------------------------------------------- span sink
def test_span_without_sink_is_the_shared_noop_singleton():
    assert current_sink() is None
    # No allocation on the unsampled path: the exact same object every
    # time, and entering it records nothing anywhere.
    assert span("dp_scoring") is NOOP_SPAN
    assert span("dp_scoring", shard=3) is NOOP_SPAN
    with span("dp_scoring"):
        pass


def test_span_records_into_the_active_sink():
    collector = SpanCollector()
    token = activate(collector)
    try:
        assert current_sink() is collector
        with span("candidate_gen"):
            pass
        with span("dp_scoring", shard=2):
            pass
    finally:
        deactivate(token)
    assert current_sink() is None
    names = [s.name for s in collector.spans]
    assert names == ["candidate_gen", "dp_scoring"]
    assert all(s.duration >= 0.0 for s in collector.spans)
    assert collector.spans[0].meta is None
    assert collector.spans[1].meta == {"shard": 2}


def test_span_records_even_when_the_stage_raises():
    collector = SpanCollector()
    token = activate(collector)
    try:
        with pytest.raises(RuntimeError):
            with span("forest_predict"):
                raise RuntimeError("boom")
    finally:
        deactivate(token)
    assert [s.name for s in collector.spans] == ["forest_predict"]


def test_deactivate_restores_the_previous_sink():
    outer, inner = SpanCollector(), SpanCollector()
    outer_token = activate(outer)
    inner_token = activate(inner)
    with span("inner_stage"):
        pass
    deactivate(inner_token)
    with span("outer_stage"):
        pass
    deactivate(outer_token)
    assert [s.name for s in inner.spans] == ["inner_stage"]
    assert [s.name for s in outer.spans] == ["outer_stage"]


# ---------------------------------------------------------- detail spans
def test_shard_and_worker_meta_mark_detail_spans():
    assert not Span("dp_scoring", 0.0, 1.0).is_detail
    assert not Span("dp_scoring", 0.0, 1.0, {"batch_items": 4}).is_detail
    assert Span("dp_scoring", 0.0, 1.0, {"shard": 0}).is_detail
    assert Span("candidate_gen", 0.0, 1.0, {"worker": 123}).is_detail


def test_stage_totals_exclude_detail_and_sum_repeats():
    trace = RequestTrace("abcd", "classify")
    trace.add("candidate_gen", 0.0, 0.5)
    trace.add("candidate_gen", 0.5, 0.25)          # same stage twice
    trace.add("candidate_gen", 0.0, 0.4, {"shard": 0})   # detail: excluded
    trace.add("candidate_gen", 0.4, 0.35, {"shard": 1})  # detail: excluded
    trace.add("forest_predict", 0.75, 0.1)
    totals = trace.stage_totals()
    assert totals == {"candidate_gen": pytest.approx(0.75),
                      "forest_predict": pytest.approx(0.1)}


def test_trace_as_dict_shape():
    trace = RequestTrace("feedbeef", "ingest")
    trace.add("wal_fsync", trace.start, 0.002)
    trace.add("dp_scoring", trace.start, 0.001, {"shard": 1})
    trace.wall = 0.004
    trace.items = 3
    trace.status = 200
    payload = trace.as_dict()
    assert payload["request_id"] == "feedbeef"
    assert payload["kind"] == "ingest"
    assert payload["status"] == 200
    assert payload["items"] == 3
    assert payload["wall_ms"] == pytest.approx(4.0)
    assert payload["stages"] == {"wal_fsync": pytest.approx(2.0)}
    assert len(payload["spans"]) == 2
    detail = payload["spans"][1]
    assert detail["shard"] == 1                    # meta merged into span
    assert detail["ms"] == pytest.approx(1.0)
    json.dumps(payload)                            # JSON-serialisable


# -------------------------------------------------- cross-process re-base
def test_shipped_spans_rebase_onto_the_parent_clock():
    # "Worker side": record against the collector's own clock.
    worker_side = SpanCollector()
    worker_side.add("candidate_gen", worker_side.start + 0.01, 0.5)
    worker_side.add("dp_scoring", worker_side.start + 0.51, 0.25,
                    {"shard": 2})
    shipped = worker_side.shipped()
    assert shipped[0][1] == pytest.approx(0.01)    # offset, not absolute

    # "Parent side": re-base onto the dispatch timestamp.
    parent = RequestTrace("cafe", "classify")
    base = 1000.0
    token = activate(parent)
    try:
        record_shipped_spans(shipped, base, worker=42)
    finally:
        deactivate(token)
    first, second = parent.spans
    assert first.start == pytest.approx(base + 0.01)
    assert first.meta == {"worker": 42}
    assert second.meta == {"shard": 2, "worker": 42}
    # worker= marks them all as detail: they attribute time inside the
    # parent's worker_dispatch stage instead of double-counting it.
    assert parent.stage_totals() == {}


def test_shipped_spans_without_a_sink_are_dropped():
    record_shipped_spans([("x", 0.0, 1.0, None)], 0.0, worker=1)
    assert current_sink() is None


# ----------------------------------------------------------------- tracer
def test_tracer_sampling_boundaries():
    always = Tracer(sample_rate=1.0)
    assert always.enabled
    assert isinstance(always.begin("aa", "classify"), RequestTrace)
    never = Tracer(sample_rate=0.0)
    assert not never.enabled
    assert never.begin("bb", "classify") is None
    never.finish(None)                              # no-op, no crash


def test_tracer_partial_sampling_is_a_bernoulli_draw():
    tracer = Tracer(sample_rate=0.5)
    tracer._random.seed(7)                          # deterministic draws
    outcomes = [tracer.begin("id", "classify") is not None
                for _ in range(200)]
    assert 40 < sum(outcomes) < 160                 # both outcomes occur


def test_tracer_validation():
    with pytest.raises(ValueError):
        Tracer(sample_rate=1.5)
    with pytest.raises(ValueError):
        Tracer(sample_rate=-0.1)
    with pytest.raises(ValueError):
        Tracer(slow_request_ms=-1)
    with pytest.raises(ValueError):
        Tracer(ring_size=0)


def test_tracer_feeds_stage_histogram_with_attribution_labels():
    registry = MetricsRegistry()
    tracer = Tracer(registry, slow_request_ms=0)
    trace = tracer.begin("0123", "classify")
    trace.add("dp_scoring", trace.start, 0.01)
    trace.add("dp_scoring", trace.start, 0.004, {"shard": 1})
    trace.add("candidate_gen", trace.start, 0.002, {"worker": 77})
    tracer.finish(trace, items=2, status=200)

    family = registry.histogram("stage_latency_seconds",
                                labels=("stage", "shard", "worker"))
    top = family.labels(stage="dp_scoring")
    shard = family.labels(stage="dp_scoring", shard="1")
    worker = family.labels(stage="candidate_gen", worker="77")
    assert top.state()["count"] == 1
    assert shard.state()["count"] == 1
    assert worker.state()["count"] == 1
    assert registry.counter("traces_sampled_total").value == 1
    assert registry.counter("slow_requests_total").value == 0


def test_recent_ring_is_bounded_and_ordered():
    tracer = Tracer(ring_size=4, slow_request_ms=0)
    for n in range(10):
        trace = tracer.begin(f"{n:016x}", "classify")
        tracer.finish(trace, items=1, status=200)
    payload = tracer.trace_payload()
    assert [t["request_id"] for t in payload["recent"]] == \
        [f"{n:016x}" for n in range(6, 10)]         # newest 4, oldest first
    assert payload["slow"] == []
    limited = tracer.trace_payload(limit=2)
    assert len(limited["recent"]) == 2
    assert limited["recent"][-1]["request_id"] == payload["recent"][-1][
        "request_id"]


def test_slow_requests_land_in_the_slow_ring_and_log(caplog):
    registry = MetricsRegistry()
    tracer = Tracer(registry, slow_request_ms=500.0)
    trace = tracer.begin("deadbeefdeadbeef", "classify")
    trace.start -= 1.0                              # fake a 1 s request
    with caplog.at_level(logging.WARNING, logger="repro.observability.trace"):
        tracer.finish(trace, items=1, status=200)
    payload = tracer.trace_payload()
    assert len(payload["slow"]) == 1
    assert payload["slow"][0]["request_id"] == "deadbeefdeadbeef"
    assert payload["slow"][0]["wall_ms"] >= 500.0
    assert registry.counter("slow_requests_total").value == 1
    slow_lines = [r for r in caplog.records if "slow request" in r.message]
    assert len(slow_lines) == 1
    # The log line carries the machine-readable stage breakdown.
    logged = json.loads(slow_lines[0].getMessage()
                        .split("slow request ", 1)[1])
    assert logged["request_id"] == "deadbeefdeadbeef"


def test_config_payload_shape():
    tracer = Tracer(sample_rate=0.25, slow_request_ms=750.0, ring_size=16)
    assert tracer.config_payload() == {
        "enabled": True,
        "sample_rate": 0.25,
        "slow_request_ms": 750.0,
        "ring_size": 16,
    }
    assert Tracer().ring_size == DEFAULT_RING_SIZE
