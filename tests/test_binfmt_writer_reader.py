"""Round-trip tests for the ELF writer and reader."""

import random
import struct

import pytest

from repro.binfmt import constants as C
from repro.binfmt.reader import ElfReader, is_elf
from repro.binfmt.structs import ElfHeader, SectionHeader, SymbolSpec
from repro.binfmt.writer import ElfWriter, build_executable
from repro.exceptions import BinaryFormatError, SymbolTableError, TruncatedBinaryError


def _build(n_funcs=10, stripped=False, strings=("hello world", "version 1.0")):
    return build_executable(
        code=random.Random(1).randbytes(2048),
        strings=list(strings),
        symbols=[SymbolSpec(f"fn_{i}") for i in range(n_funcs)],
        comment="GCC: (GNU) 10.3.0",
        stripped=stripped,
    )


def test_output_is_recognised_as_elf():
    blob = _build()
    assert is_elf(blob)
    assert blob[:4] == C.ELF_MAGIC


def test_sections_roundtrip():
    blob = _build()
    reader = ElfReader(blob)
    names = reader.section_names()
    assert ".text" in names
    assert ".rodata" in names
    assert ".comment" in names
    assert ".symtab" in names and ".strtab" in names
    assert ".shstrtab" in names


def test_text_section_content_preserved():
    code = random.Random(2).randbytes(1500)
    blob = build_executable(code=code, strings=[], symbols=[SymbolSpec("main")])
    assert ElfReader(blob).section(".text").data == code


def test_rodata_contains_nul_separated_strings():
    blob = _build(strings=("alpha string", "beta string"))
    rodata = ElfReader(blob).section(".rodata").data
    assert b"alpha string\x00" in rodata
    assert b"beta string\x00" in rodata


def test_symbols_roundtrip_names_and_binding():
    blob = build_executable(
        code=b"\x90" * 64,
        strings=[],
        symbols=[SymbolSpec("global_fn"), SymbolSpec("data_obj", kind="object"),
                 SymbolSpec("weak_fn", kind="weak"), SymbolSpec("local_fn", kind="local")],
    )
    symbols = {s.name: s for s in ElfReader(blob).symbols}
    assert symbols["global_fn"].is_global and symbols["global_fn"].type == C.STT_FUNC
    assert symbols["data_obj"].type == C.STT_OBJECT
    assert symbols["weak_fn"].bind == C.STB_WEAK and symbols["weak_fn"].is_global
    assert not symbols["local_fn"].is_global


def test_local_symbols_precede_globals():
    blob = build_executable(
        code=b"\x90" * 64, strings=[],
        symbols=[SymbolSpec("zz_global"), SymbolSpec("aa_local", kind="local")])
    reader = ElfReader(blob)
    names = [s.name for s in reader.symbols]
    assert names.index("aa_local") < names.index("zz_global")


def test_stripped_build_has_no_symtab():
    blob = _build(stripped=True)
    reader = ElfReader(blob)
    assert not reader.has_symbol_table
    with pytest.raises(SymbolTableError):
        _ = reader.symbols


def test_empty_text_rejected():
    writer = ElfWriter()
    with pytest.raises(BinaryFormatError):
        writer.build()


def test_reader_rejects_non_elf():
    with pytest.raises(BinaryFormatError):
        ElfReader(b"MZ this is not an elf file")
    with pytest.raises(BinaryFormatError):
        ElfReader(b"\x7fELF")  # too small


def test_reader_rejects_wrong_class():
    blob = bytearray(_build())
    blob[4] = 1  # ELFCLASS32
    with pytest.raises(BinaryFormatError):
        ElfReader(bytes(blob))


def test_reader_rejects_truncated_section_table():
    blob = _build()
    with pytest.raises(TruncatedBinaryError):
        ElfReader(blob[: len(blob) - 40]).sections  # noqa: B018


def test_header_roundtrip():
    header = ElfHeader(e_shoff=1234, e_shnum=7, e_shstrndx=6, e_phnum=1)
    parsed = ElfHeader.unpack(header.pack() + b"\x00" * 16)
    assert parsed.e_shoff == 1234
    assert parsed.e_shnum == 7
    assert parsed.e_shstrndx == 6


def test_section_header_roundtrip():
    header = SectionHeader(sh_name=5, sh_type=C.SHT_PROGBITS, sh_offset=0x200,
                           sh_size=128, sh_addralign=16)
    packed = header.pack()
    assert len(packed) == C.SHDR_SIZE
    parsed = SectionHeader.unpack(packed, 0)
    assert parsed == header


def test_writer_output_executable_bit(tmp_path):
    writer = ElfWriter()
    writer.set_text(b"\x90" * 32)
    writer.add_symbols([SymbolSpec("main")])
    path = tmp_path / "prog"
    size = writer.write(path)
    assert path.stat().st_size == size
    assert path.stat().st_mode & 0o111  # executable bits set


def test_text_section_is_executable_flagged():
    reader = ElfReader(_build())
    text = reader.section(".text")
    assert text.header.sh_flags & C.SHF_EXECINSTR
    assert ".text" == text.name


def test_symbol_values_are_distinct():
    blob = _build(n_funcs=20)
    values = [s.value for s in ElfReader(blob).symbols]
    assert len(set(values)) == len(values)
