"""Two-family similarity index tests.

A ``SimilarityIndex`` (and its sharded counterpart) can carry CTPH
``ssdeep-*`` and vector ``vector-*`` feature types side by side.  These
tests pin down:

* routing — each family's queries only see its own stores;
* single vs sharded bit-identity with mixed families, through
  tombstones, compaction and save/load;
* persistence — a mixed-family index round-trips through the ``.rpsi``
  container, and stats report the per-family breakdown.
"""

import random

import numpy as np
import pytest

from repro.exceptions import IndexFormatError
from repro.hashing.ssdeep import fuzzy_hash
from repro.hashing.vector import vector_hash
from repro.index import ShardedSimilarityIndex, SimilarityIndex, load_index

TYPES = ("ssdeep-file", "vector-file")


def _make_members(seed: int, n: int):
    rnd = random.Random(seed)
    bases = [rnd.randbytes(1500 + rnd.randrange(1500)) for _ in range(3)]
    members = []
    for i in range(n):
        blob = bytearray(bases[i % 3])
        for _ in range(rnd.randrange(0, 8)):
            blob[rnd.randrange(len(blob))] = rnd.randrange(256)
        blob = bytes(blob)
        members.append((f"m{i:04d}",
                        {"ssdeep-file": fuzzy_hash(blob),
                         "vector-file": vector_hash(blob)},
                        f"class-{i % 3}"))
    return members


def _matrices(index, members):
    queries = {ft: [digests[ft] for _, digests, _ in members]
               for ft in TYPES}
    return {ft: index.score_matrix(ft, queries[ft]) for ft in TYPES}


def test_mixed_family_top_k_routes_by_feature_type():
    members = _make_members(3, 12)
    index = SimilarityIndex(TYPES)
    for sample_id, digests, class_name in members:
        index.add(sample_id, digests, class_name=class_name)
    index.seal()

    sid, digests, _ = members[0]
    ctph_hits = index.top_k(digests["ssdeep-file"], 5,
                            feature_type="ssdeep-file", min_score=0)
    vector_hits = index.top_k(digests["vector-file"], 5,
                              feature_type="vector-file", min_score=0)
    assert ctph_hits and ctph_hits[0].sample_id == sid
    assert vector_hits and vector_hits[0].sample_id == sid
    assert vector_hits[0].score == 100


def test_single_and_sharded_mixed_family_bit_identical():
    members = _make_members(11, 30)
    single = SimilarityIndex(TYPES)
    for sample_id, digests, class_name in members:
        single.add(sample_id, digests, class_name=class_name)
    single.seal()
    sharded = ShardedSimilarityIndex(TYPES, n_shards=4, executor="serial")
    sharded.add_many(members)
    sharded.seal()

    single_m = _matrices(single, members)
    sharded_m = _matrices(sharded, members)
    for ft in TYPES:
        assert np.array_equal(single_m[ft], sharded_m[ft])
    for _, digests, _ in members[:6]:
        for ft in TYPES:
            assert single.top_k(digests[ft], 8, feature_type=ft,
                                min_score=0) == \
                sharded.top_k(digests[ft], 8, feature_type=ft, min_score=0)


def test_sharded_tombstones_and_compact_cover_vector_stores():
    members = _make_members(23, 20)
    sharded = ShardedSimilarityIndex(TYPES, n_shards=3, executor="serial")
    sharded.add_many(members)
    removed = {members[2][0], members[9][0], members[15][0]}
    for sid in removed:
        sharded.remove(sid)
    sharded.compact()

    survivors = [m for m in members if m[0] not in removed]
    fresh = SimilarityIndex(TYPES)
    for sample_id, digests, class_name in survivors:
        fresh.add(sample_id, digests, class_name=class_name)
    fresh.seal()

    fresh_m = _matrices(fresh, survivors)
    sharded_m = _matrices(sharded, survivors)
    for ft in TYPES:
        assert np.array_equal(fresh_m[ft], sharded_m[ft])


def test_mixed_family_save_load_round_trip(tmp_path):
    members = _make_members(5, 15)
    index = SimilarityIndex(TYPES)
    for sample_id, digests, class_name in members:
        index.add(sample_id, digests, class_name=class_name)
    index.seal()

    path = tmp_path / "mixed.rpsi"
    index.save(path)
    loaded = load_index(path)

    assert loaded.feature_types == index.feature_types
    loaded_m = _matrices(loaded, members)
    original_m = _matrices(index, members)
    for ft in TYPES:
        assert np.array_equal(loaded_m[ft], original_m[ft])

    sharded_dir = tmp_path / "mixed-shards"
    sharded = ShardedSimilarityIndex.from_index(index, n_shards=3,
                                                executor="serial")
    sharded.save(sharded_dir)
    reloaded = load_index(sharded_dir)
    reloaded_m = _matrices(reloaded, members)
    for ft in TYPES:
        assert np.array_equal(reloaded_m[ft], original_m[ft])


def test_stats_families_breakdown():
    members = _make_members(9, 10)
    index = SimilarityIndex(TYPES)
    for sample_id, digests, class_name in members:
        index.add(sample_id, digests, class_name=class_name)
    stats = index.stats()
    assert stats["feature_types"]["ssdeep-file"]["family"] == "ctph"
    vec = stats["feature_types"]["vector-file"]
    assert vec["family"] == "vector"
    assert vec["members_with_digest"] == 10
    assert vec["digest_bits"] == 256
    families = stats["families"]
    assert families["ctph"]["feature_types"] == ["ssdeep-file"]
    assert families["vector"]["feature_types"] == ["vector-file"]
    assert families["vector"]["packed_matrix_bytes"] > 0


def test_score_matrices_covers_both_families():
    members = _make_members(29, 8)
    index = SimilarityIndex(TYPES)
    for sample_id, digests, class_name in members:
        index.add(sample_id, digests, class_name=class_name)
    index.seal()
    queries = {ft: [m[1][ft] for m in members[:3]] for ft in TYPES}
    matrices = index.score_matrices(queries)
    assert set(matrices) == set(TYPES)
    for ft in TYPES:
        assert matrices[ft].shape == (3, len(members))
        # Self-match: query i is member i.
        for i in range(3):
            assert matrices[ft][i, i] == 100


def test_legacy_v1_state_cannot_declare_vector_types():
    """v1 containers predate the vector family; a (corrupt) v1 header
    that claims vector types must be rejected, not silently rebuilt."""

    members = _make_members(2, 4)
    index = SimilarityIndex(TYPES)
    for sample_id, digests, class_name in members:
        index.add(sample_id, digests, class_name=class_name)
    header, _arrays = index.get_state()

    legacy_header = {
        "feature_types": list(TYPES),
        "ngram_length": header["ngram_length"],
        "sample_ids": list(header["sample_ids"]),
        "class_names": list(header["class_names"]),
        "members": [
            {ft: digests[ft] for ft in TYPES}
            for _, digests, _ in members
        ],
    }
    with pytest.raises(IndexFormatError):
        SimilarityIndex.from_state(legacy_header, {})
