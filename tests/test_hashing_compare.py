"""Tests for SSDeep digest comparison / similarity scoring."""

import random

import pytest

from repro.hashing.compare import (
    compare_digests,
    compare_digest_strings,
    has_common_substring,
    normalize_repeats,
    pairwise_scores,
    score_signatures,
)
from repro.hashing.ssdeep import FuzzyHasher, fuzzy_hash


def _mutate(data: bytes, n_edits: int, seed: int = 0) -> bytes:
    """Flip ``n_edits`` short ranges of ``data``."""

    rnd = random.Random(seed)
    out = bytearray(data)
    for _ in range(n_edits):
        pos = rnd.randrange(0, len(out) - 8)
        out[pos:pos + 8] = rnd.randbytes(8)
    return bytes(out)


def test_identical_files_score_100():
    data = random.Random(0).randbytes(16_384)
    digest = fuzzy_hash(data)
    assert compare_digests(digest, digest) == 100


def test_similar_files_score_high():
    data = random.Random(1).randbytes(16_384)
    similar = _mutate(data, 5, seed=2)
    score = compare_digests(fuzzy_hash(data), fuzzy_hash(similar))
    assert score >= 60


def test_unrelated_files_score_zero():
    a = fuzzy_hash(random.Random(3).randbytes(16_384))
    b = fuzzy_hash(random.Random(4).randbytes(16_384))
    assert compare_digests(a, b) == 0


def test_similarity_decreases_with_more_edits():
    data = random.Random(5).randbytes(32_768)
    base = fuzzy_hash(data)
    scores = [compare_digests(base, fuzzy_hash(_mutate(data, edits, seed=6)))
              for edits in (1, 20, 120)]
    assert scores[0] >= scores[1] >= scores[2]


def test_comparison_is_symmetric():
    data = random.Random(7).randbytes(10_000)
    a = fuzzy_hash(data)
    b = fuzzy_hash(_mutate(data, 10, seed=8))
    assert compare_digests(a, b) == compare_digests(b, a)


def test_incompatible_block_sizes_score_zero():
    small = fuzzy_hash(random.Random(9).randbytes(500))
    large = fuzzy_hash(random.Random(10).randbytes(500_000))
    assert compare_digests(small, large) == 0


def test_empty_digest_scores_zero():
    digest = fuzzy_hash(b"some actual content here")
    empty = str(FuzzyHasher().hash(b""))
    assert compare_digests(digest, empty) == 0
    assert compare_digests(empty, empty) == 0


def test_accepts_digest_strings_and_objects():
    from repro.hashing.ssdeep import SsdeepDigest

    data = random.Random(11).randbytes(4096)
    digest_str = fuzzy_hash(data)
    digest_obj = SsdeepDigest.parse(digest_str)
    assert compare_digests(digest_str, digest_obj) == 100
    assert compare_digest_strings(digest_str, digest_str) == 100


def test_normalize_repeats():
    assert normalize_repeats("aaaaaabcc") == "aaabcc"
    assert normalize_repeats("abc") == "abc"
    assert normalize_repeats("aAAAAAAb") == "aAAAb"
    assert normalize_repeats("aaaa", max_run=2) == "aa"


def test_has_common_substring():
    assert has_common_substring("ABCDEFGHIJ", "xxxABCDEFGxx")
    assert not has_common_substring("ABCDEFGHIJ", "KLMNOPQRST")
    assert not has_common_substring("short", "short")  # below length 7


def test_score_signatures_identical():
    assert score_signatures("ABCDEFGHIJKLMNOP", "ABCDEFGHIJKLMNOP", 3072) == 100


def test_score_signatures_no_common_substring_is_zero():
    assert score_signatures("ABCDEFGHIJKLMNOP", "qrstuvwxyz012345", 3072) == 0


def test_pairwise_scores_matrix():
    data = random.Random(12).randbytes(8192)
    digests = [fuzzy_hash(data), fuzzy_hash(_mutate(data, 4, seed=13)),
               fuzzy_hash(random.Random(14).randbytes(8192))]
    matrix = pairwise_scores(digests)
    assert matrix[0][0] == 100
    assert matrix[0][1] == matrix[1][0]
    assert matrix[0][2] == 0
    assert len(matrix) == 3 and all(len(row) == 3 for row in matrix)
