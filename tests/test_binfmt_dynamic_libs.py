"""Tests for the ``ldd`` equivalent and the ``ssdeep-libs`` feature
(the paper's future-work extension)."""

import pytest

from repro.binfmt.dynamic import ldd_output, needed_libraries
from repro.binfmt.reader import ElfReader
from repro.binfmt.strip import strip_symbols
from repro.binfmt.structs import SymbolSpec
from repro.binfmt.writer import build_executable
from repro.exceptions import FeatureExtractionError
from repro.features.extractors import (
    EXTENDED_FEATURE_TYPES,
    FEATURE_TYPES,
    FeatureExtractor,
)
from repro.hashing.compare import compare_digests
from repro.hashing.ssdeep import SsdeepDigest

_LIBS = ["libc.so.6", "libm.so.6", "libhts.so.3", "libz.so.1"]


def _blob(libs=_LIBS):
    return build_executable(
        code=b"\x90" * 256,
        strings=["dynamic demo"],
        symbols=[SymbolSpec(f"fn_{i}") for i in range(8)],
        needed_libraries=libs,
    )


# --------------------------------------------------------------------- binfmt
def test_needed_libraries_roundtrip():
    assert needed_libraries(_blob()) == _LIBS


def test_dynamic_section_emitted_and_linked():
    reader = ElfReader(_blob())
    names = reader.section_names()
    assert ".dynamic" in names and ".dynstr" in names
    dynamic = reader.section(".dynamic")
    assert dynamic.header.sh_entsize == 16


def test_statically_linked_binary_has_no_dependencies():
    blob = build_executable(code=b"\x90" * 64, strings=[], symbols=[SymbolSpec("main")])
    assert needed_libraries(blob) == []
    assert ldd_output(blob) == ""


def test_ldd_output_one_library_per_line():
    assert ldd_output(_blob()) == "\n".join(_LIBS) + "\n"


def test_strip_preserves_dynamic_section():
    stripped = strip_symbols(_blob())
    assert needed_libraries(stripped) == _LIBS


def test_accepts_reader_instance():
    blob = _blob()
    assert needed_libraries(ElfReader(blob)) == needed_libraries(blob)


# ------------------------------------------------------------------- features
def test_extended_feature_types_superset():
    assert set(FEATURE_TYPES) < set(EXTENDED_FEATURE_TYPES)
    assert "ssdeep-libs" in EXTENDED_FEATURE_TYPES


def test_extractor_computes_libs_digest():
    extractor = FeatureExtractor(EXTENDED_FEATURE_TYPES)
    features = extractor.extract(_blob(), sample_id="x")
    digest = features.digest("ssdeep-libs")
    SsdeepDigest.parse(digest)
    assert not SsdeepDigest.parse(digest).is_empty


def test_libs_digest_similar_for_same_dependencies():
    extractor = FeatureExtractor(["ssdeep-libs"])
    a = extractor.extract(_blob(), sample_id="a").digest("ssdeep-libs")
    b = extractor.extract(_blob(_LIBS + ["libpthread.so.0"]),
                          sample_id="b").digest("ssdeep-libs")
    c = extractor.extract(_blob(["libfoo.so.1", "libbar.so.2", "libbaz.so.3",
                                 "libqux.so.4"]), sample_id="c").digest("ssdeep-libs")
    assert compare_digests(a, a) in (0, 100)
    assert compare_digests(a, b) >= compare_digests(a, c)


def test_unknown_feature_type_still_rejected():
    with pytest.raises(FeatureExtractionError):
        FeatureExtractor(["ssdeep-imports"])


def test_default_feature_types_unchanged():
    """The paper's default features stay the default (ssdeep-libs is opt-in)."""

    features = FeatureExtractor().extract(_blob(), sample_id="x")
    assert set(features.digests) == set(FEATURE_TYPES)


# --------------------------------------------------------------------- corpus
def test_corpus_binaries_declare_their_libraries(tiny_samples):
    from repro.corpus.lexicon import BASE_SONAMES

    sample = tiny_samples[0]
    libs = needed_libraries(sample.data)
    assert libs, "generated binaries must have DT_NEEDED entries"
    assert set(BASE_SONAMES) <= set(libs)


def test_same_class_shares_library_set(tiny_samples):
    by_class = {}
    for sample in tiny_samples:
        by_class.setdefault(sample.class_name, []).append(sample)
    for class_name, members in by_class.items():
        sets = {frozenset(lib for lib in needed_libraries(m.data)
                          if not lib.startswith(("libmkl", "libopenblas")))
                for m in members[:4]}
        assert len(sets) == 1, f"library set of {class_name} should be stable"
