"""Tests for the multi-process scoring pool (``repro.serving.workers``)
and its integration with :class:`ModelManager` and the HTTP server.

The load-bearing properties: worker decisions are bit-identical to the
in-process path (items score independently, so splitting a batch into
contiguous per-worker chunks cannot change any decision), hot reloads
propagate to workers through the artifact's stat signature, a dead pool
degrades to in-process scoring instead of failing traffic, and the
``/healthz`` / ``/metrics`` endpoints surface ``load_mode`` and the
per-worker batch counters.
"""

import base64
import json
import os
from dataclasses import replace
from http.client import HTTPConnection

import pytest

from repro.api.service import ClassificationService
from repro.exceptions import ParallelExecutionError, ServingError, \
    ValidationError
from repro.serving import ClassificationServer, ScoringWorkerPool, \
    ServerConfig
from repro.serving.model_manager import ModelManager

from test_api_artifact import make_records


@pytest.fixture(scope="module")
def artifacts(tmp_path_factory):
    """Generation-A and (renamed-classes) generation-B artifacts."""

    directory = tmp_path_factory.mktemp("worker-models")
    records = make_records(30, seed=21, n_families=3)
    renamed = [replace(r, class_name=f"v2-{r.class_name}") for r in records]
    params = dict(feature_types=["ssdeep-file"], n_estimators=10,
                  random_state=1, confidence_threshold=0.1)
    gen_a = directory / "gen-a.rpm"
    gen_b = directory / "gen-b.rpm"
    ClassificationService.train(records, **params).save(gen_a)
    ClassificationService.train(renamed, **params).save(gen_b)
    return gen_a, gen_b


def publish(source, target):
    staging = target.with_suffix(".staging")
    staging.write_bytes(source.read_bytes())
    os.replace(staging, target)


def payloads(count, *, tag="exe", size=1024):
    return [(f"{tag}-{n}", (f"{tag}-{n}|".encode() +
                            bytes((n * 31 + k) % 256 for k in range(size))))
            for n in range(count)]


def request_json(port, method, path, payload=None, timeout=30):
    conn = HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        body = None if payload is None else json.dumps(payload)
        conn.request(method, path, body)
        response = conn.getresponse()
        return response.status, json.loads(response.read())
    finally:
        conn.close()


# ------------------------------------------------------- pool semantics
def test_pool_decisions_bit_identical_to_in_process(artifacts, tmp_path):
    gen_a, _ = artifacts
    live = tmp_path / "model.rpm"
    publish(gen_a, live)
    items = payloads(9)
    reference = ClassificationService.load(gen_a, cache_size=0)
    expected = reference.classify_bytes(items)
    signature = (live.stat().st_mtime_ns, live.stat().st_size,
                 live.stat().st_ino)
    with ScoringWorkerPool(live, 2,
                           load_kwargs={"mmap": True,
                                        "cache_size": 0}) as pool:
        pool.warm(signature)
        assert pool.classify(items, signature) == expected
        # A second batch exercises the cached per-worker services.
        assert pool.classify(items[:3], signature) == expected[:3]
        stats = pool.stats()
    assert stats["workers"] == 2
    # 9 items over 2 workers -> 2 chunks; 3 items -> 2 more chunks.
    assert stats["batches_total"] == 4
    assert sum(stats["batches_by_worker"].values()) >= 2


def test_pool_rejects_bad_worker_count(artifacts):
    gen_a, _ = artifacts
    with pytest.raises(ValidationError):
        ScoringWorkerPool(gen_a, 0)


def test_manager_with_workers_matches_single_process(artifacts, tmp_path):
    gen_a, _ = artifacts
    live = tmp_path / "model.rpm"
    publish(gen_a, live)
    items = payloads(7, tag="mgr")
    solo = ModelManager(live, poll_interval=0, cache_size=0)
    expected, _ = solo.classify_items(items)
    manager = ModelManager(live, poll_interval=0, cache_size=0,
                           mmap=True, score_workers=2)
    try:
        assert manager.load_mode == "mmap"
        decisions, generation = manager.classify_items(items)
        assert generation == 1
        assert decisions == expected
        stats = manager.worker_stats()
        assert stats["workers"] == 2
        assert stats["batches_total"] == 2
    finally:
        manager.stop()
        solo.stop()
    assert solo.worker_stats() is None


def test_hot_reload_propagates_to_workers(artifacts, tmp_path):
    gen_a, gen_b = artifacts
    live = tmp_path / "model.rpm"
    publish(gen_a, live)
    manager = ModelManager(live, poll_interval=0, cache_size=0,
                           mmap=True, score_workers=2)
    try:
        items = payloads(6, tag="reload")
        before, _ = manager.classify_items(items)
        assert all(not str(d.predicted_class).startswith("v2-")
                   for d in before)
        publish(gen_b, live)
        assert manager.maybe_reload() is True
        after, generation = manager.classify_items(items)
        assert generation == 2
        # Generation B's renamed classes prove every worker reloaded:
        # the stat signature shipped with the batch moved, so each
        # worker dropped its cached service and re-read the artifact.
        assert all(str(d.predicted_class).startswith("v2-") for d in after)
    finally:
        manager.stop()


def test_dead_pool_falls_back_to_in_process(artifacts, tmp_path):
    gen_a, _ = artifacts
    live = tmp_path / "model.rpm"
    publish(gen_a, live)
    manager = ModelManager(live, poll_interval=0, cache_size=0,
                           score_workers=1)
    try:
        items = payloads(3, tag="fallback")
        expected, _ = manager.classify_items(items)

        class DeadPool:
            def classify(self, items, signature):
                raise ParallelExecutionError("worker pool died")

            def close(self):
                pass

        manager._worker_pool = DeadPool()
        decisions, _ = manager.classify_items(items)
        assert decisions == expected
        # The pool is abandoned for good: no retry storm per batch.
        assert manager._worker_pool is None
        assert manager.worker_stats() is None
    finally:
        manager.stop()


def test_score_workers_incompatible_with_ingestion(artifacts, tmp_path):
    gen_a, _ = artifacts
    live = tmp_path / "model.rpm"
    publish(gen_a, live)
    with pytest.raises(ServingError, match="online ingestion"):
        ModelManager(live, poll_interval=0, mutable=True, score_workers=2)
    with pytest.raises(ServingError, match="score_workers"):
        ModelManager(live, poll_interval=0, score_workers=-1)


# ----------------------------------------------------- HTTP integration
def test_server_reports_load_mode_and_worker_counters(artifacts, tmp_path):
    gen_a, _ = artifacts
    live = tmp_path / "model.rpm"
    publish(gen_a, live)
    manager = ModelManager(live, poll_interval=0.05, cache_size=0,
                           mmap=True, score_workers=1)
    server = ClassificationServer(
        manager, ServerConfig(port=0, workers=2, max_batch=16)).start()
    try:
        items = payloads(4, tag="http")
        status, body = request_json(
            server.port, "POST", "/classify",
            {"items": [{"id": sid,
                        "data": base64.b64encode(data).decode("ascii")}
                       for sid, data in items]})
        assert status == 200, body
        reference = ClassificationService.load(gen_a, cache_size=0)
        assert [d["predicted_class"] for d in body["decisions"]] == \
            [str(d.predicted_class)
             for d in reference.classify_bytes(items)]

        status, health = request_json(server.port, "GET", "/healthz")
        assert status == 200
        assert health["load_mode"] == "mmap"
        assert health["score_workers"] == 1

        status, metrics = request_json(server.port, "GET", "/metrics")
        assert status == 200
        assert metrics["load_mode"] == "mmap"
        workers = metrics["scoring_workers"]
        assert workers["workers"] == 1
        assert workers["batches_total"] >= 1
        assert sum(workers["batches_by_worker"].values()) == \
            workers["batches_total"]
        # The digest-comparability counters stay visible alongside the
        # new worker counters.
        assert "incomparable_comparisons" in metrics
    finally:
        server.shutdown()
