"""Tests for the threshold sweep and the joint grid search."""

import numpy as np
import pytest

from repro.core.gridsearch import (
    FuzzyHashGridSearch,
    class_holdout_folds,
    default_param_grid,
)
from repro.core.thresholds import (
    DEFAULT_THRESHOLD_GRID,
    ThresholdSweep,
    apply_threshold,
    select_best_threshold,
    sweep_thresholds,
)
from repro.exceptions import ValidationError


@pytest.fixture()
def proba_case():
    classes = np.array(["A", "B"], dtype=object)
    proba = np.array([
        [0.9, 0.1],   # confident A
        [0.2, 0.8],   # confident B
        [0.55, 0.45], # borderline
        [0.5, 0.5],   # uncertain -> unknown at high thresholds
    ])
    y_true = np.array(["A", "B", "A", -1], dtype=object)
    return proba, classes, y_true


def test_apply_threshold_basic(proba_case):
    proba, classes, _ = proba_case
    labels = apply_threshold(proba, classes, 0.6)
    assert labels.tolist() == ["A", "B", -1, -1]
    labels_low = apply_threshold(proba, classes, 0.0)
    assert -1 not in labels_low.tolist()


def test_apply_threshold_shape_validation(proba_case):
    proba, classes, _ = proba_case
    with pytest.raises(ValidationError):
        apply_threshold(proba[:, :1], classes, 0.5)


def test_sweep_produces_point_per_threshold(proba_case):
    proba, classes, y_true = proba_case
    sweep = sweep_thresholds(proba, classes, y_true, thresholds=[0.0, 0.6, 0.95])
    assert len(sweep.points) == 3
    for point in sweep.points:
        assert 0.0 <= point.micro_f1 <= 1.0
        assert 0.0 <= point.macro_f1 <= 1.0
    rows = sweep.as_rows()
    assert rows[0]["threshold"] == 0.0
    assert "micro-f1" in sweep.as_text() or "micro" in sweep.as_text()


def test_best_threshold_balances_unknown_detection(proba_case):
    proba, classes, y_true = proba_case
    sweep = sweep_thresholds(proba, classes, y_true, thresholds=[0.0, 0.6])
    best = select_best_threshold(sweep)
    # With an unknown sample present, a non-zero threshold wins.
    assert best == 0.6


def test_sweep_length_mismatch_rejected(proba_case):
    proba, classes, _ = proba_case
    with pytest.raises(ValidationError):
        sweep_thresholds(proba, classes, ["A"])


def test_empty_sweep_best_raises():
    with pytest.raises(ValidationError):
        ThresholdSweep().best()


def test_default_threshold_grid_spans_0_to_09():
    assert DEFAULT_THRESHOLD_GRID[0] == 0.0
    assert DEFAULT_THRESHOLD_GRID[-1] == pytest.approx(0.9)
    assert all(b > a for a, b in zip(DEFAULT_THRESHOLD_GRID, DEFAULT_THRESHOLD_GRID[1:]))


# ------------------------------------------------------------------ grid search
def test_default_param_grid_budget():
    assert len(default_param_grid(budget=3)) == 3
    assert len(default_param_grid(budget=100)) <= 12
    grid = default_param_grid(budget=5, n_estimators=42)
    assert grid[0]["n_estimators"] == 42
    with pytest.raises(ValidationError):
        default_param_grid(budget=0)


def test_class_holdout_folds_simulate_unknowns():
    y = ["A"] * 20 + ["B"] * 15 + ["C"] * 10 + ["D"] * 8 + ["E"] * 6
    folds = list(class_holdout_folds(y, n_splits=3, random_state=0))
    assert len(folds) == 3
    y_arr = np.asarray(y, dtype=object)
    for train_idx, val_idx, expected in folds:
        assert set(train_idx) & set(val_idx) == set()
        # At least one class is fully held out and marked -1.
        assert (expected == -1).sum() > 0
        held_out_classes = set(y_arr[val_idx][expected == -1])
        for cls in held_out_classes:
            assert cls not in set(y_arr[train_idx])


def test_class_holdout_needs_enough_classes():
    with pytest.raises(ValidationError):
        list(class_holdout_folds(["A"] * 5 + ["B"] * 5, n_splits=2))


@pytest.fixture(scope="module")
def similarity_like_data():
    """Synthetic 'similarity matrix' data: one dominant column per class."""

    rng = np.random.default_rng(42)
    n_classes, per_class = 6, 18
    X, y = [], []
    for class_idx in range(n_classes):
        base = np.full((per_class, n_classes), 5.0)
        base[:, class_idx] = 85.0
        X.append(np.clip(base + rng.normal(0, 8, size=base.shape), 0, 100))
        y += [f"Class{class_idx}"] * per_class
    return np.vstack(X), np.asarray(y, dtype=object)


def test_grid_search_returns_consistent_outcome(similarity_like_data):
    X, y = similarity_like_data
    search = FuzzyHashGridSearch(param_grid=default_param_grid(budget=2, n_estimators=15),
                                 thresholds=(0.0, 0.3, 0.6), n_splits=2,
                                 random_state=0)
    outcome = search.search(X, y)
    assert outcome.best_params in search.param_grid
    assert outcome.best_threshold in (0.0, 0.3, 0.6)
    assert 0.0 <= outcome.best_combined_f1 <= 3.0
    assert len(outcome.threshold_sweep.points) == 3
    assert len(outcome.candidate_scores) == 2
    assert "best params" in outcome.summary()


def test_grid_search_prefers_rejecting_threshold_for_unknowns(similarity_like_data):
    X, y = similarity_like_data
    search = FuzzyHashGridSearch(param_grid=default_param_grid(budget=1, n_estimators=15),
                                 thresholds=(0.0, 0.4), n_splits=3, random_state=1)
    outcome = search.search(X, y)
    # With held-out classes in every fold, a non-zero threshold must score
    # at least as well as never rejecting.
    zero_point = [p for p in outcome.threshold_sweep.points if p.threshold == 0.0][0]
    best_point = outcome.threshold_sweep.best()
    assert best_point.combined >= zero_point.combined
