"""Property-based tests (hypothesis) for the core data structures.

These pin down the invariants the rest of the pipeline silently relies
on: metric properties of the edit distances, agreement between scalar
and vectorised implementations, digest well-formedness, similarity
score symmetry/boundedness, and ELF round-tripping.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.binfmt.reader import ElfReader
from repro.binfmt.strings_extract import extract_strings
from repro.binfmt.structs import SymbolSpec
from repro.binfmt.writer import build_executable
from repro.distance.batch import batch_edit_distances
from repro.distance.damerau import damerau_levenshtein_distance, osa_distance, \
    weighted_edit_distance
from repro.distance.levenshtein import levenshtein_distance, levenshtein_distance_numpy
from repro.hashing.b64 import B64_ALPHABET
from repro.hashing.compare import compare_digests, normalize_repeats
from repro.hashing.rolling import RollingHash, rolling_hash_values
from repro.hashing.ssdeep import SsdeepDigest, fuzzy_hash
from repro.ml.class_weight import compute_sample_weight
from repro.ml.metrics import accuracy_score, f1_score, precision_recall_fscore_support

# A compact alphabet keeps the edit-distance search space interesting.
_short_text = st.text(alphabet="ABCab01+/", max_size=24)
_blobs = st.binary(min_size=0, max_size=4096)
# Full-range unicode (including astral code points past int16) and raw
# bytes; both are valid BatchEditDistance inputs.
_any_text = st.text(max_size=16)
_any_bytes = st.binary(max_size=16)

_default_settings = settings(max_examples=60, deadline=None,
                             suppress_health_check=[HealthCheck.too_slow])


# ----------------------------------------------------------------- distances
@_default_settings
@given(_short_text, _short_text)
def test_edit_distances_are_metrics(a, b):
    for fn in (levenshtein_distance, osa_distance, damerau_levenshtein_distance):
        d_ab = fn(a, b)
        assert d_ab >= 0
        assert (d_ab == 0) == (a == b)
        assert d_ab == fn(b, a)                       # symmetry
        assert d_ab <= max(len(a), len(b))            # upper bound
        assert d_ab >= abs(len(a) - len(b))           # lower bound


@_default_settings
@given(_short_text, _short_text)
def test_vectorised_distances_agree_with_reference(a, b):
    assert levenshtein_distance_numpy(a, b) == levenshtein_distance(a, b)
    assert batch_edit_distances([a], [b])[0] == osa_distance(a, b)
    assert batch_edit_distances([a], [b], substitute_cost=3, transpose_cost=5)[0] == \
        weighted_edit_distance(a, b)


@_default_settings
@given(st.lists(st.tuples(_any_text, _any_text), max_size=10))
def test_batch_engine_matches_scalar_on_unicode_pair_lists(pairs):
    """The batched DP must agree with the scalar reference pair by pair —
    including empty strings, identical strings and astral code points."""

    left = [a for a, _ in pairs]
    right = [b for _, b in pairs]
    plain = batch_edit_distances(left, right)
    weighted = batch_edit_distances(left, right, substitute_cost=3,
                                    transpose_cost=5)
    for i, (a, b) in enumerate(pairs):
        assert plain[i] == osa_distance(a, b)
        assert weighted[i] == weighted_edit_distance(a, b)


@_default_settings
@given(st.lists(st.tuples(_any_bytes, _any_bytes), max_size=10))
def test_batch_engine_matches_scalar_on_byte_pair_lists(pairs):
    left = [a for a, _ in pairs]
    right = [b for _, b in pairs]
    plain = batch_edit_distances(left, right)
    weighted = batch_edit_distances(left, right, substitute_cost=3,
                                    transpose_cost=5)
    for i, (a, b) in enumerate(pairs):
        assert plain[i] == osa_distance(a, b)
        assert weighted[i] == weighted_edit_distance(a, b)


@_default_settings
@given(_any_text)
def test_batch_engine_degenerate_pairs(s):
    """Empty and all-identical pairs are the DP's boundary rows."""

    assert batch_edit_distances([s], [s])[0] == 0
    assert batch_edit_distances([s], [""])[0] == len(s)
    assert batch_edit_distances([""], [s])[0] == len(s)
    assert batch_edit_distances([""], [""])[0] == 0
    identical = [s] * 5
    assert batch_edit_distances(identical, identical).tolist() == [0] * 5


@_default_settings
@given(_short_text, _short_text, _short_text)
def test_levenshtein_triangle_inequality(a, b, c):
    assert levenshtein_distance(a, c) <= \
        levenshtein_distance(a, b) + levenshtein_distance(b, c)


# ------------------------------------------------------------------- hashing
@_default_settings
@given(_blobs)
def test_rolling_hash_vectorised_matches_scalar(data):
    scalar = RollingHash()
    expected = [scalar.update(byte) for byte in data]
    assert [int(v) for v in rolling_hash_values(data)] == expected


@_default_settings
@given(_blobs)
def test_fuzzy_hash_digest_is_well_formed(data):
    digest = SsdeepDigest.parse(fuzzy_hash(data))
    assert digest.block_size >= 3
    assert len(digest.chunk) <= 64
    assert len(digest.double_chunk) <= 32
    assert all(ch in B64_ALPHABET for ch in digest.chunk + digest.double_chunk)


@_default_settings
@given(_blobs)
def test_digest_string_round_trip(data):
    """``SsdeepDigest.parse(str(d)) == d`` for every computed digest."""

    digest = SsdeepDigest.parse(fuzzy_hash(data))
    assert SsdeepDigest.parse(str(digest)) == digest
    assert str(SsdeepDigest.parse(str(digest))) == str(digest)


@_default_settings
@given(st.integers(min_value=3, max_value=3 * 2 ** 20),
       st.text(alphabet=B64_ALPHABET, max_size=64),
       st.text(alphabet=B64_ALPHABET, max_size=32))
def test_digest_round_trip_for_constructed_digests(block_size, chunk, double_chunk):
    digest = SsdeepDigest(block_size=block_size, chunk=chunk,
                          double_chunk=double_chunk)
    assert SsdeepDigest.parse(str(digest)) == digest


@_default_settings
@given(st.binary(min_size=1, max_size=4096))
def test_fuzzy_hash_self_similarity_and_symmetry(data):
    digest = fuzzy_hash(data)
    if SsdeepDigest.parse(digest).is_empty:
        # Degenerate inputs (e.g. all zero bytes) produce an empty
        # signature; SSDeep defines comparisons with those as score 0.
        assert compare_digests(digest, digest) == 0
    else:
        assert compare_digests(digest, digest) == 100
    other = fuzzy_hash(data[::-1] + b"tail")
    assert compare_digests(digest, other) == compare_digests(other, digest)
    assert 0 <= compare_digests(digest, other) <= 100


@_default_settings
@given(st.text(alphabet="AB/+x", max_size=40), st.integers(min_value=1, max_value=5))
def test_normalize_repeats_never_lengthens(text, max_run):
    normalized = normalize_repeats(text, max_run=max_run)
    assert len(normalized) <= len(text)
    # No run longer than max_run survives.
    run = 1
    for previous, current in zip(normalized, normalized[1:]):
        run = run + 1 if previous == current else 1
        assert run <= max_run


# --------------------------------------------------------------------- binfmt
@_default_settings
@given(st.lists(st.from_regex(r"[a-z_][a-z0-9_]{0,18}", fullmatch=True),
                min_size=1, max_size=24, unique=True),
       st.binary(min_size=1, max_size=2048))
def test_elf_roundtrip_preserves_symbols_and_text(names, code):
    blob = build_executable(code=code, strings=["marker-string-1234"],
                            symbols=[SymbolSpec(name) for name in names])
    reader = ElfReader(blob)
    assert reader.section(".text").data == code
    recovered = sorted(s.name for s in reader.symbols if s.is_global)
    assert recovered == sorted(names)
    # The marker string may be embedded in a longer printable run when the
    # surrounding bytes happen to be printable too (exactly like `strings`).
    assert any("marker-string-1234" in run for run in extract_strings(blob))


@_default_settings
@given(st.binary(min_size=0, max_size=2048), st.integers(min_value=1, max_value=8))
def test_extract_strings_runs_are_printable_and_long_enough(data, min_length):
    for run in extract_strings(data, min_length=min_length):
        assert len(run) >= min_length
        assert all(0x20 <= ord(ch) <= 0x7E or ch == "\t" for ch in run)
        assert run.encode("ascii") in data


# ------------------------------------------------------------------------- ml
@_default_settings
@given(st.lists(st.sampled_from(["a", "b", "c"]), min_size=2, max_size=60),
       st.lists(st.sampled_from(["a", "b", "c"]), min_size=2, max_size=60))
def test_metric_bounds_and_micro_equals_accuracy(y_true, y_pred):
    n = min(len(y_true), len(y_pred))
    y_true, y_pred = y_true[:n], y_pred[:n]
    micro_p, micro_r, micro_f1, support = precision_recall_fscore_support(
        y_true, y_pred, average="micro")
    assert 0.0 <= micro_f1 <= 1.0
    assert micro_f1 == pytest.approx(accuracy_score(y_true, y_pred))
    assert support == n
    for average in ("macro", "weighted"):
        assert 0.0 <= f1_score(y_true, y_pred, average=average) <= 1.0


@_default_settings
@given(st.lists(st.sampled_from(["x", "y", "z"]), min_size=3, max_size=50))
def test_balanced_sample_weights_give_equal_class_mass(labels):
    labels = np.asarray(labels, dtype=object)
    weights = compute_sample_weight("balanced", labels)
    assert weights.shape == labels.shape
    masses = {label: weights[labels == label].sum() for label in set(labels.tolist())}
    values = list(masses.values())
    assert np.allclose(values, values[0])
