"""Tests for the production workflow (Figure 1) and report rendering."""

import numpy as np
import pytest

from repro.core.classifier import FuzzyHashClassifier
from repro.core.reporting import (
    class_size_table,
    classification_report_table,
    feature_importance_table,
    hash_similarity_example,
    render_table,
    threshold_sweep_table,
    unknown_class_table,
    velvet_style_table,
)
from repro.core.splits import two_phase_split
from repro.core.thresholds import ThresholdPoint, ThresholdSweep
from repro.core.workflow import (
    DECISION_EXPECTED,
    DECISION_UNEXPECTED,
    DECISION_UNKNOWN,
    ClassificationWorkflow,
)
from repro.exceptions import EvaluationError
from repro.ml.metrics import classification_report


@pytest.fixture(scope="module")
def workflow_setup(tiny_features, tiny_labels, disk_tree):
    split = two_phase_split(tiny_labels, mode="paper", random_state=2)
    train = [tiny_features[i] for i in split.train_indices]
    # The threshold is in the range the paper's grid search lands in; with
    # the small number of known classes of the test corpus a lower value
    # would accept too many unknown applications.
    clf = FuzzyHashClassifier(n_estimators=60, confidence_threshold=0.55,
                              random_state=0).fit(train)
    return clf, split


def test_workflow_requires_fitted_classifier():
    with pytest.raises(EvaluationError):
        ClassificationWorkflow(FuzzyHashClassifier())


def test_workflow_classifies_directory(workflow_setup, disk_tree):
    clf, split = workflow_setup
    root, dataset = disk_tree
    known_class = split.known_classes[0]
    workflow = ClassificationWorkflow(clf)
    results = workflow.classify_directory(root / known_class)
    assert results
    # Most executables of a known class are recognised as that class.
    recognised = sum(1 for r in results if r.predicted_class == known_class)
    assert recognised / len(results) > 0.5
    assert all(r.decision in (DECISION_EXPECTED, DECISION_UNKNOWN,
                              DECISION_UNEXPECTED) for r in results)


def test_workflow_flags_out_of_allocation_software(workflow_setup, disk_tree):
    clf, split = workflow_setup
    root, _ = disk_tree
    known_class = split.known_classes[0]
    other_known = split.known_classes[1]
    workflow = ClassificationWorkflow(clf, allowed_classes=[other_known])
    results = workflow.classify_directory(root / known_class)
    # The allocation only allows a different application, so anything
    # recognised as `known_class` must be flagged as unexpected.
    flagged = [r for r in results if r.decision == DECISION_UNEXPECTED]
    assert flagged
    assert all(r.is_suspicious() for r in flagged)


def test_workflow_marks_unknown_applications(workflow_setup, disk_tree):
    clf, split = workflow_setup
    root, _ = disk_tree
    unknown_class = split.unknown_classes[0]
    workflow = ClassificationWorkflow(clf)
    results = workflow.classify_directory(root / unknown_class)
    unknown_decisions = [r for r in results if r.decision == DECISION_UNKNOWN]
    assert len(unknown_decisions) / len(results) > 0.5


def test_workflow_report_and_empty_paths(workflow_setup):
    clf, _ = workflow_setup
    workflow = ClassificationWorkflow(clf)
    assert workflow.classify_paths([]) == []
    with pytest.raises(EvaluationError):
        workflow.classify_directory("/definitely/not/a/directory")


def test_workflow_classify_features_directly(workflow_setup, tiny_features):
    clf, _ = workflow_setup
    workflow = ClassificationWorkflow(clf)
    results = workflow.classify_features(tiny_features[:5])
    assert len(results) == 5
    report = workflow.report(results)
    assert "decision" in report


# ------------------------------------------------------------------- reporting
def test_render_table_alignment():
    text = render_table(["a", "bb"], [["x", 1], ["yy", 22]], title="T")
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "a" in lines[1] and "bb" in lines[1]


def test_class_size_table_from_counts():
    text = class_size_table({"Big": 100, "Small": 2})
    assert text.index("Big") < text.index("Small")
    top_only = class_size_table({"Big": 100, "Small": 2}, top=1)
    assert "Small" not in top_only


def test_velvet_style_table(disk_tree):
    _, dataset = disk_tree
    text = velvet_style_table(dataset, class_name="VelvetLike")
    assert "VelvetLike" in text
    assert "velh" in text and "velg" in text


def test_hash_similarity_example_reports_scores(tiny_features):
    same_class = [f for f in tiny_features if f.class_name == tiny_features[0].class_name][:2]
    entries = [(f.version, f.digest("ssdeep-symbols")) for f in same_class]
    text = hash_similarity_example(same_class[0].class_name, entries)
    assert "similarity(" in text
    assert same_class[0].class_name in text


def test_unknown_class_table(tiny_labels):
    split = two_phase_split(tiny_labels, mode="paper", random_state=0)
    text = unknown_class_table(split)
    assert "total" in text
    for name in split.unknown_classes:
        assert name in text


def test_feature_importance_and_threshold_tables():
    text = feature_importance_table({"ssdeep-symbols": 0.7, "ssdeep-file": 0.3})
    assert "ssdeep-symbols" in text
    sweep = ThresholdSweep(points=[ThresholdPoint(0.0, 0.9, 0.8, 0.85),
                                   ThresholdPoint(0.5, 0.91, 0.82, 0.86)])
    sweep_text = threshold_sweep_table(sweep)
    assert "0.50" in sweep_text


def test_classification_report_table():
    report = classification_report(["a", "b", "a"], ["a", "b", "b"])
    assert "Table 4" in classification_report_table(report)
