"""Unit tests for the serving metrics registry
(``repro.serving.metrics``): counter/gauge semantics, histogram
quantile estimation against analytically known inputs, snapshot shape,
and exactness under concurrent recording.
"""

import math
import threading

import pytest

from repro.serving.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


def test_counter_only_goes_up():
    counter = Counter()
    counter.inc()
    counter.inc(4)
    assert counter.value == 5
    with pytest.raises(ValueError):
        counter.inc(-1)


def test_gauge_moves_both_ways():
    gauge = Gauge()
    gauge.set(10)
    gauge.inc(2.5)
    gauge.dec()
    assert gauge.value == pytest.approx(11.5)


# -------------------------------------------------------------- histogram
def test_histogram_quantiles_on_uniform_data_are_exact():
    # Buckets at 10, 20, ..., 100 and one observation at each integer
    # 1..100: linear interpolation inside a uniformly filled bucket
    # recovers the exact quantile.
    hist = Histogram(buckets=[float(b) for b in range(10, 101, 10)])
    for value in range(1, 101):
        hist.observe(float(value))
    assert hist.count == 100
    assert hist.sum == pytest.approx(5050.0)
    assert hist.quantile(0.50) == pytest.approx(50.0)
    assert hist.quantile(0.95) == pytest.approx(95.0)
    assert hist.quantile(0.99) == pytest.approx(99.0)
    assert hist.quantile(1.00) == pytest.approx(100.0)


def test_histogram_overflow_bucket_reports_observed_max():
    hist = Histogram(buckets=[1.0, 2.0])
    for value in (0.5, 1.5, 10.0, 40.0):
        hist.observe(value)
    # p99 lands in the overflow bucket, which has no finite upper bound
    # to interpolate towards — the observed max is the honest answer.
    assert hist.quantile(0.99) == 40.0
    snapshot = hist.snapshot()
    assert snapshot["buckets"]["+Inf"] == 2
    assert snapshot["max"] == 40.0


def test_histogram_empty_and_validation():
    hist = Histogram(buckets=[1.0])
    assert math.isnan(hist.quantile(0.5))
    with pytest.raises(ValueError):
        hist.quantile(1.5)
    with pytest.raises(ValueError):
        Histogram(buckets=[])
    with pytest.raises(ValueError):
        Histogram(buckets=[2.0, 1.0])


def test_histogram_snapshot_quantiles_are_ordered():
    hist = Histogram(DEFAULT_LATENCY_BUCKETS)
    for value in (0.002, 0.004, 0.03, 0.3, 0.9, 4.0):
        hist.observe(value)
    snapshot = hist.snapshot()
    assert snapshot["count"] == 6
    assert snapshot["p50"] <= snapshot["p95"] <= snapshot["p99"]


# --------------------------------------------------------------- registry
def test_registry_creates_lazily_and_rejects_type_collisions():
    registry = MetricsRegistry()
    assert registry.counter("a") is registry.counter("a")
    registry.gauge("g").set(3)
    registry.histogram("h").observe(0.01)
    with pytest.raises(ValueError):
        registry.gauge("a")
    with pytest.raises(ValueError):
        registry.counter("h")
    snapshot = registry.snapshot()
    assert snapshot["a"] == 0
    assert snapshot["g"] == 3.0
    assert snapshot["h"]["count"] == 1
    assert list(snapshot) == sorted(snapshot)


def test_concurrent_recording_loses_nothing():
    registry = MetricsRegistry()
    counter = registry.counter("events")
    hist = registry.histogram("lat")

    def hammer():
        for _ in range(500):
            counter.inc()
            hist.observe(0.01)

    threads = [threading.Thread(target=hammer) for _ in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert counter.value == 4000
    assert hist.count == 4000
    assert hist.sum == pytest.approx(40.0)


def test_histogram_reads_are_never_torn_under_concurrent_observes():
    # Every multi-field read (state, snapshot, collect) happens under
    # one lock hold, so bucket counts always sum to count and sum/max
    # describe the same observation set — even while writers hammer.
    registry = MetricsRegistry()
    hist = registry.histogram("lat", buckets=[1.0, 2.0, 4.0])
    family = registry.histogram("staged", buckets=[1.0],
                                labels=("stage",))
    child = family.labels(stage="a")
    stop = threading.Event()
    torn: list[str] = []

    def writer():
        value = 0
        while not stop.is_set():
            hist.observe(float(value % 5))         # constant 2.0 mean basis
            child.observe(float(value % 2))
            value += 1

    def check(state):
        if sum(state["counts"]) != state["count"]:
            torn.append(f"counts {state['counts']} != count "
                        f"{state['count']}")
        if state["count"] and not state["sum"] <= state["count"] * 4.0:
            torn.append(f"sum {state['sum']} impossible for count "
                        f"{state['count']}")

    def reader():
        while not stop.is_set():
            check(hist.state())
            check(child.state())
            snapshot = hist.snapshot()
            if sum(snapshot["buckets"].values()) != snapshot["count"]:
                torn.append("snapshot buckets disagree with count")
            for _, _, series in registry.collect():
                for _, state in series:
                    if isinstance(state, dict):
                        check(state)

    writers = [threading.Thread(target=writer) for _ in range(4)]
    readers = [threading.Thread(target=reader) for _ in range(2)]
    for thread in writers + readers:
        thread.start()
    threading.Event().wait(0.5)
    stop.set()
    for thread in writers + readers:
        thread.join()
    assert torn == []
    assert hist.count > 0                          # the hammer really ran
