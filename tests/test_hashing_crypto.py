"""Tests for the cryptographic-digest helpers."""

import hashlib

import pytest

from repro.exceptions import ValidationError
from repro.hashing.crypto import SUPPORTED_ALGORITHMS, crypto_digest, crypto_digest_file


def test_sha256_matches_hashlib():
    data = b"fuzzy hashing for HPC"
    assert crypto_digest(data) == hashlib.sha256(data).hexdigest()


def test_all_supported_algorithms_work():
    for algorithm in SUPPORTED_ALGORITHMS:
        digest = crypto_digest(b"payload", algorithm)
        assert digest == hashlib.new(algorithm, b"payload").hexdigest()


def test_string_input_is_utf8():
    assert crypto_digest("text") == crypto_digest(b"text")


def test_unknown_algorithm_rejected():
    with pytest.raises(ValidationError):
        crypto_digest(b"x", "crc32")


def test_file_digest_matches_bytes_digest(tmp_path):
    data = b"A" * 3_000_000  # spans multiple read chunks
    path = tmp_path / "big.bin"
    path.write_bytes(data)
    assert crypto_digest_file(path, chunk_size=65536) == crypto_digest(data)


def test_exact_match_property():
    # The motivation for fuzzy hashing: one changed byte breaks equality.
    a = crypto_digest(b"identical content")
    b = crypto_digest(b"identical content!")
    assert a != b
