"""Online ingestion tests: the ``/ingest`` wire protocol, the mutable
:class:`ClassificationService` corpus API, :class:`ModelManager`
mutation/publish, and the live HTTP endpoints (``POST /ingest``,
``DELETE /samples/<id>``).
"""

import base64
import json

import pytest

from repro.api.service import ClassificationService
from repro.exceptions import ProtocolError, ValidationError
from repro.serving import ClassificationServer, ServerConfig
from repro.serving.ingest import (
    DEFAULT_MAX_INGEST_ITEMS,
    encode_ingest_report,
    parse_ingest_request,
    parse_purge_path,
)
from repro.serving.metrics import MetricsRegistry
from repro.serving.model_manager import ModelManager

from test_api_artifact import make_records
from test_serving_server import payloads, request_json


def ingest_item(sample_id, data: bytes, class_name: str) -> dict:
    return {"id": sample_id, "class": class_name,
            "data": base64.b64encode(data).decode("ascii")}


def body(items) -> bytes:
    return json.dumps({"items": items}).encode("utf-8")


# ------------------------------------------------------------ wire protocol
def test_parse_ingest_request_decodes_labelled_items(tmp_path):
    local = tmp_path / "exe"
    local.write_bytes(b"local-bytes")
    items = parse_ingest_request(body([
        ingest_item("a", b"inline-bytes", "fam0"),
        {"id": "b", "class": "fam1", "path": str(local)},
    ]))
    assert [(i.sample_id, i.class_name, i.data) for i in items] == \
        [("a", "fam0", b"inline-bytes"), ("b", "fam1", b"local-bytes")]
    assert items[0].as_triple() == ("a", b"inline-bytes", "fam0")


@pytest.mark.parametrize("payload, match", [
    (b"not json", "not valid JSON"),
    (b"[]", "JSON object"),
    (b"{}", '"items"'),
    (body(["x"]), "JSON object"),
    (body([{"class": "c", "data": "QQ=="}]), '"id"'),
    (body([{"id": "a", "data": "QQ=="}]), '"class"'),
    (body([{"id": "a", "class": "", "data": "QQ=="}]), '"class"'),
    (body([{"id": "a", "class": "c"}]), "exactly one"),
    (body([{"id": "a", "class": "c", "data": "QQ==", "path": "/x"}]),
     "exactly one"),
    (body([{"id": "a", "class": "c", "data": "@@@"}]), "base64"),
])
def test_parse_ingest_request_rejects_bad_shapes(payload, match):
    with pytest.raises(ProtocolError, match=match):
        parse_ingest_request(payload)


def test_parse_ingest_request_enforces_caps():
    items = [ingest_item(f"s{i}", b"x", "c")
             for i in range(DEFAULT_MAX_INGEST_ITEMS + 1)]
    with pytest.raises(ProtocolError, match="ingest cap"):
        parse_ingest_request(body(items))
    with pytest.raises(ProtocolError, match="cap"):
        parse_ingest_request(body([ingest_item("a", b"x" * 64, "c")]),
                             max_item_bytes=16)


def test_parse_purge_path_unquotes():
    assert parse_purge_path("/samples/node7%2Fjob-1%2Fa.out") == \
        "node7/job-1/a.out"
    with pytest.raises(ProtocolError):
        parse_purge_path("/samples/")
    with pytest.raises(ProtocolError):
        parse_purge_path("/other/x")


def test_encode_ingest_report_shape():
    raw = encode_ingest_report(
        [{"sample_id": "a", "class": "c", "sequence": 30}], 2, 31)
    payload = json.loads(raw)
    assert payload == {"ingested": [{"sample_id": "a", "class": "c",
                                     "sequence": 30}],
                       "model_generation": 2, "corpus_members": 31,
                       "count": 1, "durable": False}
    durable = json.loads(encode_ingest_report([], 1, 0, durable=True))
    assert durable["durable"] is True


# --------------------------------------------------------- mutable service
@pytest.fixture(scope="module")
def trained_records():
    return make_records(30, seed=21, n_families=3)


@pytest.fixture()
def mutable_service(trained_records):
    service = ClassificationService.train(
        trained_records, feature_types=["ssdeep-file"], n_estimators=10,
        random_state=1, confidence_threshold=0.1, cache_size=64)
    service.enable_mutation(n_shards=3)
    return service


def test_enable_mutation_converts_to_sharded_and_is_idempotent(
        mutable_service):
    from repro.index import ShardedSimilarityIndex

    index = mutable_service.similarity_index
    assert isinstance(index, ShardedSimilarityIndex)
    mutable_service.enable_mutation()            # idempotent
    assert mutable_service.similarity_index is index


def test_enable_mutation_rejects_all_train(trained_records):
    service = ClassificationService.train(
        trained_records, feature_types=["ssdeep-file"], n_estimators=5,
        random_state=1, anchor_strategy="all-train")
    with pytest.raises(ValidationError, match="all-train"):
        service.enable_mutation()


def test_immutable_service_rejects_mutation(trained_records):
    service = ClassificationService.train(
        trained_records, feature_types=["ssdeep-file"], n_estimators=5,
        random_state=1)
    with pytest.raises(ValidationError, match="enable_mutation"):
        service.ingest_bytes([("a", b"x", "fam0")])
    with pytest.raises(ValidationError, match="enable_mutation"):
        service.purge("a")


def test_ingested_sample_is_classified_without_restart(mutable_service,
                                                       trained_records):
    # A payload dissimilar to the training corpus, ingested as fam1:
    # its exact bytes must afterwards classify as fam1 via the anchor
    # it just became.
    alien = b"\x7fALIEN" + bytes((7 * k) % 251 for k in range(4096)) * 4
    before = mutable_service.classify_bytes([("probe", alien)])[0]
    reports = mutable_service.ingest_bytes([("online-1", alien, "fam1")])
    assert reports == [{"sample_id": "online-1", "class": "fam1",
                        "sequence": 30}]
    assert mutable_service.similarity_index.n_members == 31
    after = mutable_service.classify_bytes([("probe", alien)])[0]
    assert after.predicted_class == "fam1"
    assert after.confidence >= before.confidence


def test_ingest_rejects_unknown_class_without_mutating(mutable_service):
    with pytest.raises(ValidationError, match="unknown class"):
        mutable_service.ingest_bytes([("ok", b"data-a" * 100, "fam0"),
                                      ("bad", b"data-b" * 100, "new-fam")])
    # All-or-nothing: the valid first item must not have been added.
    assert mutable_service.similarity_index.n_members == 30


def test_ingest_invalidates_digest_cache(mutable_service):
    probe = bytes(range(256)) * 16
    first = mutable_service.classify_bytes([("p", probe)])[0]
    assert mutable_service.cache_info()["size"] >= 1
    mutable_service.ingest_bytes([("online-1", probe, "fam2")])
    assert mutable_service.cache_info()["size"] == 0
    second = mutable_service.classify_bytes([("p", probe)])[0]
    # The probe's own bytes are now a fam2 anchor with similarity 100.
    assert second.predicted_class == "fam2"
    assert first.predicted_class != "fam2" or \
        second.confidence >= first.confidence


def test_purge_guards_last_anchor_of_a_class(mutable_service,
                                             trained_records):
    fam0 = [r.sample_id for r in trained_records
            if r.class_name == "fam0"]
    for sample_id in fam0[:-1]:
        assert mutable_service.purge(sample_id) == 1
    with pytest.raises(ValidationError, match="last"):
        mutable_service.purge(fam0[-1])
    assert mutable_service.purge("never-heard-of-it") == 0
    info = mutable_service.corpus_info()
    assert info["classes"]["fam0"] == 1
    assert info["tombstones"] == len(fam0) - 1
    # Compaction drops them physically; queries already ignored them.
    assert mutable_service.compact() == len(fam0) - 1
    assert mutable_service.corpus_info()["tombstones"] == 0


def test_refresh_from_index_rejects_class_set_changes(trained_records):
    from repro.index import ShardedSimilarityIndex

    service = ClassificationService.train(
        trained_records, feature_types=["ssdeep-file"], n_estimators=5,
        random_state=1)
    service.enable_mutation()
    builder = service.classifier.builder_
    rogue = ShardedSimilarityIndex(["ssdeep-file"], n_shards=2)
    rogue.add_many([(r.sample_id, r.digests, "mystery-class")
                    for r in trained_records[:5]])
    with pytest.raises(ValidationError, match="class set"):
        builder.refresh_from_index(rogue)


# ---------------------------------------------------------- model manager
@pytest.fixture()
def mutable_manager(trained_records, tmp_path):
    live = tmp_path / "model.rpm"
    ClassificationService.train(
        trained_records, feature_types=["ssdeep-file"], n_estimators=10,
        random_state=1, confidence_threshold=0.1).save(live)
    registry = MetricsRegistry()
    manager = ModelManager(live, poll_interval=0, metrics=registry,
                           mutable=True, n_shards=3, cache_size=64)
    return manager, registry, live


def test_manager_ingest_purge_and_gauges(mutable_manager):
    manager, registry, _ = mutable_manager
    reports, generation = manager.ingest_items(
        [("online-1", b"\x01" * 2048, "fam0"),
         ("online-2", b"\x02" * 2048, "fam1")])
    assert generation == 1
    assert [r["sample_id"] for r in reports] == ["online-1", "online-2"]
    removed, generation = manager.purge("online-1")
    assert (removed, generation) == (1, 1)
    snapshot = registry.snapshot()
    assert snapshot["ingested_samples_total"] == 2
    assert snapshot["purged_samples_total"] == 1
    assert snapshot["corpus_members"] == 31.0
    assert snapshot["corpus_tombstones"] == 1.0
    assert manager.compact() == 1
    assert registry.snapshot()["corpus_tombstones"] == 0.0


def test_manager_publish_is_atomic_and_self_suppressing(mutable_manager):
    manager, _, live = mutable_manager
    manager.ingest_items([("online-1", b"\x03" * 4096, "fam2")])
    published = manager.publish()
    assert published == live
    assert not list(live.parent.glob("*.tmp"))     # no debris
    # The watcher must not reload the manager's own snapshot...
    assert manager.maybe_reload() is False
    assert manager.generation == 1
    # ...and a fresh load sees the identical grown corpus.
    fresh = ClassificationService.load(live)
    assert fresh.similarity_index.sample_ids == \
        manager.service.similarity_index.sample_ids
    probe = [("probe", b"\x03" * 4096)]
    live_decisions, _ = manager.classify_items(probe)
    assert fresh.classify_bytes(probe) == live_decisions


def test_manager_publish_to_side_path_keeps_watching(mutable_manager,
                                                     tmp_path):
    manager, _, _ = mutable_manager
    side = tmp_path / "replica" / "snapshot.rpm"
    side.parent.mkdir()
    manager.ingest_items([("online-1", b"\x04" * 1024, "fam0")])
    assert manager.publish(side) == side
    assert ClassificationService.load(side).similarity_index.n_members == 31


# ------------------------------------------------------------ HTTP server
@pytest.fixture()
def ingest_server(trained_records, tmp_path):
    live = tmp_path / "model.rpm"
    ClassificationService.train(
        trained_records, feature_types=["ssdeep-file"], n_estimators=10,
        random_state=1, confidence_threshold=0.1).save(live)
    manager = ModelManager(live, poll_interval=0, mutable=True, n_shards=3,
                           cache_size=64)
    server = ClassificationServer(
        manager, ServerConfig(port=0, workers=2, enable_ingest=True)).start()
    try:
        yield server, manager
    finally:
        server.shutdown()


def test_http_ingest_then_classify_without_restart(ingest_server):
    server, manager = ingest_server
    alien = b"\x7fALIEN" + bytes((11 * k) % 241 for k in range(4096)) * 4
    status, _, report = request_json(
        server.port, "POST", "/ingest",
        {"items": [ingest_item("online-1", alien, "fam1")]})
    assert status == 200, report
    assert report["count"] == 1
    assert report["corpus_members"] == 31
    assert report["ingested"][0] == {"sample_id": "online-1",
                                     "class": "fam1", "sequence": 30}
    status, _, answer = request_json(
        server.port, "POST", "/classify",
        {"items": [{"id": "probe",
                    "data": base64.b64encode(alien).decode("ascii")}]})
    assert status == 200
    assert answer["decisions"][0]["predicted_class"] == "fam1"
    status, _, health = request_json(server.port, "GET", "/healthz")
    assert health["ingest_enabled"] is True
    assert health["corpus"]["members"] == 31


def test_http_ingest_unknown_class_is_400(ingest_server):
    server, _ = ingest_server
    status, _, error = request_json(
        server.port, "POST", "/ingest",
        {"items": [ingest_item("x", b"data" * 50, "no-such-class")]})
    assert status == 400
    assert "unknown class" in error["error"]


def test_http_purge_paths(ingest_server, trained_records):
    server, manager = ingest_server
    status, _, report = request_json(
        server.port, "POST", "/ingest",
        {"items": [ingest_item("online-1", b"\x05" * 512, "fam0")]})
    assert status == 200
    status, _, purged = request_json(server.port, "DELETE",
                                     "/samples/online-1")
    assert status == 200
    assert purged == {"purged": 1, "sample_id": "online-1",
                      "model_generation": 1}
    status, _, _ = request_json(server.port, "DELETE", "/samples/online-1")
    assert status == 404                            # already gone
    # Purging a whole class's anchors ends in 409, not a broken model.
    fam2 = [r.sample_id for r in trained_records if r.class_name == "fam2"]
    for sample_id in fam2[:-1]:
        status, _, _ = request_json(
            server.port, "DELETE", "/samples/" + sample_id)
        assert status == 200
    status, _, error = request_json(
        server.port, "DELETE", "/samples/" + fam2[-1])
    assert status == 409
    assert "last" in error["error"]


def test_http_ingest_disabled_is_403(trained_records, tmp_path):
    live = tmp_path / "model.rpm"
    ClassificationService.train(
        trained_records, feature_types=["ssdeep-file"], n_estimators=5,
        random_state=1).save(live)
    manager = ModelManager(live, poll_interval=0)
    server = ClassificationServer(manager, ServerConfig(port=0)).start()
    try:
        status, _, error = request_json(
            server.port, "POST", "/ingest",
            {"items": [ingest_item("x", b"data", "fam0")]})
        assert status == 403
        assert "disabled" in error["error"]
        status, _, _ = request_json(server.port, "DELETE", "/samples/x")
        assert status == 403
    finally:
        server.shutdown()


def test_ingest_shares_classify_backpressure():
    """An ingest burst is admission-controlled by the same bounded
    queue as classification: overflow answers 503 + Retry-After, and
    the drained queue admits the identical request."""

    import threading
    import time

    from repro.api.service import Decision

    class GatedManager:
        generation = 1
        model_path = "gated-stub"
        mutable = True

        def __init__(self):
            self.gate = threading.Event()
            self.entered = threading.Event()

        def classify_items(self, items):
            self.entered.set()
            assert self.gate.wait(timeout=30)
            return [Decision(sample_id=sid, predicted_class="stub",
                             confidence=1.0, decision="within-allocation")
                    for sid, _data in items], self.generation

        def ingest_items(self, items):
            return [{"sample_id": sid, "class": cls, "sequence": 0}
                    for sid, _data, cls in items], self.generation

        def corpus_info(self):
            return {"members": 0, "classes": {}, "mutable": True}

    manager = GatedManager()
    server = ClassificationServer(
        manager, ServerConfig(port=0, workers=1, max_batch=1, queue_depth=2,
                              enable_ingest=True)).start()
    statuses = []
    lock = threading.Lock()

    def classify_client(sample_id):
        status, _, _ = request_json(
            server.port, "POST", "/classify",
            {"items": [{"id": sample_id,
                        "data": base64.b64encode(b"x").decode("ascii")}]},
            timeout=60)
        with lock:
            statuses.append(status)

    try:
        # First classify request occupies the single worker...
        first = threading.Thread(target=classify_client, args=("in-flight",))
        first.start()
        assert manager.entered.wait(timeout=30)
        # ...the second fills half the 2-item queue...
        second = threading.Thread(target=classify_client, args=("queued",))
        second.start()
        deadline = time.monotonic() + 10
        while server._coalescer._queued_items < 1 and \
                time.monotonic() < deadline:
            time.sleep(0.01)
        assert server._coalescer._queued_items >= 1
        # ...so a 2-item ingest burst overflows it and is bounced.
        burst = {"items": [ingest_item(f"i{n}", b"y", "fam0")
                           for n in range(2)]}
        status, headers, error = request_json(
            server.port, "POST", "/ingest", burst)
        assert status == 503
        assert "Retry-After" in headers
        assert "queue" in error["error"]
        manager.gate.set()
        first.join(timeout=30)
        second.join(timeout=30)
        assert statuses == [200, 200]
        # With the queue drained, the identical burst is admitted.
        status, _, report = request_json(
            server.port, "POST", "/ingest", burst)
        assert status == 200, report
        assert report["count"] == 2
    finally:
        manager.gate.set()
        server.shutdown()
