"""Tier-1 smoke for the vector-digest (second hash family) benchmark.

Runs ``benchmarks/bench_vector_digest.py`` at a small scale so a
regression that breaks the packed-sweep/per-pair result identity or the
dual-family recall ordering fails the default test run.  The speedup
floor asserted here is conservative (the packed sweep is typically two
orders of magnitude faster than the Python loop); the full >=5x
acceptance floor is the benchmark's own default (``pytest -m slow``
opts in).
"""

import importlib.util
import sys
from pathlib import Path

import pytest

_BENCH_PATH = Path(__file__).resolve().parents[1] / "benchmarks" / \
    "bench_vector_digest.py"


@pytest.fixture(scope="module")
def bench():
    spec = importlib.util.spec_from_file_location("bench_vector_digest",
                                                  _BENCH_PATH)
    module = importlib.util.module_from_spec(spec)
    sys.modules.setdefault("bench_vector_digest", module)
    spec.loader.exec_module(module)
    return module


def test_quick_benchmark_identity_and_recall_ordering(bench):
    result = bench.run(5, 4, 400, 4, blob_size=2048)
    assert result.results_match, \
        "packed top-k diverged from the per-pair reference"
    assert result.recall_ordering_holds, \
        "dual-family recall fell below CTPH-only recall"
    # The packed sweep is vectorisation, not fan-out: even one loaded
    # CI core clears a 2x floor with two orders of magnitude to spare.
    assert result.knn_speedup >= 2.0, \
        f"packed kNN sweep only {result.knn_speedup:.1f}x faster"


def test_scattered_mutations_break_ctph_but_not_vector(bench):
    """The regime the second family exists for: dispersed point edits."""

    scenario = bench.measure_recall("scattered", 5, 4, blob_size=4096)
    assert scenario.vector_recall >= scenario.ctph_recall
    assert scenario.vector_recall >= 0.8
    assert scenario.both_recall >= scenario.ctph_recall


def test_benchmark_cli_quick_mode(bench, capsys, tmp_path, monkeypatch):
    monkeypatch.setattr(bench, "OUTPUT_DIR", tmp_path)
    code = bench.main(["--quick", "--classes", "4", "--variants", "3",
                       "--knn-members", "300", "--knn-queries", "3",
                       "--min-knn-speedup", "0"])
    out = capsys.readouterr().out
    assert code == 0
    assert "bit-identical" in out
    assert (tmp_path / "bench_vector_digest.txt").is_file()
    assert (tmp_path / "BENCH_vector_digest.json").is_file()


def test_benchmark_trajectory_records_recalls_and_speedup(bench, tmp_path,
                                                          monkeypatch):
    import json

    monkeypatch.setattr(bench, "OUTPUT_DIR", tmp_path)
    code = bench.main(["--quick", "--classes", "4", "--variants", "3",
                       "--knn-members", "300", "--knn-queries", "3",
                       "--min-knn-speedup", "0"])
    assert code == 0
    trajectory = json.loads(
        (tmp_path / "BENCH_vector_digest.json").read_text(encoding="utf-8"))
    assert trajectory["results_match"] is True
    assert trajectory["recall_ordering_holds"] is True
    assert "knn_speedup" in trajectory
    scenarios = {s["scenario"] for s in trajectory["scenarios"]}
    assert scenarios == {"scattered", "appended", "padded"}


@pytest.mark.slow
def test_full_benchmark_meets_acceptance_floors(bench):
    """The acceptance configuration: >=5x packed kNN speedup,
    bit-identical results, dual-family recall >= CTPH-only."""

    result = bench.run(12, 8, 4000, 25)
    assert result.results_match
    assert result.recall_ordering_holds
    assert result.knn_speedup >= 5.0
