"""Tests for the sharded similarity index.

The headline invariant — every query answers bit-identically to a
single :class:`SimilarityIndex` over the same surviving corpus — is
checked here on deterministic corpora (the Hypothesis suite in
``test_sharded_properties.py`` covers random ones), together with the
sharding-specific machinery: routing, tombstones, compaction, the
directory format and its error paths, and layout conversion.
"""

import json

import pytest

from repro.exceptions import (
    IndexFormatError,
    SimilarityIndexError,
    ValidationError,
)
from repro.hashing.fnv import fnv_hash
from repro.index import ShardedSimilarityIndex, SimilarityIndex, load_index

from test_index_core import make_corpus

FT = "ssdeep-file"


@pytest.fixture(scope="module")
def corpus():
    return make_corpus(90, seed=11)


@pytest.fixture(scope="module")
def single(corpus):
    index = SimilarityIndex([FT])
    index.add_many(corpus)
    return index


def build(corpus, n_shards, **kwargs):
    index = ShardedSimilarityIndex([FT], n_shards=n_shards, **kwargs)
    index.add_many(corpus)
    return index


# ----------------------------------------------------------------- routing
def test_routing_is_deterministic_fnv(corpus):
    index = build(corpus, 4)
    for sample_id, _, _ in corpus:
        assert index.shard_of(sample_id) == \
            fnv_hash(sample_id.encode("utf-8")) % 4


def test_all_members_of_one_id_share_a_shard(corpus):
    index = ShardedSimilarityIndex([FT], n_shards=3)
    index.add("dup", corpus[0][1])
    index.add("dup", corpus[1][1])
    members = index.members_for_id("dup")
    assert len(members) == 2


def test_n_shards_must_be_positive():
    with pytest.raises(ValidationError):
        ShardedSimilarityIndex([FT], n_shards=0)


# ------------------------------------------------------------ bit identity
@pytest.mark.parametrize("n_shards", [1, 2, 5])
def test_top_k_matches_single_index(corpus, single, n_shards):
    index = build(corpus, n_shards)
    for sample_id, digests, _ in corpus[:20]:
        query = digests[FT]
        assert index.top_k(query, 12, min_score=0) == \
            single.top_k(query, 12, min_score=0)
        assert index.top_k(query, 3, exclude_ids=[sample_id]) == \
            single.top_k(query, 3, exclude_ids=[sample_id])


def test_pairwise_matches_single_index_including_budget(corpus, single):
    index = build(corpus, 4)
    assert index.pairwise_matrix() == single.pairwise_matrix()
    assert index.pairwise_matrix(max_pairs=40, min_score=0) == \
        single.pairwise_matrix(max_pairs=40, min_score=0)


def test_score_matrices_match_single_index(corpus, single):
    import numpy as np

    index = build(corpus, 3)
    queries = [digests[FT] for _, digests, _ in corpus[:10]]
    assert np.array_equal(index.score_matrix(FT, queries),
                          single.score_matrix(FT, queries))
    exclude = [single.members_for_id(sid) for sid, _, _ in corpus[:10]]
    assert np.array_equal(
        index.score_matrix(FT, queries, exclude=exclude),
        single.score_matrix(FT, queries, exclude=exclude))


# ------------------------------------------------------ removal + compact
def test_remove_tombstones_and_compact(corpus):
    index = build(corpus, 4)
    gone = [corpus[i][0] for i in (0, 7, 41)]
    for sample_id in gone:
        assert index.remove(sample_id) == 1
        assert index.remove(sample_id) == 0      # already tombstoned
    assert index.remove("never-added") == 0
    assert index.n_members == len(corpus) - 3
    assert index.n_tombstones == 3

    survivors = [m for m in corpus if m[0] not in gone]
    reference = SimilarityIndex([FT])
    reference.add_many(survivors)
    for _, digests, _ in corpus[:15]:
        assert index.top_k(digests[FT], 10, min_score=0) == \
            reference.top_k(digests[FT], 10, min_score=0)
    assert index.pairwise_matrix() == reference.pairwise_matrix()

    assert index.compact() == 3
    assert index.compact() == 0
    assert index.n_tombstones == 0
    assert index.sample_ids == tuple(m[0] for m in survivors)
    for _, digests, _ in corpus[:15]:
        assert index.top_k(digests[FT], 10, min_score=0) == \
            reference.top_k(digests[FT], 10, min_score=0)


def test_removed_members_are_invisible_to_members_for_id(corpus):
    index = build(corpus, 2)
    sample_id = corpus[3][0]
    assert index.members_for_id(sample_id)
    index.remove(sample_id)
    assert index.members_for_id(sample_id) == frozenset()


# ----------------------------------------------------------------- stats
def test_stats_per_shard_breakdown(corpus):
    index = build(corpus, 3)
    index.remove(corpus[2][0])
    stats = index.stats()
    assert stats["n_shards"] == 3
    assert stats["members"] == len(corpus) - 1
    assert stats["tombstones"] == 1
    assert stats["routing"] == "fnv32"
    assert len(stats["shards"]) == 3
    assert sum(s["members"] for s in stats["shards"]) == len(corpus) - 1
    assert sum(s["tombstones"] for s in stats["shards"]) == 1
    for shard in stats["shards"]:
        assert shard["estimated_bytes"] > 0
        assert shard["postings"] >= 0


# ------------------------------------------------------------ persistence
def test_save_load_round_trip(tmp_path, corpus):
    index = build(corpus, 3)
    index.remove(corpus[5][0])
    path = index.save(tmp_path / "idx.rpsd")
    assert (path / "manifest.json").is_file()
    manifest = json.loads((path / "manifest.json").read_text())
    assert sorted(p.name for p in path.glob("shard-*.rpsi")) == \
        sorted(manifest["shards"])
    assert len(manifest["shards"]) == 3
    loaded = ShardedSimilarityIndex.load(path)
    assert loaded.n_members == index.n_members
    assert loaded.n_tombstones == 1
    assert loaded.sample_ids == index.sample_ids
    for _, digests, _ in corpus[:15]:
        assert loaded.top_k(digests[FT], 10, min_score=0) == \
            index.top_k(digests[FT], 10, min_score=0)


def test_save_shrinking_layout_removes_stale_shards(tmp_path, corpus):
    wide = build(corpus, 5)
    target = tmp_path / "idx.rpsd"
    wide.save(target)
    narrow = ShardedSimilarityIndex.from_index(wide, n_shards=2)
    narrow.save(target)
    assert len(list(target.glob("shard-*.rpsi"))) == 2
    assert ShardedSimilarityIndex.load(target).n_shards == 2


def test_in_place_resave_never_touches_the_previous_generation(tmp_path,
                                                               corpus):
    """Crash-safety: until the manifest swap, the files the old manifest
    references must remain byte-identical, so a crash mid-save leaves
    the previous index loadable."""

    index = build(corpus, 2)
    target = index.save(tmp_path / "idx.rpsd")
    before = {p.name: p.read_bytes() for p in target.glob("shard-*.rpsi")}
    index.remove(corpus[0][0])
    index.save(target)
    after = {p.name for p in target.glob("shard-*.rpsi")}
    assert before.keys().isdisjoint(after), \
        "re-save reused the previous generation's shard file names"
    assert ShardedSimilarityIndex.load(target).n_tombstones == 1


def test_save_refuses_to_clobber_a_file(tmp_path, corpus):
    target = tmp_path / "file.rpsi"
    target.write_bytes(b"not a directory")
    with pytest.raises(SimilarityIndexError, match="file is in the way"):
        build(corpus, 2).save(target)


def test_load_index_dispatches_on_layout(tmp_path, corpus, single):
    sharded_path = build(corpus, 2).save(tmp_path / "sharded.rpsd")
    single_path = single.save(tmp_path / "single.rpsi")
    assert isinstance(load_index(sharded_path), ShardedSimilarityIndex)
    assert isinstance(load_index(single_path), SimilarityIndex)


# ------------------------------------------------------------ error paths
def test_load_missing_directory(tmp_path):
    with pytest.raises(IndexFormatError, match="does not exist"):
        ShardedSimilarityIndex.load(tmp_path / "nope")


def test_load_directory_without_manifest(tmp_path):
    (tmp_path / "empty").mkdir()
    with pytest.raises(IndexFormatError, match="manifest.json"):
        ShardedSimilarityIndex.load(tmp_path / "empty")


def test_load_corrupt_manifest(tmp_path, corpus):
    path = build(corpus, 2).save(tmp_path / "idx.rpsd")
    (path / "manifest.json").write_text("{broken", encoding="utf-8")
    with pytest.raises(IndexFormatError, match="corrupt manifest"):
        ShardedSimilarityIndex.load(path)


def test_load_future_manifest_version(tmp_path, corpus):
    path = build(corpus, 2).save(tmp_path / "idx.rpsd")
    manifest = json.loads((path / "manifest.json").read_text())
    manifest["format_version"] = 99
    (path / "manifest.json").write_text(json.dumps(manifest))
    with pytest.raises(IndexFormatError, match="version 99"):
        ShardedSimilarityIndex.load(path)


def test_load_unknown_routing(tmp_path, corpus):
    path = build(corpus, 2).save(tmp_path / "idx.rpsd")
    manifest = json.loads((path / "manifest.json").read_text())
    manifest["routing"] = "md5"
    (path / "manifest.json").write_text(json.dumps(manifest))
    with pytest.raises(IndexFormatError, match="routing"):
        ShardedSimilarityIndex.load(path)


def test_load_inconsistent_order(tmp_path, corpus):
    path = build(corpus, 2).save(tmp_path / "idx.rpsd")
    manifest = json.loads((path / "manifest.json").read_text())
    manifest["order"] = manifest["order"][:-1]
    (path / "manifest.json").write_text(json.dumps(manifest))
    with pytest.raises(IndexFormatError, match="order assigns"):
        ShardedSimilarityIndex.load(path)


def test_load_missing_shard_file(tmp_path, corpus):
    path = build(corpus, 2).save(tmp_path / "idx.rpsd")
    manifest = json.loads((path / "manifest.json").read_text())
    (path / manifest["shards"][1]).unlink()
    with pytest.raises(IndexFormatError, match="does not exist"):
        ShardedSimilarityIndex.load(path)


# ----------------------------------------------------- layout conversion
def test_merge_to_single_and_back(corpus, single):
    sharded = build(corpus, 4)
    sharded.remove(corpus[8][0])
    merged = sharded.merge_to_single()
    survivors = [m for m in corpus if m[0] != corpus[8][0]]
    reference = SimilarityIndex([FT])
    reference.add_many(survivors)
    for _, digests, _ in corpus[:15]:
        assert merged.top_k(digests[FT], 10, min_score=0) == \
            reference.top_k(digests[FT], 10, min_score=0)
    resharded = ShardedSimilarityIndex.from_index(merged, n_shards=6)
    assert resharded.n_members == len(survivors)
    for _, digests, _ in corpus[:15]:
        assert resharded.top_k(digests[FT], 10, min_score=0) == \
            reference.top_k(digests[FT], 10, min_score=0)


# -------------------------------------------------------------- executors
@pytest.mark.parametrize("spec", ["thread:2", "process:2"])
def test_executor_fan_out_is_bit_identical(corpus, single, spec):
    with build(corpus, 4, executor=spec) as index:
        for _, digests, _ in corpus[:8]:
            assert index.top_k(digests[FT], 10, min_score=0) == \
                single.top_k(digests[FT], 10, min_score=0)
        assert index.pairwise_matrix(max_pairs=2000, min_score=0) == \
            single.pairwise_matrix(max_pairs=2000, min_score=0)


def test_set_executor_swaps_backend(corpus):
    index = build(corpus, 2)
    assert index.executor.name == "serial"
    index.set_executor("thread:2")
    assert index.executor.name == "thread"
    index.close()


# ------------------------------------------------- builder integration
def test_feature_builder_adopts_sharded_index(corpus):
    import numpy as np

    from repro.features.records import SampleFeatures
    from repro.features.similarity import SimilarityFeatureBuilder

    records = [SampleFeatures(sample_id=sid, class_name=cls, version="1",
                              executable=sid, digests=digests)
               for sid, digests, cls in corpus]
    direct = SimilarityFeatureBuilder([FT])
    direct_matrix = direct.fit_transform(records, exclude_self=True)

    sharded = build(corpus, 3)
    adopted = SimilarityFeatureBuilder([FT])
    adopted.fit_from_index(sharded)
    adopted_matrix = adopted.transform(records, exclude_self=True)
    assert adopted_matrix.feature_names == direct_matrix.feature_names
    assert np.array_equal(adopted_matrix.X, direct_matrix.X)


# ------------------------------------------ tombstone persistence (age-off)
def test_tombstones_survive_save_load_without_compact(tmp_path, corpus):
    """``remove()`` without ``compact()`` must persist: a reloaded index
    (what a restarted server sees after a lifecycle republish) must not
    resurrect the removed members."""

    index = build(corpus, 3)
    removed = [corpus[2][0], corpus[40][0], corpus[77][0]]
    for sample_id in removed:
        assert index.remove(sample_id) >= 1
    loaded = ShardedSimilarityIndex.load(index.save(tmp_path / "idx.rpsd"))
    assert loaded.n_tombstones == index.n_tombstones
    assert loaded.n_members == index.n_members
    for sample_id in removed:
        assert loaded.members_for_id(sample_id) == frozenset()
        assert sample_id not in loaded.sample_ids
    # The tombstoned members stay invisible to queries too.
    for sample_id, digests, _ in corpus[:10]:
        assert all(m.sample_id not in removed
                   for m in loaded.top_k(digests[FT], 90, min_score=0))


def test_tombstones_survive_get_state_from_state(corpus):
    index = build(corpus, 4)
    index.remove(corpus[8][0])
    index.remove(corpus[9][0])
    header, arrays = index.get_state()
    restored = ShardedSimilarityIndex.from_state(header, arrays)
    assert restored.n_tombstones == index.n_tombstones
    assert restored.sample_ids == index.sample_ids
    assert restored.members_for_id(corpus[8][0]) == frozenset()
    for sample_id, digests, _ in corpus[:10]:
        assert restored.top_k(digests[FT], 20, min_score=0) == \
            index.top_k(digests[FT], 20, min_score=0)


def test_tombstones_survive_with_unsealed_pending_tail(tmp_path, corpus):
    """Remove + fresh (unmerged) adds, then persist both ways: neither
    the tombstones nor the pending postings tail may be lost."""

    index = build(corpus[:60], 3)
    index.seal()
    index.remove(corpus[3][0])
    for sample_id, digests, cls in corpus[60:70]:   # unsealed tail
        index.add(sample_id, digests, class_name=cls)
    header, arrays = index.get_state()
    restored = ShardedSimilarityIndex.from_state(header, arrays)
    loaded = ShardedSimilarityIndex.load(index.save(tmp_path / "t.rpsd"))
    for copy in (restored, loaded):
        assert copy.n_tombstones == index.n_tombstones
        assert copy.members_for_id(corpus[3][0]) == frozenset()
        assert copy.sample_ids == index.sample_ids
        for sample_id, digests, _ in corpus[60:70]:
            assert copy.members_for_id(sample_id)
            assert copy.top_k(digests[FT], 15, min_score=0) == \
                index.top_k(digests[FT], 15, min_score=0)


def test_tombstones_survive_the_model_artifact_round_trip(tmp_path):
    """The full serving path: purge a member of a trained service, save
    the ``.rpm``, reload it — the purged sample must stay gone (age-off
    durability across restarts depends on exactly this)."""

    from repro.api.service import ClassificationService
    from test_api_artifact import make_records

    records = make_records(24, seed=13, n_families=3)
    sharded = ShardedSimilarityIndex([FT], n_shards=3)
    sharded.add_many(records)
    service = ClassificationService.train(
        records, feature_types=[FT], n_estimators=5, random_state=3,
        confidence_threshold=0.1, index=sharded)
    service.enable_mutation()
    victim = records[4].sample_id
    assert service.purge(victim) >= 1
    path = tmp_path / "model.rpm"
    service.save(path)
    fresh = ClassificationService.load(path)
    fresh_index = fresh.similarity_index
    assert fresh_index.n_tombstones == 1
    assert fresh_index.members_for_id(victim) == frozenset()
    assert victim not in fresh_index.sample_ids
    assert fresh_index.sample_ids == service.similarity_index.sample_ids
