"""Tests for ThresholdRandomForest and FuzzyHashClassifier."""

import numpy as np
import pytest

from repro.core.classifier import FuzzyHashClassifier, ThresholdRandomForest
from repro.core.splits import two_phase_split
from repro.exceptions import NotFittedError, ValidationError
from repro.ml.metrics import f1_score


# ----------------------------------------------------------- threshold forest
@pytest.fixture(scope="module")
def toy_matrix():
    rng = np.random.default_rng(0)
    centers = np.array([[80, 5, 3], [4, 75, 6], [2, 6, 90]], dtype=float)
    y = rng.integers(0, 3, size=240)
    X = np.clip(centers[y] + rng.normal(0, 6, size=(240, 3)), 0, 100)
    labels = np.array(["AppA", "AppB", "AppC"], dtype=object)[y]
    return X, labels


def test_threshold_forest_basic_accuracy(toy_matrix):
    X, y = toy_matrix
    model = ThresholdRandomForest(n_estimators=30, confidence_threshold=0.3,
                                  random_state=0).fit(X, y)
    predictions = model.predict(X)
    assert (predictions == y).mean() > 0.95


def test_low_confidence_samples_become_unknown(toy_matrix):
    X, y = toy_matrix
    model = ThresholdRandomForest(n_estimators=30, confidence_threshold=0.5,
                                  random_state=0).fit(X, y)
    # A sample with no similarity to anything should be rejected.
    far_away = np.zeros((1, 3))
    assert model.predict(far_away)[0] == -1
    # With threshold 0 it gets assigned to some class instead.
    assert model.predict(far_away, confidence_threshold=0.0)[0] in set(y)


def test_threshold_override_does_not_refit(toy_matrix):
    X, y = toy_matrix
    model = ThresholdRandomForest(n_estimators=20, confidence_threshold=0.9,
                                  random_state=1).fit(X, y)
    strict = (model.predict(X) == -1).sum()
    lenient = (model.predict(X, confidence_threshold=0.1) == -1).sum()
    assert lenient <= strict


def test_predict_known_never_returns_unknown(toy_matrix):
    X, y = toy_matrix
    model = ThresholdRandomForest(n_estimators=20, confidence_threshold=0.99,
                                  random_state=1).fit(X, y)
    assert -1 not in set(model.predict_known(X))


def test_confidence_values_are_probabilities(toy_matrix):
    X, y = toy_matrix
    model = ThresholdRandomForest(n_estimators=20, random_state=0).fit(X, y)
    confidence = model.confidence(X)
    assert confidence.min() >= 0.0 and confidence.max() <= 1.0


def test_invalid_threshold_rejected(toy_matrix):
    X, y = toy_matrix
    with pytest.raises(ValidationError):
        ThresholdRandomForest(confidence_threshold=1.5).fit(X, y)


def test_custom_unknown_label(toy_matrix):
    X, y = toy_matrix
    model = ThresholdRandomForest(n_estimators=10, confidence_threshold=0.99,
                                  unknown_label="UNKNOWN", random_state=0).fit(X, y)
    predictions = model.predict(np.zeros((1, 3)))
    assert predictions[0] == "UNKNOWN"


# --------------------------------------------------------- fuzzy hash classifier
@pytest.fixture(scope="module")
def trained_classifier(tiny_features, tiny_labels):
    split = two_phase_split(tiny_labels, mode="paper", random_state=3)
    train = [tiny_features[i] for i in split.train_indices]
    clf = FuzzyHashClassifier(n_estimators=40, confidence_threshold=0.35,
                              random_state=0)
    clf.fit(train)
    return clf, split


def test_fuzzy_hash_classifier_end_to_end(tiny_features, trained_classifier):
    clf, split = trained_classifier
    test = [tiny_features[i] for i in split.test_indices]
    predictions = clf.predict(test)
    expected = np.asarray(split.expected_test_labels, dtype=object)
    macro = f1_score(expected, predictions, average="macro")
    assert macro > 0.7
    # Unknown-class samples are mostly rejected.
    unknown_mask = expected == -1
    assert (predictions[unknown_mask] == -1).mean() > 0.6
    # Known-class samples are mostly recognised correctly.
    known_mask = ~unknown_mask
    assert (predictions[known_mask] == expected[known_mask]).mean() > 0.7


def test_labels_default_to_class_names(tiny_features):
    clf = FuzzyHashClassifier(n_estimators=10, random_state=0)
    clf.fit(tiny_features[:40])
    assert set(clf.classes_) <= {f.class_name for f in tiny_features[:40]}


def test_classifier_rejects_unlabelled_training_data(tiny_features):
    from dataclasses import replace

    unlabeled = [replace(f, class_name="") for f in tiny_features[:10]]
    with pytest.raises(ValidationError):
        FuzzyHashClassifier().fit(unlabeled)
    with pytest.raises(ValidationError):
        FuzzyHashClassifier().fit([])
    with pytest.raises(ValidationError):
        FuzzyHashClassifier().fit(tiny_features[:5], y=["a", "b"])


def test_predict_before_fit_raises(tiny_features):
    with pytest.raises(NotFittedError):
        FuzzyHashClassifier().predict(tiny_features[:2])


def test_feature_importances_by_type(trained_classifier):
    clf, _ = trained_classifier
    grouped = clf.feature_importances_by_type()
    assert set(grouped) == {"ssdeep-file", "ssdeep-strings", "ssdeep-symbols"}
    assert sum(grouped.values()) == pytest.approx(1.0)
    # Symbols are the dominant feature (the paper's Table 5 finding).
    assert grouped["ssdeep-symbols"] == max(grouped.values())


def test_transform_exposes_similarity_matrix(trained_classifier, tiny_features):
    clf, _ = trained_classifier
    matrix = clf.transform(tiny_features[:3])
    assert matrix.X.shape[0] == 3
    assert matrix.X.shape[1] == len(clf.feature_names_)


def test_get_params_includes_forest_and_threshold():
    clf = FuzzyHashClassifier(n_estimators=55, confidence_threshold=0.42)
    params = clf.get_params()
    assert params["n_estimators"] == 55
    assert params["confidence_threshold"] == 0.42
