"""Tests for the dataset container."""

import pytest

from repro.corpus.dataset import CorpusDataset, SampleRecord
from repro.exceptions import CorpusError


def _record(i, class_name="A", version="1.0", executable="tool"):
    return SampleRecord(sample_id=f"{class_name}/{version}/{executable}-{i}",
                        path=f"/tmp/{class_name}/{version}/{executable}-{i}",
                        class_name=class_name, version=version,
                        executable=executable, file_size=100 + i)


@pytest.fixture()
def dataset():
    records = [_record(i, "Alpha") for i in range(5)]
    records += [_record(i, "Beta", version="2.0") for i in range(3)]
    records += [_record(0, "Gamma", version="0.1")]
    return CorpusDataset(records)


def test_basic_properties(dataset):
    assert len(dataset) == 9
    assert dataset.class_names == ["Alpha", "Beta", "Gamma"]
    assert dataset.labels.count("Alpha") == 5
    assert len(dataset.paths) == 9


def test_class_counts_sorted_by_size(dataset):
    counts = dataset.class_counts()
    assert list(counts.items())[0] == ("Alpha", 5)
    assert counts["Gamma"] == 1


def test_version_counts(dataset):
    versions = dataset.version_counts()
    assert versions == {"Alpha": 1, "Beta": 1, "Gamma": 1}


def test_filter_and_subset(dataset):
    only_beta = dataset.filter_classes(["Beta"])
    assert len(only_beta) == 3
    big_files = dataset.filter(lambda r: r.file_size >= 103)
    assert all(r.file_size >= 103 for r in big_files)
    first_two = dataset.subset([0, 1])
    assert len(first_two) == 2
    assert first_two[0].sample_id == dataset[0].sample_id


def test_duplicate_ids_rejected():
    record = _record(0)
    with pytest.raises(CorpusError):
        CorpusDataset([record, record])


def test_json_roundtrip(dataset, tmp_path):
    path = tmp_path / "dataset.json"
    dataset.to_json(path)
    loaded = CorpusDataset.from_json(path)
    assert len(loaded) == len(dataset)
    assert loaded.labels == dataset.labels
    assert loaded[0] == dataset[0]


def test_from_json_rejects_garbage(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text('{"not_records": []}')
    with pytest.raises(CorpusError):
        CorpusDataset.from_json(path)


def test_summary_mentions_largest_class(dataset):
    assert "Alpha" in dataset.summary()


def test_record_roundtrip_dict():
    record = _record(1, "Delta")
    assert SampleRecord.from_dict(record.to_dict()) == record
