"""Unit tests for the named-failpoint fault injector
(``repro.testing.faults``): arming, the spec grammar, deterministic
``@after`` hit counting, the env-var entry point, and the ``crash``
action's process-kill semantics (in a subprocess).
"""

import subprocess
import sys
import time

import pytest

from repro.exceptions import ValidationError
from repro.testing import (
    CRASH_EXIT_CODE,
    CRASH_SWEEP_SITES,
    KNOWN_SITES,
    FaultInjectedError,
    FaultInjector,
    arm_from_env,
    fire,
    injector,
)


@pytest.fixture(autouse=True)
def _clean_global_injector():
    injector.disarm()
    yield
    injector.disarm()


def test_sweep_sites_are_registered_failpoints():
    assert set(CRASH_SWEEP_SITES) <= set(KNOWN_SITES)
    assert "reload.parse" not in CRASH_SWEEP_SITES   # reloads don't mutate


def test_disarmed_fire_is_a_no_op():
    private = FaultInjector()
    private.fire("wal.append")                       # nothing armed
    fire("wal.append")                               # module fast path
    assert not private.armed and not injector.armed


def test_raise_action_fires_after_grace_hits():
    private = FaultInjector()
    private.arm("wal.fsync", "raise", after=2)
    private.fire("wal.fsync")
    private.fire("wal.fsync")
    assert private.hits("wal.fsync") == 2
    with pytest.raises(FaultInjectedError, match="wal.fsync"):
        private.fire("wal.fsync")
    # Still armed: every later hit keeps firing.
    with pytest.raises(FaultInjectedError):
        private.fire("wal.fsync")
    assert private.hits("wal.fsync") == 4


def test_delay_action_sleeps_then_continues():
    private = FaultInjector()
    private.arm("reload.parse", "delay", delay=0.05)
    started = time.perf_counter()
    private.fire("reload.parse")
    assert time.perf_counter() - started >= 0.04


def test_disarm_one_site_leaves_the_others():
    private = FaultInjector()
    private.arm("wal.append")
    private.arm("wal.fsync")
    private.disarm("wal.append")
    assert private.armed_sites() == ("wal.fsync",)
    private.fire("wal.append")                       # disarmed: no-op
    private.disarm()
    assert not private.armed


def test_arm_rejects_bad_actions_and_counts():
    private = FaultInjector()
    with pytest.raises(ValidationError, match="unknown fault action"):
        private.arm("wal.append", "explode")
    with pytest.raises(ValidationError, match="after"):
        private.arm("wal.append", "raise", after=-1)
    with pytest.raises(ValidationError, match="delay"):
        private.arm("wal.append", "delay", delay=0)


@pytest.mark.parametrize("spec, sites", [
    ("wal.fsync:crash", ("wal.fsync",)),
    ("wal.append:raise@3", ("wal.append",)),
    ("reload.parse:delay=0.25", ("reload.parse",)),
    ("wal.append:raise, wal.fsync:crash@1", ("wal.append", "wal.fsync")),
])
def test_arm_from_spec_grammar(spec, sites):
    private = FaultInjector()
    private.arm_from_spec(spec)
    assert private.armed_sites() == sites


def test_arm_from_spec_parses_after_and_delay_values():
    private = FaultInjector()
    private.arm_from_spec("wal.append:raise@2,reload.parse:delay=0.5@1")
    assert private._armed["wal.append"].after == 2
    point = private._armed["reload.parse"]
    assert point.action == "delay" and point.delay == 0.5 and point.after == 1


@pytest.mark.parametrize("spec", [
    "no-colon", "only:", ":raise", "wal.append:raise@x",
    "reload.parse:delay=abc",
])
def test_arm_from_spec_rejects_malformed_entries(spec):
    with pytest.raises(ValidationError):
        FaultInjector().arm_from_spec(spec)


def test_arm_from_env_reads_repro_faults():
    assert arm_from_env({}) is False
    assert arm_from_env({"REPRO_FAULTS": ""}) is False
    assert arm_from_env({"REPRO_FAULTS": "wal.append:raise"}) is True
    assert injector.armed_sites() == ("wal.append",)
    with pytest.raises(FaultInjectedError):
        fire("wal.append")


def test_crash_action_exits_with_the_sweep_status():
    """``crash`` must take the whole process down, bypassing cleanup —
    verified on a real subprocess, the way the sweep harness uses it."""

    script = (
        "import atexit, sys\n"
        "atexit.register(lambda: print('CLEANUP RAN'))\n"
        "from repro.testing import injector\n"
        "injector.arm('wal.fsync', 'crash', after=1)\n"
        "injector.fire('wal.fsync')\n"
        "print('survived the grace hit', flush=True)\n"
        "injector.fire('wal.fsync')\n"
        "print('UNREACHABLE')\n"
    )
    proc = subprocess.run([sys.executable, "-c", script],
                          capture_output=True, text=True, timeout=60)
    assert proc.returncode == CRASH_EXIT_CODE
    assert "survived the grace hit" in proc.stdout
    assert "UNREACHABLE" not in proc.stdout
    assert "CLEANUP RAN" not in proc.stdout          # os._exit skips atexit
