"""Unit tests for the rotating JSONL decision log
(``repro.serving.decision_log``): append/flush/close semantics, atomic
size-based rotation with backup shifting, and concurrent appends.
"""

import json
import threading

import pytest

from repro.serving.decision_log import DecisionLog


def read_lines(path):
    return [json.loads(line) for line in
            path.read_text(encoding="utf-8").splitlines()]


def test_appends_complete_json_lines(tmp_path):
    log = DecisionLog(tmp_path / "decisions.jsonl")
    log.append({"sample_id": "a", "decision": "within-allocation"})
    log.append({"sample_id": "b", "decision": "unknown-application"})
    log.close()
    records = read_lines(tmp_path / "decisions.jsonl")
    assert [r["sample_id"] for r in records] == ["a", "b"]
    log.close()                                    # idempotent


def test_rotation_keeps_backups_and_complete_lines(tmp_path):
    path = tmp_path / "decisions.jsonl"
    log = DecisionLog(path, max_bytes=120, backups=2)
    for n in range(12):
        log.append({"n": n, "pad": "x" * 20})
    log.close()
    rotated_1 = path.with_name(path.name + ".1")
    rotated_2 = path.with_name(path.name + ".2")
    assert rotated_1.exists() and rotated_2.exists()
    # Every file — active and rotated — holds only complete JSON lines,
    # and together they form a gapless suffix of the stream (records
    # older than the backup window are the only ones dropped).
    recovered = [r["n"] for r in (read_lines(rotated_2) + read_lines(rotated_1)
                                  + read_lines(path))]
    assert recovered == list(range(recovered[0], 12))
    assert recovered[-1] == 11
    # No file beyond the configured backup count.
    assert not path.with_name(path.name + ".3").exists()


def test_zero_backups_truncates_instead_of_rotating(tmp_path):
    path = tmp_path / "log.jsonl"
    log = DecisionLog(path, max_bytes=80, backups=0)
    for n in range(10):
        log.append({"n": n, "pad": "y" * 20})
    log.close()
    assert not path.with_name(path.name + ".1").exists()
    records = read_lines(path)                     # only the newest tail
    assert records and records[-1]["n"] == 9


def test_append_after_close_raises(tmp_path):
    log = DecisionLog(tmp_path / "log.jsonl")
    log.close()
    with pytest.raises(ValueError):
        log.append({"x": 1})


def test_reopen_appends_to_existing_file(tmp_path):
    path = tmp_path / "log.jsonl"
    first = DecisionLog(path)
    first.append({"run": 1})
    first.close()
    second = DecisionLog(path)
    second.append({"run": 2})
    second.close()
    assert [r["run"] for r in read_lines(path)] == [1, 2]


def test_constructor_validation(tmp_path):
    with pytest.raises(ValueError):
        DecisionLog(tmp_path / "x", max_bytes=0)
    with pytest.raises(ValueError):
        DecisionLog(tmp_path / "x", backups=-1)


def test_concurrent_appends_lose_no_records(tmp_path):
    path = tmp_path / "log.jsonl"
    log = DecisionLog(path, max_bytes=4096, backups=8)

    def writer(worker):
        for n in range(100):
            log.append({"worker": worker, "n": n})

    threads = [threading.Thread(target=writer, args=(w,)) for w in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    log.close()
    records = []
    records.extend(read_lines(path))
    for backup in range(1, 9):
        rotated = path.with_name(path.name + f".{backup}")
        if rotated.exists():
            records.extend(read_lines(rotated))
    assert len(records) == 400
    for worker in range(4):
        sequence = [r["n"] for r in records if r["worker"] == worker]
        assert sorted(sequence) == list(range(100))


# ----------------------------------------------------- checksums & tails
def test_lines_carry_verifiable_checksums(tmp_path):
    from repro.serving.decision_log import decode_decision_line

    path = tmp_path / "decisions.jsonl"
    log = DecisionLog(path)
    log.append({"sample_id": "a", "decision": "within-allocation"})
    log.close()
    raw = path.read_bytes().splitlines()[0]
    record = json.loads(raw)
    assert "crc" in record                        # embedded, still JSONL
    decoded = decode_decision_line(raw)
    assert decoded == {"sample_id": "a", "decision": "within-allocation"}
    with pytest.raises(ValueError, match="checksum"):
        decode_decision_line(raw.replace(b"within", b"beyond"))


def test_append_rejects_payloads_with_their_own_crc(tmp_path):
    log = DecisionLog(tmp_path / "decisions.jsonl")
    with pytest.raises(ValueError, match="crc"):
        log.append({"sample_id": "a", "crc": 123})
    log.close()


def test_startup_truncates_a_torn_tail(tmp_path):
    path = tmp_path / "decisions.jsonl"
    log = DecisionLog(path)
    for n in range(4):
        log.append({"n": n})
    log.close()
    with open(path, "ab") as fh:
        fh.write(b'{"n": 4, "half a line with no newl')
    reopened = DecisionLog(path)
    assert reopened.truncated_bytes > 0
    reopened.append({"n": "after-recovery"})
    reopened.close()
    records = read_lines(path)
    assert [r["n"] for r in records] == [0, 1, 2, 3, "after-recovery"]


def test_startup_truncates_a_corrupt_final_line(tmp_path):
    """A complete final line whose checksum mismatches (a tear that
    happened to end at a newline) is dropped; earlier lines are not."""

    path = tmp_path / "decisions.jsonl"
    log = DecisionLog(path)
    for n in range(3):
        log.append({"n": n})
    log.close()
    with open(path, "ab") as fh:
        fh.write(b'{"n": 99, "crc": 1}\n')
    reopened = DecisionLog(path)
    assert reopened.truncated_bytes == len(b'{"n": 99, "crc": 1}\n')
    reopened.close()
    assert [r["n"] for r in read_lines(path)] == [0, 1, 2]


def test_old_logs_without_checksums_stay_readable(tmp_path):
    from repro.serving.decision_log import decode_decision_line

    path = tmp_path / "decisions.jsonl"
    with open(path, "wb") as fh:                  # a pre-checksum log
        for n in range(3):
            fh.write(json.dumps({"n": n}).encode("utf-8") + b"\n")
    log = DecisionLog(path)                       # no truncation...
    assert log.truncated_bytes == 0
    log.append({"n": 3})                          # ...and appends mix in
    log.close()
    records = [decode_decision_line(line)
               for line in path.read_bytes().splitlines()]
    assert [r["n"] for r in records] == [0, 1, 2, 3]
