"""Unit tests for the rotating JSONL decision log
(``repro.serving.decision_log``): append/flush/close semantics, atomic
size-based rotation with backup shifting, and concurrent appends.
"""

import json
import threading

import pytest

from repro.serving.decision_log import DecisionLog


def read_lines(path):
    return [json.loads(line) for line in
            path.read_text(encoding="utf-8").splitlines()]


def test_appends_complete_json_lines(tmp_path):
    log = DecisionLog(tmp_path / "decisions.jsonl")
    log.append({"sample_id": "a", "decision": "within-allocation"})
    log.append({"sample_id": "b", "decision": "unknown-application"})
    log.close()
    records = read_lines(tmp_path / "decisions.jsonl")
    assert [r["sample_id"] for r in records] == ["a", "b"]
    log.close()                                    # idempotent


def test_rotation_keeps_backups_and_complete_lines(tmp_path):
    path = tmp_path / "decisions.jsonl"
    log = DecisionLog(path, max_bytes=120, backups=2)
    for n in range(12):
        log.append({"n": n, "pad": "x" * 20})
    log.close()
    rotated_1 = path.with_name(path.name + ".1")
    rotated_2 = path.with_name(path.name + ".2")
    assert rotated_1.exists() and rotated_2.exists()
    # Every file — active and rotated — holds only complete JSON lines,
    # and together they form a gapless suffix of the stream (records
    # older than the backup window are the only ones dropped).
    recovered = [r["n"] for r in (read_lines(rotated_2) + read_lines(rotated_1)
                                  + read_lines(path))]
    assert recovered == list(range(recovered[0], 12))
    assert recovered[-1] == 11
    # No file beyond the configured backup count.
    assert not path.with_name(path.name + ".3").exists()


def test_zero_backups_truncates_instead_of_rotating(tmp_path):
    path = tmp_path / "log.jsonl"
    log = DecisionLog(path, max_bytes=80, backups=0)
    for n in range(10):
        log.append({"n": n, "pad": "y" * 20})
    log.close()
    assert not path.with_name(path.name + ".1").exists()
    records = read_lines(path)                     # only the newest tail
    assert records and records[-1]["n"] == 9


def test_append_after_close_raises(tmp_path):
    log = DecisionLog(tmp_path / "log.jsonl")
    log.close()
    with pytest.raises(ValueError):
        log.append({"x": 1})


def test_reopen_appends_to_existing_file(tmp_path):
    path = tmp_path / "log.jsonl"
    first = DecisionLog(path)
    first.append({"run": 1})
    first.close()
    second = DecisionLog(path)
    second.append({"run": 2})
    second.close()
    assert [r["run"] for r in read_lines(path)] == [1, 2]


def test_constructor_validation(tmp_path):
    with pytest.raises(ValueError):
        DecisionLog(tmp_path / "x", max_bytes=0)
    with pytest.raises(ValueError):
        DecisionLog(tmp_path / "x", backups=-1)


def test_concurrent_appends_lose_no_records(tmp_path):
    path = tmp_path / "log.jsonl"
    log = DecisionLog(path, max_bytes=4096, backups=8)

    def writer(worker):
        for n in range(100):
            log.append({"worker": worker, "n": n})

    threads = [threading.Thread(target=writer, args=(w,)) for w in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    log.close()
    records = []
    records.extend(read_lines(path))
    for backup in range(1, 9):
        rotated = path.with_name(path.name + f".{backup}")
        if rotated.exists():
            records.extend(read_lines(rotated))
    assert len(records) == 400
    for worker in range(4):
        sequence = [r["n"] for r in records if r["worker"] == worker]
        assert sorted(sequence) == list(range(100))
