"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_parser_has_all_subcommands():
    parser = build_parser()
    text = parser.format_help()
    for command in ("generate", "experiment", "classify", "serve", "info"):
        assert command in text


def test_serve_parser_defaults_and_required_model():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["serve"])               # --model is required
    args = parser.parse_args(["serve", "--model", "m.rpm", "--port", "0",
                              "--decision-log", "d.jsonl"])
    assert args.model == "m.rpm"
    assert args.port == 0
    assert args.workers == 2
    assert args.queue_depth == 256
    assert args.reload_interval == pytest.approx(2.0)
    assert args.decision_log == "d.jsonl"


def test_info_command(capsys):
    assert main(["info"]) == 0
    out = capsys.readouterr().out
    assert "Fuzzy Hash Classifier" in out
    assert "numpy" in out


def test_generate_command(tmp_path, capsys, monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", "small")
    target = tmp_path / "tree"
    assert main(["generate", str(target), "--scale", "small", "--seed", "3"]) == 0
    out = capsys.readouterr().out
    assert "samples" in out
    assert target.is_dir()
    # The layout is <Class>/<version>/<executable>.
    class_dirs = [p for p in target.iterdir() if p.is_dir()]
    assert class_dirs
    version_dirs = [p for p in class_dirs[0].iterdir() if p.is_dir()]
    assert len(version_dirs) >= 3


def test_missing_command_exits_with_error():
    with pytest.raises(SystemExit):
        main([])


def test_unknown_command_exits_with_error():
    with pytest.raises(SystemExit):
        main(["not-a-command"])
