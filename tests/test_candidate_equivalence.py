"""Property-based equivalence: array postings vs the legacy dict walk.

The PR that re-built candidate generation on columnar NumPy postings
promises **bit-identical results**.  This suite pins that down with a
reference implementation of the first-generation candidate layer (the
``dict[(block_size, gram)] -> list[int]`` walk with per-query ``set``
de-duplication, scoring through the same shared
:func:`~repro.index.core.score_signature_pairs`) and asserts, over
randomly generated corpora:

* the raw candidate pair sets match;
* dense ``score_matrix`` outputs and ``top_k`` rankings match;
* the equivalence survives save/load round trips (the columnar v2
  container), and — on the sharded index — removals, ``compact()`` and
  directory round trips.
"""

import tempfile
from collections import defaultdict
from pathlib import Path

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.hashing.ssdeep import fuzzy_hash
from repro.index import ShardedSimilarityIndex, SimilarityIndex
from repro.index.core import expand_digest, score_signature_pairs, \
    signature_grams

FT = "ssdeep-file"

_settings = settings(max_examples=20, deadline=None,
                     suppress_health_check=[HealthCheck.too_slow])


class ReferenceCandidateIndex:
    """The pre-columnar candidate layer (see PR history), single type."""

    def __init__(self, ngram_length: int = 7) -> None:
        self._ngram_length = ngram_length
        self._entries: list[tuple[int, int, str]] = []
        self._postings: dict[tuple[int, str], list[int]] = defaultdict(list)
        self.n_members = 0

    def add(self, digest: str) -> None:
        member = self.n_members
        self.n_members += 1
        for block_size, signature in expand_digest(digest):
            entry_id = len(self._entries)
            self._entries.append((member, block_size, signature))
            for gram in signature_grams(signature, self._ngram_length):
                self._postings[(block_size, gram)].append(entry_id)

    def candidate_pairs(self, digests) -> frozenset:
        pairs = set()
        for query_index, digest in enumerate(digests):
            seen: set[int] = set()
            for block_size, signature in expand_digest(digest):
                for gram in signature_grams(signature, self._ngram_length):
                    for entry_id in self._postings.get((block_size, gram), ()):
                        if entry_id in seen:
                            continue
                        seen.add(entry_id)
                        member, _block, member_sig = self._entries[entry_id]
                        pairs.add((query_index, member, signature,
                                   member_sig, block_size))
        return frozenset(pairs)

    def score_matrix(self, digests) -> np.ndarray:
        matrix = np.zeros((len(digests), self.n_members), dtype=np.float64)
        pairs = sorted(self.candidate_pairs(digests))
        if pairs:
            scores = score_signature_pairs(
                [p[2] for p in pairs], [p[3] for p in pairs],
                [p[4] for p in pairs])
            for (query, member, *_rest), score in zip(pairs, scores):
                if score > matrix[query, member]:
                    matrix[query, member] = score
        return matrix


def _new_candidate_pairs(index: SimilarityIndex, digests) -> frozenset:
    batch = index.collect_candidates({FT: list(digests)})
    queries, members, slots = batch.scatter[FT]
    return frozenset(
        (int(q), int(m), batch.left[int(s)], batch.right[int(s)],
         int(batch.block_sizes[int(s)]))
        for q, m, s in zip(queries, members, slots))


_blobs = st.lists(st.binary(min_size=200, max_size=1200), min_size=1,
                  max_size=6)
_seeds = st.randoms(use_true_random=False)


def _corpus_from_blobs(blobs, rnd):
    members = []
    for i, blob in enumerate(blobs):
        members.append((f"m{i}", {FT: fuzzy_hash(blob)}, f"class{i % 3}"))
        sibling = bytearray(blob)
        for _ in range(rnd.randrange(1, 6)):
            sibling[rnd.randrange(len(sibling))] = rnd.randrange(256)
        members.append((f"m{i}-sib", {FT: fuzzy_hash(bytes(sibling))},
                        f"class{i % 3}"))
        if rnd.random() < 0.3:
            # Exact duplicates exercise signature interning.
            members.append((f"m{i}-dup", dict(members[-1][1]), f"class{i % 3}"))
    return members


def _queries_for(members, rnd):
    queries = [digests[FT] for _, digests, _ in members]
    queries.append(fuzzy_hash(rnd.randbytes(600)))   # unrelated
    return queries


@_settings
@given(_blobs, _seeds)
def test_candidates_and_matrices_match_reference(blobs, rnd):
    members = _corpus_from_blobs(blobs, rnd)
    queries = _queries_for(members, rnd)

    reference = ReferenceCandidateIndex()
    for _, digests, _ in members:
        reference.add(digests[FT])
    index = SimilarityIndex([FT])
    index.add_many(members)

    assert _new_candidate_pairs(index, queries) == \
        reference.candidate_pairs(queries)
    assert np.array_equal(index.score_matrix(FT, queries),
                          reference.score_matrix(queries))


@_settings
@given(_blobs, _seeds)
def test_equivalence_survives_save_load(blobs, rnd):
    members = _corpus_from_blobs(blobs, rnd)
    queries = _queries_for(members, rnd)

    reference = ReferenceCandidateIndex()
    for _, digests, _ in members:
        reference.add(digests[FT])
    index = SimilarityIndex([FT])
    index.add_many(members)
    with tempfile.TemporaryDirectory() as tmp:
        loaded = SimilarityIndex.load(index.save(Path(tmp) / "i.rpsi"))

    assert _new_candidate_pairs(loaded, queries) == \
        reference.candidate_pairs(queries)
    assert np.array_equal(loaded.score_matrix(FT, queries),
                          reference.score_matrix(queries))
    for query in queries:
        assert loaded.top_k(query, len(members), min_score=0) == \
            index.top_k(query, len(members), min_score=0)


@_settings
@given(_blobs, _seeds, st.integers(min_value=1, max_value=4),
       st.booleans(), st.booleans())
def test_sharded_matches_reference_after_removals(blobs, rnd, n_shards,
                                                  do_compact, round_trip):
    members = _corpus_from_blobs(blobs, rnd)
    sharded = ShardedSimilarityIndex([FT], n_shards=n_shards,
                                     executor="serial")
    sharded.add_many(members)
    removed = {sample_id for sample_id, _, _ in members
               if rnd.random() < 0.3}
    for sample_id in removed:
        sharded.remove(sample_id)
    if do_compact:
        sharded.compact()
    if round_trip:
        with tempfile.TemporaryDirectory() as tmp:
            sharded.save(Path(tmp) / "sharded")
            sharded = ShardedSimilarityIndex.load(Path(tmp) / "sharded")

    survivors = [m for m in members if m[0] not in removed]
    reference = ReferenceCandidateIndex()
    for _, digests, _ in survivors:
        reference.add(digests[FT])
    queries = _queries_for(members, rnd)

    assert np.array_equal(sharded.score_matrix(FT, queries),
                          reference.score_matrix(queries))
    # Rankings against a plain rebuilt index over the survivors.
    flat = SimilarityIndex([FT])
    flat.add_many(survivors)
    for query in queries:
        assert sharded.top_k(query, max(len(survivors), 1), min_score=0) == \
            flat.top_k(query, max(len(survivors), 1), min_score=0)
