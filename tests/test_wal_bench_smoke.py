"""Tier-1 durability smoke for the write-ahead log.

Runs ``benchmarks/bench_wal.py`` at reduced cost so a regression that
loses an acknowledged ingest across a SIGKILL, duplicates one on
replay, or erodes the group-commit advantage fails the default test
run, not just a manually-invoked benchmark.  The full-cost
configuration is marked ``slow`` (``pytest -m slow`` opts in).
"""

import importlib.util
import sys
import tempfile
from pathlib import Path

import pytest

_BENCH_PATH = Path(__file__).resolve().parents[1] / "benchmarks" / \
    "bench_wal.py"


@pytest.fixture(scope="module")
def bench():
    spec = importlib.util.spec_from_file_location("bench_wal", _BENCH_PATH)
    module = importlib.util.module_from_spec(spec)
    sys.modules.setdefault("bench_wal", module)
    spec.loader.exec_module(module)
    return module


def test_group_commit_beats_per_record_fsync(bench):
    with tempfile.TemporaryDirectory() as tmp:
        per_record_seconds, group_seconds = bench.run_append_phases(
            192, 16, tmp)
    # The real benchmark enforces the 3x floor; the tier-1 smoke uses a
    # conservative 2x so a loaded CI machine cannot flake it while a
    # genuine loss of group commit (1x) still fails.
    assert group_seconds > 0 and per_record_seconds > 0
    assert per_record_seconds / group_seconds >= 2.0, \
        (f"group commit only {per_record_seconds / group_seconds:.2f}x "
         f"faster than per-record fsync")


def test_crash_after_ack_loses_nothing(bench):
    with tempfile.TemporaryDirectory() as tmp:
        acked, recovered, duplicates = bench.run_crash_after_ack(
            3, tmp, seed=7)
    assert acked > 0
    assert recovered == acked, \
        f"SIGKILL after ack lost {acked - recovered} of {acked} ingests"
    assert duplicates == 0, \
        f"recovery duplicated {duplicates} acked ingests"


def test_benchmark_cli_mode(bench, capsys, tmp_path, monkeypatch):
    monkeypatch.setattr(bench, "OUTPUT_DIR", tmp_path)
    code = bench.main(["--quick", "--records", "96", "--min-speedup", "2"])
    out = capsys.readouterr().out
    assert code == 0
    assert "group-commit speedup" in out
    assert (tmp_path / "bench_wal.txt").is_file()
    assert (tmp_path / "BENCH_wal.json").is_file()


@pytest.mark.slow
def test_full_benchmark_meets_speedup_floor(bench):
    """The full configuration: 768 records plus the crash check, >=3x."""

    result = bench.run(768, 16, 4, True)
    assert result.speedup >= 3.0
    assert result.crash_durable
