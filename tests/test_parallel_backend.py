"""Tests for the pluggable execution backends and the ``parallel_map``
fallback semantics (the silent-fallback bugfix: pool failure must emit a
user-visible warning, and ``strict=True`` must raise instead)."""

import warnings

import pytest

from repro.exceptions import ParallelExecutionError, ValidationError
from repro.parallel import parallel_map
from repro.parallel.backend import (
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    resolve_backend,
)


def _square(x):
    return x * x


# ------------------------------------------------------------- spec parsing
def test_resolve_backend_specs():
    assert isinstance(resolve_backend(None), SerialBackend)
    assert isinstance(resolve_backend("serial"), SerialBackend)
    thread = resolve_backend("thread:3")
    assert isinstance(thread, ThreadBackend) and thread.n_workers == 3
    process = resolve_backend("process:2")
    assert isinstance(process, ProcessBackend) and process.n_workers == 2
    assert resolve_backend("Thread").name == "thread"   # case-insensitive


def test_resolve_backend_passes_instances_through():
    backend = SerialBackend()
    assert resolve_backend(backend) is backend


@pytest.mark.parametrize("spec", ["serial:2", "fibre", "thread:x",
                                  "process:0", "process:-1"])
def test_resolve_backend_rejects_bad_specs(spec):
    with pytest.raises(ValidationError):
        resolve_backend(spec)


def test_resolve_backend_rejects_non_strings():
    with pytest.raises(ValidationError):
        resolve_backend(3.5)


# ----------------------------------------------------------------- backends
@pytest.mark.parametrize("spec", ["serial", "thread:2", "process:2"])
def test_backends_map_preserves_order(spec):
    with resolve_backend(spec) as backend:
        assert backend.map(_square, range(40)) == [x * x for x in range(40)]


def test_thread_backend_pool_persists_and_closes():
    backend = ThreadBackend(2)
    assert backend.map(_square, [1, 2]) == [1, 4]
    pool = backend._pool
    assert pool is not None
    assert backend.map(_square, [3]) == [9]
    assert backend._pool is pool           # reused, not rebuilt
    backend.close()
    assert backend._pool is None
    backend.close()                        # idempotent


# --------------------------------------------- parallel_map executor specs
def test_parallel_map_with_executor_spec():
    items = list(range(30))
    result = parallel_map(_square, items, executor="thread:2",
                          min_items_per_worker=1)
    assert result == [x * x for x in items]


def test_parallel_map_with_backend_instance_left_open():
    backend = ThreadBackend(2)
    result = parallel_map(_square, range(10), executor=backend,
                          min_items_per_worker=1)
    assert result == [x * x for x in range(10)]
    # A caller-supplied backend must not be closed by parallel_map.
    assert backend.map(_square, [5]) == [25]
    backend.close()


def test_parallel_map_small_workload_stays_serial_with_executor():
    # Below min_items_per_worker the map must not touch the pool at all.
    backend = ProcessBackend(4)
    try:
        assert parallel_map(_square, [1, 2], executor=backend,
                            min_items_per_worker=100) == [1, 4]
        assert backend._pool is None
    finally:
        backend.close()


# ----------------------------------------------- fallback warning + strict
def _broken_pool(monkeypatch):
    class BrokenExecutor:
        def __init__(self, max_workers=None):
            raise OSError("no processes for you")

    import repro.parallel.backend as backend_module
    import repro.parallel.pool as pool_module

    monkeypatch.setattr(backend_module, "ProcessPoolExecutor", BrokenExecutor)
    # effective_n_jobs clamps to the CPU count; pretend there are four
    # so the n_jobs path actually reaches the (broken) pool even on a
    # single-core test machine.
    monkeypatch.setattr(pool_module.os, "cpu_count", lambda: 4)


def test_pool_failure_emits_visible_warning_and_falls_back(monkeypatch):
    _broken_pool(monkeypatch)
    with pytest.warns(RuntimeWarning, match="process pool unavailable"):
        result = parallel_map(_square, list(range(16)), n_jobs=2,
                              min_items_per_worker=1)
    assert result == [x * x for x in range(16)]


def test_degraded_backend_warns_once_then_stays_serial(monkeypatch):
    _broken_pool(monkeypatch)
    backend = ProcessBackend(2)
    with pytest.warns(RuntimeWarning):
        assert backend.map(_square, [1, 2, 3]) == [1, 4, 9]
    assert backend.n_workers == 1
    with warnings.catch_warnings():
        warnings.simplefilter("error")     # a second warning would raise
        assert backend.map(_square, [4]) == [16]


def test_strict_pool_failure_raises(monkeypatch):
    _broken_pool(monkeypatch)
    with pytest.raises(ParallelExecutionError, match="unavailable"):
        parallel_map(_square, list(range(16)), n_jobs=2,
                     min_items_per_worker=1, strict=True)


def test_strict_executor_spec_failure_raises(monkeypatch):
    _broken_pool(monkeypatch)
    with pytest.raises(ParallelExecutionError):
        parallel_map(_square, list(range(16)), executor="process:2",
                     min_items_per_worker=1, strict=True)
