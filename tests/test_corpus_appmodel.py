"""Tests for the application source models."""

import pytest

from repro.corpus.appmodel import ApplicationModel, stable_seed
from repro.corpus.catalog import ApplicationClassSpec, default_catalog


@pytest.fixture()
def spec():
    return ApplicationClassSpec(name="DemoAssembler", domain="genomics",
                                paper_test_support=10,
                                libraries=("zlib", "htslib"))


def test_stable_seed_is_deterministic_and_distinct():
    assert stable_seed("a", 1) == stable_seed("a", 1)
    assert stable_seed("a", 1) != stable_seed("a", 2)
    assert stable_seed("a", 1) != stable_seed("b", 1)
    assert 0 <= stable_seed("anything") < 2 ** 63


def test_model_is_deterministic(spec):
    a = ApplicationModel(spec, corpus_seed=7)
    b = ApplicationModel(spec, corpus_seed=7)
    assert a.core_functions == b.core_functions
    assert a.core_strings == b.core_strings
    assert a.core_block_ids == b.core_block_ids


def test_different_seeds_give_different_models(spec):
    a = ApplicationModel(spec, corpus_seed=7)
    b = ApplicationModel(spec, corpus_seed=8)
    assert a.core_functions != b.core_functions


def test_library_symbols_included(spec):
    model = ApplicationModel(spec, corpus_seed=7)
    assert any(name.startswith("hts_") or name.startswith("sam_")
               for name in model.library_symbols)
    assert any("flate" in name or name in ("crc32", "adler32")
               for name in model.library_symbols)


def test_alias_classes_share_identity():
    catalog = default_catalog()
    cell_ranger = ApplicationModel(catalog["CellRanger"], corpus_seed=1)
    cell_dash = ApplicationModel(catalog["Cell-Ranger"], corpus_seed=1)
    assert cell_ranger.identity == cell_dash.identity
    assert cell_ranger.core_functions == cell_dash.core_functions


def test_executable_names_respect_catalogue(spec):
    catalog = default_catalog()
    velvet_model = ApplicationModel(catalog["Velvet"], corpus_seed=1)
    assert velvet_model.executable_names(2) == ["velveth", "velvetg"]
    generic = ApplicationModel(spec, corpus_seed=1)
    names = generic.executable_names(5)
    assert len(names) == 5
    assert len(set(names)) == 5


def test_executable_models_share_class_core(spec):
    model = ApplicationModel(spec, corpus_seed=3)
    exe_a = model.executable_model("tool_a", 0)
    exe_b = model.executable_model("tool_b", 1)
    shared = set(exe_a.functions) & set(exe_b.functions)
    # Both carry the runtime/library symbols plus a majority of the core.
    assert len(shared) > 0.4 * min(len(exe_a.functions), len(exe_b.functions))
    assert "main" in exe_a.functions and "main" in exe_b.functions
    # But each has its own entry points too.
    assert set(exe_a.functions) != set(exe_b.functions)


def test_executable_model_is_deterministic(spec):
    model = ApplicationModel(spec, corpus_seed=3)
    a = model.executable_model("tool_a", 0)
    b = model.executable_model("tool_a", 0)
    assert a.functions == b.functions
    assert a.code_block_ids == b.code_block_ids


def test_code_blocks_have_positive_sizes(spec):
    model = ApplicationModel(spec, corpus_seed=3)
    exe = model.executable_model("tool_a", 0)
    assert len(exe.code_block_ids) == len(exe.code_block_sizes)
    assert all(size > 0 for size in exe.code_block_sizes)
