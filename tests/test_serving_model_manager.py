"""Unit tests for generation-tracked model hot-reload
(``repro.serving.model_manager``): atomic-publish detection, swap
semantics, failure tolerance and the watcher thread.
"""

import os

import pytest

from repro.exceptions import ModelFormatError
from repro.serving.metrics import MetricsRegistry
from repro.serving.model_manager import ModelManager

from test_api_artifact import make_records


@pytest.fixture(scope="module")
def artifacts(tmp_path_factory):
    """Two model artifacts whose predictions provably differ.

    Generation B is trained on the same digests with every class
    renamed (``v2-`` prefix), so any known-class prediction reveals
    which model produced it — deterministic, unlike threshold tricks
    that depend on forest confidence values.  The low threshold keeps
    every prediction a known class (forest max-probability over 3
    classes is always >= 1/3).
    """

    from dataclasses import replace

    from repro.api.service import ClassificationService

    directory = tmp_path_factory.mktemp("manager-models")
    records = make_records(30, seed=21, n_families=3)
    renamed = [replace(r, class_name=f"v2-{r.class_name}") for r in records]
    gen_a = ClassificationService.train(
        records, feature_types=["ssdeep-file"], n_estimators=10,
        random_state=1, confidence_threshold=0.1)
    gen_b = ClassificationService.train(
        renamed, feature_types=["ssdeep-file"], n_estimators=10,
        random_state=1, confidence_threshold=0.1)
    gen_a_path = directory / "gen-a.rpm"
    gen_b_path = directory / "gen-b.rpm"
    gen_a.save(gen_a_path)
    gen_b.save(gen_b_path)
    return gen_a_path, gen_b_path, records


def publish(source, target):
    """Atomically publish ``source`` as ``target`` (the operator move)."""

    staging = target.with_name(target.name + ".staging")
    staging.write_bytes(source.read_bytes())
    os.replace(staging, target)


def payload_batch():
    return [("probe-1", bytes(range(256)) * 8),
            ("probe-2", b"\x7fELF" + bytes(range(128)) * 16)]


def test_initial_load_is_generation_one(artifacts, tmp_path):
    gen_a, _, _ = artifacts
    live = tmp_path / "model.rpm"
    publish(gen_a, live)
    manager = ModelManager(live, poll_interval=0, cache_size=0)
    assert manager.generation == 1
    decisions, generation = manager.classify_items(payload_batch())
    assert generation == 1
    assert len(decisions) == 2
    assert manager.maybe_reload() is False         # unchanged file


def test_reload_swaps_generation_and_decisions(artifacts, tmp_path):
    gen_a, gen_b, _ = artifacts
    live = tmp_path / "model.rpm"
    publish(gen_a, live)
    registry = MetricsRegistry()
    manager = ModelManager(live, poll_interval=0, metrics=registry,
                           cache_size=0)
    before, _ = manager.classify_items(payload_batch())
    publish(gen_b, live)
    assert manager.maybe_reload() is True
    assert manager.generation == 2
    after, generation = manager.classify_items(payload_batch())
    assert generation == 2
    # Generation B's renamed classes prove which model answered.
    assert all(not str(d.predicted_class).startswith("v2-") for d in before)
    assert all(str(d.predicted_class).startswith("v2-") for d in after)
    snapshot = registry.snapshot()
    assert snapshot["model_generation"] == 2.0
    assert snapshot["model_reloads_total"] == 1


def test_corrupt_publish_keeps_old_generation(artifacts, tmp_path):
    gen_a, _, _ = artifacts
    live = tmp_path / "model.rpm"
    publish(gen_a, live)
    registry = MetricsRegistry()
    manager = ModelManager(live, poll_interval=0, metrics=registry,
                           cache_size=0)
    garbage = tmp_path / "garbage.bin"
    garbage.write_bytes(b"NOTAMODEL" * 100)
    os.replace(garbage, live)
    assert manager.maybe_reload() is False
    assert manager.generation == 1
    decisions, generation = manager.classify_items(payload_batch())
    assert generation == 1 and len(decisions) == 2
    # The same broken file is not re-parsed on every poll...
    assert manager.maybe_reload() is False
    assert registry.snapshot()["model_reload_failures_total"] == 1
    # ...but a good publish recovers immediately.
    publish(gen_a, live)
    assert manager.maybe_reload() is True
    assert manager.generation == 2


def test_missing_file_is_tolerated(artifacts, tmp_path):
    gen_a, _, _ = artifacts
    live = tmp_path / "model.rpm"
    publish(gen_a, live)
    manager = ModelManager(live, poll_interval=0, cache_size=0)
    os.unlink(live)
    assert manager.maybe_reload() is False
    assert manager.generation == 1


def test_initial_load_failure_raises(tmp_path):
    from repro.exceptions import ReproError

    missing = tmp_path / "nope.rpm"
    # A ReproError, so the CLI's error contract (message + exit 2, no
    # traceback) covers a missing artifact too.
    with pytest.raises(ReproError, match="cannot serve"):
        ModelManager(missing, poll_interval=0)
    broken = tmp_path / "broken.rpm"
    broken.write_bytes(b"x" * 64)
    with pytest.raises(ModelFormatError):
        ModelManager(broken, poll_interval=0)


def test_reload_restats_until_signature_and_bytes_agree(artifacts, tmp_path,
                                                        monkeypatch):
    """A publish landing between the stat and the load must not leave
    the loaded bytes recorded under the stale pre-load signature.

    Pre-fix, ``maybe_reload`` stat'ed once up front: the racing publish
    below made it serve the *new* bytes under the *old* signature, so
    the follow-up poll re-loaded the same file and bumped the
    generation a second time.
    """

    from repro.api.service import ClassificationService

    gen_a, gen_b, _ = artifacts
    live = tmp_path / "model.rpm"
    publish(gen_a, live)
    manager = ModelManager(live, poll_interval=0, cache_size=0)

    real_load = ClassificationService.load
    calls = {"n": 0}

    def racing_load(path, **kwargs):
        calls["n"] += 1
        if calls["n"] == 1:
            # A second publish lands after the manager stat'ed the
            # artifact but before it finished reading it.
            publish(gen_b, live)
        return real_load(path, **kwargs)

    monkeypatch.setattr(ClassificationService, "load",
                        staticmethod(racing_load))
    publish(gen_b, live)
    assert manager.maybe_reload() is True
    assert calls["n"] == 2                 # the torn read was retried
    assert manager.generation == 2
    # The recorded signature matches the artifact actually served...
    assert manager._signature == manager._stat_signature()
    # ...so the next poll is a no-op instead of a double-load.
    assert manager.maybe_reload() is False
    assert manager.generation == 2


def test_concurrent_maybe_reload_loads_one_publish_once(artifacts, tmp_path,
                                                        monkeypatch):
    """The watcher racing a manual ``maybe_reload()`` must not load one
    publish twice (pre-fix, the second thread passed the signature
    check while the first was still inside ``ClassificationService.load``
    and both swapped, double-bumping the generation)."""

    import threading
    import time

    from repro.api.service import ClassificationService

    gen_a, gen_b, _ = artifacts
    live = tmp_path / "model.rpm"
    publish(gen_a, live)
    manager = ModelManager(live, poll_interval=0, cache_size=0)

    real_load = ClassificationService.load
    entered = threading.Event()
    release = threading.Event()
    counter_lock = threading.Lock()
    calls = {"n": 0}

    def slow_load(path, **kwargs):
        with counter_lock:
            calls["n"] += 1
        entered.set()
        assert release.wait(timeout=30)
        return real_load(path, **kwargs)

    monkeypatch.setattr(ClassificationService, "load",
                        staticmethod(slow_load))
    publish(gen_b, live)
    results = []
    threads = [threading.Thread(
        target=lambda: results.append(manager.maybe_reload()))
        for _ in range(2)]
    threads[0].start()
    assert entered.wait(timeout=30)
    threads[1].start()
    time.sleep(0.2)      # pre-fix window: thread 2 races the stale check
    release.set()
    for thread in threads:
        thread.join(timeout=30)
    assert calls["n"] == 1                       # one publish, one load
    assert sorted(results) == [False, True]
    assert manager.generation == 2


def test_concurrent_corrupt_publish_is_parsed_once(artifacts, tmp_path,
                                                   monkeypatch):
    """Two threads racing a *corrupt* publish must record exactly one
    failure and never clear the failure marker for the still-broken
    file (pre-fix, ``_failed_signature`` was read and written with no
    lock held)."""

    import threading
    import time

    from repro.api.service import ClassificationService
    from repro.exceptions import ModelFormatError

    gen_a, gen_b, _ = artifacts
    live = tmp_path / "model.rpm"
    publish(gen_a, live)
    registry = MetricsRegistry()
    manager = ModelManager(live, poll_interval=0, metrics=registry,
                           cache_size=0)

    entered = threading.Event()
    release = threading.Event()
    counter_lock = threading.Lock()
    calls = {"n": 0}

    def corrupt_load(path, **kwargs):
        with counter_lock:
            calls["n"] += 1
        entered.set()
        assert release.wait(timeout=30)
        raise ModelFormatError("artifact is torn")

    monkeypatch.setattr(ClassificationService, "load",
                        staticmethod(corrupt_load))
    publish(gen_b, live)
    results = []
    threads = [threading.Thread(
        target=lambda: results.append(manager.maybe_reload()))
        for _ in range(2)]
    threads[0].start()
    assert entered.wait(timeout=30)
    threads[1].start()
    time.sleep(0.2)
    release.set()
    for thread in threads:
        thread.join(timeout=30)
    assert results == [False, False]
    assert calls["n"] == 1                       # parsed exactly once
    assert registry.snapshot()["model_reload_failures_total"] == 1
    # The failure marker survived the race: further polls skip the file.
    assert manager.maybe_reload() is False
    assert calls["n"] == 1
    assert manager.generation == 1


def test_watcher_thread_picks_up_a_publish(artifacts, tmp_path):
    import time

    gen_a, gen_b, _ = artifacts
    live = tmp_path / "model.rpm"
    publish(gen_a, live)
    manager = ModelManager(live, poll_interval=0.05, cache_size=0)
    manager.start_watching()
    try:
        publish(gen_b, live)
        deadline = time.monotonic() + 10
        while manager.generation < 2 and time.monotonic() < deadline:
            time.sleep(0.02)
        assert manager.generation == 2
    finally:
        manager.stop()
    manager.stop()                                 # idempotent
