"""Tests for the versioned model artifact format (``repro.api.artifact``).

Covers the bit-exact save/load round trip, header inspection, headless
artifacts, and the strict validation paths: corrupt files, truncation,
future format versions, unknown feature types and mismatched indexes
must all raise a :class:`~repro.exceptions.ModelFormatError` (a
``ReproError``), never an arbitrary traceback.
"""

import json
import random
import struct

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.api.artifact import (
    MODEL_FORMAT_VERSION,
    MODEL_MAGIC,
    inspect_model,
    load_model,
    save_model,
    validate_model,
)
from repro.core.classifier import FuzzyHashClassifier
from repro.exceptions import (
    ModelArtifactError,
    ModelFormatError,
    NotFittedError,
    ReproError,
)
from repro.features.records import SampleFeatures
from repro.hashing.ssdeep import fuzzy_hash
from repro.index import SimilarityIndex

from test_index_core import make_corpus


def make_records(n=36, *, seed=5, n_families=4, feature_type="ssdeep-file"):
    return [SampleFeatures(sample_id=sid, class_name=cls, version="1",
                           executable=sid, digests=digests)
            for sid, digests, cls in make_corpus(n, seed=seed,
                                                 n_families=n_families,
                                                 feature_type=feature_type)]


@pytest.fixture(scope="module")
def fitted():
    records = make_records()
    clf = FuzzyHashClassifier(feature_types=["ssdeep-file"], n_estimators=12,
                              random_state=0, confidence_threshold=0.4)
    clf.fit(records)
    return clf, records


@pytest.fixture(scope="module")
def saved(fitted, tmp_path_factory):
    clf, _records = fitted
    path = tmp_path_factory.mktemp("models") / "model.rpm"
    return save_model(clf, path)


# -------------------------------------------------------------- round trip
def test_round_trip_is_bit_identical(fitted, saved):
    clf, records = fitted
    restored = load_model(saved)
    assert list(restored.classes_) == list(clf.classes_)
    assert restored.feature_names_ == clf.feature_names_
    assert np.array_equal(restored.predict_proba(records),
                          clf.predict_proba(records))
    assert list(restored.predict(records)) == list(clf.predict(records))
    assert np.array_equal(restored.feature_importances_,
                          clf.feature_importances_)


def test_round_trip_confidences_and_threshold(fitted, saved):
    clf, records = fitted
    restored = load_model(saved)
    labels, conf = restored.predict_with_confidence(records)
    labels2, conf2 = clf.predict_with_confidence(records)
    assert np.array_equal(conf, conf2)
    assert list(labels) == list(labels2)
    assert restored.confidence_threshold == clf.confidence_threshold
    # The threshold override plumbing survives the round trip too.
    assert list(restored.predict(records, confidence_threshold=0.99)) == \
        list(clf.predict(records, confidence_threshold=0.99))


def test_inspect_reports_header_summary(saved, fitted):
    clf, _ = fitted
    info = inspect_model(saved)
    assert info["kind"] == "repro.fuzzy-hash-classifier"
    assert info["format_version"] == MODEL_FORMAT_VERSION
    assert info["feature_types"] == ["ssdeep-file"]
    assert info["n_trees"] == 12
    assert info["n_classes"] == len(clf.classes_)
    assert info["index_included"] is True
    assert info["index_members"] == 36
    assert validate_model(saved)["n_trees"] == 12


def test_save_requires_fitted_classifier(tmp_path):
    with pytest.raises(NotFittedError):
        save_model(FuzzyHashClassifier(), tmp_path / "nope.rpm")
    with pytest.raises(ModelArtifactError):
        save_model(object(), tmp_path / "nope.rpm")


# ---------------------------------------------------------------- headless
def test_headless_artifact_requires_index(fitted, tmp_path):
    clf, records = fitted
    path = save_model(clf, tmp_path / "headless.rpm", include_index=False)
    # Much smaller without the anchor payload.
    assert path.stat().st_size < save_model(
        clf, tmp_path / "with-index.rpm").stat().st_size
    with pytest.raises(ModelFormatError, match="without its anchor index"):
        load_model(path)
    # Supplying the matching index (object or path) restores bit-exactly.
    index_path = clf.builder_.index_.save(tmp_path / "anchors.rpsi")
    for source in (clf.builder_.index_, index_path):
        restored = load_model(path, index=source)
        assert list(restored.predict(records)) == list(clf.predict(records))


def test_headless_artifact_rejects_wrong_index(fitted, tmp_path):
    clf, _records = fitted
    path = save_model(clf, tmp_path / "headless.rpm", include_index=False)
    wrong = SimilarityIndex(["ssdeep-file"])
    wrong.add_many(make_corpus(10, seed=99, n_families=2))
    with pytest.raises(ModelFormatError):
        load_model(path, index=wrong)


# ------------------------------------------------------------- error paths
def test_missing_file_raises_model_format_error(tmp_path):
    with pytest.raises(ModelFormatError, match="does not exist"):
        load_model(tmp_path / "missing.rpm")


def test_bad_magic_raises(tmp_path):
    path = tmp_path / "bad.rpm"
    path.write_bytes(b"\x13\x37" * 64)
    with pytest.raises(ModelFormatError, match="bad magic"):
        load_model(path)


def test_index_file_is_not_a_model(fitted, tmp_path):
    clf, _ = fitted
    index_path = clf.builder_.index_.save(tmp_path / "anchors.rpsi")
    with pytest.raises(ModelFormatError, match="bad magic"):
        inspect_model(index_path)


def test_truncation_raises(saved, tmp_path):
    data = saved.read_bytes()
    for cut in (10, len(data) // 2, len(data) - 7):
        path = tmp_path / f"trunc-{cut}.rpm"
        path.write_bytes(data[:cut])
        with pytest.raises(ModelFormatError):
            load_model(path)


def test_future_version_raises(saved, tmp_path):
    data = bytearray(saved.read_bytes())
    struct.pack_into("<I", data, 8, MODEL_FORMAT_VERSION + 1)
    path = tmp_path / "future.rpm"
    path.write_bytes(bytes(data))
    with pytest.raises(ModelFormatError, match="format version"):
        load_model(path)


def _rewrite_header(saved, tmp_path, mutate, name="tampered.rpm"):
    """Rewrite the artifact with a mutated JSON header (payload kept)."""

    data = saved.read_bytes()
    magic, version, header_len = struct.unpack_from("<8sIQ", data)
    assert magic == MODEL_MAGIC
    header = json.loads(data[20:20 + header_len].decode("utf-8"))
    align = header.get("payload_alignment", 1)
    # Re-extract each payload at its (aligned) old offset so the new
    # header length cannot shift the padded layout out from under them.
    payloads = []
    offset = 20 + header_len
    for descriptor in header["arrays"]:
        offset += -offset % align
        n_bytes = np.dtype(descriptor["dtype"]).itemsize \
            * int(np.prod(descriptor["shape"], dtype=np.int64))
        payloads.append(data[offset:offset + n_bytes])
        offset += n_bytes
    mutate(header)
    new_header = json.dumps(header, separators=(",", ":"),
                            sort_keys=True).encode("utf-8")
    out = bytearray(struct.pack("<8sIQ", magic, version, len(new_header)))
    out += new_header
    for payload in payloads:
        out += b"\0" * (-len(out) % align)
        out += payload
    path = tmp_path / name
    path.write_bytes(bytes(out))
    return path


def test_unknown_feature_type_raises(saved, tmp_path):
    def mutate(header):
        header["params"]["feature_types"] = ["ssdeep-quantum"]

    path = _rewrite_header(saved, tmp_path, mutate)
    with pytest.raises(ModelFormatError, match="ssdeep-quantum"):
        load_model(path)


def test_wrong_kind_raises(saved, tmp_path):
    path = _rewrite_header(saved, tmp_path,
                           lambda h: h.update(kind="something-else"))
    with pytest.raises(ModelFormatError, match="something-else"):
        load_model(path)


def test_tampered_feature_names_raise(saved, tmp_path):
    def mutate(header):
        header["feature_names"] = header["feature_names"][:-1]

    path = _rewrite_header(saved, tmp_path, mutate)
    with pytest.raises(ModelFormatError):
        load_model(path)


def test_all_artifact_errors_are_repro_errors():
    assert issubclass(ModelFormatError, ModelArtifactError)
    assert issubclass(ModelArtifactError, ReproError)


# ----------------------------------------------- hypothesis: round trip
_seeds = st.integers(min_value=0, max_value=2**16)


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=_seeds, threshold=st.floats(min_value=0.1, max_value=0.9),
       n_estimators=st.integers(min_value=3, max_value=12))
def test_roundtrip_predicts_bit_identically(tmp_path_factory, seed, threshold,
                                            n_estimators):
    """``load_model(save_model(m))`` predicts bit-identically to ``m``
    over random corpora, thresholds and forest sizes."""

    rnd = random.Random(seed)
    n = rnd.randrange(12, 30)
    records = make_records(n, seed=seed, n_families=rnd.randrange(2, 5))
    queries = make_records(10, seed=seed + 1, n_families=3)
    clf = FuzzyHashClassifier(feature_types=["ssdeep-file"],
                              n_estimators=n_estimators,
                              confidence_threshold=threshold,
                              random_state=seed)
    clf.fit(records)
    path = tmp_path_factory.mktemp("hyp") / "model.rpm"
    restored = load_model(save_model(clf, path))
    for batch in (records, queries):
        assert np.array_equal(restored.predict_proba(batch),
                              clf.predict_proba(batch))
        assert list(restored.predict(batch)) == list(clf.predict(batch))
        assert np.array_equal(restored.confidence(batch),
                              clf.confidence(batch))
