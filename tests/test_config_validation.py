"""Tests for configuration presets and the validation helpers."""

import numpy as np
import pytest

from repro._validation import (
    check_array_1d,
    check_array_2d,
    check_bytes,
    check_consistent_length,
    check_in_choices,
    check_non_negative_int,
    check_positive_int,
    check_probability,
    check_random_state,
)
from repro.config import (
    SCALE_PRESETS,
    ExperimentConfig,
    default_config,
    get_scale_preset,
)
from repro.exceptions import ConfigurationError, ValidationError


# ----------------------------------------------------------------- config
def test_three_presets_exist():
    assert set(SCALE_PRESETS) == {"small", "medium", "full"}
    assert SCALE_PRESETS["full"].max_samples_per_class is None
    assert SCALE_PRESETS["small"].max_classes == 12


def test_get_scale_preset_by_name_and_env(monkeypatch):
    assert get_scale_preset("small").name == "small"
    assert get_scale_preset("FULL").name == "full"
    monkeypatch.setenv("REPRO_SCALE", "small")
    assert get_scale_preset().name == "small"
    monkeypatch.delenv("REPRO_SCALE")
    assert get_scale_preset().name == "medium"
    with pytest.raises(ConfigurationError):
        get_scale_preset("gigantic")


def test_default_config_overrides_and_validation():
    config = default_config("small", seed=1, n_jobs=4)
    assert config.seed == 1 and config.n_jobs == 4
    assert config.scale.name == "small"
    with pytest.raises(ConfigurationError):
        default_config("small", unknown_class_fraction=2.0)
    with pytest.raises(ConfigurationError):
        default_config("small", test_sample_fraction=0.0)
    with pytest.raises(ConfigurationError):
        default_config("small", confidence_threshold=3.0)
    with pytest.raises(ConfigurationError):
        default_config("small", anchor_strategy="bogus")
    with pytest.raises(ConfigurationError):
        default_config("small", feature_types=())


def test_with_scale_returns_new_config():
    config = default_config("small")
    bigger = config.with_scale("medium")
    assert bigger.scale.name == "medium"
    assert config.scale.name == "small"


def test_preset_describe():
    assert "classes" in get_scale_preset("medium").describe()


# -------------------------------------------------------------- validation
def test_check_bytes():
    assert check_bytes(b"abc") == b"abc"
    assert check_bytes(bytearray(b"abc")) == b"abc"
    assert check_bytes("abc") == b"abc"
    with pytest.raises(ValidationError):
        check_bytes(123)


def test_check_probability():
    assert check_probability(0.5) == 0.5
    assert check_probability(0) == 0.0
    with pytest.raises(ValidationError):
        check_probability(1.5)
    with pytest.raises(ValidationError):
        check_probability(float("nan"))
    with pytest.raises(ValidationError):
        check_probability("high")


def test_check_ints():
    assert check_positive_int(3) == 3
    assert check_non_negative_int(0) == 0
    with pytest.raises(ValidationError):
        check_positive_int(0)
    with pytest.raises(ValidationError):
        check_positive_int(True)
    with pytest.raises(ValidationError):
        check_non_negative_int(-1)
    with pytest.raises(ValidationError):
        check_positive_int(2.5)


def test_check_in_choices():
    assert check_in_choices("a", ["a", "b"]) == "a"
    with pytest.raises(ValidationError):
        check_in_choices("c", ["a", "b"])


def test_check_arrays():
    arr = check_array_2d([[1, 2], [3, 4]])
    assert arr.shape == (2, 2)
    assert check_array_2d([1, 2, 3]).shape == (1, 3)
    with pytest.raises(ValidationError):
        check_array_2d([[np.nan, 1]])
    with pytest.raises(ValidationError):
        check_array_2d(np.zeros((2, 2, 2)))
    assert check_array_1d([1, 2]).shape == (2,)
    with pytest.raises(ValidationError):
        check_array_1d([[1], [2]])


def test_check_consistent_length():
    assert check_consistent_length([1, 2], [3, 4]) == 2
    assert check_consistent_length() == 0
    with pytest.raises(ValidationError):
        check_consistent_length([1], [1, 2])


def test_check_random_state():
    gen = check_random_state(42)
    assert isinstance(gen, np.random.Generator)
    assert check_random_state(gen) is gen
    assert isinstance(check_random_state(None), np.random.Generator)
    assert isinstance(check_random_state(np.random.RandomState(0)), np.random.Generator)
    with pytest.raises(ValidationError):
        check_random_state("seed")
