"""Tests for the KNN and linear-SVM comparator models."""

import numpy as np
import pytest

from repro.exceptions import NotFittedError, ValidationError
from repro.ml.linear import LinearSVMClassifier
from repro.ml.metrics import accuracy_score
from repro.ml.neighbors import KNeighborsClassifier


@pytest.fixture(scope="module")
def blobs():
    rng = np.random.default_rng(7)
    centers = np.array([[0, 0], [5, 0], [0, 5]])
    y = rng.integers(0, 3, size=240)
    X = centers[y] + rng.normal(0, 0.7, size=(240, 2))
    return X, y


# ------------------------------------------------------------------------ KNN
def test_knn_accuracy(blobs):
    X, y = blobs
    knn = KNeighborsClassifier(n_neighbors=5).fit(X, y)
    assert accuracy_score(y, knn.predict(X)) > 0.95


def test_knn_one_neighbor_memorises_training_set(blobs):
    X, y = blobs
    knn = KNeighborsClassifier(n_neighbors=1).fit(X, y)
    assert accuracy_score(y, knn.predict(X)) == 1.0


def test_knn_proba_normalised(blobs):
    X, y = blobs
    knn = KNeighborsClassifier(n_neighbors=7, weights="distance").fit(X, y)
    proba = knn.predict_proba(X[:13])
    assert proba.shape == (13, 3)
    assert np.allclose(proba.sum(axis=1), 1.0)


def test_knn_manhattan_metric(blobs):
    X, y = blobs
    knn = KNeighborsClassifier(n_neighbors=3, metric="manhattan").fit(X, y)
    assert accuracy_score(y, knn.predict(X)) > 0.9


def test_knn_kneighbors_returns_sorted_distances(blobs):
    X, y = blobs
    knn = KNeighborsClassifier(n_neighbors=4).fit(X, y)
    distances, indices = knn.kneighbors(X[:5])
    assert distances.shape == (5, 4)
    assert np.all(np.diff(distances, axis=1) >= 0)
    # The closest neighbour of a training point is itself (distance 0).
    assert np.allclose(distances[:, 0], 0.0)


def test_knn_block_size_does_not_change_results(blobs):
    X, y = blobs
    small = KNeighborsClassifier(n_neighbors=5, block_size=16).fit(X, y)
    large = KNeighborsClassifier(n_neighbors=5, block_size=4096).fit(X, y)
    assert np.array_equal(small.predict(X), large.predict(X))


def test_knn_validation(blobs):
    X, y = blobs
    with pytest.raises(ValidationError):
        KNeighborsClassifier(n_neighbors=1000).fit(X, y)
    with pytest.raises(ValidationError):
        KNeighborsClassifier(metric="cosine").fit(X, y)
    with pytest.raises(ValidationError):
        KNeighborsClassifier(weights="nope").fit(X, y)
    with pytest.raises(NotFittedError):
        KNeighborsClassifier().predict(X)


# ------------------------------------------------------------------------ SVM
def test_linear_svm_separable(blobs):
    X, y = blobs
    svm = LinearSVMClassifier(max_iter=30, random_state=0).fit(X, y)
    assert accuracy_score(y, svm.predict(X)) > 0.9


def test_linear_svm_decision_function_shape(blobs):
    X, y = blobs
    svm = LinearSVMClassifier(max_iter=10, random_state=0).fit(X, y)
    scores = svm.decision_function(X[:9])
    assert scores.shape == (9, 3)
    proba = svm.predict_proba(X[:9])
    assert np.allclose(proba.sum(axis=1), 1.0)


def test_linear_svm_balanced_class_weight():
    rng = np.random.default_rng(1)
    X = np.vstack([rng.normal(0, 1, (150, 2)), rng.normal(2.0, 1, (15, 2))])
    y = np.array([0] * 150 + [1] * 15)
    plain = LinearSVMClassifier(max_iter=20, random_state=0).fit(X, y)
    balanced = LinearSVMClassifier(max_iter=20, class_weight="balanced",
                                   random_state=0).fit(X, y)
    recall_plain = (plain.predict(X[y == 1]) == 1).mean()
    recall_balanced = (balanced.predict(X[y == 1]) == 1).mean()
    assert recall_balanced >= recall_plain


def test_linear_svm_validation(blobs):
    X, y = blobs
    with pytest.raises(ValidationError):
        LinearSVMClassifier(C=-1).fit(X, y)
    with pytest.raises(ValidationError):
        LinearSVMClassifier(max_iter=0).fit(X, y)
    with pytest.raises(NotFittedError):
        LinearSVMClassifier().predict(X)
