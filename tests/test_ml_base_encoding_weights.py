"""Tests for estimator plumbing: base classes, label encoding, class weights."""

import numpy as np
import pytest

from repro.exceptions import NotFittedError, ValidationError
from repro.ml.base import BaseEstimator, check_is_fitted, clone
from repro.ml.class_weight import compute_class_weight, compute_sample_weight
from repro.ml.encoding import LabelEncoder
from repro.ml.tree import DecisionTreeClassifier


class _Toy(BaseEstimator):
    def __init__(self, alpha=1.0, beta="x", nested=None):
        self.alpha = alpha
        self.beta = beta
        self.nested = nested


def test_get_params_reflects_constructor():
    toy = _Toy(alpha=2.5, beta="y")
    assert toy.get_params(deep=False) == {"alpha": 2.5, "beta": "y", "nested": None}


def test_set_params_and_invalid_key():
    toy = _Toy()
    toy.set_params(alpha=9)
    assert toy.alpha == 9
    with pytest.raises(ValidationError):
        toy.set_params(gamma=1)


def test_nested_params():
    toy = _Toy(nested=_Toy(alpha=5))
    params = toy.get_params()
    assert params["nested__alpha"] == 5
    toy.set_params(nested__alpha=7)
    assert toy.nested.alpha == 7


def test_clone_returns_unfitted_copy():
    tree = DecisionTreeClassifier(max_depth=4)
    tree.fit([[0.0], [1.0]], [0, 1])
    copy = clone(tree)
    assert copy.max_depth == 4
    with pytest.raises(NotFittedError):
        check_is_fitted(copy, "classes_")
    with pytest.raises(ValidationError):
        clone("not an estimator")


def test_repr_contains_params():
    assert "alpha=3" in repr(_Toy(alpha=3))


# ------------------------------------------------------------------ encoding
def test_label_encoder_roundtrip():
    encoder = LabelEncoder()
    y = ["banana", "apple", "cherry", "apple"]
    encoded = encoder.fit_transform(y)
    assert encoder.classes_.tolist() == ["apple", "banana", "cherry"]
    assert encoded.tolist() == [1, 0, 2, 0]
    assert encoder.inverse_transform(encoded).tolist() == y


def test_label_encoder_rejects_unseen_labels():
    encoder = LabelEncoder().fit(["a", "b"])
    with pytest.raises(ValidationError):
        encoder.transform(["c"])
    with pytest.raises(ValidationError):
        encoder.inverse_transform([5])


def test_label_encoder_not_fitted():
    with pytest.raises(NotFittedError):
        LabelEncoder().transform(["a"])


def test_label_encoder_integer_labels():
    encoder = LabelEncoder()
    encoded = encoder.fit_transform([-1, 10, 5, -1])
    assert encoder.classes_.tolist() == [-1, 5, 10]
    assert encoded.tolist() == [0, 2, 1, 0]


# -------------------------------------------------------------- class weights
def test_balanced_class_weights_inverse_to_frequency():
    y = np.array(["a"] * 80 + ["b"] * 20)
    weights = compute_class_weight("balanced", np.array(["a", "b"]), y)
    # n_samples / (n_classes * count): 100/(2*80)=0.625, 100/(2*20)=2.5
    assert weights.tolist() == pytest.approx([0.625, 2.5])
    # Total weight mass is equal per class.
    assert weights[0] * 80 == pytest.approx(weights[1] * 20)


def test_none_and_dict_class_weights():
    classes = np.array(["a", "b"])
    y = np.array(["a", "b", "b"])
    assert compute_class_weight(None, classes, y).tolist() == [1.0, 1.0]
    weights = compute_class_weight({"b": 3.0}, classes, y)
    assert weights.tolist() == [1.0, 3.0]
    with pytest.raises(ValidationError):
        compute_class_weight("invalid-mode", classes, y)


def test_balanced_requires_samples_for_every_class():
    with pytest.raises(ValidationError):
        compute_class_weight("balanced", np.array(["a", "b"]), np.array(["a", "a"]))


def test_compute_sample_weight_expands_per_sample():
    y = np.array(["a", "a", "b"])
    weights = compute_sample_weight("balanced", y)
    assert weights.shape == (3,)
    assert weights[0] == weights[1]
    assert weights[2] > weights[0]
