"""Shared fixtures.

Corpus generation and feature extraction are the slowest parts of the
test suite, so they run once per session at a tiny scale and are shared
by all tests that need realistic samples.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.binfmt.structs import SymbolSpec
from repro.binfmt.writer import build_executable
from repro.config import default_config
from repro.corpus.builder import CorpusBuilder
from repro.corpus.catalog import ApplicationCatalog, ApplicationClassSpec
from repro.features.pipeline import FeatureExtractionPipeline


@pytest.fixture(scope="session")
def tiny_catalog() -> ApplicationCatalog:
    """A hand-rolled catalogue of 11 classes (3 flagged paper-unknown).

    Enough known classes are needed for the confidence-threshold
    rejection to behave the way it does at paper scale: with very few
    known classes every tree funnels dissimilar samples into the same
    leaf and the forest stays (wrongly) confident.
    """

    return ApplicationCatalog([
        ApplicationClassSpec(name="AlphaFold", domain="structural",
                             paper_test_support=6, libraries=("blas", "cpp_runtime")),
        ApplicationClassSpec(name="VelvetLike", domain="genomics",
                             paper_test_support=4,
                             executables=("velh", "velg"),
                             versions=("1.0-GCC-10.3.0", "1.1-foss-2021a", "2.0-intel-2020a")),
        ApplicationClassSpec(name="GromacsLike", domain="chemistry",
                             paper_test_support=5, libraries=("fftw", "mpi")),
        ApplicationClassSpec(name="BowtieLike", domain="genomics",
                             paper_test_support=5, libraries=("zlib",)),
        ApplicationClassSpec(name="LammpsLike", domain="physics",
                             paper_test_support=6, libraries=("mpi", "fftw")),
        ApplicationClassSpec(name="FoamLike", domain="physics",
                             paper_test_support=4, libraries=("mpi", "cpp_runtime")),
        ApplicationClassSpec(name="TrinityLike", domain="genomics",
                             paper_test_support=5, libraries=("cpp_runtime", "zlib")),
        ApplicationClassSpec(name="MiniTool", domain="math",
                             paper_test_support=3),
        # The held-out classes reuse names from the paper's Table 3 so
        # that split mode="paper" works against this catalogue too.
        ApplicationClassSpec(name="SAMtools", domain="genomics",
                             paper_total_samples=8, paper_unknown=True,
                             libraries=("htslib", "zlib")),
        ApplicationClassSpec(name="QuantumESPRESSO", domain="chemistry",
                             paper_total_samples=6, paper_unknown=True,
                             libraries=("blas", "fftw")),
        ApplicationClassSpec(name="BLAST", domain="genomics",
                             paper_total_samples=6, paper_unknown=True,
                             libraries=("cpp_runtime", "zlib")),
    ])


@pytest.fixture(scope="session")
def small_config():
    """Small-scale configuration with a fixed seed."""

    return default_config("small", seed=1234)


@pytest.fixture(scope="session")
def tiny_builder(tiny_catalog, small_config) -> CorpusBuilder:
    return CorpusBuilder(catalog=tiny_catalog, config=small_config)


@pytest.fixture(scope="session")
def tiny_samples(tiny_builder):
    """In-memory generated samples for the tiny catalogue."""

    return tiny_builder.build_samples()


@pytest.fixture(scope="session")
def tiny_features(tiny_samples):
    """Extracted fuzzy-hash features for the tiny corpus."""

    return FeatureExtractionPipeline().extract_generated(tiny_samples)


@pytest.fixture(scope="session")
def tiny_labels(tiny_samples):
    return [s.class_name for s in tiny_samples]


@pytest.fixture()
def rng():
    return np.random.default_rng(20241127)


@pytest.fixture()
def sample_elf() -> bytes:
    """One synthetic ELF executable with known symbols and strings."""

    code = random.Random(99).randbytes(4096)
    symbols = [SymbolSpec(f"demo_func_{i:02d}") for i in range(25)]
    symbols.append(SymbolSpec("demo_table", kind="object"))
    symbols.append(SymbolSpec("internal_helper", kind="local"))
    return build_executable(
        code=code,
        strings=["Demo application v1.2", "usage: demo [options]",
                 "error: cannot open file '%s'"],
        symbols=symbols,
        comment="GCC: (GNU) 11.2.0",
    )


@pytest.fixture(scope="session")
def disk_tree(tmp_path_factory, tiny_builder):
    """A small on-disk software tree plus its dataset."""

    root = tmp_path_factory.mktemp("software-tree")
    dataset = tiny_builder.materialize_tree(root)
    return root, dataset
