"""Tests for the typed "incomparable" comparison outcome.

A zero SSDeep score hides two different facts: *dissimilar* versus
*cannot be scored at all*.  :func:`compare_digests_detailed` types the
second case with a reason and feeds process-wide counters that the
serving tier surfaces under ``GET /metrics``.
"""

import pytest

from repro.distance.scoring import (COMPARABLE, INCOMPARABLE_BLOCK_SIZE,
                                    INCOMPARABLE_EMPTY,
                                    INCOMPARABLE_REASONS,
                                    INCOMPARABLE_SHORT_SIGNATURE)
from repro.hashing.compare import (DigestComparison, compare_digests,
                                   compare_digests_detailed,
                                   incomparable_counts,
                                   reset_incomparable_counts)
from repro.hashing.ssdeep import fuzzy_hash


@pytest.fixture(autouse=True)
def _clean_counters():
    reset_incomparable_counts()
    yield
    reset_incomparable_counts()


def test_block_size_mismatch_is_typed():
    outcome = compare_digests_detailed("3:abcdefgh:abcd", "192:abcdefgh:abcd")
    assert outcome == DigestComparison(0, False, INCOMPARABLE_BLOCK_SIZE)
    assert incomparable_counts()[INCOMPARABLE_BLOCK_SIZE] == 1


def test_empty_digest_is_typed():
    outcome = compare_digests_detailed("3::", "3:abcdefgh:abcd")
    assert outcome.comparable is False
    assert outcome.reason == INCOMPARABLE_EMPTY
    assert incomparable_counts()[INCOMPARABLE_EMPTY] == 1


def test_short_signatures_are_typed():
    # Both sides shorter than the 7-gram window and not identical: the
    # pair can never score above zero no matter the content.
    outcome = compare_digests_detailed("3:abc:ab", "3:abd:ac")
    assert outcome == DigestComparison(0, False,
                                       INCOMPARABLE_SHORT_SIGNATURE)
    assert incomparable_counts()[INCOMPARABLE_SHORT_SIGNATURE] == 1


def test_identical_short_signatures_stay_comparable():
    outcome = compare_digests_detailed("3:abc:ab", "3:abc:ab")
    assert outcome.score == 100
    assert outcome.comparable is True
    assert outcome.reason == COMPARABLE
    assert not any(incomparable_counts().values())


def test_genuine_zero_is_comparable():
    # Same block size, both signatures past the 7-gram window, but no
    # shared 7-gram: a genuine "dissimilar" verdict, not incomparable.
    outcome = compare_digests_detailed("3:abcdefghijk:abcdefgh",
                                       "3:ABCDEFGHIJK:ABCDEFGH")
    assert outcome == DigestComparison(0, True, COMPARABLE)
    assert not any(incomparable_counts().values())


def test_detailed_score_matches_plain_score():
    blobs = [b"x" * 100, b"hello world " * 50, bytes(range(256)) * 8, b""]
    digests = [fuzzy_hash(b) for b in blobs]
    for d1 in digests:
        for d2 in digests:
            assert compare_digests_detailed(d1, d2).score == \
                compare_digests(d1, d2)


def test_counters_reset_and_cover_every_reason():
    counts = incomparable_counts()
    assert set(counts) == set(INCOMPARABLE_REASONS)
    assert all(v == 0 for v in counts.values())
    compare_digests("3:abcdefgh:abcd", "192:abcdefgh:abcd")
    assert incomparable_counts()[INCOMPARABLE_BLOCK_SIZE] == 1
    reset_incomparable_counts()
    assert all(v == 0 for v in incomparable_counts().values())


def test_comparison_dataclass_is_frozen():
    outcome = compare_digests_detailed("3:abcdefgh:abcd", "3:abcdefgh:abcd")
    with pytest.raises(AttributeError):
        outcome.score = 5
