"""Tests for the classification metrics."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.ml.metrics import (
    accuracy_score,
    classification_report,
    confusion_matrix,
    f1_score,
    precision_recall_fscore_support,
    precision_score,
    recall_score,
)


@pytest.fixture()
def simple_case():
    y_true = ["a", "a", "a", "b", "b", "c"]
    y_pred = ["a", "a", "b", "b", "b", "a"]
    return y_true, y_pred


def test_accuracy(simple_case):
    y_true, y_pred = simple_case
    assert accuracy_score(y_true, y_pred) == pytest.approx(4 / 6)


def test_confusion_matrix(simple_case):
    y_true, y_pred = simple_case
    matrix = confusion_matrix(y_true, y_pred)
    # labels sorted: a, b, c
    assert matrix.tolist() == [[2, 1, 0], [0, 2, 0], [1, 0, 0]]
    assert matrix.sum() == len(y_true)


def test_per_class_precision_recall(simple_case):
    y_true, y_pred = simple_case
    precision, recall, f1, support = precision_recall_fscore_support(
        y_true, y_pred, average=None)
    # class 'a': tp=2 fp=1 fn=1 -> p=2/3, r=2/3
    assert precision[0] == pytest.approx(2 / 3)
    assert recall[0] == pytest.approx(2 / 3)
    # class 'b': tp=2 fp=1 fn=0 -> p=2/3, r=1
    assert precision[1] == pytest.approx(2 / 3)
    assert recall[1] == pytest.approx(1.0)
    # class 'c': never predicted -> p=0, r=0 (zero_division=0)
    assert precision[2] == 0.0 and recall[2] == 0.0
    assert support.tolist() == [3, 2, 1]


def test_micro_average_equals_accuracy(simple_case):
    y_true, y_pred = simple_case
    micro_p, micro_r, micro_f1, _ = precision_recall_fscore_support(
        y_true, y_pred, average="micro")
    assert micro_p == micro_r == micro_f1 == pytest.approx(accuracy_score(y_true, y_pred))


def test_macro_is_unweighted_mean(simple_case):
    y_true, y_pred = simple_case
    precision, recall, f1, _ = precision_recall_fscore_support(y_true, y_pred,
                                                               average=None)
    macro_p, macro_r, macro_f1, _ = precision_recall_fscore_support(
        y_true, y_pred, average="macro")
    assert macro_p == pytest.approx(precision.mean())
    assert macro_f1 == pytest.approx(f1.mean())


def test_weighted_average_uses_support(simple_case):
    y_true, y_pred = simple_case
    precision, _, f1, support = precision_recall_fscore_support(y_true, y_pred,
                                                                average=None)
    weighted_p, _, weighted_f1, _ = precision_recall_fscore_support(
        y_true, y_pred, average="weighted")
    weights = support / support.sum()
    assert weighted_p == pytest.approx(float(np.sum(precision * weights)))
    assert weighted_f1 == pytest.approx(float(np.sum(f1 * weights)))


def test_perfect_predictions():
    y = ["x", "y", "z", "x"]
    assert f1_score(y, y, average="macro") == 1.0
    assert precision_score(y, y, average="micro") == 1.0
    assert recall_score(y, y, average="weighted") == 1.0


def test_f1_is_harmonic_mean():
    # Single class, p = 0.5, r = 1.0 -> f1 = 2*0.5*1/(1.5) = 2/3
    y_true = ["a", "b"]
    y_pred = ["a", "a"]
    precision, recall, f1, _ = precision_recall_fscore_support(
        y_true, y_pred, labels=["a"], average=None)
    assert f1[0] == pytest.approx(2 * 0.5 * 1.0 / 1.5)


def test_integer_labels_including_unknown_minus_one():
    y_true = [-1, -1, 5, 5, 7]
    y_pred = [-1, 5, 5, 5, -1]
    report = classification_report(y_true, y_pred)
    labels = [row.label for row in report.per_class]
    assert -1 in labels
    assert report.micro[3] == 5


def test_classification_report_structure(simple_case):
    y_true, y_pred = simple_case
    report = classification_report(y_true, y_pred)
    assert len(report.per_class) == 3
    assert report.micro_f1 == pytest.approx(accuracy_score(y_true, y_pred))
    text = report.as_text()
    assert "macro avg" in text and "weighted avg" in text
    as_dict = report.as_dict()
    assert as_dict["a"]["support"] == 3
    assert "micro avg" in as_dict


def test_classification_report_output_modes(simple_case):
    y_true, y_pred = simple_case
    assert isinstance(classification_report(y_true, y_pred, output="text"), str)
    assert isinstance(classification_report(y_true, y_pred, output="dict"), dict)
    with pytest.raises(ValidationError):
        classification_report(y_true, y_pred, output="csv")


def test_invalid_average_rejected(simple_case):
    y_true, y_pred = simple_case
    with pytest.raises(ValidationError):
        precision_recall_fscore_support(y_true, y_pred, average="samples")


def test_length_mismatch_rejected():
    with pytest.raises(ValidationError):
        accuracy_score([1, 2], [1])


def test_empty_input_rejected():
    with pytest.raises(ValidationError):
        accuracy_score([], [])


def test_explicit_labels_control_report_rows(simple_case):
    y_true, y_pred = simple_case
    report = classification_report(y_true, y_pred, labels=["a", "b", "c", "d"])
    assert len(report.per_class) == 4
    d_row = [row for row in report.per_class if row.label == "d"][0]
    assert d_row.support == 0 and d_row.f1 == 0.0
