"""Tier-1 perf smoke for model-artifact cold starts.

Runs ``benchmarks/bench_model_load.py`` at reduced cost so a regression
that erodes the load-don't-retrain advantage — or breaks the bit-exact
artifact round-trip — fails the default test run, not just a
manually-invoked benchmark.  The acceptance-floor configuration is
marked ``slow`` (``pytest -m slow`` opts in).
"""

import importlib.util
import sys
from pathlib import Path

import pytest

_BENCH_PATH = Path(__file__).resolve().parents[1] / "benchmarks" / \
    "bench_model_load.py"


@pytest.fixture(scope="module")
def bench():
    spec = importlib.util.spec_from_file_location("bench_model_load",
                                                  _BENCH_PATH)
    module = importlib.util.module_from_spec(spec)
    sys.modules.setdefault("bench_model_load", module)
    spec.loader.exec_module(module)
    return module


def test_quick_benchmark_speedup_and_decision_identity(bench):
    result = bench.run(n_estimators=40, repeats=2)
    assert result.decisions_match, \
        "loaded-model decisions diverged from the retrain path"
    # The full benchmark enforces the >=10x acceptance floor; the smoke
    # run uses a smaller forest (cheaper retrain numerator) and a
    # conservative bar so a loaded CI machine cannot flake it.
    assert result.speedup >= 2.5, \
        f"artifact cold start only {result.speedup:.1f}x faster than retraining"


def test_benchmark_cli_mode(bench, capsys, tmp_path, monkeypatch):
    monkeypatch.setattr(bench, "OUTPUT_DIR", tmp_path)
    code = bench.main(["--estimators", "40", "--repeats", "2",
                       "--min-speedup", "3"])
    out = capsys.readouterr().out
    assert code == 0
    assert "cold-start speedup" in out
    assert (tmp_path / "bench_model_load.txt").is_file()


@pytest.mark.slow
def test_full_benchmark_meets_acceptance_floor(bench):
    """The acceptance-criterion configuration: 100 trees, >=10x."""

    result = bench.run(n_estimators=100)
    assert result.decisions_match
    assert result.speedup >= 10.0
