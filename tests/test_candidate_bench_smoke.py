"""Tier-1 smoke for the candidate-generation benchmark.

Runs ``benchmarks/bench_candidate_gen.py`` at a small scale so a
regression that breaks the array-postings/legacy result identity fails
the default test run.  The speedup floors are vectorisation (not
fan-out), so they hold on a single core — but shared CI machines are
noisy and the quick corpus is small, so tier 1 only asserts a
conservative floor on machines with at least two CPUs; the full ≥3x
candidate-generation / ≥1.5x top_k acceptance floors are the
benchmark's own defaults (``pytest -m slow`` opts in).
"""

import importlib.util
import os
import sys
from pathlib import Path

import pytest

_BENCH_PATH = Path(__file__).resolve().parents[1] / "benchmarks" / \
    "bench_candidate_gen.py"

_MULTICORE = (os.cpu_count() or 1) >= 2


@pytest.fixture(scope="module")
def bench():
    spec = importlib.util.spec_from_file_location("bench_candidate_gen",
                                                  _BENCH_PATH)
    module = importlib.util.module_from_spec(spec)
    sys.modules.setdefault("bench_candidate_gen", module)
    spec.loader.exec_module(module)
    return module


def test_quick_benchmark_results_are_bit_identical(bench):
    result = bench.run(500, 6)
    assert result.results_match, \
        "array-postings results diverged from the legacy reference"
    if _MULTICORE:
        # The full benchmark demonstrates >=3x; the smoke floor is kept
        # conservative so a loaded CI machine cannot flake it.
        assert result.collect_speedup >= 1.2, \
            f"candidate generation only {result.collect_speedup:.1f}x faster"


def test_benchmark_cli_quick_mode(bench, capsys, tmp_path, monkeypatch):
    monkeypatch.setattr(bench, "OUTPUT_DIR", tmp_path)
    code = bench.main(["--quick", "--corpus", "300", "--queries", "4",
                       "--min-candidate-speedup", "0",
                       "--min-topk-speedup", "0"])
    out = capsys.readouterr().out
    assert code == 0
    assert "bit-identical" in out
    assert (tmp_path / "bench_candidate_gen.txt").is_file()
    assert (tmp_path / "BENCH_candidate_gen.json").is_file()


def test_benchmark_trajectory_records_ratios(bench, tmp_path, monkeypatch):
    import json

    monkeypatch.setattr(bench, "OUTPUT_DIR", tmp_path)
    code = bench.main(["--quick", "--corpus", "300", "--queries", "3",
                       "--min-candidate-speedup", "0",
                       "--min-topk-speedup", "0"])
    assert code == 0
    trajectory = json.loads(
        (tmp_path / "BENCH_candidate_gen.json").read_text(encoding="utf-8"))
    for key in ("collect_speedup", "topk_speedup", "peak_memory_ratio",
                "resident_memory_ratio", "results_match"):
        assert key in trajectory
    assert trajectory["results_match"] is True


@pytest.mark.slow
def test_full_benchmark_meets_acceptance_floors(bench):
    """The acceptance configuration: >=3x candidate gen, >=1.5x top_k,
    bit-identical results, and a peak-memory reduction."""

    result = bench.run(8000, 30)
    assert result.results_match
    assert result.collect_speedup >= 3.0
    assert result.topk_speedup >= 1.5
    assert result.peak_memory_ratio > 1.0
    assert result.resident_memory_ratio > 1.0
