"""Unit and property tests for the vector digest (second hash family).

The properties pinned down here are the ones the family's candidate
generation relies on:

* **determinism** — equal inputs give byte-identical digests (and str
  inputs hash as their UTF-8 encoding);
* **locality** — a single-byte edit moves at most 48 of the 256 body
  bits (empirically it moves 2–16; the bound leaves headroom for
  quartile-boundary ripple);
* **divergence** — shuffling the bytes of a large input (same byte
  histogram, different local structure) moves the digest far, because
  the buckets are keyed by 3-byte *windows*, not single bytes;
* **format** — ``vr1:`` + 68 hex characters, 72 total, lossless
  parse/format round-trip.
"""

import random

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.exceptions import DigestFormatError
from repro.hashing.vector import (VECTOR_BODY_BITS, VECTOR_DIGEST_LENGTH,
                                  VECTOR_PREFIX, VectorDigest, VectorHasher,
                                  compare_vector_digests, digests_to_matrix,
                                  hamming_distance, is_vector_digest,
                                  is_vector_feature_type, packed_hamming,
                                  score_from_distance, vector_hash)

_settings = settings(max_examples=50, deadline=None,
                     suppress_health_check=[HealthCheck.too_slow])

_hasher = VectorHasher()


# ---------------------------------------------------------------- format
def test_digest_string_shape():
    digest = vector_hash(b"some executable bytes " * 40)
    assert digest.startswith(VECTOR_PREFIX)
    assert len(digest) == VECTOR_DIGEST_LENGTH == 72
    assert is_vector_digest(digest)
    assert not is_vector_digest("3:abc:def")
    assert is_vector_feature_type("vector-file")
    assert not is_vector_feature_type("ssdeep-file")


def test_parse_round_trip():
    digest = _hasher.hash(b"round trip me " * 100)
    parsed = VectorDigest.parse(str(digest))
    assert parsed == digest
    assert str(parsed) == str(digest)


@pytest.mark.parametrize("bad", [
    "", "vr1:", "vr1:zz", "3:abc:def", "vr1:" + "g" * 68,
    "vr2:" + "0" * 68, "vr1:" + "0" * 67,
])
def test_parse_rejects_malformed(bad):
    with pytest.raises(DigestFormatError):
        VectorDigest.parse(bad)


def test_tiny_inputs_are_deterministic():
    for data in (b"", b"a", b"ab"):
        assert str(_hasher.hash(data)) == str(_hasher.hash(data))
        assert len(str(_hasher.hash(data))) == VECTOR_DIGEST_LENGTH


# --------------------------------------------------------- determinism
@_settings
@given(st.binary(min_size=0, max_size=4096))
def test_hash_is_deterministic(data):
    assert str(_hasher.hash(data)) == str(_hasher.hash(data))
    assert str(VectorHasher().hash(data)) == str(_hasher.hash(data))


@_settings
@given(st.text(max_size=512))
def test_str_inputs_hash_as_utf8(text):
    assert str(_hasher.hash(text)) == \
        str(_hasher.hash(text.encode("utf-8", errors="replace")))


# ------------------------------------------------------------- locality
@_settings
@given(st.binary(min_size=16, max_size=4096),
       st.integers(min_value=0, max_value=2 ** 32 - 1))
def test_single_byte_edit_moves_at_most_48_bits(data, seed):
    rnd = random.Random(seed)
    edited = bytearray(data)
    position = rnd.randrange(len(edited))
    edited[position] = (edited[position] + rnd.randrange(1, 256)) % 256
    distance = hamming_distance(_hasher.hash(data),
                                _hasher.hash(bytes(edited)))
    assert 0 <= distance <= 48


@_settings
@given(st.integers(min_value=0, max_value=2 ** 32 - 1))
def test_shuffle_divergence_on_large_inputs(seed):
    rnd = random.Random(seed)
    data = bytes(rnd.randbytes(512 + rnd.randrange(2048)))
    shuffled = bytearray(data)
    rnd.shuffle(shuffled)
    if bytes(shuffled) == data:      # astronomically unlikely, but exact
        return
    distance = hamming_distance(_hasher.hash(data),
                                _hasher.hash(bytes(shuffled)))
    # Same byte histogram, different 3-byte windows: the digest must
    # treat the shuffle as a different input, far beyond edit noise.
    assert distance > 32


# -------------------------------------------------------------- scoring
def test_identical_digests_score_100():
    digest = vector_hash(b"identity " * 64)
    assert compare_vector_digests(digest, digest) == 100
    assert hamming_distance(digest, digest) == 0


def test_score_from_distance_scale():
    # The scale saturates at half the body bits: 128 differing bits is
    # already indistinguishable from unrelated (random digests sit near
    # 128), so scores hit 0 there rather than at the 256-bit maximum.
    assert score_from_distance(0) == 100
    assert score_from_distance(64) == 50
    assert score_from_distance(128) == 0
    assert score_from_distance(VECTOR_BODY_BITS) == 0
    scores = score_from_distance(np.array([0, 64, 128, 256]))
    assert list(scores) == [100, 50, 0, 0]


@_settings
@given(st.binary(min_size=3, max_size=1024),
       st.binary(min_size=3, max_size=1024))
def test_hamming_is_symmetric_and_bounded(a, b):
    d1, d2 = _hasher.hash(a), _hasher.hash(b)
    distance = hamming_distance(d1, d2)
    assert distance == hamming_distance(d2, d1)
    assert 0 <= distance <= VECTOR_BODY_BITS
    assert 0 <= compare_vector_digests(d1, d2) <= 100


# --------------------------------------------------------- packed sweep
@_settings
@given(st.lists(st.binary(min_size=3, max_size=512), min_size=1,
                max_size=12),
       st.binary(min_size=3, max_size=512))
def test_packed_hamming_matches_scalar(blobs, query_blob):
    digests = [_hasher.hash(blob) for blob in blobs]
    query = _hasher.hash(query_blob)
    matrix = digests_to_matrix(digests)
    packed = packed_hamming(matrix, query.words)
    scalar = [hamming_distance(d, query) for d in digests]
    assert packed.tolist() == scalar
