"""Tests for size-adaptive CTPH parameters (default-off knob).

The bands in :data:`~repro.hashing.ssdeep.ADAPTIVE_SIZE_BANDS` keep the
reference parameters for small inputs and raise the signature budget
(and block floor) for large ones.  The critical invariants:

* ``adaptive=False`` (the default) is byte-identical to the reference
  hasher for every input — the knob cannot perturb existing corpora;
* ``adaptive=True`` is *also* byte-identical for inputs inside the
  first band, because that band IS the reference configuration;
* digests from different bands are not score-comparable, which is why
  the knob defaults to off (the README's comparability rule).
"""

import random

import pytest

from repro.hashing.ssdeep import (ADAPTIVE_SIZE_BANDS, MIN_BLOCKSIZE,
                                  SPAMSUM_LENGTH, FuzzyHasher)

_reference = FuzzyHasher()
_adaptive = FuzzyHasher(adaptive=True)


def test_bands_start_with_the_reference_configuration():
    bound, min_bs, spamsum = ADAPTIVE_SIZE_BANDS[0]
    assert min_bs == MIN_BLOCKSIZE
    assert spamsum == SPAMSUM_LENGTH
    assert bound is not None
    # Bands are ordered by bound and terminated by a None catch-all.
    assert ADAPTIVE_SIZE_BANDS[-1][0] is None
    bounds = [b for b, _, _ in ADAPTIVE_SIZE_BANDS if b is not None]
    assert bounds == sorted(bounds)


def test_adaptive_defaults_off():
    assert FuzzyHasher().adaptive is False


def test_small_inputs_hash_identically_with_adaptive_on():
    rnd = random.Random(41)
    first_bound = ADAPTIVE_SIZE_BANDS[0][0]
    for size in (0, 1, 100, 4096, first_bound - 1):
        data = rnd.randbytes(size)
        assert str(_adaptive.hash(data)) == str(_reference.hash(data))


def test_large_inputs_get_longer_signatures():
    rnd = random.Random(42)
    data = rnd.randbytes(2 * 1024 * 1024 + 17)   # last band
    plain = _reference.hash(data)
    adaptive = _adaptive.hash(data)
    assert len(adaptive.chunk) > len(plain.chunk)
    # The raised signature budget lowers the chosen block size, so each
    # digest character summarises fewer bytes (more resolution).
    assert adaptive.block_size < plain.block_size


def test_band_selection_uses_input_size():
    h = FuzzyHasher(adaptive=True)
    for length, expected in ((0, ADAPTIVE_SIZE_BANDS[0]),
                             (16 * 1024 - 1, ADAPTIVE_SIZE_BANDS[0]),
                             (16 * 1024, ADAPTIVE_SIZE_BANDS[1]),
                             (1024 * 1024 - 1, ADAPTIVE_SIZE_BANDS[1]),
                             (1024 * 1024, ADAPTIVE_SIZE_BANDS[2]),
                             (1 << 30, ADAPTIVE_SIZE_BANDS[2])):
        assert h._params_for(length) == expected[1:]


def test_non_adaptive_ignores_bands():
    h = FuzzyHasher(min_blocksize=6, spamsum_length=128)
    assert h._params_for(10) == (6, 128)
    assert h._params_for(1 << 30) == (6, 128)


@pytest.mark.parametrize("kwargs", [
    {"min_blocksize": 0},
    {"spamsum_length": 1},
    {"spamsum_length": 63},
])
def test_invalid_parameters_rejected(kwargs):
    from repro.exceptions import HashingError

    with pytest.raises(HashingError):
        FuzzyHasher(**kwargs)
