"""Tests for ``repro.logging_utils``: idempotent handler attachment and
the thread-aware re-configuration used by the serving tier."""

import io
import logging

from repro.logging_utils import THREADED_FORMAT, configure_logging, get_logger


def _detach(stream):
    logger = logging.getLogger("repro")
    for handler in list(logger.handlers):
        if getattr(handler, "stream", None) is stream:
            logger.removeHandler(handler)


def test_configure_logging_is_idempotent_per_stream():
    stream = io.StringIO()
    try:
        logger = configure_logging("INFO", stream=stream)
        configure_logging("INFO", stream=stream)
        matching = [h for h in logger.handlers
                    if getattr(h, "stream", None) is stream]
        assert len(matching) == 1
    finally:
        _detach(stream)


def test_reconfigure_updates_the_formatter_in_place():
    # The serve command's path: --verbose attaches the default format
    # first, then the server re-configures with thread names.  The
    # existing handler's formatter must actually change.
    stream = io.StringIO()
    try:
        configure_logging("INFO", stream=stream)
        configure_logging("INFO", stream=stream, include_thread=True)
        get_logger("serving.test").info("hello")
        line = stream.getvalue()
        assert "[MainThread]" in line
        matching = [h for h in logging.getLogger("repro").handlers
                    if getattr(h, "stream", None) is stream]
        assert len(matching) == 1                  # still no duplicates
        assert matching[0].formatter._fmt == THREADED_FORMAT
    finally:
        _detach(stream)


def test_get_logger_nests_under_the_package_namespace():
    assert get_logger("x.y").name == "repro.x.y"
    assert get_logger("repro.z").name == "repro.z"
    assert get_logger(None).name == "repro"
