"""Tests for the SSDeep rolling hash."""

import random

import numpy as np
import pytest

from repro.hashing.rolling import ROLLING_WINDOW, RollingHash, rolling_hash_values


def test_window_constant_is_seven():
    assert ROLLING_WINDOW == 7


def test_empty_input_gives_empty_array():
    assert rolling_hash_values(b"").size == 0


def test_scalar_and_vectorised_agree_on_random_data():
    data = random.Random(0).randbytes(5000)
    scalar = RollingHash()
    expected = [scalar.update(byte) for byte in data]
    actual = rolling_hash_values(data)
    assert expected == [int(v) for v in actual]


def test_scalar_and_vectorised_agree_on_structured_data():
    # Repeated patterns and zero runs exercise the window wrap-around.
    data = (b"\x00" * 50) + (b"ABCDEFG" * 30) + bytes(range(256)) * 3 + b"\xff" * 20
    scalar = RollingHash()
    expected = [scalar.update(byte) for byte in data]
    actual = rolling_hash_values(data)
    assert expected == [int(v) for v in actual]


def test_value_depends_only_on_last_seven_bytes():
    # Two different prefixes followed by the same 7 bytes must give the
    # same rolling value at the end.
    suffix = b"HPCSITE"
    a = RollingHash()
    a.update_bytes(b"completely different prefix 123" + suffix)
    b = RollingHash()
    b.update_bytes(b"x" + suffix)
    assert a.value == b.value


def test_all_zero_window_gives_zero_value():
    hasher = RollingHash()
    hasher.update_bytes(b"something")
    hasher.update_bytes(b"\x00" * ROLLING_WINDOW)
    assert hasher.value == 0


def test_reset_restores_initial_state():
    hasher = RollingHash()
    hasher.update_bytes(b"abcdefgh")
    hasher.reset()
    assert hasher.value == 0
    fresh = RollingHash()
    fresh.update(65)
    hasher.update(65)
    assert hasher.value == fresh.value


def test_values_fit_in_32_bits():
    data = random.Random(3).randbytes(2000)
    values = rolling_hash_values(data)
    assert values.dtype == np.uint32
    assert int(values.max()) <= 0xFFFFFFFF


def test_accepts_numpy_input():
    data = np.frombuffer(random.Random(1).randbytes(100), dtype=np.uint8)
    assert rolling_hash_values(data).shape == (100,)
