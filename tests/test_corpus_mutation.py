"""Tests for the version mutation model."""

import pytest

from repro.corpus.appmodel import ApplicationModel
from repro.corpus.catalog import ApplicationClassSpec
from repro.corpus.mutation import MutationConfig, VersionMutator


@pytest.fixture()
def model():
    spec = ApplicationClassSpec(name="MutApp", domain="chemistry",
                                paper_test_support=8, libraries=("blas",))
    return ApplicationModel(spec, corpus_seed=11)


@pytest.fixture()
def mutator(model):
    return VersionMutator(model)


def test_version_names_unique_and_sufficient(mutator):
    names = mutator.version_names(6)
    assert len(names) == 6
    assert len(set(names)) == 6
    # EasyBuild style: "<number>-<toolchain>"
    assert all("-" in name for name in names)


def test_explicit_catalogue_versions_used_first():
    spec = ApplicationClassSpec(name="Pinned", paper_test_support=4,
                                versions=("1.0-GCC-10.3.0", "2.0-foss-2021a",
                                          "3.0-intel-2020a"))
    mutator = VersionMutator(ApplicationModel(spec, corpus_seed=1))
    assert mutator.version_names(3) == list(spec.versions)
    assert mutator.version_names(2) == list(spec.versions[:2])


def test_materialize_is_deterministic(model, mutator):
    exe = model.executable_model("mutapp_main", 0)
    a = mutator.materialize(exe, "1.0-GCC-10.3.0", 0)
    b = mutator.materialize(exe, "1.0-GCC-10.3.0", 0)
    assert a.functions == b.functions
    assert a.code == b.code
    assert a.strings == b.strings


def test_adjacent_versions_share_most_symbols(model, mutator):
    exe = model.executable_model("mutapp_main", 0)
    v0 = mutator.materialize(exe, "1.0-GCC-10.3.0", 0)
    v1 = mutator.materialize(exe, "1.1-GCC-11.2.0", 1)
    shared = set(v0.functions) & set(v1.functions)
    assert len(shared) >= 0.85 * len(v0.functions)
    assert v0.functions != v1.functions  # but not identical


def test_symbol_drift_accumulates_with_version_distance(model, mutator):
    exe = model.executable_model("mutapp_main", 0)
    v0 = set(mutator.materialize(exe, "1.0", 0).functions)
    v1 = set(mutator.materialize(exe, "1.1", 1).functions)
    v5 = set(mutator.materialize(exe, "5.0", 5).functions)
    drift_near = len(v0 ^ v1)
    drift_far = len(v0 ^ v5)
    assert drift_far >= drift_near


def test_code_changes_partially_between_versions(model, mutator):
    exe = model.executable_model("mutapp_main", 0)
    code0 = mutator.materialize(exe, "1.0", 0).code
    code1 = mutator.materialize(exe, "1.1", 1).code
    assert code0 != code1
    assert len(code0) == len(code1)  # same block layout
    # A decent fraction of blocks is preserved between adjacent versions.
    same = sum(a == b for a, b in zip(code0, code1))
    assert same / len(code0) > 0.3


def test_strings_substitute_version_placeholders(model, mutator):
    exe = model.executable_model("mutapp_main", 0)
    sample = mutator.materialize(exe, "4.2-foss-2021a", 2)
    joined = "\n".join(sample.strings)
    assert "4.2" in joined
    assert "{version}" not in joined
    assert "{name}" not in joined
    assert "MutApp release 4.2" in joined


def test_toolchain_comment_matches_family(model, mutator):
    exe = model.executable_model("mutapp_main", 0)
    gcc = mutator.materialize(exe, "1.0-GCC-10.3.0", 0)
    intel = mutator.materialize(exe, "2.0-iomkl-2019.01", 1)
    assert "GCC" in gcc.comment
    assert "Intel" in intel.comment


def test_drift_scaling_is_capped():
    config = MutationConfig().scaled(100.0)
    assert config.code_change_rate <= 0.95
    assert config.symbol_rename_rate <= 0.5


def test_higher_drift_changes_more_symbols():
    low_spec = ApplicationClassSpec(name="Calm", paper_test_support=6, version_drift=1.0)
    high_spec = ApplicationClassSpec(name="Calm", paper_test_support=6, version_drift=6.0)
    low_model = ApplicationModel(low_spec, corpus_seed=5)
    high_model = ApplicationModel(high_spec, corpus_seed=5)
    low_exe = low_model.executable_model("calm_main", 0)
    high_exe = high_model.executable_model("calm_main", 0)
    low = VersionMutator(low_model)
    high = VersionMutator(high_model)
    low_drift = len(set(low.materialize(low_exe, "1.0", 0).functions)
                    ^ set(low.materialize(low_exe, "1.4", 4).functions))
    high_drift = len(set(high.materialize(high_exe, "1.0", 0).functions)
                     ^ set(high.materialize(high_exe, "1.4", 4).functions))
    assert high_drift > low_drift
