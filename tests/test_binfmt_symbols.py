"""Tests for the ``nm`` equivalent (global symbol extraction)."""

import pytest

from repro.binfmt.reader import ElfReader
from repro.binfmt.structs import SymbolSpec
from repro.binfmt.symbols import extract_global_symbols, is_stripped, nm_output
from repro.binfmt.writer import build_executable
from repro.exceptions import SymbolTableError


def _blob(symbols):
    return build_executable(code=b"\x90" * 128, strings=["s"], symbols=symbols)


def test_only_defined_globals_returned():
    blob = _blob([SymbolSpec("alpha"), SymbolSpec("beta"),
                  SymbolSpec("hidden", kind="local")])
    names = [s.name for s in extract_global_symbols(blob)]
    assert names == ["alpha", "beta"]


def test_weak_symbols_count_as_global():
    blob = _blob([SymbolSpec("weak_fn", kind="weak")])
    assert [s.name for s in extract_global_symbols(blob)] == ["weak_fn"]


def test_objects_can_be_excluded():
    blob = _blob([SymbolSpec("fn"), SymbolSpec("table", kind="object")])
    all_names = [s.name for s in extract_global_symbols(blob)]
    funcs_only = [s.name for s in extract_global_symbols(blob, include_objects=False)]
    assert all_names == ["fn", "table"]
    assert funcs_only == ["fn"]


def test_nm_output_sorted_names_one_per_line():
    blob = _blob([SymbolSpec("zeta"), SymbolSpec("alpha"), SymbolSpec("midfn")])
    text = nm_output(blob)
    assert text == "alpha\nmidfn\nzeta\n"


def test_nm_output_with_addresses():
    blob = _blob([SymbolSpec("my_function")])
    text = nm_output(blob, include_addresses=True)
    line = text.strip()
    address, letter, name = line.split()
    assert len(address) == 16
    assert letter == "T"
    assert name == "my_function"


def test_nm_output_accepts_reader_instance():
    blob = _blob([SymbolSpec("fn")])
    assert nm_output(ElfReader(blob)) == nm_output(blob)


def test_nm_output_empty_for_stripped():
    blob = build_executable(code=b"\x90" * 64, strings=[], symbols=[SymbolSpec("fn")],
                            stripped=True)
    with pytest.raises(SymbolTableError):
        extract_global_symbols(blob)


def test_is_stripped_detection():
    with_symbols = _blob([SymbolSpec("fn")])
    without_symbols = build_executable(code=b"\x90" * 64, strings=[],
                                       symbols=[SymbolSpec("fn")], stripped=True)
    assert not is_stripped(with_symbols)
    assert is_stripped(without_symbols)
    assert is_stripped(b"not an elf at all")


def test_nm_letter_for_data_objects():
    blob = _blob([SymbolSpec("lookup_table", kind="object")])
    text = nm_output(blob, include_addresses=True)
    assert " D lookup_table" in text or " T lookup_table" in text
