"""Tests for the SSDeep score scaling."""

import numpy as np
import pytest

from repro.distance.scoring import (
    SPAMSUM_LENGTH,
    scale_edit_distance,
    ssdeep_score_from_distance,
)


def test_zero_distance_on_long_digests_is_100():
    score = ssdeep_score_from_distance(0, 40, 40, block_size=3072)
    assert score == 100


def test_identical_short_digests_capped_by_block_size():
    # At the minimum block size, two very short signatures cannot assert
    # strong similarity even with distance 0.
    score = ssdeep_score_from_distance(0, 4, 4, block_size=3)
    assert score <= 4  # block_size / 3 * min(len) = 4


def test_larger_distance_gives_lower_score():
    scores = [int(ssdeep_score_from_distance(d, 50, 50, block_size=1536))
              for d in (0, 10, 30, 60, 90)]
    assert scores == sorted(scores, reverse=True)


def test_score_range_is_0_to_100():
    rng = np.random.default_rng(0)
    distances = rng.integers(0, 400, size=200)
    lengths = rng.integers(1, SPAMSUM_LENGTH + 1, size=200)
    scores = ssdeep_score_from_distance(distances, lengths, lengths,
                                        block_size=6144)
    assert scores.min() >= 0
    assert scores.max() <= 100


def test_vectorised_matches_scalar():
    distances = np.array([0, 5, 20, 64])
    lengths1 = np.array([30, 40, 50, 64])
    lengths2 = np.array([32, 38, 52, 60])
    blocks = np.array([192, 192, 384, 768])
    vector = ssdeep_score_from_distance(distances, lengths1, lengths2, blocks)
    for i in range(len(distances)):
        scalar = ssdeep_score_from_distance(int(distances[i]), int(lengths1[i]),
                                            int(lengths2[i]), int(blocks[i]))
        assert vector[i] == scalar


def test_scale_edit_distance_monotone_and_bounded():
    low = scale_edit_distance(0, 30, 30)
    high = scale_edit_distance(200, 30, 30)
    assert float(low) == 100.0
    assert float(high) == 0.0
    mid = scale_edit_distance(30, 30, 30)
    assert 0.0 < float(mid) < 100.0


def test_zero_length_inputs_do_not_divide_by_zero():
    assert float(scale_edit_distance(0, 0, 0)) == 100.0
    score = ssdeep_score_from_distance(0, 0, 0, block_size=3)
    assert 0 <= int(score) <= 100
