"""Unit tests for Prometheus text exposition
(``repro.observability.promtext``) and the labeled instrument families
it renders (``repro.serving.metrics``): format 0.0.4 conventions
(``# TYPE``, cumulative ``_bucket``/``_sum``/``_count``), label
escaping, the minimal parser's validation, and family registration
semantics.
"""

import math

import pytest

from repro.exceptions import ValidationError
from repro.observability.promtext import (
    CONTENT_TYPE,
    parse_prometheus,
    render_prometheus,
)
from repro.serving.metrics import MetricsRegistry


def make_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("requests_total").inc(7)
    registry.gauge("queue_items").set(3.5)
    hist = registry.histogram("latency_seconds", buckets=(0.01, 0.1, 1.0))
    for value in (0.005, 0.05, 0.5, 5.0):
        hist.observe(value)
    family = registry.histogram("stage_latency_seconds",
                                buckets=(0.01, 0.1),
                                labels=("stage", "shard"))
    family.labels(stage="dp_scoring").observe(0.02)
    family.labels(stage="dp_scoring", shard="1").observe(0.005)
    return registry


# ----------------------------------------------------------------- render
def test_render_round_trips_through_the_parser():
    text = render_prometheus(make_registry())
    families = parse_prometheus(text)
    assert families["requests_total"]["type"] == "counter"
    assert families["queue_items"]["type"] == "gauge"
    assert families["latency_seconds"]["type"] == "histogram"
    assert families["stage_latency_seconds"]["type"] == "histogram"
    assert "version=0.0.4" in CONTENT_TYPE


def test_counter_and_gauge_samples():
    text = render_prometheus(make_registry())
    assert "# TYPE requests_total counter\nrequests_total 7\n" in text
    assert "queue_items 3.5" in text


def test_histogram_renders_cumulative_buckets_sum_and_count():
    text = render_prometheus(make_registry())
    lines = [line for line in text.splitlines()
             if line.startswith("latency_seconds")]
    assert lines == [
        'latency_seconds_bucket{le="0.01"} 1',
        'latency_seconds_bucket{le="0.1"} 2',
        'latency_seconds_bucket{le="1"} 3',
        'latency_seconds_bucket{le="+Inf"} 4',
        "latency_seconds_sum 5.555",
        "latency_seconds_count 4",
    ]


def test_labeled_family_renders_one_series_per_child():
    text = render_prometheus(make_registry())
    # Empty-valued labels (shard unset) are dropped from the line.
    assert ('stage_latency_seconds_bucket{stage="dp_scoring",le="+Inf"} 1'
            in text)
    assert ('stage_latency_seconds_bucket{stage="dp_scoring",shard="1",'
            'le="+Inf"} 1' in text)
    families = parse_prometheus(text)
    series_keys = {tuple(sorted((k, v) for k, v in labels.items()
                                if k != "le"))
                   for name, labels, _ in
                   families["stage_latency_seconds"]["samples"]}
    assert (("stage", "dp_scoring"),) in series_keys
    assert (("shard", "1"), ("stage", "dp_scoring")) in series_keys


def test_label_values_are_escaped_and_round_trip():
    registry = MetricsRegistry()
    family = registry.counter("odd_total", labels=("tag",))
    value = 'quote " backslash \\ newline \n end'
    family.labels(tag=value).inc()
    text = render_prometheus(registry)
    families = parse_prometheus(text)
    ((_, labels, sample_value),) = families["odd_total"]["samples"]
    assert labels == {"tag": value}
    assert sample_value == 1


def test_integer_values_render_bare():
    registry = MetricsRegistry()
    registry.counter("n").inc(5)
    assert "n 5\n" in render_prometheus(registry)
    assert "5.0" not in render_prometheus(registry)


# ------------------------------------------------------------------ parse
def test_parse_rejects_samples_without_a_type_line():
    with pytest.raises(ValidationError, match="no # TYPE"):
        parse_prometheus("orphan_metric 1\n")


def test_parse_rejects_malformed_type_and_unknown_kind():
    with pytest.raises(ValidationError, match="malformed TYPE"):
        parse_prometheus("# TYPE lonely\n")
    with pytest.raises(ValidationError, match="unknown metric type"):
        parse_prometheus("# TYPE x sideways\n")
    with pytest.raises(ValidationError, match="duplicate TYPE"):
        parse_prometheus("# TYPE x counter\n# TYPE x counter\nx 1\n")


def test_parse_rejects_malformed_labels_and_values():
    with pytest.raises(ValidationError, match="malformed label"):
        parse_prometheus('# TYPE x counter\nx{tag=unquoted} 1\n')
    with pytest.raises(ValidationError, match="duplicate label"):
        parse_prometheus('# TYPE x counter\nx{a="1",a="2"} 1\n')
    with pytest.raises(ValidationError, match="unparseable sample value"):
        parse_prometheus("# TYPE x counter\nx banana\n")


def test_parse_rejects_histogram_without_inf_bucket():
    with pytest.raises(ValidationError, match="no \\+Inf bucket"):
        parse_prometheus(
            "# TYPE h histogram\n"
            'h_bucket{le="1"} 2\n'
            "h_sum 1\n"
            "h_count 2\n")


def test_parse_rejects_non_cumulative_buckets():
    with pytest.raises(ValidationError, match="not\\s+cumulative"):
        parse_prometheus(
            "# TYPE h histogram\n"
            'h_bucket{le="1"} 5\n'
            'h_bucket{le="+Inf"} 3\n'
            "h_sum 1\n"
            "h_count 3\n")


def test_parse_rejects_count_bucket_disagreement():
    with pytest.raises(ValidationError, match="disagrees with _count"):
        parse_prometheus(
            "# TYPE h histogram\n"
            'h_bucket{le="+Inf"} 3\n'
            "h_sum 1\n"
            "h_count 4\n")


def test_parse_rejects_missing_sum_or_count():
    with pytest.raises(ValidationError, match="missing its\\s+_sum or "
                                              "_count"):
        parse_prometheus(
            "# TYPE h histogram\n"
            'h_bucket{le="+Inf"} 3\n'
            "h_count 3\n")


def test_parse_rejects_bucket_without_le():
    with pytest.raises(ValidationError, match="without an le label"):
        parse_prometheus(
            "# TYPE h histogram\n"
            "h_bucket 3\n")


def test_parse_handles_inf_and_nan_values():
    families = parse_prometheus(
        "# TYPE g gauge\ng 0\n"
        "# TYPE x gauge\nx +Inf\n"
        "# TYPE y gauge\ny NaN\n")
    assert math.isinf(families["x"]["samples"][0][2])
    assert math.isnan(families["y"]["samples"][0][2])


# --------------------------------------------------------------- families
def test_family_registration_and_reuse():
    registry = MetricsRegistry()
    family = registry.counter("f_total", labels=("kind",))
    assert registry.counter("f_total", labels=("kind",)) is family
    assert family.labels(kind="a") is family.labels(kind="a")
    assert family.labels(kind="a") is not family.labels(kind="b")


def test_family_rejects_unknown_labels_and_collisions():
    registry = MetricsRegistry()
    family = registry.counter("f_total", labels=("kind",))
    with pytest.raises(ValueError, match="unknown labels"):
        family.labels(flavour="x")
    with pytest.raises(ValueError, match="already registered"):
        registry.counter("f_total", labels=("other",))
    with pytest.raises(ValueError, match="already registered"):
        registry.gauge("f_total", labels=("kind",))
    registry.counter("plain").inc()
    with pytest.raises(ValueError, match="already registered"):
        registry.counter("plain", labels=("kind",))
    with pytest.raises(ValueError, match="already registered"):
        registry.counter("f_total")                # unlabeled vs family


def test_family_snapshot_shape_and_json_compatibility():
    registry = MetricsRegistry()
    registry.counter("old_total").inc(2)           # pre-existing shape
    family = registry.histogram("staged", buckets=(1.0,),
                                labels=("stage",))
    family.labels(stage="a").observe(0.5)
    snapshot = registry.snapshot()
    assert snapshot["old_total"] == 2              # untouched: bare number
    staged = snapshot["staged"]
    assert staged["labels"] == ["stage"]
    (series,) = staged["series"]
    assert series["labels"] == {"stage": "a"}
    assert series["count"] == 1


def test_collect_reads_each_state_under_one_lock_hold():
    registry = make_registry()
    collected = dict((name, (kind, series))
                     for name, kind, series in registry.collect())
    kind, ((labels, state),) = collected["latency_seconds"]
    assert kind == "histogram"
    assert labels == {}
    assert sum(state["counts"]) == state["count"]
    names = [name for name, _, _ in registry.collect()]
    assert names == sorted(names)
