"""Integration tests for the classification server
(``repro.serving.server``): a live HTTP server driven over
``http.client`` by concurrent client threads, with decisions checked
bit-identical to direct ``ClassificationService.classify_bytes``, the
503 backpressure path, model hot-reload under live traffic, and the
observability endpoints.
"""

import base64
import json
import os
import threading
from dataclasses import replace
from http.client import HTTPConnection

import pytest

from repro.api.service import ClassificationService, Decision
from repro.serving import ClassificationServer, DecisionLog, ServerConfig
from repro.serving.model_manager import ModelManager
from repro.serving.protocol import decision_to_dict

from test_api_artifact import make_records


# ------------------------------------------------------------- fixtures
@pytest.fixture(scope="module")
def model_artifacts(tmp_path_factory):
    """Generation-A and (renamed-classes) generation-B artifacts."""

    directory = tmp_path_factory.mktemp("server-models")
    records = make_records(30, seed=21, n_families=3)
    renamed = [replace(r, class_name=f"v2-{r.class_name}") for r in records]
    params = dict(feature_types=["ssdeep-file"], n_estimators=10,
                  random_state=1, confidence_threshold=0.1)
    gen_a = directory / "gen-a.rpm"
    gen_b = directory / "gen-b.rpm"
    ClassificationService.train(records, **params).save(gen_a)
    ClassificationService.train(renamed, **params).save(gen_b)
    return gen_a, gen_b


@pytest.fixture()
def live_server(model_artifacts, tmp_path):
    """A server over generation A, plus its live artifact path."""

    gen_a, _ = model_artifacts
    live = tmp_path / "model.rpm"
    live.write_bytes(gen_a.read_bytes())
    manager = ModelManager(live, poll_interval=0.05, cache_size=256)
    log = DecisionLog(tmp_path / "decisions.jsonl")
    server = ClassificationServer(
        manager, ServerConfig(port=0, workers=2, max_batch=16),
        decision_log=log).start()
    try:
        yield server, live
    finally:
        server.shutdown()


def request_json(port, method, path, payload=None, timeout=30):
    conn = HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        body = None if payload is None else json.dumps(payload)
        conn.request(method, path, body)
        response = conn.getresponse()
        return response.status, dict(response.getheaders()), \
            json.loads(response.read())
    finally:
        conn.close()


def classify_item(sample_id, data: bytes) -> dict:
    return {"id": sample_id, "data": base64.b64encode(data).decode("ascii")}


def payloads(count, *, tag="exe", size=1024):
    # Distinct deterministic payloads: distinct digests, no cache alias.
    return [(f"{tag}-{n}", (f"{tag}-{n}|".encode() +
                            bytes((n * 31 + k) % 256 for k in range(size))))
            for n in range(count)]


# ------------------------------------------------------ bit-identity
def test_concurrent_clients_get_bit_identical_decisions(live_server,
                                                        model_artifacts):
    server, _ = live_server
    gen_a, _ = model_artifacts
    pool = payloads(48)
    per_client = 3                                  # 16 clients x 3 items
    reference = ClassificationService.load(gen_a, cache_size=0)
    expected = {sid: decision_to_dict(d) for (sid, data), d in zip(
        pool, reference.classify_bytes(pool))}

    results: dict[str, dict] = {}
    errors: list = []

    def client(worker):
        try:
            mine = pool[worker * per_client:(worker + 1) * per_client]
            status, _, body = request_json(
                server.port, "POST", "/classify",
                {"items": [classify_item(sid, data) for sid, data in mine]})
            assert status == 200, body
            assert body["model_generation"] == 1
            # Response order mirrors request order.
            assert [d["sample_id"] for d in body["decisions"]] == \
                [sid for sid, _ in mine]
            for decision in body["decisions"]:
                results[decision["sample_id"]] = decision
        except Exception as exc:  # noqa: BLE001 — surface in main thread
            errors.append(exc)

    threads = [threading.Thread(target=client, args=(w,)) for w in range(16)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors
    assert results == expected                     # bit-identical decisions


def test_served_decisions_match_for_path_and_inline_submission(live_server,
                                                               tmp_path):
    server, _ = live_server
    data = payloads(1, tag="dual")[0][1]
    on_disk = tmp_path / "dual.bin"
    on_disk.write_bytes(data)
    status, _, body = request_json(server.port, "POST", "/classify", {
        "items": [{"id": "inline", "data":
                   base64.b64encode(data).decode("ascii")},
                  {"id": "local", "path": str(on_disk)}]})
    assert status == 200
    inline, local = body["decisions"]
    assert (inline["predicted_class"], inline["confidence"]) == \
        (local["predicted_class"], local["confidence"])


# ----------------------------------------------------- observability
def test_healthz_and_metrics_endpoints(live_server):
    server, _ = live_server
    status, _, health = request_json(server.port, "GET", "/healthz")
    assert status == 200
    assert health["status"] == "ok"
    assert health["model_generation"] == 1
    sid, data = payloads(1, tag="obs")[0]
    request_json(server.port, "POST", "/classify",
                 {"items": [classify_item(sid, data)]})
    status, _, metrics = request_json(server.port, "GET", "/metrics")
    assert status == 200
    assert metrics["http_responses_ok"] >= 1
    assert metrics["items_classified_total"] >= 1
    latency = metrics["request_latency_seconds"]
    assert latency["count"] >= 1
    assert latency["p50"] <= latency["p95"] <= latency["p99"]
    assert metrics["service_cache"]["capacity"] == 256


def test_shared_registry_exposes_manager_metrics(model_artifacts, tmp_path):
    # The CLI wires one registry through manager, decision log and
    # server, so /metrics must carry the reload gauge/counters too.
    from repro.serving import MetricsRegistry

    gen_a, _ = model_artifacts
    live = tmp_path / "model.rpm"
    live.write_bytes(gen_a.read_bytes())
    registry = MetricsRegistry()
    manager = ModelManager(live, poll_interval=0, metrics=registry,
                           cache_size=0)
    server = ClassificationServer(manager, ServerConfig(port=0),
                                  metrics=registry).start()
    try:
        _, _, metrics = request_json(server.port, "GET", "/metrics")
        assert metrics["model_generation"] == 1.0
        assert metrics["model_reloads_total"] == 0
        assert metrics["model_reload_failures_total"] == 0
    finally:
        server.shutdown()


def test_unknown_routes_and_malformed_requests(live_server):
    server, _ = live_server
    status, _, _ = request_json(server.port, "GET", "/nope")
    assert status == 404
    status, _, body = request_json(server.port, "POST", "/classify",
                                   {"items": []})
    assert status == 400 and "error" in body
    status, _, body = request_json(server.port, "POST", "/classify",
                                   {"items": [{"id": "x",
                                               "data": "!!bad!!"}]})
    assert status == 400 and "base64" in body["error"]


def test_negative_content_length_is_rejected_not_read(live_server):
    # rfile.read(-1) would block until the client hangs up, parking a
    # handler thread forever; the server must reject it up front.
    server, _ = live_server
    conn = HTTPConnection("127.0.0.1", server.port, timeout=10)
    try:
        conn.request("POST", "/classify", body=None,
                     headers={"Content-Length": "-1"})
        response = conn.getresponse()
        assert response.status == 400
        assert "non-negative" in json.loads(response.read())["error"]
    finally:
        conn.close()


def test_oversized_request_body_is_rejected_with_413(model_artifacts,
                                                     tmp_path):
    gen_a, _ = model_artifacts
    live = tmp_path / "model.rpm"
    live.write_bytes(gen_a.read_bytes())
    manager = ModelManager(live, poll_interval=0, cache_size=0)
    server = ClassificationServer(
        manager, ServerConfig(port=0, max_request_bytes=2048)).start()
    try:
        sid, data = payloads(1, tag="big", size=4096)[0]
        status, _, body = request_json(server.port, "POST", "/classify",
                                       {"items": [classify_item(sid, data)]})
        assert status == 413
        assert "cap" in body["error"]
    finally:
        server.shutdown()


# ------------------------------------------------------- backpressure
class GatedManager:
    """Duck-typed manager whose classify pass blocks on an event."""

    generation = 1
    model_path = "gated-stub"

    def __init__(self):
        self.gate = threading.Event()
        self.entered = threading.Event()

    def classify_items(self, items):
        self.entered.set()
        assert self.gate.wait(timeout=30)
        return [Decision(sample_id=sid, predicted_class="stub",
                         confidence=1.0, decision="within-allocation")
                for sid, _data in items], self.generation


def test_full_queue_answers_503_with_retry_after():
    manager = GatedManager()
    server = ClassificationServer(
        manager, ServerConfig(port=0, workers=1, max_batch=1,
                              queue_depth=1, retry_after_seconds=2)).start()
    statuses: list[tuple[str, int]] = []
    lock = threading.Lock()

    def client(sid):
        status, headers, _ = request_json(
            server.port, "POST", "/classify",
            {"items": [classify_item(sid, b"payload-" + sid.encode())]},
            timeout=60)
        with lock:
            statuses.append((sid, status, headers))

    try:
        # First request occupies the single worker...
        first = threading.Thread(target=client, args=("in-flight",))
        first.start()
        assert manager.entered.wait(timeout=30)
        # ...second fills the 1-item queue...
        second = threading.Thread(target=client, args=("queued",))
        second.start()
        deadline = threading.Event()
        for _ in range(200):
            _, _, metrics = request_json(server.port, "GET", "/metrics")
            if metrics["queue_items"] >= 1:
                break
            deadline.wait(0.02)
        # ...and the third is rejected immediately with Retry-After.
        status, headers, body = request_json(
            server.port, "POST", "/classify",
            {"items": [classify_item("rejected", b"payload-rejected")]})
        assert status == 503
        assert headers.get("Retry-After") == "2"
        assert "queue" in body["error"]
        manager.gate.set()
        first.join(timeout=30)
        second.join(timeout=30)
        assert {s[1] for s in statuses} == {200}
    finally:
        manager.gate.set()
        server.shutdown()


# --------------------------------------------------------- hot reload
def test_hot_reload_under_live_traffic_never_mixes_generations(
        live_server, model_artifacts):
    server, live = live_server
    gen_a, gen_b = model_artifacts
    pool = payloads(12, tag="reload")
    reference_a = ClassificationService.load(gen_a, cache_size=0)
    reference_b = ClassificationService.load(gen_b, cache_size=0)
    expected = {
        1: [decision_to_dict(d) for d in reference_a.classify_bytes(pool)],
        2: [decision_to_dict(d) for d in reference_b.classify_bytes(pool)],
    }

    stop = threading.Event()
    responses: list = []
    errors: list = []
    lock = threading.Lock()

    def client():
        while not stop.is_set():
            try:
                status, _, body = request_json(
                    server.port, "POST", "/classify",
                    {"items": [classify_item(sid, data)
                               for sid, data in pool]})
                assert status == 200, body
                with lock:
                    responses.append(body)
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)
                return

    threads = [threading.Thread(target=client) for _ in range(4)]
    for thread in threads:
        thread.start()
    try:
        # Publish generation B atomically under live traffic.
        staging = live.with_name("staging.rpm")
        staging.write_bytes(gen_b.read_bytes())
        os.replace(staging, live)
        deadline = threading.Event()
        for _ in range(400):                       # up to ~20 s
            with lock:
                seen = {r["model_generation"] for r in responses}
            if 2 in seen or errors:
                break
            deadline.wait(0.05)
    finally:
        stop.set()
        for thread in threads:
            thread.join(timeout=60)

    assert not errors
    with lock:
        seen = {r["model_generation"] for r in responses}
    assert seen == {1, 2}, f"generations observed: {seen}"
    # Every response was produced wholly by one generation: its
    # decisions must equal that generation's direct classify_bytes
    # output — a mixed response could match neither.
    for response in responses:
        assert response["decisions"] == \
            expected[response["model_generation"]]


# ---------------------------------------------------- graceful drain
def test_shutdown_drains_and_flushes_decision_log(model_artifacts, tmp_path):
    gen_a, _ = model_artifacts
    live = tmp_path / "model.rpm"
    live.write_bytes(gen_a.read_bytes())
    manager = ModelManager(live, poll_interval=0, cache_size=0)
    log_path = tmp_path / "decisions.jsonl"
    server = ClassificationServer(
        manager, ServerConfig(port=0, workers=1),
        decision_log=DecisionLog(log_path)).start()
    pool = payloads(5, tag="drain")
    status, _, body = request_json(
        server.port, "POST", "/classify",
        {"items": [classify_item(sid, data) for sid, data in pool]})
    assert status == 200
    server.shutdown()
    server.shutdown()                              # idempotent
    records = [json.loads(line)
               for line in log_path.read_text().splitlines()]
    assert [r["sample_id"] for r in records] == [sid for sid, _ in pool]
    assert all(r["model_generation"] == 1 for r in records)
    assert all("unix_time" in r for r in records)
