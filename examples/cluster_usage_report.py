#!/usr/bin/env python3
"""Scenario: cluster-wide software usage reporting.

Besides security, the paper lists "reporting software usage across the
cluster" as a use case for application labels.  This example simulates
a month of job submissions from several users (each job runs one
executable drawn from the synthetic corpus, some of it user-compiled
software the site has never catalogued), classifies every executable
and produces a usage report including per-allocation deviations.

Run with::

    python examples/cluster_usage_report.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    CorpusBuilder,
    FeatureExtractionPipeline,
    FuzzyHashClassifier,
    build_usage_report,
    default_config,
)
from repro.logging_utils import configure_logging


def main() -> int:
    configure_logging("WARNING")
    config = default_config("small", seed=21)
    rng = np.random.default_rng(21)

    # Site software tree (in memory) and trained classifier.
    builder = CorpusBuilder(config=config)
    samples = builder.build_samples()
    features = FeatureExtractionPipeline(n_jobs=config.n_jobs) \
        .extract_generated(samples)
    class_names = sorted({f.class_name for f in features})
    catalogued = class_names[:-2]           # two classes stay un-catalogued
    training = [f for f in features if f.class_name in catalogued]
    classifier = FuzzyHashClassifier(n_estimators=60, confidence_threshold=0.55,
                                     random_state=5).fit(training)
    print(f"trained on {len(training)} executables from {len(catalogued)} "
          f"catalogued application classes")

    # Simulated job stream: users run executables with their own habits.
    users = ["alice", "bob", "carol", "dave"]
    habits = {
        "alice": catalogued[:2],            # bioinformatics pipelines
        "bob": catalogued[2:4],             # chemistry codes
        "carol": catalogued[:1] + class_names[-2:],  # also runs uncatalogued code
        "dave": catalogued[4:6] or catalogued[:2],
    }
    allowed_per_user = {user: habits[user][:2] for user in users}
    by_class: dict[str, list] = {}
    for feature in features:
        by_class.setdefault(feature.class_name, []).append(feature)

    job_features, job_users = [], []
    for _ in range(160):
        user = users[int(rng.integers(0, len(users)))]
        class_name = habits[user][int(rng.integers(0, len(habits[user])))]
        pool = by_class[class_name]
        job_features.append(pool[int(rng.integers(0, len(pool)))])
        job_users.append(user)
    print(f"simulated {len(job_features)} job executions by {len(users)} users")

    # Classify every executed binary and build the usage report.
    predictions = classifier.predict(job_features)
    report = build_usage_report(predictions, users=job_users,
                                allowed_per_user=allowed_per_user)
    print()
    print(report.as_text())

    print("\nper-user breakdown:")
    for user in users:
        counts = report.per_user_counts.get(user, {})
        summary = ", ".join(f"{name} x{count}" for name, count in
                            sorted(counts.items(), key=lambda kv: -kv[1]))
        print(f"  {user:<8s} {summary}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
