"""Example: a labelling agent growing the live corpus online.

The paper's corpus is not static: newly confirmed executables of known
applications should strengthen the classifier without a retrain-and-
redeploy cycle.  This script is that labelling agent against a running
``repro-classify serve --ingest`` instance:

1. poll a spool directory whose first-level subdirectories are class
   labels (``SPOOL/GromacsLike/job-9.exe`` is a confirmed GromacsLike
   sample — e.g. sorted there by an operator or a ticketing hook);
2. submit each new batch to ``POST /ingest`` as base64 payloads
   (stdlib only — ``urllib.request``), honouring 503 + Retry-After;
3. print the admission reports (assigned corpus sequence numbers and
   the live member count) and demonstrate ``DELETE /samples/<id>`` for
   files that disappear from the spool (label withdrawn).

Start an ingest-enabled server first, e.g.::

    repro-classify train TREE --out model.rpm
    repro-classify serve --model model.rpm --ingest \\
        --max-age 86400 --republish-interval 3600

then run::

    python examples/ingest_client.py SPOOL_DIR --url http://127.0.0.1:8080

Drop confirmed samples into per-class subdirectories and watch the
corpus grow; remove a file to see its corpus members purged.  Note the
server only accepts classes the model already knows — a brand-new
class needs a retrain (the forest's feature columns are per class).
"""

from __future__ import annotations

import argparse
import base64
import json
import sys
import time
import urllib.error
import urllib.parse
import urllib.request
from pathlib import Path

BATCH_LIMIT = 16                 # items per request (server caps at 32)


def _request(url: str, method: str, body: bytes | None = None) -> dict:
    """One JSON request, honouring 503 + Retry-After with resubmission."""

    request = urllib.request.Request(
        url, data=body, method=method,
        headers={"Content-Type": "application/json"} if body else {})
    while True:
        try:
            with urllib.request.urlopen(request) as response:
                return json.load(response)
        except urllib.error.HTTPError as exc:
            if exc.code != 503:
                raise
            retry_after = float(exc.headers.get("Retry-After", "1"))
            print(f"server busy, retrying in {retry_after:.0f} s ...",
                  file=sys.stderr)
            time.sleep(retry_after)


def ingest(url: str, items: list[tuple[str, str, bytes]]) -> dict:
    body = json.dumps({"items": [
        {"id": sample_id, "class": class_name,
         "data": base64.b64encode(data).decode("ascii")}
        for sample_id, class_name, data in items]}).encode("utf-8")
    return _request(f"{url}/ingest", "POST", body)


def purge(url: str, sample_id: str) -> dict:
    quoted = urllib.parse.quote(sample_id, safe="")
    return _request(f"{url}/samples/{quoted}", "DELETE")


def poll_loop(spool: Path, url: str, interval: float) -> None:
    tracked: set[Path] = set()
    print(f"polling {spool} every {interval:.0f} s against {url}")
    while True:
        present = {p for p in spool.glob("*/*") if p.is_file()}
        fresh = sorted(present - tracked)
        for start in range(0, len(fresh), BATCH_LIMIT):
            batch = fresh[start:start + BATCH_LIMIT]
            try:
                report = ingest(url, [(str(p.relative_to(spool)),
                                       p.parent.name, p.read_bytes())
                                      for p in batch])
            except urllib.error.HTTPError as exc:
                # e.g. 400 for a class the model does not know.
                print(f"! batch rejected: {exc.read().decode()}",
                      file=sys.stderr)
                tracked.update(batch)      # don't resubmit a reject loop
                continue
            for admitted in report["ingested"]:
                print(f"+ {admitted['class']:<20} "
                      f"seq={admitted['sequence']:<6} "
                      f"{admitted['sample_id']}")
            print(f"-- corpus now holds {report['corpus_members']} members "
                  f"(generation {report['model_generation']})")
            tracked.update(batch)
        for gone in sorted(tracked - present):
            sample_id = str(gone.relative_to(spool))
            try:
                result = purge(url, sample_id)
                print(f"- purged {result['purged']} member(s) of "
                      f"{sample_id} (label withdrawn)")
            except urllib.error.HTTPError as exc:
                # 404: aged off already; 409: last anchors of its class.
                print(f"! purge of {sample_id} refused: "
                      f"{exc.read().decode()}", file=sys.stderr)
            tracked.discard(gone)
        time.sleep(interval)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("spool", help="directory with per-class "
                                      "subdirectories of confirmed samples")
    parser.add_argument("--url", default="http://127.0.0.1:8080",
                        help="server base URL (default http://127.0.0.1:8080)")
    parser.add_argument("--interval", type=float, default=5.0,
                        help="poll interval in seconds (default 5)")
    args = parser.parse_args()
    spool = Path(args.spool)
    if not spool.is_dir():
        parser.error(f"{spool} is not a directory")
    try:
        poll_loop(spool, args.url.rstrip("/"), args.interval)
    except KeyboardInterrupt:
        print("labelling agent stopped")
    return 0


if __name__ == "__main__":
    sys.exit(main())
