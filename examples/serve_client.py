"""Example: a polling collector feeding the classification server.

The paper's deployment (Figure 1) collects executables from compute
jobs and classifies them continuously.  This script is the collector
half of that loop against a running ``repro-classify serve`` instance:

1. poll a spool directory for new executables (e.g. dropped there by a
   prolog/epilog hook or a file-transfer agent);
2. submit each new batch to ``POST /classify`` as base64 payloads
   (stdlib only — ``urllib.request``);
3. print flagged decisions (unexpected/unknown applications) and keep
   track of the server's model generation so hot-reloads are visible.

Start a server first, e.g.::

    repro-classify train TREE --out model.rpm
    repro-classify serve --model model.rpm --port 8080

then run::

    python examples/serve_client.py SPOOL_DIR --url http://127.0.0.1:8080

Drop executables into SPOOL_DIR and watch the decisions arrive.  The
503 backpressure path is handled the way a well-behaved collector
should: honour ``Retry-After`` and resubmit.  Every batch line also
prints the server's ``X-Request-Id``, so a slow batch seen client-side
can be looked up in the server's ``GET /debug/trace`` ring, its
decision-log lines and its slow-request log entries.
"""

from __future__ import annotations

import argparse
import base64
import json
import sys
import time
import urllib.error
import urllib.request
from pathlib import Path

BATCH_LIMIT = 32                 # items per request (server caps at 64)


def classify(url: str, items: list[tuple[str, bytes]]) -> tuple[dict, str]:
    """POST one batch, honouring 503 + Retry-After with resubmission.

    Returns ``(payload, request_id)`` — the id is the server's
    ``X-Request-Id`` header, the key that correlates this client-side
    call with the server's trace ring and decision log.
    """

    body = json.dumps({"items": [
        {"id": sample_id, "data": base64.b64encode(data).decode("ascii")}
        for sample_id, data in items]}).encode("utf-8")
    request = urllib.request.Request(
        f"{url}/classify", data=body,
        headers={"Content-Type": "application/json"})
    while True:
        try:
            with urllib.request.urlopen(request) as response:
                request_id = response.headers.get("X-Request-Id", "-")
                return json.load(response), request_id
        except urllib.error.HTTPError as exc:
            if exc.code != 503:
                raise
            retry_after = float(exc.headers.get("Retry-After", "1"))
            request_id = exc.headers.get("X-Request-Id", "-")
            print(f"server busy (request {request_id}), retrying in "
                  f"{retry_after:.0f} s ...", file=sys.stderr)
            time.sleep(retry_after)


def poll_loop(spool: Path, url: str, interval: float) -> None:
    seen: set[Path] = set()
    generation = None
    print(f"polling {spool} every {interval:.0f} s against {url}")
    while True:
        fresh = sorted(p for p in spool.glob("**/*")
                       if p.is_file() and p not in seen)
        for start in range(0, len(fresh), BATCH_LIMIT):
            batch = fresh[start:start + BATCH_LIMIT]
            started = time.monotonic()
            payload, request_id = classify(
                url, [(str(p.relative_to(spool)),
                       p.read_bytes()) for p in batch])
            elapsed_ms = (time.monotonic() - started) * 1000.0
            if payload["model_generation"] != generation:
                generation = payload["model_generation"]
                print(f"-- serving model generation {generation}")
            print(f"-- batch of {len(batch)}: {elapsed_ms:.0f} ms, "
                  f"request {request_id}")
            for decision in payload["decisions"]:
                marker = (" " if decision["decision"] == "within-allocation"
                          else "!")
                print(f"{marker} {decision['decision']:<24} "
                      f"{str(decision['predicted_class']):<20} "
                      f"conf={decision['confidence']:.2f}  "
                      f"{decision['sample_id']}")
            seen.update(batch)
        time.sleep(interval)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("spool", help="directory to poll for executables")
    parser.add_argument("--url", default="http://127.0.0.1:8080",
                        help="server base URL (default http://127.0.0.1:8080)")
    parser.add_argument("--interval", type=float, default=5.0,
                        help="poll interval in seconds (default 5)")
    args = parser.parse_args()
    spool = Path(args.spool)
    if not spool.is_dir():
        parser.error(f"{spool} is not a directory")
    try:
        poll_loop(spool, args.url.rstrip("/"), args.interval)
    except KeyboardInterrupt:
        print("collector stopped")
    return 0


if __name__ == "__main__":
    sys.exit(main())
