#!/usr/bin/env python3
"""Scenario: detecting deviation from allocation purpose.

The paper's motivating use case (guiding questions 1–3): a project
allocation was granted for one kind of application; suddenly the user
starts executing something entirely different — a different preinstalled
application, or software unknown to the site (worst case, a
cryptominer).  This example simulates that situation:

* the site trains the Fuzzy Hash Classifier on its software tree,
* an allocation is declared to run only molecular-dynamics-style codes,
* the monitored "job executables" mix legitimate binaries from those
  classes with binaries from other classes and from classes the model
  has never seen,
* the classification workflow flags everything outside the allocation.

Run with::

    python examples/allocation_misuse_detection.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import (
    ClassificationWorkflow,
    CorpusBuilder,
    CorpusScanner,
    FeatureExtractionPipeline,
    FuzzyHashClassifier,
    default_config,
)
from repro.core.workflow import DECISION_EXPECTED
from repro.logging_utils import configure_logging


def main() -> int:
    configure_logging("WARNING")
    config = default_config("small", seed=11)

    with tempfile.TemporaryDirectory(prefix="repro-misuse-") as tmp:
        tree = Path(tmp) / "software"
        builder = CorpusBuilder(config=config)
        dataset = builder.materialize_tree(tree)
        class_names = dataset.class_names
        print(f"software tree: {dataset.summary()}")

        # The model is trained on everything *except* two classes, which
        # play the role of software unknown to the site.
        unknown_to_site = class_names[-2:]
        known_to_site = [c for c in class_names if c not in unknown_to_site]
        print(f"\nclasses known to the site:   {', '.join(known_to_site)}")
        print(f"classes unknown to the site: {', '.join(unknown_to_site)}")

        scan = CorpusScanner(tree).scan()
        features = FeatureExtractionPipeline(n_jobs=config.n_jobs) \
            .extract_dataset(scan.dataset)
        training = [f for f in features if f.class_name in known_to_site]
        classifier = FuzzyHashClassifier(n_estimators=60, confidence_threshold=0.55,
                                         random_state=3).fit(training)

        # The allocation is only supposed to run the first known class.
        allocation_classes = [known_to_site[0]]
        print(f"\nallocation 'proj-042' is approved for: {allocation_classes}")
        workflow = ClassificationWorkflow(classifier,
                                          allowed_classes=allocation_classes)

        # Executables observed in the allocation's jobs: a mix of approved
        # software, another preinstalled application, and unknown software.
        observed: list[str] = []
        for class_name in (allocation_classes[0], known_to_site[1], unknown_to_site[0]):
            class_dir = tree / class_name
            version_dir = sorted(p for p in class_dir.iterdir() if p.is_dir())[0]
            observed.extend(str(p) for p in sorted(version_dir.iterdir())[:3])

        print(f"\nclassifying {len(observed)} executables observed in jobs ...\n")
        results = workflow.classify_paths(observed)
        print(workflow.report(results))

        flagged = [r for r in results if r.is_suspicious()]
        ok = [r for r in results if r.decision == DECISION_EXPECTED]
        print(f"\n{len(ok)} executables within the allocation purpose, "
              f"{len(flagged)} flagged for review")
        for item in flagged:
            print(f"  -> {item.path}")
            print(f"     predicted: {item.predicted_class} "
                  f"(confidence {item.confidence:.2f}, decision: {item.decision})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
