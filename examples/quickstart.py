#!/usr/bin/env python3
"""Quickstart: train, persist and serve the Fuzzy Hash Classifier.

This walks through the deployment lifecycle of the paper's envisioned
workflow (Figure 1) on a small synthetic software tree, using the
``repro.api`` facade:

1. generate a sciCORE-like software tree on disk
   (``<Class>/<version>/<executable>`` with real ELF binaries),
2. scan it with the paper's collection rules and extract the three
   SSDeep fuzzy-hash features per executable,
3. train a :class:`repro.ClassificationService` (Random Forest over
   similarity scores, balanced class weights, confidence threshold for
   "unknown") and evaluate it on held-out samples,
4. persist the fitted model as one versioned artifact file
   (``model.rpm``) and cold-start a *fresh* service from it — no
   retraining — verifying the decisions are identical,
5. classify executables through the service facade: a directory, raw
   bytes, and a micro-batched stream.

Run with::

    python examples/quickstart.py [small|medium|full]
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

from repro import (
    ClassificationService,
    CorpusBuilder,
    CorpusScanner,
    FeatureExtractionPipeline,
    default_config,
    two_phase_split,
)
from repro.logging_utils import configure_logging
from repro.ml.metrics import classification_report


def main() -> int:
    configure_logging("INFO")
    scale = sys.argv[1] if len(sys.argv) > 1 else "small"
    config = default_config(scale, seed=7)
    print(f"Using scale preset: {config.scale.describe()}")

    with tempfile.TemporaryDirectory(prefix="repro-quickstart-") as tmp:
        tree = Path(tmp) / "software"

        # 1. generate the synthetic software tree (stands in for the
        #    preinstalled applications of a production cluster).
        print("\n[1/5] generating the software tree ...")
        dataset = CorpusBuilder(config=config).materialize_tree(tree)
        print(f"      {dataset.summary()}")

        # 2. scan + extract fuzzy-hash features, exactly like the paper
        #    collects its data set.
        print("\n[2/5] scanning and extracting SSDeep features ...")
        scan = CorpusScanner(tree).scan()
        features = FeatureExtractionPipeline(n_jobs=config.n_jobs) \
            .extract_dataset(scan.dataset)
        example = features[0]
        print(f"      {scan.summary()}")
        print(f"      example digest ({example.sample_id}):")
        print(f"        ssdeep-symbols = {example.digest('ssdeep-symbols')[:70]}...")

        # 3. train the service on the training split and evaluate it.
        print("\n[3/5] training the ClassificationService ...")
        split = two_phase_split(scan.dataset.labels, mode="paper",
                                random_state=config.seed)
        print(f"      {split.summary()}")
        service = ClassificationService.train(
            [features[i] for i in split.train_indices],
            n_estimators=config.scale.n_estimators,
            confidence_threshold=0.5,
            random_state=config.seed,
        )
        test_features = [features[i] for i in split.test_indices]
        predictions = service.classifier.predict(test_features)
        report = classification_report(split.expected_test_labels, predictions)
        print(f"      macro f1 = {report.macro_f1:.3f}, "
              f"micro f1 = {report.micro_f1:.3f} "
              f"(the paper reports 0.90 / 0.89 on the full corpus)")

        # 4. persist the model and cold-start a fresh service from the
        #    artifact — the restored model predicts bit-identically.
        print("\n[4/5] saving and reloading the model artifact ...")
        model_path = Path(tmp) / "model.rpm"
        service.save(model_path)
        print(f"      saved {model_path.stat().st_size} bytes -> {model_path.name}")
        served = ClassificationService.load(model_path)
        reloaded = served.classifier.predict(test_features)
        assert list(predictions) == list(reloaded), "artifact round-trip diverged"
        print("      reloaded predictions identical: True")

        # 5. serve: classify a directory, raw bytes and a stream through
        #    the loaded (not retrained) model.
        print("\n[5/5] classifying through the service facade ...")
        some_class = split.known_classes[0]
        decisions = served.classify_directory(tree / some_class)
        flagged = sum(1 for d in decisions if d.is_suspicious())
        print(f"      directory: {len(decisions)} executables, {flagged} flagged")

        blob = (tree / some_class).rglob("*")
        first_file = next(p for p in sorted(blob) if p.is_file())
        [byte_decision] = served.classify_bytes(
            [("pushed-over-the-wire", first_file.read_bytes())])
        print(f"      bytes: {byte_decision.sample_id} -> "
              f"{byte_decision.predicted_class} "
              f"({byte_decision.confidence:.2f}, {byte_decision.decision})")

        streamed = list(served.classify_stream(iter(test_features),
                                               batch_size=16))
        unknown = sum(1 for d in streamed if d.decision == "unknown-application")
        print(f"      stream: {len(streamed)} decisions in input order, "
              f"{unknown} unknown applications")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
