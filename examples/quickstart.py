#!/usr/bin/env python3
"""Quickstart: train the Fuzzy Hash Classifier and classify executables.

This walks through the whole pipeline of the paper on a small synthetic
software tree:

1. generate a sciCORE-like software tree on disk
   (``<Class>/<version>/<executable>`` with real ELF binaries),
2. scan it with the paper's collection rules,
3. extract the three SSDeep fuzzy-hash features per executable,
4. train the Fuzzy Hash Classifier (Random Forest over similarity
   scores, balanced class weights, confidence threshold for "unknown"),
5. classify a few executables — including ones from application classes
   the model has never seen.

Run with::

    python examples/quickstart.py [small|medium|full]
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

from repro import (
    CorpusBuilder,
    CorpusScanner,
    FeatureExtractionPipeline,
    FuzzyHashClassifier,
    default_config,
    two_phase_split,
)
from repro.logging_utils import configure_logging
from repro.ml.metrics import classification_report


def main() -> int:
    configure_logging("INFO")
    scale = sys.argv[1] if len(sys.argv) > 1 else "small"
    config = default_config(scale, seed=7)
    print(f"Using scale preset: {config.scale.describe()}")

    with tempfile.TemporaryDirectory(prefix="repro-quickstart-") as tmp:
        tree = Path(tmp) / "software"

        # 1. generate the synthetic software tree (stands in for the
        #    preinstalled applications of a production cluster).
        print("\n[1/5] generating the software tree ...")
        dataset = CorpusBuilder(config=config).materialize_tree(tree)
        print(f"      {dataset.summary()}")

        # 2. scan it exactly like the paper collects its data set.
        print("\n[2/5] scanning the tree with the collection rules ...")
        scan = CorpusScanner(tree).scan()
        print(f"      {scan.summary()}")

        # 3. extract fuzzy-hash features (ssdeep-file / -strings / -symbols).
        print("\n[3/5] extracting SSDeep fuzzy-hash features ...")
        features = FeatureExtractionPipeline(n_jobs=config.n_jobs) \
            .extract_dataset(scan.dataset)
        example = features[0]
        print(f"      example digest ({example.sample_id}):")
        print(f"        ssdeep-symbols = {example.digest('ssdeep-symbols')[:70]}...")

        # 4. two-phase split and training.
        print("\n[4/5] training the Fuzzy Hash Classifier ...")
        split = two_phase_split(scan.dataset.labels, mode="paper",
                                random_state=config.seed)
        print(f"      {split.summary()}")
        train_features = [features[i] for i in split.train_indices]
        classifier = FuzzyHashClassifier(
            n_estimators=config.scale.n_estimators,
            confidence_threshold=0.5,
            random_state=config.seed,
        ).fit(train_features)
        print(f"      feature importance by hash type: "
              f"{ {k: round(v, 3) for k, v in classifier.feature_importances_by_type().items()} }")

        # 5. classify the held-out test samples (incl. unknown classes).
        print("\n[5/5] classifying the test set ...")
        test_features = [features[i] for i in split.test_indices]
        predictions = classifier.predict(test_features)
        report = classification_report(split.expected_test_labels, predictions)
        print(report.as_text())
        print(f"\nmacro f1 = {report.macro_f1:.3f}, micro f1 = {report.micro_f1:.3f}, "
              f"weighted f1 = {report.weighted_f1:.3f}")
        print("(the paper reports 0.90 / 0.89 / 0.90 on the full 92-class corpus)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
