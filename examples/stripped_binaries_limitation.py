#!/usr/bin/env python3
"""Scenario: what stripped binaries do to the Fuzzy Hash Classifier.

The paper's limitations section points out that the approach "does not
work with executables that have been stripped of the symbol table",
because the dominant feature (the fuzzy hash of the ``nm`` output)
disappears.  This example measures that effect directly: the same test
binaries are classified twice, once intact and once after stripping,
and the per-feature similarity to their own class is compared.

Run with::

    python examples/stripped_binaries_limitation.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    CorpusBuilder,
    FeatureExtractionPipeline,
    FuzzyHashClassifier,
    default_config,
    strip_symbols,
    two_phase_split,
)
from repro.features.extractors import FeatureExtractor
from repro.logging_utils import configure_logging
from repro.ml.metrics import accuracy_score


def main() -> int:
    configure_logging("WARNING")
    config = default_config("small", seed=31)

    builder = CorpusBuilder(config=config)
    samples = builder.build_samples()
    features = FeatureExtractionPipeline().extract_generated(samples)
    labels = [s.class_name for s in samples]

    split = two_phase_split(labels, mode="paper", random_state=config.seed)
    train = [features[i] for i in split.train_indices]
    classifier = FuzzyHashClassifier(n_estimators=60, confidence_threshold=0.5,
                                     random_state=1).fit(train)

    known = set(split.known_classes)
    test_samples = [samples[i] for i in split.test_indices
                    if samples[i].class_name in known]
    extractor = FeatureExtractor()

    intact_features, stripped_features = [], []
    for sample in test_samples:
        intact_features.append(extractor.extract(
            sample.data, sample_id=sample.relative_path,
            class_name=sample.class_name))
        stripped_features.append(extractor.extract(
            strip_symbols(sample.data), sample_id=sample.relative_path + "#stripped",
            class_name=sample.class_name))

    y_true = np.asarray([s.class_name for s in test_samples], dtype=object)
    intact_predictions = classifier.predict(intact_features)
    stripped_predictions = classifier.predict(stripped_features)

    print(f"known-class test binaries: {len(test_samples)}")
    print(f"accuracy on intact binaries:   {accuracy_score(y_true, intact_predictions):.3f}")
    print(f"accuracy on stripped binaries: {accuracy_score(y_true, stripped_predictions):.3f}")
    print(f"stripped binaries labelled 'unknown': "
          f"{float(np.mean(stripped_predictions == -1)):.3f}")

    # Show what stripping does to the similarity features of one binary;
    # pick one whose intact symbol hash actually matches its class (i.e. a
    # binary the classifier would normally recognise through its symbols).
    matrix_all_intact = classifier.transform(intact_features)
    symbol_scores = matrix_all_intact.columns_for("ssdeep-symbols").max(axis=1)
    example_index = int(np.argmax(symbol_scores))
    matrix_intact = classifier.transform([intact_features[example_index]])
    matrix_stripped = classifier.transform([stripped_features[example_index]])
    print("\nper-feature maximum similarity to any known class "
          f"(example binary {test_samples[example_index].relative_path}):")
    for feature_type in classifier.feature_types:
        intact_max = matrix_intact.columns_for(feature_type).max()
        stripped_max = matrix_stripped.columns_for(feature_type).max()
        print(f"  {feature_type:<16s} intact {intact_max:5.1f}   stripped {stripped_max:5.1f}")

    print("\nAs in the paper, the ssdeep-symbols feature vanishes for stripped "
          "binaries,\nwhich removes most of the classifier's evidence.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
