"""Test-support machinery that ships with the library.

Unlike ``tests/`` (which only exists in the source tree), this package
is importable wherever the library is installed, because some of its
tools must run *inside* the process under test: the named-failpoint
:mod:`repro.testing.faults` injector is armed through an environment
variable precisely so a crash-sweep harness can kill a real serving
subprocess at an exact internal point.
"""

from ..exceptions import FaultInjectedError
from .faults import (
    CRASH_EXIT_CODE,
    CRASH_SWEEP_SITES,
    KNOWN_SITES,
    FaultInjector,
    arm_from_env,
    fire,
    injector,
)

__all__ = [
    "CRASH_EXIT_CODE",
    "CRASH_SWEEP_SITES",
    "KNOWN_SITES",
    "FaultInjectedError",
    "FaultInjector",
    "arm_from_env",
    "fire",
    "injector",
]
