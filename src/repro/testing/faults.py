"""Named-failpoint fault injection for durability and recovery tests.

Proving that the serving tier survives crashes needs a way to *cause*
them at exact internal points: after the write-ahead log buffered a
record but before it fsynced, between the artifact ``os.replace`` and
the WAL truncation, mid-parse of a hot reload.  This module provides
that as **failpoints**: named call sites (``faults.fire("wal.fsync")``)
threaded through the WAL, the artifact publisher and the model manager,
which do nothing until a test arms them.

Design constraints, in order:

* **zero cost when disarmed** — production code calls
  :func:`fire` on hot paths; when nothing is armed that is one module
  attribute read and a falsy check, no lock, no allocation;
* **reachable from outside the process** — the crash-sweep test kills a
  real serving subprocess, so arming must work through the environment:
  ``REPRO_FAULTS="wal.fsync:crash@2"`` (armed by ``repro-classify
  serve`` at startup via :func:`arm_from_env`);
* **deterministic** — a failpoint fires on an exact hit count
  (``@n`` lets ``n`` hits pass first), so a sweep can land the fault on
  the fourth ingest batch, not "sometime".

Actions:

``raise``
    Raise :class:`~repro.exceptions.FaultInjectedError` (a
    :class:`~repro.exceptions.ReproError`, so it flows through the same
    handling as real library failures).
``crash``
    ``os._exit(86)`` — no ``atexit``, no buffer flush, no destructors:
    the closest a test can get to ``kill -9`` from the inside, and the
    point of the whole module.
``delay=<seconds>``
    Sleep, then continue — for widening race windows.

The spec grammar (one or more comma-separated entries)::

    site:action[@after]
    wal.fsync:crash            # crash on the first fsync
    wal.append:raise@3         # let 3 appends pass, raise on the 4th
    reload.parse:delay=0.2     # every reload parse sleeps 200 ms
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field

from ..exceptions import FaultInjectedError, ValidationError
from ..logging_utils import get_logger

__all__ = ["FaultInjector", "CRASH_SWEEP_SITES", "KNOWN_SITES",
           "fire", "arm_from_env", "injector", "CRASH_EXIT_CODE"]

_LOG = get_logger("testing.faults")

#: Exit status of a ``crash`` action — distinctive, so a harness can
#: tell an injected crash from an ordinary failure.
CRASH_EXIT_CODE = 86

#: Every failpoint the library threads :func:`fire` through.
KNOWN_SITES = (
    "wal.append",        # WAL record buffered, before the write
    "wal.fsync",         # before the WAL fsync that acks a batch
    "wal.checkpoint",    # before the checkpoint's atomic os.replace
    "artifact.replace",  # before publish()'s artifact os.replace
    "reload.parse",      # before a (re)load parses the artifact
)

#: The failpoints the crash-point sweep must kill a live server at:
#: every point in the mutation/publish path where a crash could lose an
#: acked ingest or double-apply one.  ``reload.parse`` is excluded —
#: reloads never mutate the WAL, so crashing there is covered by the
#: ordinary reload-failure tests.
CRASH_SWEEP_SITES = ("wal.append", "wal.fsync", "wal.checkpoint",
                     "artifact.replace")

_ACTIONS = ("raise", "crash", "delay")


@dataclass
class _Failpoint:
    """One armed site: what to do and when to start doing it."""

    action: str
    after: int = 0            # hits allowed through before firing
    delay: float = 0.0        # seconds, for the delay action
    hits: int = field(default=0)


class FaultInjector:
    """A registry of armed failpoints (see module docstring).

    The module-level :data:`injector` is the one production code sites
    consult through :func:`fire`; tests may also instantiate private
    injectors and call :meth:`FaultInjector.fire` on them directly.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._armed: dict[str, _Failpoint] = {}

    # -------------------------------------------------------------- arming
    def arm(self, site: str, action: str = "raise", *,
            after: int = 0, delay: float = 0.0) -> None:
        """Arm ``site`` with ``action``; ``after`` hits pass first."""

        if action not in _ACTIONS:
            raise ValidationError(
                f"unknown fault action {action!r}; use one of {_ACTIONS}")
        if after < 0:
            raise ValidationError("after must be >= 0")
        if action == "delay" and delay <= 0:
            raise ValidationError("the delay action needs delay > 0")
        with self._lock:
            self._armed[site] = _Failpoint(action=action, after=int(after),
                                           delay=float(delay))

    def arm_from_spec(self, spec: str) -> None:
        """Arm every entry of a ``site:action[@after]`` spec string."""

        for entry in spec.split(","):
            entry = entry.strip()
            if not entry:
                continue
            site, sep, action = entry.partition(":")
            if not sep or not site or not action:
                raise ValidationError(
                    f"fault spec entry {entry!r} is not site:action[@after]")
            after = 0
            if "@" in action:
                action, _, count = action.partition("@")
                try:
                    after = int(count)
                except ValueError as exc:
                    raise ValidationError(
                        f"fault spec entry {entry!r} has a non-integer "
                        f"@after count") from exc
            delay = 0.0
            if action.startswith("delay="):
                try:
                    delay = float(action[len("delay="):])
                except ValueError as exc:
                    raise ValidationError(
                        f"fault spec entry {entry!r} has a non-numeric "
                        f"delay") from exc
                action = "delay"
            self.arm(site, action, after=after, delay=delay)

    def disarm(self, site: str | None = None) -> None:
        """Disarm one site, or every site when ``site`` is ``None``."""

        with self._lock:
            if site is None:
                self._armed.clear()
            else:
                self._armed.pop(site, None)

    # ------------------------------------------------------------ queries
    @property
    def armed(self) -> bool:
        return bool(self._armed)

    def armed_sites(self) -> tuple[str, ...]:
        with self._lock:
            return tuple(sorted(self._armed))

    def hits(self, site: str) -> int:
        """How many times ``site`` has been hit while armed."""

        with self._lock:
            point = self._armed.get(site)
            return 0 if point is None else point.hits

    # -------------------------------------------------------------- firing
    def fire(self, site: str) -> None:
        """Trigger ``site``'s action if armed (and past its grace hits).

        The dict read below is deliberately unlocked: arming happens
        before the workload in every harness, so the only race is with
        ``disarm``, where missing one last fire is exactly what
        disarming asks for.
        """

        point = self._armed.get(site)
        if point is None:
            return
        with self._lock:
            # Re-check under the lock; hit counting must be exact for
            # the @after grace window to be deterministic.
            point = self._armed.get(site)
            if point is None:
                return
            point.hits += 1
            if point.hits <= point.after:
                return
            action, delay = point.action, point.delay
        if action == "crash":
            _LOG.warning("failpoint %s: crashing the process", site)
            os._exit(CRASH_EXIT_CODE)
        if action == "delay":
            time.sleep(delay)
            return
        raise FaultInjectedError(f"injected fault at failpoint {site!r}")


#: The process-global injector every library failpoint consults.
injector = FaultInjector()


def fire(site: str) -> None:
    """Module-level fast path for library call sites.

    One attribute read and a falsy dict check when nothing is armed —
    cheap enough for the WAL append/fsync hot path.
    """

    if injector._armed:
        injector.fire(site)


def arm_from_env(environ: dict | None = None) -> bool:
    """Arm the global injector from ``REPRO_FAULTS``; True if armed.

    Called by ``repro-classify serve`` at startup so a test harness can
    inject faults into a real serving subprocess it is about to crash.
    """

    spec = (os.environ if environ is None else environ).get("REPRO_FAULTS")
    if not spec:
        return False
    injector.arm_from_spec(spec)
    _LOG.warning("fault injection armed from REPRO_FAULTS: %s",
                 ", ".join(injector.armed_sites()))
    return True
