"""Logging helpers shared across the :mod:`repro` package.

The library never configures the root logger; applications opt in by
calling :func:`configure_logging` (the examples and benchmarks do).  All
modules obtain their logger via :func:`get_logger` so that the whole
package lives under the ``repro`` logging namespace.
"""

from __future__ import annotations

import logging
import sys
import time
from contextlib import contextmanager
from typing import Iterator

_PACKAGE_LOGGER_NAME = "repro"

_DEFAULT_FORMAT = "%(asctime)s %(levelname)-7s %(name)s: %(message)s"


def get_logger(name: str | None = None) -> logging.Logger:
    """Return a logger below the ``repro`` namespace.

    Parameters
    ----------
    name:
        Dotted suffix below ``repro`` (e.g. ``"corpus.builder"``).  ``None``
        returns the package root logger.
    """

    if not name:
        return logging.getLogger(_PACKAGE_LOGGER_NAME)
    if name.startswith(_PACKAGE_LOGGER_NAME):
        return logging.getLogger(name)
    return logging.getLogger(f"{_PACKAGE_LOGGER_NAME}.{name}")


def configure_logging(level: int | str = logging.INFO,
                      stream=None,
                      fmt: str = _DEFAULT_FORMAT) -> logging.Logger:
    """Attach a stream handler to the package logger (idempotent).

    Returns the package root logger.  Calling this twice does not duplicate
    handlers, which keeps repeated example/benchmark runs quiet.
    """

    logger = logging.getLogger(_PACKAGE_LOGGER_NAME)
    logger.setLevel(level)
    if stream is None:
        stream = sys.stderr
    has_stream_handler = any(
        isinstance(h, logging.StreamHandler) and getattr(h, "stream", None) is stream
        for h in logger.handlers
    )
    if not has_stream_handler:
        handler = logging.StreamHandler(stream)
        handler.setFormatter(logging.Formatter(fmt))
        logger.addHandler(handler)
    return logger


@contextmanager
def log_duration(logger: logging.Logger, message: str,
                 level: int = logging.INFO) -> Iterator[None]:
    """Log ``message`` together with the wall-clock duration of the block."""

    start = time.perf_counter()
    try:
        yield
    finally:
        elapsed = time.perf_counter() - start
        logger.log(level, "%s (%.3f s)", message, elapsed)
