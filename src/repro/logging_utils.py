"""Logging helpers shared across the :mod:`repro` package.

The library never configures the root logger; applications opt in by
calling :func:`configure_logging` (the examples and benchmarks do).  All
modules obtain their logger via :func:`get_logger` so that the whole
package lives under the ``repro`` logging namespace.
"""

from __future__ import annotations

import logging
import sys
import time
from contextlib import contextmanager
from typing import Iterator

_PACKAGE_LOGGER_NAME = "repro"

_DEFAULT_FORMAT = "%(asctime)s %(levelname)-7s %(name)s: %(message)s"

#: Format used by multi-threaded processes (the serving tier): the
#: emitting thread name pins each line to a handler / batch worker /
#: watcher thread, which is what makes concurrent logs readable.
THREADED_FORMAT = ("%(asctime)s %(levelname)-7s [%(threadName)s] "
                   "%(name)s: %(message)s")


def get_logger(name: str | None = None) -> logging.Logger:
    """Return a logger below the ``repro`` namespace.

    Parameters
    ----------
    name:
        Dotted suffix below ``repro`` (e.g. ``"corpus.builder"``).  ``None``
        returns the package root logger.
    """

    if not name:
        return logging.getLogger(_PACKAGE_LOGGER_NAME)
    if name.startswith(_PACKAGE_LOGGER_NAME):
        return logging.getLogger(name)
    return logging.getLogger(f"{_PACKAGE_LOGGER_NAME}.{name}")


def configure_logging(level: int | str = logging.INFO,
                      stream=None,
                      fmt: str | None = None, *,
                      include_thread: bool = False) -> logging.Logger:
    """Attach a stream handler to the package logger (idempotent).

    Returns the package root logger.  Calling this twice does not duplicate
    handlers, which keeps repeated example/benchmark runs quiet.
    ``include_thread=True`` selects :data:`THREADED_FORMAT` (used by
    ``repro-classify serve``); an explicit ``fmt`` wins over it.
    """

    if fmt is None:
        fmt = THREADED_FORMAT if include_thread else _DEFAULT_FORMAT
    logger = logging.getLogger(_PACKAGE_LOGGER_NAME)
    logger.setLevel(level)
    if stream is None:
        stream = sys.stderr
    for handler in logger.handlers:
        if (isinstance(handler, logging.StreamHandler)
                and getattr(handler, "stream", None) is stream):
            # Re-configuration updates the format in place (e.g. the
            # serve command switching an already-attached --verbose
            # handler to the thread-aware format) instead of silently
            # keeping the old one.
            handler.setFormatter(logging.Formatter(fmt))
            return logger
    handler = logging.StreamHandler(stream)
    handler.setFormatter(logging.Formatter(fmt))
    logger.addHandler(handler)
    return logger


@contextmanager
def log_duration(logger: logging.Logger, message: str,
                 level: int = logging.INFO) -> Iterator[None]:
    """Log ``message`` together with the wall-clock duration of the block."""

    start = time.perf_counter()
    try:
        yield
    finally:
        elapsed = time.perf_counter() - start
        logger.log(level, "%s (%.3f s)", message, elapsed)
