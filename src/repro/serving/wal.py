"""Write-ahead log for online corpus mutations.

An acked ``POST /ingest`` must survive a crash.  Before PR 9 it lived
only in process memory until the next periodic republish — an OOM-kill
silently lost every mutation since the last ``.rpm`` export.  This
module closes that gap with the classic recipe: every corpus mutation
(``ingest``, ``purge``, ``compact``) is appended to an append-only log
and fsynced **before** the request is acknowledged; on restart the
serving process replays the log's tail over the last published
artifact and carries on as if the crash never happened.

Physical format
---------------
The log file opens with the 8-byte magic ``RPROWAL1``; after it come
length-prefixed records::

    <u32 length> <u32 crc32-of-body> <body: length bytes of UTF-8 JSON>

The body is one JSON object carrying a monotonically increasing
``seq`` (never reused within a log directory, including across
checkpoints), an ``op`` (``ingest`` / ``purge`` / ``compact`` /
``checkpoint``) and the op's payload.  CRC32 is per record, so a torn
final record — the only damage an append-crash can cause — is detected
and truncated on recovery; a bad record *before* the final one means
real corruption and recovery refuses to guess unless asked to
``repair``.

Durability and ordering
-----------------------
Appends buffer into the OS write cache; :meth:`WriteAheadLog.sync`
fsyncs everything buffered so far.  The manager's ingest path appends
one record per coalesced micro-batch and syncs once — **group
commit**: one fsync amortised over the whole batch, which is where the
multiple-x ingest throughput over fsync-per-record comes from
(``benchmarks/bench_wal.py`` enforces the floor).  The ack ordering
guarantee is append → apply → fsync → ack: a record is durable before
its client sees 200, and a mutation that fails validation is rolled
back (:meth:`rollback`) before it was ever fsynced.

Checkpoints
-----------
``publish()`` writes the grown corpus as an atomic artifact whose
header records ``{"sequence": N, "generation": G}`` — "this corpus
already contains every mutation with seq <= N".  The WAL is then
truncated through :meth:`checkpoint`: a sibling temporary file holding
only a ``checkpoint`` record is fsynced and ``os.replace``-d over the
log, the same crash-atomic primitive every artifact writer here uses.
A crash **between** the artifact replace and the WAL truncation leaves
old records in the log, but their seqs are <= the artifact's
checkpoint, so replay skips them — no mutation is ever applied twice.

Failpoints ``wal.append``, ``wal.fsync`` and ``wal.checkpoint``
(:mod:`repro.testing.faults`) are threaded through the corresponding
operations so the crash-sweep harness can kill the process at each.
"""

from __future__ import annotations

import json
import os
import struct
import threading
import zlib
from dataclasses import dataclass
from pathlib import Path

from ..exceptions import WALCorruptionError, WALError
from ..logging_utils import get_logger
from ..observability.trace import span
from ..testing import faults

__all__ = ["WAL_MAGIC", "WAL_FILE_NAME", "MAX_RECORD_BYTES", "WALRecord",
           "WALRecovery", "WriteAheadLog", "encode_record", "decode_records"]

_LOG = get_logger("serving.wal")

#: File magic of a write-ahead log.
WAL_MAGIC = b"RPROWAL1"

#: Name of the live log inside a ``--wal-dir`` directory.
WAL_FILE_NAME = "wal.log"

#: Per-record frame: little-endian body length then CRC32 of the body.
_FRAME = struct.Struct("<II")

#: Upper bound on one record body.  Generous (an ingest micro-batch of
#: 32 samples at the 32 MiB per-item cap base64s to ~1.4 GiB is *not*
#: realistic for a WAL'd deployment; operators cap items well below
#: that), but mostly a guard against interpreting corrupt length
#: prefixes as multi-terabyte reads.
MAX_RECORD_BYTES = 1 << 31

#: Operations a record may carry.
_OPS = ("ingest", "purge", "compact", "checkpoint")


@dataclass(frozen=True)
class WALRecord:
    """One decoded log record."""

    seq: int
    op: str
    payload: dict

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise WALError(f"unknown WAL op {self.op!r}; expected one "
                           f"of {_OPS}")
        if self.seq < 0:
            raise WALError(f"WAL seq must be >= 0, got {self.seq}")


@dataclass(frozen=True)
class WALRecovery:
    """What :meth:`WriteAheadLog.recover` found.

    ``records`` holds the surviving *mutation* records in log order;
    ``checkpoint`` is the leading checkpoint record's payload (or
    ``None`` for a log that was never truncated);
    ``truncated_bytes`` counts what a torn tail lost (always the
    unacknowledged final record, never acked history); and
    ``dropped_records`` counts complete records discarded by an
    explicit ``repair`` of mid-log corruption.
    """

    records: tuple[WALRecord, ...]
    checkpoint: dict | None
    truncated_bytes: int
    dropped_records: int


# ------------------------------------------------------------------ codec
def encode_record(record: WALRecord) -> bytes:
    """Serialise one record as its length-prefixed CRC-framed bytes."""

    body = json.dumps({"seq": record.seq, "op": record.op,
                       **record.payload},
                      sort_keys=True, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_RECORD_BYTES:
        raise WALError(f"WAL record of {len(body)} bytes exceeds the "
                       f"{MAX_RECORD_BYTES}-byte cap")
    return _FRAME.pack(len(body), zlib.crc32(body)) + body


def _decode_body(body: bytes, *, source: str) -> WALRecord:
    try:
        obj = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise WALCorruptionError(
            f"{source}: record body is not valid JSON ({exc}) despite a "
            "matching checksum") from exc
    if not isinstance(obj, dict):
        raise WALCorruptionError(f"{source}: record body is not an object")
    try:
        seq = int(obj.pop("seq"))
        op = str(obj.pop("op"))
    except (KeyError, TypeError, ValueError) as exc:
        raise WALCorruptionError(
            f"{source}: record is missing seq/op: {exc}") from exc
    if op not in _OPS:
        raise WALCorruptionError(f"{source}: record declares unknown op "
                                 f"{op!r}")
    return WALRecord(seq=seq, op=op, payload=obj)


def decode_records(data: bytes, *, source: str = "WAL", repair: bool = False,
                   base_offset: int = 0) -> tuple[list[WALRecord], int, int]:
    """Decode every record of ``data`` (the bytes after the magic).

    Returns ``(records, valid_bytes, dropped_records)`` where
    ``valid_bytes`` is the length of the valid prefix (relative to
    ``data``); bytes past it belong to a torn final record and should
    be truncated.  Raises :class:`WALCorruptionError` for damage before
    the final record unless ``repair`` is true, in which case the log
    is cut at the first bad record and the rest counted as dropped.
    ``base_offset`` (the magic's size when decoding a file) is added to
    the offsets *reported in error messages* so they are absolute file
    positions an operator can seek to; the returned ``valid_bytes``
    stays relative to ``data``.
    """

    records: list[WALRecord] = []
    offset = 0
    size = len(data)
    while offset < size:
        remaining = size - offset
        if remaining < _FRAME.size:
            break                                   # torn frame header
        length, crc = _FRAME.unpack_from(data, offset)
        body_start = offset + _FRAME.size
        if length > MAX_RECORD_BYTES:
            # A corrupt length prefix; whether this is a torn tail or
            # mid-log damage is undecidable, so treat it like any other
            # non-final corruption below only if bytes follow a sane
            # record — an insane length always ends the scan.
            if repair:
                return records, offset, _count_following(data, offset)
            raise WALCorruptionError(
                f"{source}: record at offset {base_offset + offset} "
                f"declares an implausible length of {length} bytes")
        if length > remaining - _FRAME.size:
            break                                   # torn body
        body = data[body_start:body_start + length]
        if zlib.crc32(body) != crc:
            if body_start + length == size:
                break                               # torn final record
            if repair:
                return records, offset, _count_following(data, offset)
            raise WALCorruptionError(
                f"{source}: checksum mismatch at offset "
                f"{base_offset + offset} with "
                f"{size - body_start - length} bytes following — the log "
                "is corrupt before its final record; re-run with repair "
                "to truncate it here (losing every later record)")
        try:
            record = _decode_body(body, source=source)
        except WALCorruptionError:
            if body_start + length == size:
                break                               # torn final record
            if repair:
                return records, offset, _count_following(data, offset)
            raise
        if records and record.seq <= records[-1].seq:
            if repair:
                return records, offset, _count_following(data, offset)
            raise WALCorruptionError(
                f"{source}: sequence went backwards at offset "
                f"{base_offset + offset} "
                f"({records[-1].seq} -> {record.seq})")
        records.append(record)
        offset = body_start + length
    return records, offset, 0


def _count_following(data: bytes, offset: int) -> int:
    """How many whole frames follow ``offset`` (for repair reporting)."""

    count = 0
    size = len(data)
    while offset + _FRAME.size <= size:
        length, _ = _FRAME.unpack_from(data, offset)
        if length > MAX_RECORD_BYTES or offset + _FRAME.size + length > size:
            break
        count += 1
        offset += _FRAME.size + length
    return max(count, 1)


def _fsync_directory(directory: Path) -> None:
    try:
        dir_fd = os.open(str(directory), os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(dir_fd)
    except OSError:
        pass                  # e.g. filesystems refusing directory fsync
    finally:
        os.close(dir_fd)


# ------------------------------------------------------------------- log
class WriteAheadLog:
    """Append-only, CRC-checksummed, group-commit mutation log.

    Thread-safe; in practice every append runs under the model
    manager's mutation (predict) lock, which also makes the
    :meth:`mark`/:meth:`rollback` pair race-free.

    Parameters
    ----------
    path:
        Directory holding the log (created if missing) or a direct path
        to the log file.
    metrics:
        Optional :class:`~repro.serving.metrics.MetricsRegistry`;
        ``wal_records``, ``wal_bytes`` and ``wal_fsyncs`` counters are
        published to it.
    """

    def __init__(self, path: str | os.PathLike, *, metrics=None) -> None:
        path = Path(path)
        if path.suffix != ".log" and not path.is_file():
            path.mkdir(parents=True, exist_ok=True)
        if path.is_dir():
            path = path / WAL_FILE_NAME
        self.path = path
        self._lock = threading.Lock()
        self._handle = None
        self._last_seq = 0
        self._size = 0
        self._synced_size = 0
        self._recovered: WALRecovery | None = None
        self._records = (metrics.counter("wal_records")
                         if metrics is not None else None)
        self._bytes = (metrics.counter("wal_bytes")
                       if metrics is not None else None)
        self._fsyncs = (metrics.counter("wal_fsyncs")
                        if metrics is not None else None)

    # ------------------------------------------------------------ recovery
    def recover(self, *, repair: bool = False) -> WALRecovery:
        """Open the log, validate it, truncate a torn tail.

        Must be called exactly once before the first append.  Returns
        the surviving mutation records for the owner to replay (the
        owner decides which are already covered by its artifact's
        checkpoint).
        """

        with self._lock:
            if self._handle is not None:
                raise WALError(f"WAL {self.path} is already open")
            self.path.parent.mkdir(parents=True, exist_ok=True)
            fresh = not self.path.exists()
            if fresh:
                self._create_locked(checkpoint=None)
                recovery = WALRecovery(records=(), checkpoint=None,
                                       truncated_bytes=0, dropped_records=0)
            else:
                recovery = self._recover_existing_locked(repair)
            self._recovered = recovery
            self._handle = open(self.path, "ab")
            self._size = self._handle.tell()
            self._synced_size = self._size
            return recovery

    def _recover_existing_locked(self, repair: bool) -> WALRecovery:
        try:
            raw = self.path.read_bytes()
        except OSError as exc:
            raise WALError(f"cannot read WAL {self.path}: {exc}") from exc
        if len(raw) < len(WAL_MAGIC):
            # A crash can tear even the magic of a freshly created log;
            # nothing was ever appended, so recreate it.
            _LOG.warning("WAL %s is truncated inside its magic; "
                         "recreating", self.path)
            self._create_locked(checkpoint=None)
            return WALRecovery(records=(), checkpoint=None,
                               truncated_bytes=len(raw), dropped_records=0)
        if raw[:len(WAL_MAGIC)] != WAL_MAGIC:
            raise WALCorruptionError(
                f"{self.path} is not a write-ahead log (bad magic)")
        records, valid, dropped = decode_records(
            raw[len(WAL_MAGIC):], source=str(self.path), repair=repair,
            base_offset=len(WAL_MAGIC))
        torn = len(raw) - len(WAL_MAGIC) - valid
        if torn or dropped:
            with open(self.path, "rb+") as fh:
                fh.truncate(len(WAL_MAGIC) + valid)
                fh.flush()
                os.fsync(fh.fileno())
            if dropped:
                _LOG.warning("WAL %s: repair dropped %d record(s) after "
                             "mid-log corruption at offset %d", self.path,
                             dropped, len(WAL_MAGIC) + valid)
            else:
                _LOG.warning("WAL %s: truncated a torn final record "
                             "(%d bytes)", self.path, torn)
        checkpoint = None
        mutations = []
        for position, record in enumerate(records):
            if record.op == "checkpoint":
                if position != 0:
                    raise WALCorruptionError(
                        f"{self.path}: checkpoint record in mid-log "
                        f"position {position}")
                checkpoint = dict(record.payload)
                checkpoint["sequence"] = record.seq
            else:
                mutations.append(record)
        if records:
            self._last_seq = records[-1].seq
        return WALRecovery(records=tuple(mutations), checkpoint=checkpoint,
                           truncated_bytes=torn, dropped_records=dropped)

    def _create_locked(self, checkpoint: WALRecord | None) -> None:
        """Write a fresh log (magic + optional leading checkpoint)
        crash-atomically next to the final path."""

        tmp = self.path.with_name(self.path.name +
                                  f".tmp-{os.getpid()}")
        try:
            with open(tmp, "wb") as fh:
                fh.write(WAL_MAGIC)
                if checkpoint is not None:
                    fh.write(encode_record(checkpoint))
                fh.flush()
                os.fsync(fh.fileno())
            if checkpoint is not None:
                faults.fire("wal.checkpoint")
            os.replace(tmp, self.path)
        except OSError as exc:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise WALError(f"cannot write WAL {self.path}: {exc}") from exc
        _fsync_directory(self.path.parent)

    # -------------------------------------------------------------- append
    @property
    def last_seq(self) -> int:
        """Sequence number of the newest record (0 on a fresh log)."""

        with self._lock:
            return self._last_seq

    @property
    def size_bytes(self) -> int:
        with self._lock:
            return self._size

    @property
    def recovery(self) -> WALRecovery | None:
        """What :meth:`recover` found (``None`` before recovery)."""

        return self._recovered

    def mark(self) -> tuple[int, int]:
        """Rollback token: the current ``(size, last_seq)``."""

        with self._lock:
            self._check_open_locked()
            return self._size, self._last_seq

    def append(self, op: str, payload: dict, *, sync: bool = True) -> int:
        """Append one mutation record; returns its sequence number.

        With ``sync=False`` the record is buffered (and pushed into the
        OS cache) but not yet durable — callers batch appends and call
        :meth:`sync` once before acking, the group-commit shape.
        """

        faults.fire("wal.append")
        with self._lock:
            self._check_open_locked()
            seq = self._last_seq + 1
            frame = encode_record(WALRecord(seq=seq, op=op, payload=payload))
            try:
                self._handle.write(frame)
                # Keep the kernel's view current so mark()/rollback()
                # can use ftruncate offsets directly.
                self._handle.flush()
            except OSError as exc:
                raise WALError(
                    f"cannot append to WAL {self.path}: {exc}") from exc
            self._last_seq = seq
            self._size += len(frame)
            if self._records is not None:
                self._records.inc()
                self._bytes.inc(len(frame))
        if sync:
            self.sync()
        return seq

    def sync(self) -> None:
        """fsync everything appended so far (the group-commit point)."""

        faults.fire("wal.fsync")
        # The span covers lock wait + flush + fsync: that *is* the
        # durability cost an acked ingest request paid.
        with span("wal_fsync"), self._lock:
            self._check_open_locked()
            if self._synced_size == self._size:
                return
            try:
                self._handle.flush()
                os.fsync(self._handle.fileno())
            except OSError as exc:
                raise WALError(
                    f"cannot fsync WAL {self.path}: {exc}") from exc
            self._synced_size = self._size
            if self._fsyncs is not None:
                self._fsyncs.inc()

    def rollback(self, token: tuple[int, int]) -> None:
        """Truncate back to a :meth:`mark` token.

        Only used for records that were appended but whose apply failed
        validation *before* the batch's fsync — nothing durable (let
        alone acked) is ever rolled back.
        """

        size, last_seq = token
        with self._lock:
            self._check_open_locked()
            if size > self._size:
                raise WALError("rollback token is ahead of the log")
            if size == self._size:
                return
            if self._synced_size > size:
                raise WALError(
                    "refusing to roll back records that were already "
                    "fsynced (they may have been acknowledged)")
            try:
                self._handle.truncate(size)
                self._handle.seek(size)
            except OSError as exc:
                raise WALError(
                    f"cannot roll back WAL {self.path}: {exc}") from exc
            self._size = size
            self._last_seq = last_seq

    # ---------------------------------------------------------- checkpoint
    def checkpoint(self, *, sequence: int, generation: int) -> None:
        """Truncate the log: everything with seq <= ``sequence`` is now
        in the published artifact.

        The replacement log (magic + one checkpoint record) is written
        to a sibling temporary file, fsynced, and moved into place with
        ``os.replace`` — a crash leaves either the old complete log
        (replay skips it via the artifact's checkpoint) or the new
        truncated one, never a torn file.
        """

        with self._lock:
            self._check_open_locked()
            if sequence != self._last_seq:
                # Truncating below last_seq would silently drop the
                # records in (sequence, last_seq]; callers snapshot
                # last_seq under the mutation lock, so inequality is a
                # logic error, not a state to paper over.
                raise WALError(
                    f"cannot checkpoint at seq {sequence}; the log "
                    f"reaches {self._last_seq}")
            if self._synced_size != self._size:
                raise WALError(
                    "refusing to checkpoint over unsynced records")
            record = WALRecord(seq=sequence, op="checkpoint",
                               payload={"generation": int(generation)})
            self._handle.close()
            self._handle = None
            try:
                self._create_locked(record)
            finally:
                # Reopen even if the replace failed: the old log is
                # still intact and appends must keep working.
                self._handle = open(self.path, "ab")
                self._size = self._handle.tell()
                self._synced_size = self._size
            self._last_seq = max(self._last_seq, sequence)
        _LOG.info("checkpointed WAL %s at seq %d (generation %d)",
                  self.path, sequence, generation)

    # ------------------------------------------------------------ lifecycle
    def close(self) -> None:
        """Flush, fsync and close (idempotent)."""

        with self._lock:
            if self._handle is None:
                return
            try:
                self._handle.flush()
                os.fsync(self._handle.fileno())
            except OSError:          # pragma: no cover — best effort
                pass
            self._handle.close()
            self._handle = None

    def _check_open_locked(self) -> None:
        if self._handle is None:
            raise WALError(
                f"WAL {self.path} is not open (call recover() first, "
                "and not after close())")
