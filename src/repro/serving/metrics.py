"""Thread-safe serving metrics: counters, gauges and histograms.

The serving tier needs operational visibility without pulling in a
metrics client library, so this module implements the three classic
instrument kinds on top of plain locks:

* :class:`Counter` — monotonically increasing event count;
* :class:`Gauge` — a value that goes up and down (queue depth, model
  generation);
* :class:`Histogram` — fixed-bucket distribution with estimated
  quantiles (p50/p95/p99 in snapshots), sized for request latencies.

A :class:`MetricsRegistry` owns named instruments, creates them lazily
and renders one JSON-friendly ``snapshot()`` — the body of the server's
``GET /metrics`` endpoint.  Every instrument is independently locked,
so handler threads, coalescer workers and the model-watcher thread can
all record without contending on a single global lock.
"""

from __future__ import annotations

import math
import threading
from typing import Mapping, Sequence

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry",
           "DEFAULT_LATENCY_BUCKETS", "DEFAULT_BATCH_BUCKETS"]

#: Latency bucket upper bounds, in seconds (sub-ms to 10 s).
DEFAULT_LATENCY_BUCKETS = (0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
                           0.25, 0.5, 1.0, 2.5, 5.0, 10.0)

#: Batch-size bucket upper bounds (powers of two up to 256 items).
DEFAULT_BATCH_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0)


class Counter:
    """Monotonically increasing counter."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        with self._lock:
            return self._value


class Gauge:
    """A value that can go up and down."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """Fixed-bucket histogram with estimated quantiles.

    ``buckets`` are the inclusive upper bounds of each finite bucket,
    strictly increasing; observations above the last bound land in an
    implicit overflow bucket.  Quantiles are estimated by linear
    interpolation over the cumulative bucket counts — the standard
    Prometheus-style approximation — except that the overflow bucket
    reports the maximum observed value (there is no finite upper bound
    to interpolate towards).
    """

    __slots__ = ("_lock", "_bounds", "_counts", "_count", "_sum", "_max")

    def __init__(self, buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS
                 ) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError("bucket bounds must be strictly increasing")
        self._lock = threading.Lock()
        self._bounds = bounds
        self._counts = [0] * (len(bounds) + 1)     # +1 overflow bucket
        self._count = 0
        self._sum = 0.0
        self._max = 0.0

    def observe(self, value: float) -> None:
        value = float(value)
        # bisect by hand: bounds tuples are short (10-15 entries) and
        # this avoids importing bisect into the hot path for no gain.
        position = 0
        for bound in self._bounds:
            if value <= bound:
                break
            position += 1
        with self._lock:
            self._counts[position] += 1
            self._count += 1
            self._sum += value
            if value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile (``0 <= q <= 1``); NaN when empty."""

        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be within [0, 1]")
        with self._lock:
            return self._quantile_locked(q)

    def _quantile_locked(self, q: float) -> float:
        if self._count == 0:
            return math.nan
        rank = q * self._count
        cumulative = 0
        for position, bucket_count in enumerate(self._counts):
            previous = cumulative
            cumulative += bucket_count
            if cumulative >= rank and bucket_count:
                if position == len(self._bounds):
                    return self._max
                lower = self._bounds[position - 1] if position else 0.0
                upper = self._bounds[position]
                fraction = (rank - previous) / bucket_count
                return lower + (upper - lower) * min(max(fraction, 0.0), 1.0)
        return self._max

    def snapshot(self) -> dict:
        with self._lock:
            buckets = {("+Inf" if i == len(self._bounds)
                        else repr(self._bounds[i])): count
                       for i, count in enumerate(self._counts)}
            return {
                "count": self._count,
                "sum": self._sum,
                "max": self._max,
                "p50": self._quantile_locked(0.50),
                "p95": self._quantile_locked(0.95),
                "p99": self._quantile_locked(0.99),
                "buckets": buckets,
            }


class MetricsRegistry:
    """Named instruments, created lazily, rendered as one snapshot."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        with self._lock:
            instrument = self._counters.get(name)
            if instrument is None:
                self._check_free(name)
                instrument = self._counters[name] = Counter()
            return instrument

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            instrument = self._gauges.get(name)
            if instrument is None:
                self._check_free(name)
                instrument = self._gauges[name] = Gauge()
            return instrument

    def histogram(self, name: str,
                  buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS
                  ) -> Histogram:
        with self._lock:
            instrument = self._histograms.get(name)
            if instrument is None:
                self._check_free(name)
                instrument = self._histograms[name] = Histogram(buckets)
            return instrument

    def _check_free(self, name: str) -> None:
        for kind in (self._counters, self._gauges, self._histograms):
            if name in kind:
                raise ValueError(
                    f"metric {name!r} already registered with another type")

    def snapshot(self) -> Mapping[str, object]:
        """One JSON-friendly mapping of every instrument's state."""

        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        payload: dict[str, object] = {}
        for name, counter in counters.items():
            payload[name] = counter.value
        for name, gauge in gauges.items():
            payload[name] = gauge.value
        for name, histogram in histograms.items():
            payload[name] = histogram.snapshot()
        return dict(sorted(payload.items()))
