"""Thread-safe serving metrics: counters, gauges and histograms.

The serving tier needs operational visibility without pulling in a
metrics client library, so this module implements the three classic
instrument kinds on top of plain locks:

* :class:`Counter` — monotonically increasing event count;
* :class:`Gauge` — a value that goes up and down (queue depth, model
  generation);
* :class:`Histogram` — fixed-bucket distribution with estimated
  quantiles (p50/p95/p99 in snapshots), sized for request latencies.

A :class:`MetricsRegistry` owns named instruments, creates them lazily
and renders one JSON-friendly ``snapshot()`` — the body of the server's
``GET /metrics`` endpoint.  Every instrument is independently locked,
so handler threads, coalescer workers and the model-watcher thread can
all record without contending on a single global lock.

Instruments can also be registered as labeled **families**
(``registry.histogram("stage_latency_seconds", labels=("stage",))``):
``family.labels(stage="dp_scoring")`` lazily creates one child
instrument per label-value tuple.  Families render into the JSON
snapshot as ``{"labels": [...], "series": [...]}`` (a new shape under
a new name — pre-existing unlabeled instruments keep their exact
shape) and into Prometheus exposition as one series per child.

Consistency: every multi-field read (``Histogram.snapshot()``,
``Histogram.state()``) happens under a single lock hold, so a
snapshot's bucket counts always sum to its ``count`` and its ``sum``/
``max``/quantiles describe the same set of observations — readers must
not stitch the ``count``/``sum`` properties together from separate
calls (two lock holds can interleave with an ``observe``), which is
why Prometheus exposition renders from :meth:`MetricsRegistry.collect`
/ :meth:`Histogram.state` instead.
"""

from __future__ import annotations

import math
import threading
from typing import Mapping, Sequence

__all__ = ["Counter", "Gauge", "Histogram", "InstrumentFamily",
           "MetricsRegistry", "DEFAULT_LATENCY_BUCKETS",
           "DEFAULT_BATCH_BUCKETS"]

#: Latency bucket upper bounds, in seconds (sub-ms to 10 s).
DEFAULT_LATENCY_BUCKETS = (0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
                           0.25, 0.5, 1.0, 2.5, 5.0, 10.0)

#: Batch-size bucket upper bounds (powers of two up to 256 items).
DEFAULT_BATCH_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0)


class Counter:
    """Monotonically increasing counter."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        with self._lock:
            return self._value


class Gauge:
    """A value that can go up and down."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """Fixed-bucket histogram with estimated quantiles.

    ``buckets`` are the inclusive upper bounds of each finite bucket,
    strictly increasing; observations above the last bound land in an
    implicit overflow bucket.  Quantiles are estimated by linear
    interpolation over the cumulative bucket counts — the standard
    Prometheus-style approximation — except that the overflow bucket
    reports the maximum observed value (there is no finite upper bound
    to interpolate towards).
    """

    __slots__ = ("_lock", "_bounds", "_counts", "_count", "_sum", "_max")

    def __init__(self, buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS
                 ) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError("bucket bounds must be strictly increasing")
        self._lock = threading.Lock()
        self._bounds = bounds
        self._counts = [0] * (len(bounds) + 1)     # +1 overflow bucket
        self._count = 0
        self._sum = 0.0
        self._max = 0.0

    def observe(self, value: float) -> None:
        value = float(value)
        # bisect by hand: bounds tuples are short (10-15 entries) and
        # this avoids importing bisect into the hot path for no gain.
        position = 0
        for bound in self._bounds:
            if value <= bound:
                break
            position += 1
        with self._lock:
            self._counts[position] += 1
            self._count += 1
            self._sum += value
            if value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def state(self) -> dict:
        """Raw state under one lock hold: internally consistent.

        ``{"bounds", "counts", "count", "sum", "max"}`` where
        ``counts`` has one overflow entry beyond ``bounds`` and always
        sums to ``count`` — the input Prometheus exposition renders
        cumulative ``_bucket``/``_sum``/``_count`` series from.
        """

        with self._lock:
            return {"bounds": self._bounds,
                    "counts": tuple(self._counts),
                    "count": self._count,
                    "sum": self._sum,
                    "max": self._max}

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile (``0 <= q <= 1``); NaN when empty."""

        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be within [0, 1]")
        with self._lock:
            return self._quantile_locked(q)

    def _quantile_locked(self, q: float) -> float:
        if self._count == 0:
            return math.nan
        rank = q * self._count
        cumulative = 0
        for position, bucket_count in enumerate(self._counts):
            previous = cumulative
            cumulative += bucket_count
            if cumulative >= rank and bucket_count:
                if position == len(self._bounds):
                    return self._max
                lower = self._bounds[position - 1] if position else 0.0
                upper = self._bounds[position]
                fraction = (rank - previous) / bucket_count
                return lower + (upper - lower) * min(max(fraction, 0.0), 1.0)
        return self._max

    def snapshot(self) -> dict:
        with self._lock:
            buckets = {("+Inf" if i == len(self._bounds)
                        else repr(self._bounds[i])): count
                       for i, count in enumerate(self._counts)}
            return {
                "count": self._count,
                "sum": self._sum,
                "max": self._max,
                "p50": self._quantile_locked(0.50),
                "p95": self._quantile_locked(0.95),
                "p99": self._quantile_locked(0.99),
                "buckets": buckets,
            }


class InstrumentFamily:
    """One named metric with labels: lazily-created child instruments.

    ``family.labels(stage="dp_scoring", shard="2")`` returns the child
    for that label-value tuple, creating it on first use.  Label names
    are fixed at registration; a missing label defaults to ``""``
    (rendered as an absent label in Prometheus exposition) and unknown
    label names are rejected.
    """

    __slots__ = ("name", "label_names", "_factory", "_lock", "_children")

    def __init__(self, name: str, label_names: Sequence[str],
                 factory) -> None:
        names = tuple(str(n) for n in label_names)
        if not names:
            raise ValueError("a labeled family needs at least one label")
        if len(set(names)) != len(names):
            raise ValueError("duplicate label names")
        self.name = name
        self.label_names = names
        self._factory = factory
        self._lock = threading.Lock()
        self._children: dict[tuple, object] = {}

    def labels(self, **labels):
        unknown = set(labels) - set(self.label_names)
        if unknown:
            raise ValueError(
                f"unknown labels {sorted(unknown)} for family "
                f"{self.name!r} (declared: {list(self.label_names)})")
        key = tuple(str(labels.get(n, "")) for n in self.label_names)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._children[key] = self._factory()
            return child

    def items(self) -> list[tuple[dict, object]]:
        """``(labels_dict, child)`` pairs, sorted by label values."""

        with self._lock:
            children = sorted(self._children.items())
        return [(dict(zip(self.label_names, key)), child)
                for key, child in children]

    def snapshot(self) -> dict:
        series = []
        for labels, child in self.items():
            if isinstance(child, Histogram):
                entry = dict(child.snapshot())
            else:
                entry = {"value": child.value}
            entry["labels"] = labels
            series.append(entry)
        return {"labels": list(self.label_names), "series": series}


class MetricsRegistry:
    """Named instruments, created lazily, rendered as one snapshot."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._families: dict[str, tuple[str, InstrumentFamily]] = {}

    def counter(self, name: str, *,
                labels: Sequence[str] | None = None):
        if labels is not None:
            return self._family(name, "counter", labels, Counter)
        with self._lock:
            instrument = self._counters.get(name)
            if instrument is None:
                self._check_free(name)
                instrument = self._counters[name] = Counter()
            return instrument

    def gauge(self, name: str, *,
              labels: Sequence[str] | None = None):
        if labels is not None:
            return self._family(name, "gauge", labels, Gauge)
        with self._lock:
            instrument = self._gauges.get(name)
            if instrument is None:
                self._check_free(name)
                instrument = self._gauges[name] = Gauge()
            return instrument

    def histogram(self, name: str,
                  buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS, *,
                  labels: Sequence[str] | None = None):
        if labels is not None:
            return self._family(name, "histogram", labels,
                                lambda: Histogram(buckets))
        with self._lock:
            instrument = self._histograms.get(name)
            if instrument is None:
                self._check_free(name)
                instrument = self._histograms[name] = Histogram(buckets)
            return instrument

    def _family(self, name: str, kind: str, labels: Sequence[str],
                factory) -> InstrumentFamily:
        with self._lock:
            entry = self._families.get(name)
            if entry is not None:
                existing_kind, family = entry
                if existing_kind != kind or \
                        family.label_names != tuple(labels):
                    raise ValueError(
                        f"metric {name!r} already registered as a "
                        f"{existing_kind} family with labels "
                        f"{list(family.label_names)}")
                return family
            self._check_free(name)
            family = InstrumentFamily(name, labels, factory)
            self._families[name] = (kind, family)
            return family

    def _check_free(self, name: str) -> None:
        for kind in (self._counters, self._gauges, self._histograms,
                     self._families):
            if name in kind:
                raise ValueError(
                    f"metric {name!r} already registered with another type")

    def snapshot(self) -> Mapping[str, object]:
        """One JSON-friendly mapping of every instrument's state.

        Unlabeled instruments keep the shape they have always had
        (counters/gauges as bare numbers, histograms as the
        ``snapshot()`` dict); labeled families render as
        ``{"labels": [...], "series": [...]}`` under their own name.
        Each instrument's state is read under a single lock hold, so
        every individual entry is internally consistent (the snapshot
        as a whole is not a point-in-time cut across instruments —
        counters keep moving while it is assembled).
        """

        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
            families = dict(self._families)
        payload: dict[str, object] = {}
        for name, counter in counters.items():
            payload[name] = counter.value
        for name, gauge in gauges.items():
            payload[name] = gauge.value
        for name, histogram in histograms.items():
            payload[name] = histogram.snapshot()
        for name, (_, family) in families.items():
            payload[name] = family.snapshot()
        return dict(sorted(payload.items()))

    def collect(self) -> list[tuple[str, str, list[tuple[dict, object]]]]:
        """Exposition feed: ``(name, kind, [(labels, state), ...])``.

        ``state`` is a number for counters/gauges and
        :meth:`Histogram.state` for histograms — each read under a
        single lock hold.  Sorted by metric name.
        """

        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
            families = dict(self._families)
        out: list[tuple[str, str, list]] = []
        for name, counter in counters.items():
            out.append((name, "counter", [({}, counter.value)]))
        for name, gauge in gauges.items():
            out.append((name, "gauge", [({}, gauge.value)]))
        for name, histogram in histograms.items():
            out.append((name, "histogram", [({}, histogram.state())]))
        for name, (kind, family) in families.items():
            series = []
            for labels, child in family.items():
                state = (child.state() if isinstance(child, Histogram)
                         else child.value)
                series.append((labels, state))
            out.append((name, kind, series))
        return sorted(out, key=lambda entry: entry[0])
