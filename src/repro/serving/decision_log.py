"""Append-only JSONL decision log with atomic size-based rotation.

Every decision the server returns can also be recorded durably — the
paper's monitoring story wants an audit trail of what ran where, not
just an HTTP response that evaporates.  The log is newline-delimited
JSON (one decision per line, the same shape as the wire protocol's
decision objects plus ``model_generation`` and a timestamp), which
tails, greps and loads into anything.

Rotation is size-based and atomic: when the active file would exceed
``max_bytes`` it is flushed, fsynced and renamed to ``<name>.1`` with a
single :func:`os.replace` (older backups shift up first, each shift its
own atomic replace — the same primitive ``FeatureStore.save`` and the
artifact writers use), then a fresh active file is opened.  A crash at
any point leaves only complete files with complete lines.
"""

from __future__ import annotations

import json
import os
import threading
from pathlib import Path

from ..exceptions import ValidationError
from ..logging_utils import get_logger

__all__ = ["DecisionLog"]

_LOG = get_logger("serving.decision_log")

#: Default rotation threshold (32 MiB).
DEFAULT_MAX_BYTES = 32 * 1024 * 1024

#: Default number of rotated files kept (``.1`` .. ``.N``).
DEFAULT_BACKUPS = 3


class DecisionLog:
    """Thread-safe append-only JSONL log with rotation."""

    def __init__(self, path: str | os.PathLike, *,
                 max_bytes: int = DEFAULT_MAX_BYTES,
                 backups: int = DEFAULT_BACKUPS,
                 metrics=None) -> None:
        # ValidationError (a ValueError) keeps the CLI's error contract
        # for operator-supplied --decision-log-max-bytes values.
        if max_bytes < 1:
            raise ValidationError("max_bytes must be >= 1")
        if backups < 0:
            raise ValidationError("backups must be >= 0")
        self.path = Path(path)
        self.max_bytes = int(max_bytes)
        self.backups = int(backups)
        self._lock = threading.Lock()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = open(self.path, "ab")
        self._size = self._handle.tell()
        self._rotations = (metrics.counter("decision_log_rotations_total")
                           if metrics is not None else None)
        self._lines = (metrics.counter("decision_log_lines_total")
                       if metrics is not None else None)

    # ---------------------------------------------------------------- write
    def append(self, payload: dict) -> None:
        """Append one record as a JSON line (rotating first if needed)."""

        line = json.dumps(payload, sort_keys=True).encode("utf-8") + b"\n"
        with self._lock:
            if self._handle is None:
                raise ValueError("decision log is closed")
            if self._size and self._size + len(line) > self.max_bytes:
                self._rotate_locked()
            self._handle.write(line)
            self._size += len(line)
            if self._lines is not None:
                self._lines.inc()

    def flush(self, *, sync: bool = False) -> None:
        """Flush buffered lines; ``sync=True`` also fsyncs to disk."""

        with self._lock:
            if self._handle is None:
                return
            self._handle.flush()
            if sync:
                os.fsync(self._handle.fileno())

    def close(self) -> None:
        """Flush, fsync and close (idempotent) — the shutdown path."""

        with self._lock:
            if self._handle is None:
                return
            self._handle.flush()
            os.fsync(self._handle.fileno())
            self._handle.close()
            self._handle = None

    # ------------------------------------------------------------- rotation
    def _rotate_locked(self) -> None:
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self._handle.close()
        if self.backups:
            # Shift older backups up (.N-1 -> .N, ... , .1 -> .2), each
            # shift one atomic replace, then retire the active file.
            for index in range(self.backups - 1, 0, -1):
                older = self.path.with_name(f"{self.path.name}.{index}")
                if older.exists():
                    os.replace(older,
                               self.path.with_name(
                                   f"{self.path.name}.{index + 1}"))
            os.replace(self.path, self.path.with_name(f"{self.path.name}.1"))
        else:
            os.unlink(self.path)
        self._handle = open(self.path, "ab")
        self._size = 0
        if self._rotations is not None:
            self._rotations.inc()
        _LOG.info("rotated decision log %s", self.path)
