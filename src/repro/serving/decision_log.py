"""Append-only JSONL decision log with atomic size-based rotation.

Every decision the server returns can also be recorded durably — the
paper's monitoring story wants an audit trail of what ran where, not
just an HTTP response that evaporates.  The log is newline-delimited
JSON (one decision per line, the same shape as the wire protocol's
decision objects plus ``model_generation`` and a timestamp), which
tails, greps and loads into anything.

Each written line additionally embeds a ``"crc"`` key — the CRC32 of
the canonical JSON of the rest of the line — so an audit-trail reader
can tell a complete record from a torn or bit-rotted one without
leaving JSONL.  On startup the tail of an existing log is validated:
a final chunk with no newline, or a final line that fails to parse or
whose checksum mismatches, is truncated away (a crash can only ever
tear the *last* line of an append-only file).  Lines written before
the checksum existed carry no ``"crc"`` and stay readable.

Rotation is size-based and atomic: when the active file would exceed
``max_bytes`` it is flushed, fsynced and renamed to ``<name>.1`` with a
single :func:`os.replace` (older backups shift up first, each shift its
own atomic replace — the same primitive ``FeatureStore.save`` and the
artifact writers use), then a fresh active file is opened.  A crash at
any point leaves only complete files with complete lines.
"""

from __future__ import annotations

import json
import os
import threading
import zlib
from pathlib import Path

from ..exceptions import ValidationError
from ..logging_utils import get_logger

__all__ = ["DecisionLog", "decode_decision_line", "encode_decision_line"]

_LOG = get_logger("serving.decision_log")

#: Default rotation threshold (32 MiB).
DEFAULT_MAX_BYTES = 32 * 1024 * 1024

#: Default number of rotated files kept (``.1`` .. ``.N``).
DEFAULT_BACKUPS = 3

#: How far from the end of an existing log the startup tail scan
#: reads.  Decision lines are a few hundred bytes; 64 KiB comfortably
#: covers the final line plus the complete one before it.
TAIL_SCAN_BYTES = 64 * 1024


def _payload_crc(payload: dict) -> int:
    body = json.dumps(payload, sort_keys=True).encode("utf-8")
    return zlib.crc32(body)


def encode_decision_line(payload: dict) -> bytes:
    """Serialise one decision as a CRC-suffixed JSON line."""

    if "crc" in payload:
        raise ValidationError(
            'decision payloads must not carry their own "crc" key')
    return json.dumps({**payload, "crc": _payload_crc(payload)},
                      sort_keys=True).encode("utf-8") + b"\n"


def decode_decision_line(line: bytes | str) -> dict:
    """Parse one log line, verifying its checksum when present.

    Lines from logs written before the checksum existed carry no
    ``"crc"`` key and are returned as-is — old audit trails stay
    readable.  Raises :class:`ValidationError` for unparseable lines
    and checksum mismatches.
    """

    if isinstance(line, bytes):
        line = line.decode("utf-8", errors="replace")
    try:
        obj = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ValidationError(
            f"decision log line is not valid JSON: {exc}") from exc
    if not isinstance(obj, dict):
        raise ValidationError("decision log line is not a JSON object")
    if "crc" not in obj:
        return obj
    crc = obj.pop("crc")
    if crc != _payload_crc(obj):
        raise ValidationError(
            f"decision log line checksum mismatch (recorded {crc!r})")
    return obj


class DecisionLog:
    """Thread-safe append-only JSONL log with rotation."""

    def __init__(self, path: str | os.PathLike, *,
                 max_bytes: int = DEFAULT_MAX_BYTES,
                 backups: int = DEFAULT_BACKUPS,
                 metrics=None) -> None:
        # ValidationError (a ValueError) keeps the CLI's error contract
        # for operator-supplied --decision-log-max-bytes values.
        if max_bytes < 1:
            raise ValidationError("max_bytes must be >= 1")
        if backups < 0:
            raise ValidationError("backups must be >= 0")
        self.path = Path(path)
        self.max_bytes = int(max_bytes)
        self.backups = int(backups)
        self._lock = threading.Lock()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.truncated_bytes = self._truncate_torn_tail()
        self._handle = open(self.path, "ab")
        self._size = self._handle.tell()
        self._rotations = (metrics.counter("decision_log_rotations_total")
                           if metrics is not None else None)
        self._lines = (metrics.counter("decision_log_lines_total")
                       if metrics is not None else None)

    # ------------------------------------------------------------- recovery
    def _truncate_torn_tail(self) -> int:
        """Drop an incomplete or corrupt final line from an existing log.

        A crash mid-append can only damage the end of an append-only
        file: either the last bytes have no terminating newline (a torn
        write) or the final line is complete but fails to parse /
        checksum (a tear that happened to end at a newline boundary).
        Only the final line is ever dropped — everything before it was
        terminated by a later successful append.  Returns the bytes
        truncated (0 for a clean or missing log).
        """

        try:
            size = os.path.getsize(self.path)
        except OSError:
            return 0
        if size == 0:
            return 0
        with open(self.path, "rb+") as fh:
            window = min(size, TAIL_SCAN_BYTES)
            fh.seek(size - window)
            tail = fh.read(window)
            if b"\n" not in tail and window < size:
                # A torn line longer than the scan window: scan it all.
                fh.seek(0)
                tail = fh.read(size)
                window = size
            valid_end = size
            if not tail.endswith(b"\n"):
                newline = tail.rfind(b"\n")
                valid_end = (size - window + newline + 1
                             if newline != -1 else size - window)
            # Validate the (now) final complete line too; drop it when
            # it fails to parse or checksum.
            head = tail[:valid_end - (size - window)]
            lines = head.splitlines(keepends=True)
            if lines and (window == size or len(lines) > 1):
                try:
                    decode_decision_line(lines[-1])
                except ValidationError:
                    valid_end -= len(lines[-1])
            if valid_end == size:
                return 0
            fh.truncate(valid_end)
            fh.flush()
            os.fsync(fh.fileno())
        _LOG.warning("decision log %s: truncated a torn tail (%d bytes)",
                     self.path, size - valid_end)
        return size - valid_end

    # ---------------------------------------------------------------- write
    def append(self, payload: dict) -> None:
        """Append one record as a CRC-suffixed JSON line (rotating
        first if needed)."""

        line = encode_decision_line(payload)
        with self._lock:
            if self._handle is None:
                raise ValueError("decision log is closed")
            if self._size and self._size + len(line) > self.max_bytes:
                self._rotate_locked()
            self._handle.write(line)
            self._size += len(line)
            if self._lines is not None:
                self._lines.inc()

    def flush(self, *, sync: bool = False) -> None:
        """Flush buffered lines; ``sync=True`` also fsyncs to disk."""

        with self._lock:
            if self._handle is None:
                return
            self._handle.flush()
            if sync:
                os.fsync(self._handle.fileno())

    def close(self) -> None:
        """Flush, fsync and close (idempotent) — the shutdown path."""

        with self._lock:
            if self._handle is None:
                return
            self._handle.flush()
            os.fsync(self._handle.fileno())
            self._handle.close()
            self._handle = None

    # ------------------------------------------------------------- rotation
    def _rotate_locked(self) -> None:
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self._handle.close()
        if self.backups:
            # Shift older backups up (.N-1 -> .N, ... , .1 -> .2), each
            # shift one atomic replace, then retire the active file.
            for index in range(self.backups - 1, 0, -1):
                older = self.path.with_name(f"{self.path.name}.{index}")
                if older.exists():
                    os.replace(older,
                               self.path.with_name(
                                   f"{self.path.name}.{index + 1}"))
            os.replace(self.path, self.path.with_name(f"{self.path.name}.1"))
        else:
            os.unlink(self.path)
        self._handle = open(self.path, "ab")
        self._size = 0
        if self._rotations is not None:
            self._rotations.inc()
        _LOG.info("rotated decision log %s", self.path)
