"""Long-running classification serving tier (stdlib-only).

The resident counterpart to the one-shot CLI: load a model artifact
once, keep the sealed similarity index hot, and serve ``POST
/classify`` over HTTP with request coalescing, admission control,
metrics, an audit log and zero-downtime model hot-reloads.

Layers (each independently testable):

* :mod:`repro.serving.protocol` — the JSON wire format and payload caps;
* :mod:`repro.serving.metrics` — counters / gauges / quantile histograms;
* :mod:`repro.serving.batcher` — the bounded-queue request coalescer;
* :mod:`repro.serving.model_manager` — generation-tracked hot reload;
* :mod:`repro.serving.decision_log` — rotating JSONL audit trail;
* :mod:`repro.serving.server` — the HTTP front end (``repro-classify
  serve`` drives it).
"""

from .batcher import RequestCoalescer
from .decision_log import DecisionLog
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .model_manager import ModelManager
from .protocol import WorkItem, decision_to_dict, parse_classify_request
from .server import ClassificationServer, ServerConfig

__all__ = [
    "RequestCoalescer",
    "DecisionLog",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ModelManager",
    "WorkItem",
    "decision_to_dict",
    "parse_classify_request",
    "ClassificationServer",
    "ServerConfig",
]
