"""Long-running classification serving tier (stdlib-only).

The resident counterpart to the one-shot CLI: load a model artifact
once, keep the sealed similarity index hot, and serve ``POST
/classify`` over HTTP with request coalescing, admission control,
metrics, an audit log and zero-downtime model hot-reloads.  In ingest
mode the server doubles as a live metastore: ``POST /ingest`` and
``DELETE /samples/<id>`` mutate the in-process corpus online, and a
:class:`LifecycleManager` ages samples off, compacts tombstones and
periodically republishes the grown corpus as an atomic artifact.

Layers (each independently testable):

* :mod:`repro.serving.protocol` — the JSON wire format and payload caps;
* :mod:`repro.serving.ingest` — the ingestion/purge wire format;
* :mod:`repro.serving.metrics` — counters / gauges / quantile histograms;
* :mod:`repro.serving.batcher` — the bounded-queue request coalescer;
* :mod:`repro.serving.model_manager` — generation-tracked hot reload
  plus online corpus mutation and atomic republish;
* :mod:`repro.serving.workers` — the multi-process scoring pool
  (``--score-workers``), sharing a memory-mapped artifact's pages;
* :mod:`repro.serving.lifecycle` — age-off / cap / compaction /
  republish policies;
* :mod:`repro.serving.wal` — the crash-recovery write-ahead log that
  makes acknowledged mutations durable (``--wal-dir``);
* :mod:`repro.serving.decision_log` — rotating JSONL audit trail;
* :mod:`repro.serving.server` — the HTTP front end (``repro-classify
  serve`` drives it).

Request tracing, Prometheus exposition and on-demand profiling live in
the sibling :mod:`repro.observability` package: the server issues an
``X-Request-Id`` per request, samples traces through the serving path
(``GET /debug/trace``), renders the metrics registry as exposition
format 0.0.4 (``GET /metrics?format=prometheus``) and can profile the
coalescer workers (``GET /debug/profile``, behind
``--enable-profiling``).
"""

from .batcher import RequestCoalescer
from .decision_log import DecisionLog
from .ingest import IngestItem, parse_ingest_request, parse_purge_path
from .lifecycle import LifecycleConfig, LifecycleManager
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .model_manager import ModelManager
from .protocol import WorkItem, decision_to_dict, parse_classify_request
from .server import ClassificationServer, ServerConfig
from .wal import WALRecord, WALRecovery, WriteAheadLog
from .workers import ScoringWorkerPool

__all__ = [
    "RequestCoalescer",
    "DecisionLog",
    "IngestItem",
    "parse_ingest_request",
    "parse_purge_path",
    "LifecycleConfig",
    "LifecycleManager",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ModelManager",
    "WorkItem",
    "decision_to_dict",
    "parse_classify_request",
    "ClassificationServer",
    "ServerConfig",
    "WALRecord",
    "WALRecovery",
    "WriteAheadLog",
    "ScoringWorkerPool",
]
