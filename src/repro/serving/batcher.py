"""Request coalescing: a bounded queue drained into micro-batches.

The server's whole performance story is here: N concurrent clients each
submit a handful of executables, and instead of paying one candidate
generation pass and one forest pass *per request*, worker threads drain
the queue into micro-batches that share those passes across requests —
the same amortisation :meth:`ClassificationService.classify_stream`
applies within a single caller, lifted across independent callers.

Admission control is all-or-nothing per request: when the bounded queue
cannot take every item of a request, :class:`ServerOverloadedError` is
raised immediately (the HTTP layer turns it into ``503 Retry-After``)
instead of blocking the client or admitting a partial request.

Batches never split a request: a worker takes whole requests until the
next one would overflow ``max_batch`` (a single request larger than
``max_batch`` still forms its own oversized batch rather than being
split), so every response is produced by exactly one classify pass —
which is what lets the server guarantee a single model generation per
response across hot-reloads.

The queue can carry more than one **kind** of work: the coalescer takes
either a single classify function or a mapping of kind → handler (e.g.
``{"classify": ..., "ingest": ...}``).  All kinds share the one bounded
queue and its depth — that *is* the backpressure story for online
ingestion: an ingest burst fills the same queue classification uses, so
it is admission-controlled by the same 503 instead of starving
classification through a private unbounded path.  Requests are drained
FIFO; a batch only ever coalesces consecutive requests of one kind, so
every handler still sees homogeneous work.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import Future
from typing import Callable, Mapping, Sequence

from ..exceptions import ServerClosedError, ServerOverloadedError
from ..logging_utils import get_logger
from ..observability import trace as trace_mod
from .metrics import DEFAULT_BATCH_BUCKETS

__all__ = ["RequestCoalescer"]

_LOG = get_logger("serving.batcher")


class _PendingRequest:
    """One admitted request: its work items, its kind and the future
    resolving to ``(results, generation)`` with results in item order.

    ``trace`` (optional) is the submitting request's
    :class:`~repro.observability.trace.RequestTrace`; the worker that
    drains this request records its queue wait and copies the shared
    batch-stage spans into it *before* resolving the future, so the
    handler thread never reads the span list while it is written.
    """

    __slots__ = ("items", "kind", "future", "trace", "submitted")

    def __init__(self, items: Sequence, kind: str, trace=None) -> None:
        self.items = list(items)
        self.kind = kind
        self.future: Future = Future()
        self.trace = trace
        self.submitted = time.perf_counter()


class RequestCoalescer:
    """Bounded request queue drained by worker threads into batches.

    Parameters
    ----------
    handlers:
        Either one ``fn(items) -> (results, generation)`` (registered
        as kind ``"classify"``) or a mapping of kind → such handlers.
        ``items`` is the concatenation of one or more same-kind
        requests' work items and ``results`` preserves their order
        (the :meth:`ModelManager.classify_items` contract).
    max_batch:
        Soft cap on items per assembled batch (whole requests only).
    queue_depth:
        Maximum queued items across pending requests; admission beyond
        this raises :class:`ServerOverloadedError`.
    workers:
        Draining threads.  Batch assembly is serialised by the queue
        lock either way; extra workers overlap response fan-out of one
        batch with the classify pass of the next.
    """

    def __init__(self, handlers: "Callable | Mapping[str, Callable]", *,
                 max_batch: int = 32, queue_depth: int = 256,
                 workers: int = 2, metrics=None, profiler=None) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if queue_depth < 1:
            raise ValueError("queue_depth must be >= 1")
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if callable(handlers):
            handlers = {"classify": handlers}
        if not handlers:
            raise ValueError("handlers must not be empty")
        self._handlers = dict(handlers)
        self.max_batch = int(max_batch)
        self.queue_depth = int(queue_depth)
        self._lock = threading.Lock()
        self._nonempty = threading.Condition(self._lock)
        self._queue: deque[_PendingRequest] = deque()
        self._queued_items = 0
        self._closing = False
        self._metrics = metrics
        # Optional WorkerProfiler: wraps each handler call so one
        # /debug/profile window captures every coalescer worker.
        self._profiler = profiler
        if metrics is not None:
            self._queue_gauge = metrics.gauge("queue_items")
            self._batches = metrics.counter("batches_total")
            self._batch_sizes = metrics.histogram(
                "batch_size", buckets=DEFAULT_BATCH_BUCKETS)
            self._coalesced = metrics.counter("coalesced_requests_total")
        self._workers = [
            threading.Thread(target=self._worker_loop,
                             name=f"repro-batch-{i}", daemon=True)
            for i in range(int(workers))
        ]
        for worker in self._workers:
            worker.start()

    # ---------------------------------------------------------------- submit
    def submit(self, items: Sequence, *, kind: str = "classify",
               trace=None) -> Future:
        """Admit one request; its future resolves to ``(results, gen)``.

        ``trace``, when given, receives the request's ``queue_wait``
        span and the batch-stage spans of whichever batch serves it.
        Raises :class:`ServerOverloadedError` when the queue cannot take
        the whole request and :class:`ServerClosedError` once draining
        has begun.
        """

        if not items:
            raise ValueError("cannot submit an empty request")
        if kind not in self._handlers:
            raise ValueError(f"unknown request kind {kind!r}; handlers are "
                             f"registered for {sorted(self._handlers)}")
        request = _PendingRequest(items, kind, trace)
        with self._lock:
            if self._closing:
                raise ServerClosedError("server is shutting down")
            if self._queued_items + len(request.items) > self.queue_depth:
                raise ServerOverloadedError(
                    f"request queue is full ({self._queued_items} items "
                    f"pending, depth {self.queue_depth})")
            self._queue.append(request)
            self._queued_items += len(request.items)
            if self._metrics is not None:
                self._queue_gauge.set(self._queued_items)
            self._nonempty.notify()
        return request.future

    # ----------------------------------------------------------------- drain
    def close(self, *, drain: bool = True, timeout: float | None = None
              ) -> None:
        """Stop admitting work and shut the workers down.

        With ``drain=True`` (the graceful path) queued requests are
        still classified before the workers exit; with ``drain=False``
        pending futures fail with :class:`ServerClosedError`.
        """

        with self._lock:
            self._closing = True
            if not drain:
                abandoned = list(self._queue)
                self._queue.clear()
                self._queued_items = 0
                if self._metrics is not None:
                    self._queue_gauge.set(0)
            self._nonempty.notify_all()
        if not drain:
            for request in abandoned:
                request.future.set_exception(
                    ServerClosedError("server shut down before this "
                                      "request was classified"))
        for worker in self._workers:
            worker.join(timeout=timeout)

    # ------------------------------------------------------------- internals
    def _take_batch(self) -> list[_PendingRequest] | None:
        """Whole requests up to ``max_batch`` items; None on shutdown."""

        with self._lock:
            while not self._queue:
                if self._closing:
                    return None
                self._nonempty.wait()
            batch = [self._queue.popleft()]
            taken = len(batch[0].items)
            while (self._queue and
                   self._queue[0].kind == batch[0].kind and
                   taken + len(self._queue[0].items) <= self.max_batch):
                request = self._queue.popleft()
                taken += len(request.items)
                batch.append(request)
            self._queued_items -= taken
            if self._metrics is not None:
                self._queue_gauge.set(self._queued_items)
            return batch

    def _worker_loop(self) -> None:
        while True:
            batch = self._take_batch()
            if batch is None:
                return
            drained = time.perf_counter()
            traced = [request for request in batch
                      if request.trace is not None]
            for request in traced:
                request.trace.add("queue_wait", request.submitted,
                                  drained - request.submitted)
            items = [item for request in batch for item in request.items]
            if self._metrics is not None:
                self._batches.inc()
                self._batch_sizes.observe(len(items))
                if len(batch) > 1:
                    self._coalesced.inc(len(batch))
            handler = self._handlers[batch[0].kind]
            # Batch-stage spans are shared across the batch's requests:
            # every member waited for the whole pass, so the shared
            # durations are each member's honest attribution.  The
            # collector doubles as the contextvar sink the model pass
            # records its stages (candidate_gen, dp_scoring, ...) into.
            collector = trace_mod.SpanCollector() if traced else None
            token = (trace_mod.activate(collector)
                     if collector is not None else None)
            try:
                if collector is not None:
                    collector.add("batch_assembly", drained,
                                  time.perf_counter() - drained,
                                  {"batch_items": len(items),
                                   "batch_requests": len(batch)})
                profile = (self._profiler.profile()
                           if self._profiler is not None else None)
                if profile is not None:
                    with profile:
                        results, generation = handler(items)
                else:
                    results, generation = handler(items)
                if len(results) != len(items):
                    raise ServerClosedError(
                        f"{batch[0].kind} pass returned {len(results)} "
                        f"results for {len(items)} items")
            except BaseException as exc:  # noqa: BLE001 — fan the failure out
                _LOG.warning("batch of %d items failed: %s", len(items), exc)
                if token is not None:
                    trace_mod.deactivate(token)
                for request in batch:
                    if request.trace is not None:
                        request.trace.extend(collector.spans)
                    if not request.future.cancelled():
                        request.future.set_exception(exc)
                continue
            if token is not None:
                trace_mod.deactivate(token)
            offset = 0
            for request in batch:
                span = results[offset:offset + len(request.items)]
                offset += len(request.items)
                if request.trace is not None:
                    request.trace.extend(collector.spans)
                if not request.future.cancelled():
                    request.future.set_result((span, generation))
