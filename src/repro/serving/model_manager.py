"""Generation-tracked model ownership with hot reload.

A serving process outlives its model artifact: operators retrain
offline and publish a fresh ``model.rpm`` by atomically replacing the
file (``os.replace``, the same primitive every artifact writer in this
library uses).  :class:`ModelManager` makes that safe under live
traffic:

* each loaded :class:`~repro.api.service.ClassificationService` is
  tagged with a monotonically increasing **generation** number;
* a watcher thread polls the artifact's ``(mtime_ns, size, inode)``
  signature; a change triggers a load of the *new* service entirely off
  the request path (including index sealing, the expensive part);
* the swap itself is a single reference assignment under a lock —
  in-flight batches keep the service they snapshotted and finish on the
  old generation, new batches pick up the new one;
* a load failure (half-published file, corrupt artifact) keeps the old
  generation serving and is retried only when the file changes again.

``classify_items`` is the single entry point the coalescer drains into:
it snapshots ``(service, generation)`` once per batch, so one batch —
and therefore one response — can never mix generations.
"""

from __future__ import annotations

import os
import threading
from pathlib import Path
from typing import Sequence

from ..api.service import ClassificationService, Decision
from ..exceptions import ReproError, ServingError
from ..logging_utils import get_logger

__all__ = ["ModelManager"]

_LOG = get_logger("serving.model_manager")

#: Default artifact poll interval, in seconds.
DEFAULT_POLL_INTERVAL = 2.0


class ModelManager:
    """Own the live model: load, watch, hot-swap, classify.

    Parameters
    ----------
    model_path:
        The ``.rpm`` artifact to serve and watch.
    poll_interval:
        Seconds between artifact stat polls once :meth:`start_watching`
        runs; ``0`` disables watching entirely.
    metrics:
        Optional :class:`~repro.serving.metrics.MetricsRegistry`;
        reload counts and the live generation are published to it.
    load_kwargs:
        Forwarded to :meth:`ClassificationService.load` on every load
        (``allowed_classes``, ``cache_size``, ``executor``, ...).
    """

    def __init__(self, model_path: str | os.PathLike, *,
                 poll_interval: float = DEFAULT_POLL_INTERVAL,
                 metrics=None, **load_kwargs) -> None:
        self.model_path = Path(model_path)
        self.poll_interval = float(poll_interval)
        self._load_kwargs = dict(load_kwargs)
        self._metrics = metrics
        self._swap_lock = threading.Lock()
        # Model passes share mutable per-index memo caches and, under
        # the GIL, gain nothing from running concurrently — serialise
        # them so multiple coalescer workers stay correct.
        self._predict_lock = threading.Lock()
        self._service: ClassificationService | None = None
        self._generation = 0
        self._signature: tuple[int, int, int] | None = None
        self._failed_signature: tuple[int, int, int] | None = None
        self._stop = threading.Event()
        self._watcher: threading.Thread | None = None
        if metrics is not None:
            self._generation_gauge = metrics.gauge("model_generation")
            self._reloads = metrics.counter("model_reloads_total")
            self._reload_failures = metrics.counter(
                "model_reload_failures_total")
        self._load_initial()

    # ------------------------------------------------------------ lifecycle
    def _load_initial(self) -> None:
        # A missing artifact must surface as a ReproError so the CLI
        # prints `error: ...` and exits 2 instead of a traceback.
        try:
            signature = self._stat_signature()
        except OSError as exc:
            raise ServingError(
                f"cannot serve model artifact {self.model_path}: "
                f"{exc}") from exc
        service = ClassificationService.load(self.model_path,
                                             **self._load_kwargs)
        self._service = service
        self._signature = signature
        self._generation = 1
        if self._metrics is not None:
            self._generation_gauge.set(1)
        _LOG.info("loaded model generation 1 from %s", self.model_path)

    def _stat_signature(self) -> tuple[int, int, int]:
        stat = os.stat(self.model_path)
        return (stat.st_mtime_ns, stat.st_size, stat.st_ino)

    @property
    def generation(self) -> int:
        with self._swap_lock:
            return self._generation

    @property
    def service(self) -> ClassificationService:
        with self._swap_lock:
            return self._service

    # -------------------------------------------------------------- serving
    def classify_items(self, items: Sequence[tuple[str, bytes]]
                       ) -> tuple[list[Decision], int]:
        """Classify ``(sample_id, bytes)`` pairs on one generation.

        The ``(service, generation)`` pair is snapshotted once, so the
        whole batch — even one raced by a hot reload — is scored by a
        single model generation.
        """

        with self._swap_lock:
            service = self._service
            generation = self._generation
        with self._predict_lock:
            return service.classify_bytes(items), generation

    # ------------------------------------------------------------ hot reload
    def maybe_reload(self) -> bool:
        """Reload if the artifact changed on disk; True when swapped.

        The load happens outside the swap lock: traffic keeps flowing on
        the old generation while the new model loads and seals its
        index.  Failures leave the old generation serving and are not
        retried until the file changes again (a half-copied artifact
        would otherwise be re-parsed every poll).
        """

        try:
            signature = self._stat_signature()
        except OSError as exc:
            # The artifact vanished mid-publish (unlink before the new
            # os.replace landed, or an operator mistake).  Keep serving.
            _LOG.warning("model artifact %s is unreadable (%s); keeping "
                         "generation %d", self.model_path, exc,
                         self.generation)
            return False
        with self._swap_lock:
            if signature == self._signature:
                return False
        if signature == self._failed_signature:
            return False
        try:
            service = ClassificationService.load(self.model_path,
                                                 **self._load_kwargs)
        except (ReproError, OSError) as exc:
            self._failed_signature = signature
            if self._metrics is not None:
                self._reload_failures.inc()
            _LOG.warning("hot reload of %s failed (%s); keeping "
                         "generation %d", self.model_path, exc,
                         self.generation)
            return False
        with self._swap_lock:
            self._service = service
            self._signature = signature
            self._generation += 1
            generation = self._generation
        self._failed_signature = None
        if self._metrics is not None:
            self._reloads.inc()
            self._generation_gauge.set(generation)
        _LOG.info("hot-reloaded %s as model generation %d",
                  self.model_path, generation)
        return True

    def start_watching(self) -> None:
        """Start the artifact poll thread (no-op when disabled)."""

        if self.poll_interval <= 0 or self._watcher is not None:
            return
        self._watcher = threading.Thread(target=self._watch_loop,
                                         name="repro-model-watch",
                                         daemon=True)
        self._watcher.start()

    def stop(self) -> None:
        """Stop the watcher thread (idempotent)."""

        self._stop.set()
        if self._watcher is not None:
            self._watcher.join(timeout=self.poll_interval + 5.0)
            self._watcher = None

    def _watch_loop(self) -> None:
        while not self._stop.wait(self.poll_interval):
            try:
                self.maybe_reload()
            except Exception:  # noqa: BLE001 — the watcher must survive
                _LOG.exception("model watcher poll failed; continuing")
