"""Generation-tracked model ownership with hot reload and ingestion.

A serving process outlives its model artifact: operators retrain
offline and publish a fresh ``model.rpm`` by atomically replacing the
file (``os.replace``, the same primitive every artifact writer in this
library uses).  :class:`ModelManager` makes that safe under live
traffic:

* each loaded :class:`~repro.api.service.ClassificationService` is
  tagged with a monotonically increasing **generation** number;
* a watcher thread polls the artifact's ``(mtime_ns, size, inode)``
  signature; a change triggers a load of the *new* service entirely off
  the request path (including index sealing, the expensive part);
* the swap itself is a single reference assignment under a lock —
  in-flight batches keep the service they snapshotted and finish on the
  old generation, new batches pick up the new one;
* a load failure (half-published file, corrupt artifact) keeps the old
  generation serving and is retried only when the file changes again.

``classify_items`` is the single entry point the coalescer drains into:
it snapshots ``(service, generation)`` once per batch, so one batch —
and therefore one response — can never mix generations.

With ``mutable=True`` the manager additionally owns **online corpus
mutation**: :meth:`ingest_items` / :meth:`purge` / :meth:`compact`
mutate the live service's sharded anchor index, and :meth:`publish`
re-exports the grown corpus as an atomic artifact.  Mutations run under
the predict lock, so they are serialised against model passes *and*
against hot-reload swaps (the swap takes the predict lock too) — a
mutation can never land on a service that was just swapped out.

With ``wal_dir`` set (mutable mode only) every mutation is made
**durable** through a :class:`~repro.serving.wal.WriteAheadLog` before
it is acknowledged: append → apply → group-commit fsync → ack, with a
failed apply rolled back before anything was fsynced.  On construction
the manager replays the log's tail over the loaded artifact — records
newer than the artifact's embedded ``wal_checkpoint`` — so a crashed
server restarts with every acknowledged mutation intact.
:meth:`publish` completes the cycle: the artifact is stamped with the
WAL's current sequence and the log is truncated to a checkpoint record
via an atomic sibling-tmp + ``os.replace``; a crash between the two
replaces leaves stale records whose seqs the checkpoint already
covers, so replay skips them (exactly-once, never twice).

Locking order (outermost first): ``_reload_lock`` → ``_predict_lock``
→ ``_swap_lock``.  ``classify_items`` takes the swap lock and releases
it before taking the predict lock, so no path ever waits on the two in
conflicting order.
"""

from __future__ import annotations

import base64
import os
import threading
from pathlib import Path
from typing import Sequence

from ..api.artifact import read_wal_checkpoint
from ..api.service import ClassificationService, Decision
from ..exceptions import (
    ParallelExecutionError,
    ReproError,
    ServingError,
    ValidationError,
)
from ..logging_utils import get_logger
from ..observability.trace import span
from ..testing import faults
from .wal import WriteAheadLog
from .workers import ScoringWorkerPool

__all__ = ["ModelManager"]

_LOG = get_logger("serving.model_manager")

#: Default artifact poll interval, in seconds.
DEFAULT_POLL_INTERVAL = 2.0

#: Re-stat attempts per reload before giving up on convergence.  Each
#: attempt re-stats after the load and retries when a publish landed
#: mid-load; on exhaustion the freshest load is served under its
#: pre-load signature, so the next poll simply reloads again.
RELOAD_STAT_ATTEMPTS = 5


class ModelManager:
    """Own the live model: load, watch, hot-swap, classify, ingest.

    Parameters
    ----------
    model_path:
        The ``.rpm`` artifact to serve and watch.
    poll_interval:
        Seconds between artifact stat polls once :meth:`start_watching`
        runs; ``0`` disables watching entirely.
    metrics:
        Optional :class:`~repro.serving.metrics.MetricsRegistry`;
        reload counts, the live generation and (in mutable mode) corpus
        membership are published to it.
    mutable:
        Enable online corpus mutation on every loaded service
        (:meth:`ClassificationService.enable_mutation`).
    n_shards:
        Shard count used when a loaded artifact carries a single
        (non-sharded) index that mutable mode must convert.
    score_workers:
        Fork this many scoring worker processes
        (:class:`~repro.serving.workers.ScoringWorkerPool`) and
        dispatch classification micro-batches across them.  Workers
        load the same artifact file — combine with ``mmap=True`` so
        they share its pages through the OS page cache.  Incompatible
        with ``mutable`` (workers snapshot the on-disk artifact and
        would serve a stale corpus between publishes).
    wal_dir:
        Directory of the ingestion write-ahead log (mutable mode
        only).  Mutations become durable-before-ack, and construction
        replays the log's tail over the artifact (see module
        docstring).
    wal_repair:
        Permit recovery to truncate the log at *mid-log* corruption,
        discarding every later record.  A torn final record is always
        truncated; damage earlier in the log refuses to load without
        this flag, because silently dropping acknowledged history is
        worse than refusing to start.
    load_kwargs:
        Forwarded to :meth:`ClassificationService.load` on every load
        (``allowed_classes``, ``cache_size``, ``executor``, ``mmap``,
        ...).
    """

    def __init__(self, model_path: str | os.PathLike, *,
                 poll_interval: float = DEFAULT_POLL_INTERVAL,
                 metrics=None, mutable: bool = False, n_shards: int = 4,
                 score_workers: int = 0,
                 wal_dir: str | os.PathLike | None = None,
                 wal_repair: bool = False, **load_kwargs) -> None:
        self.model_path = Path(model_path)
        self.poll_interval = float(poll_interval)
        self.mutable = bool(mutable)
        self.n_shards = int(n_shards)
        self.score_workers = int(score_workers)
        if self.score_workers < 0:
            raise ServingError(
                f"score_workers must be >= 0, got {score_workers}")
        if self.score_workers and self.mutable:
            raise ServingError(
                "score_workers cannot be combined with online ingestion "
                "(mutable=True): worker processes score against the "
                "artifact on disk and would miss unpublished corpus "
                "mutations")
        if wal_dir is not None and not self.mutable:
            raise ServingError(
                "wal_dir requires mutable=True: the write-ahead log only "
                "records corpus mutations, which immutable serving never "
                "performs")
        self._load_kwargs = dict(load_kwargs)
        self._metrics = metrics
        self._swap_lock = threading.Lock()
        # Model passes share mutable per-index memo caches and, under
        # the GIL, gain nothing from running concurrently — serialise
        # them so multiple coalescer workers stay correct.  Corpus
        # mutations and generation swaps take this lock too, so a
        # mutation never lands on a just-swapped-out service.
        self._predict_lock = threading.Lock()
        # Serialises whole reload/publish cycles: the watcher thread
        # racing a manual maybe_reload() must not double-load one
        # publish, and _failed_signature is only touched under this
        # lock.
        self._reload_lock = threading.Lock()
        self._service: ClassificationService | None = None
        self._generation = 0
        self._signature: tuple[int, int, int] | None = None
        self._failed_signature: tuple[int, int, int] | None = None
        self._stop = threading.Event()
        self._watcher: threading.Thread | None = None
        self._worker_pool: ScoringWorkerPool | None = None
        if metrics is not None:
            self._generation_gauge = metrics.gauge("model_generation")
            self._reloads = metrics.counter("model_reloads_total")
            self._reload_failures = metrics.counter(
                "model_reload_failures_total")
            if self.mutable:
                self._members_gauge = metrics.gauge("corpus_members")
                self._tombstones_gauge = metrics.gauge("corpus_tombstones")
                self._ingested = metrics.counter("ingested_samples_total")
                self._purged = metrics.counter("purged_samples_total")
            if wal_dir is not None:
                self._wal_replayed = metrics.counter("wal_replayed_records")
                self._checkpoint_gauge = metrics.gauge(
                    "last_checkpoint_generation")
        self._wal: WriteAheadLog | None = None
        self._checkpoint: dict | None = None
        self._replayed_at_boot = 0
        self._load_initial()
        if wal_dir is not None:
            self._open_wal(wal_dir, repair=wal_repair)
        if self.score_workers:
            # Warm the pool now, before the server starts its coalescer
            # and watcher threads: the workers fork from a (still)
            # single-threaded parent, and with mmap the artifact's pages
            # are already hot in the page cache from the load above.
            pool = ScoringWorkerPool(self.model_path, self.score_workers,
                                     load_kwargs=self._load_kwargs)
            try:
                pool.warm(self._signature)
            except ParallelExecutionError as exc:
                pool.close()
                raise ServingError(
                    f"cannot start {self.score_workers} scoring workers: "
                    f"{exc}") from exc
            self._worker_pool = pool

    # ------------------------------------------------------------ lifecycle
    def _load_initial(self) -> None:
        # A missing artifact must surface as a ReproError so the CLI
        # prints `error: ...` and exits 2 instead of a traceback.
        try:
            signature = self._stat_signature()
        except OSError as exc:
            raise ServingError(
                f"cannot serve model artifact {self.model_path}: "
                f"{exc}") from exc
        service, signature = self._load_converged(signature)
        self._service = service
        self._signature = signature
        self._generation = 1
        if self._metrics is not None:
            self._generation_gauge.set(1)
        self._update_corpus_gauges()
        _LOG.info("loaded model generation 1 from %s", self.model_path)

    def _stat_signature(self) -> tuple[int, int, int]:
        stat = os.stat(self.model_path)
        return (stat.st_mtime_ns, stat.st_size, stat.st_ino)

    def _open_wal(self, wal_dir: str | os.PathLike, *, repair: bool) -> None:
        """Open/recover the write-ahead log and replay its tail.

        The artifact's embedded ``wal_checkpoint`` says which prefix of
        the log the loaded corpus already contains; every record beyond
        it is re-applied here, before the server takes traffic.  A
        record that fails validation on replay is skipped with a
        warning — it can only exist when a crash landed between append
        and apply, i.e. before its client was ever acknowledged.
        """

        wal = WriteAheadLog(wal_dir, metrics=self._metrics)
        wal.recover(repair=repair)
        checkpoint = read_wal_checkpoint(self.model_path)
        log_cp = wal.recovery.checkpoint
        if log_cp is not None and (checkpoint is None
                                   or int(log_cp["sequence"])
                                   > int(checkpoint["sequence"])):
            # The log's own checkpoint record survives publish crashes
            # in either order; trust whichever marker is furthest.
            checkpoint = {"sequence": int(log_cp["sequence"]),
                          "generation": int(log_cp["generation"])}
        artifact_seq = 0 if checkpoint is None else int(checkpoint["sequence"])
        replayed = skipped = 0
        service = self._service
        for record in wal.recovery.records:
            if record.seq <= artifact_seq:
                continue
            try:
                self._apply_record(service, record)
            except ValidationError as exc:
                _LOG.warning(
                    "skipping WAL record seq=%d op=%s during replay (%s); "
                    "it predates any acknowledgement", record.seq,
                    record.op, exc)
                skipped += 1
                continue
            replayed += 1
        self._wal = wal
        self._checkpoint = checkpoint
        self._replayed_at_boot = replayed
        if self._metrics is not None:
            if replayed:
                self._wal_replayed.inc(replayed)
            self._checkpoint_gauge.set(
                0 if checkpoint is None else int(checkpoint["generation"]))
        self._update_corpus_gauges()
        if replayed or skipped:
            _LOG.info(
                "replayed %d WAL record(s) over %s (skipped %d unacked)",
                replayed, self.model_path, skipped)

    @staticmethod
    def _apply_record(service: ClassificationService, record) -> None:
        """Apply one recovered WAL record to the live service."""

        if record.op == "ingest":
            items = [(sid, base64.b64decode(data), cls)
                     for sid, data, cls in record.payload["items"]]
            service.ingest_bytes(items)
        elif record.op == "purge":
            service.purge(record.payload["sample_id"])
        elif record.op == "compact":
            service.compact()
        # "checkpoint" records carry no mutation; recover() already
        # consumed their sequence marker.

    def _load_service(self) -> ClassificationService:
        faults.fire("reload.parse")
        service = ClassificationService.load(self.model_path,
                                             **self._load_kwargs)
        if self.mutable:
            service.enable_mutation(n_shards=self.n_shards)
        return service

    def _load_converged(self, signature: tuple[int, int, int]
                        ) -> tuple[ClassificationService,
                                   tuple[int, int, int]]:
        """Load the artifact until its stat signature stops moving.

        ``os.stat`` before the load alone is a TOCTOU: a publish landing
        between the stat and the read would be served under the *old*
        signature, and the next poll — seeing that stale signature as
        current — would skip the new bytes entirely.  So the file is
        re-stat'ed after every successful load and the load repeats
        until the pre- and post-load signatures agree (bounded by
        ``RELOAD_STAT_ATTEMPTS``; on exhaustion the freshest load is
        returned under its pre-load signature, which the next poll will
        see as changed and converge then).
        """

        for _ in range(RELOAD_STAT_ATTEMPTS):
            service = self._load_service()
            try:
                after = self._stat_signature()
            except OSError:
                # The artifact vanished right after a successful read;
                # serve what was loaded under the signature it was
                # opened with.
                return service, signature
            if after == signature:
                return service, signature
            _LOG.info("model artifact %s changed during load; re-reading",
                      self.model_path)
            signature = after
        return service, signature

    @property
    def generation(self) -> int:
        with self._swap_lock:
            return self._generation

    @property
    def service(self) -> ClassificationService:
        with self._swap_lock:
            return self._service

    @property
    def load_mode(self) -> str:
        """``"mmap"`` or ``"eager"`` — how artifact loads materialise."""

        return "mmap" if self._load_kwargs.get("mmap") else "eager"

    def worker_stats(self) -> dict | None:
        """Scoring worker pool counters, or ``None`` without a pool."""

        pool = self._worker_pool
        return None if pool is None else pool.stats()

    # -------------------------------------------------------------- serving
    def classify_items(self, items: Sequence[tuple[str, bytes]]
                       ) -> tuple[list[Decision], int]:
        """Classify ``(sample_id, bytes)`` pairs on one generation.

        The ``(service, generation)`` pair is snapshotted once, so the
        whole batch — even one raced by a hot reload — is scored by a
        single model generation.  With a scoring worker pool the batch
        is dispatched across the worker processes *without* taking the
        predict lock (workers share no in-process caches), so multiple
        coalescer threads drain concurrently; a dead pool falls back to
        in-process scoring for the rest of this manager's lifetime.
        """

        with self._swap_lock:
            service = self._service
            generation = self._generation
            signature = self._signature
        pool = self._worker_pool
        if pool is not None:
            try:
                # The dispatch span covers IPC + remote scoring; the
                # workers' own stage spans ship back labeled with their
                # pid, so they attribute (not double-count) this time.
                with span("worker_dispatch"):
                    return pool.classify(items, signature), generation
            except ParallelExecutionError as exc:
                _LOG.warning(
                    "scoring worker pool unavailable (%s); falling back to "
                    "in-process scoring", exc)
                self._worker_pool = None
                pool.close()
        with self._predict_lock:
            return service.classify_bytes(items), generation

    # ------------------------------------------------------------ ingestion
    def ingest_items(self, items: Sequence[tuple[str, bytes, str]]
                     ) -> tuple[list[dict], int]:
        """Ingest ``(sample_id, bytes, class_name)`` triples online.

        Returns ``(reports, generation)`` — the generation whose corpus
        absorbed the batch.  Holding the predict lock across snapshot
        and mutation means a concurrent hot reload (which swaps under
        the predict lock) can never strand the batch on a swapped-out
        service.
        """

        with self._predict_lock:
            with self._swap_lock:
                service = self._service
                generation = self._generation
            if self._wal is not None:
                # append → apply → group-commit fsync.  One record (and
                # one fsync) covers the whole coalesced micro-batch; an
                # apply that fails validation rolls its record back
                # before anything was made durable.
                mark = self._wal.mark()
                self._wal.append(
                    "ingest",
                    {"items": [[sid, base64.b64encode(data).decode("ascii"),
                                cls] for sid, data, cls in items]},
                    sync=False)
                try:
                    reports = service.ingest_bytes(items)
                except BaseException:
                    self._wal.rollback(mark)
                    raise
                self._wal.sync()
            else:
                reports = service.ingest_bytes(items)
        if self._metrics is not None and self.mutable:
            self._ingested.inc(len(reports))
        self._update_corpus_gauges()
        return reports, generation

    def purge(self, sample_id: str) -> tuple[int, int]:
        """Tombstone a sample id; returns ``(removed, generation)``."""

        with self._predict_lock:
            with self._swap_lock:
                service = self._service
                generation = self._generation
            if self._wal is not None:
                mark = self._wal.mark()
                self._wal.append("purge", {"sample_id": sample_id},
                                 sync=False)
                try:
                    removed = service.purge(sample_id)
                except BaseException:
                    self._wal.rollback(mark)
                    raise
                if removed:
                    self._wal.sync()
                else:
                    # A no-op purge (unknown id) mutated nothing; keep
                    # the log free of records that replay cannot match.
                    self._wal.rollback(mark)
            else:
                removed = service.purge(sample_id)
        if removed and self._metrics is not None and self.mutable:
            self._purged.inc(removed)
        self._update_corpus_gauges()
        return removed, generation

    def compact(self) -> int:
        """Physically drop tombstoned members; returns how many."""

        with self._predict_lock:
            with self._swap_lock:
                service = self._service
            if self._wal is not None:
                mark = self._wal.mark()
                self._wal.append("compact", {}, sync=False)
                try:
                    dropped = service.compact()
                except BaseException:
                    self._wal.rollback(mark)
                    raise
                if dropped:
                    self._wal.sync()
                else:
                    self._wal.rollback(mark)
            else:
                dropped = service.compact()
        self._update_corpus_gauges()
        return dropped

    def corpus_info(self) -> dict:
        """Live corpus statistics (see
        :meth:`ClassificationService.corpus_info`)."""

        return self.service.corpus_info()

    def durability_info(self) -> dict | None:
        """WAL state for ``/healthz``, or ``None`` without a WAL."""

        wal = self._wal
        if wal is None:
            return None
        checkpoint = self._checkpoint
        recovery = wal.recovery
        return {
            "wal_path": str(wal.path),
            "wal_records": wal.last_seq,
            "wal_bytes": wal.size_bytes,
            "last_checkpoint_sequence":
                0 if checkpoint is None else checkpoint["sequence"],
            "last_checkpoint_generation":
                0 if checkpoint is None else checkpoint["generation"],
            "replayed_at_boot": self._replayed_at_boot,
            "recovered_truncated_bytes":
                0 if recovery is None else recovery.truncated_bytes,
            "recovered_dropped_records":
                0 if recovery is None else recovery.dropped_records,
        }

    def publish(self, path: str | os.PathLike | None = None) -> Path:
        """Export the live corpus as an atomic artifact (default: the
        watched ``model_path``).

        The artifact is written to a sibling temporary file and moved
        into place with ``os.replace`` — readers (replicas polling the
        same path, or this very manager's watcher) only ever see the old
        or the new complete file.  When publishing over ``model_path``
        the published signature is recorded under the reload lock, so
        the watcher does not pointlessly reload the server's own
        snapshot.
        """

        target = self.model_path if path is None else Path(path)
        tmp = target.with_name(target.name + f".publish-{os.getpid()}.tmp")
        with self._reload_lock:
            with self._predict_lock:
                with self._swap_lock:
                    service = self._service
                    generation = self._generation
                checkpoint = None
                if self._wal is not None:
                    # Holding the predict lock means no mutation can
                    # land between this snapshot and the save — the
                    # artifact really does contain every seq <= this.
                    checkpoint = {"sequence": self._wal.last_seq,
                                  "generation": generation}
                try:
                    service.save(tmp, wal_checkpoint=checkpoint)
                    # os.replace preserves the temporary file's inode,
                    # mtime and size, so its stat IS the published
                    # file's signature — taken before the rename, there
                    # is no window for a foreign publish to be
                    # mistaken for ours.
                    stat = os.stat(tmp)
                    signature = (stat.st_mtime_ns, stat.st_size, stat.st_ino)
                    faults.fire("artifact.replace")
                    os.replace(tmp, target)
                except BaseException:
                    try:
                        os.unlink(tmp)
                    except OSError:
                        pass
                    raise
                if checkpoint is not None and target == self.model_path:
                    # Artifact first, WAL truncation second: a crash in
                    # between leaves stale records whose seqs the
                    # artifact's checkpoint covers, so replay skips
                    # them.  The reverse order could lose mutations.
                    self._wal.checkpoint(
                        sequence=checkpoint["sequence"],
                        generation=checkpoint["generation"])
                    self._checkpoint = checkpoint
                    if self._metrics is not None:
                        self._checkpoint_gauge.set(checkpoint["generation"])
            if target == self.model_path:
                with self._swap_lock:
                    self._signature = signature
                self._failed_signature = None
        _LOG.info("published generation %d corpus to %s", generation, target)
        return target

    # ------------------------------------------------------------ hot reload
    def maybe_reload(self) -> bool:
        """Reload if the artifact changed on disk; True when swapped.

        The load happens outside the swap lock: traffic keeps flowing on
        the old generation while the new model loads and seals its
        index.  Failures leave the old generation serving and are not
        retried until the file changes again (a half-copied artifact
        would otherwise be re-parsed every poll).  The whole cycle runs
        under the reload lock, so the watcher thread racing a manual
        call loads each publish exactly once.
        """

        with self._reload_lock:
            try:
                signature = self._stat_signature()
            except OSError as exc:
                # The artifact vanished mid-publish (unlink before the
                # new os.replace landed, or an operator mistake).  Keep
                # serving.
                _LOG.warning("model artifact %s is unreadable (%s); keeping "
                             "generation %d", self.model_path, exc,
                             self.generation)
                return False
            with self._swap_lock:
                if signature == self._signature:
                    return False
            if signature == self._failed_signature:
                return False
            try:
                service, signature = self._load_converged(signature)
            except (ReproError, OSError) as exc:
                self._failed_signature = signature
                if self._metrics is not None:
                    self._reload_failures.inc()
                _LOG.warning("hot reload of %s failed (%s); keeping "
                             "generation %d", self.model_path, exc,
                             self.generation)
                return False
            with self._predict_lock, self._swap_lock:
                self._service = service
                self._signature = signature
                self._generation += 1
                generation = self._generation
            self._failed_signature = None
        if self._metrics is not None:
            self._reloads.inc()
            self._generation_gauge.set(generation)
        self._update_corpus_gauges()
        _LOG.info("hot-reloaded %s as model generation %d",
                  self.model_path, generation)
        return True

    def start_watching(self) -> None:
        """Start the artifact poll thread (no-op when disabled)."""

        if self.poll_interval <= 0 or self._watcher is not None:
            return
        self._watcher = threading.Thread(target=self._watch_loop,
                                         name="repro-model-watch",
                                         daemon=True)
        self._watcher.start()

    def stop(self) -> None:
        """Stop the watcher thread and scoring workers (idempotent)."""

        self._stop.set()
        if self._watcher is not None:
            self._watcher.join(timeout=self.poll_interval + 5.0)
            self._watcher = None
        pool = self._worker_pool
        if pool is not None:
            self._worker_pool = None
            pool.close()
        wal = self._wal
        if wal is not None:
            wal.close()

    def _watch_loop(self) -> None:
        while not self._stop.wait(self.poll_interval):
            try:
                self.maybe_reload()
            except Exception:  # noqa: BLE001 — the watcher must survive
                _LOG.exception("model watcher poll failed; continuing")

    def _update_corpus_gauges(self) -> None:
        if self._metrics is None or not self.mutable:
            return
        info = self.corpus_info()
        self._members_gauge.set(info["members"])
        self._tombstones_gauge.set(info.get("tombstones", 0))
