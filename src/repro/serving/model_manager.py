"""Generation-tracked model ownership with hot reload and ingestion.

A serving process outlives its model artifact: operators retrain
offline and publish a fresh ``model.rpm`` by atomically replacing the
file (``os.replace``, the same primitive every artifact writer in this
library uses).  :class:`ModelManager` makes that safe under live
traffic:

* each loaded :class:`~repro.api.service.ClassificationService` is
  tagged with a monotonically increasing **generation** number;
* a watcher thread polls the artifact's ``(mtime_ns, size, inode)``
  signature; a change triggers a load of the *new* service entirely off
  the request path (including index sealing, the expensive part);
* the swap itself is a single reference assignment under a lock —
  in-flight batches keep the service they snapshotted and finish on the
  old generation, new batches pick up the new one;
* a load failure (half-published file, corrupt artifact) keeps the old
  generation serving and is retried only when the file changes again.

``classify_items`` is the single entry point the coalescer drains into:
it snapshots ``(service, generation)`` once per batch, so one batch —
and therefore one response — can never mix generations.

With ``mutable=True`` the manager additionally owns **online corpus
mutation**: :meth:`ingest_items` / :meth:`purge` / :meth:`compact`
mutate the live service's sharded anchor index, and :meth:`publish`
re-exports the grown corpus as an atomic artifact.  Mutations run under
the predict lock, so they are serialised against model passes *and*
against hot-reload swaps (the swap takes the predict lock too) — a
mutation can never land on a service that was just swapped out.

Locking order (outermost first): ``_reload_lock`` → ``_predict_lock``
→ ``_swap_lock``.  ``classify_items`` takes the swap lock and releases
it before taking the predict lock, so no path ever waits on the two in
conflicting order.
"""

from __future__ import annotations

import os
import threading
from pathlib import Path
from typing import Sequence

from ..api.service import ClassificationService, Decision
from ..exceptions import ParallelExecutionError, ReproError, ServingError
from ..logging_utils import get_logger
from .workers import ScoringWorkerPool

__all__ = ["ModelManager"]

_LOG = get_logger("serving.model_manager")

#: Default artifact poll interval, in seconds.
DEFAULT_POLL_INTERVAL = 2.0

#: Re-stat attempts per reload before giving up on convergence.  Each
#: attempt re-stats after the load and retries when a publish landed
#: mid-load; on exhaustion the freshest load is served under its
#: pre-load signature, so the next poll simply reloads again.
RELOAD_STAT_ATTEMPTS = 5


class ModelManager:
    """Own the live model: load, watch, hot-swap, classify, ingest.

    Parameters
    ----------
    model_path:
        The ``.rpm`` artifact to serve and watch.
    poll_interval:
        Seconds between artifact stat polls once :meth:`start_watching`
        runs; ``0`` disables watching entirely.
    metrics:
        Optional :class:`~repro.serving.metrics.MetricsRegistry`;
        reload counts, the live generation and (in mutable mode) corpus
        membership are published to it.
    mutable:
        Enable online corpus mutation on every loaded service
        (:meth:`ClassificationService.enable_mutation`).
    n_shards:
        Shard count used when a loaded artifact carries a single
        (non-sharded) index that mutable mode must convert.
    score_workers:
        Fork this many scoring worker processes
        (:class:`~repro.serving.workers.ScoringWorkerPool`) and
        dispatch classification micro-batches across them.  Workers
        load the same artifact file — combine with ``mmap=True`` so
        they share its pages through the OS page cache.  Incompatible
        with ``mutable`` (workers snapshot the on-disk artifact and
        would serve a stale corpus between publishes).
    load_kwargs:
        Forwarded to :meth:`ClassificationService.load` on every load
        (``allowed_classes``, ``cache_size``, ``executor``, ``mmap``,
        ...).
    """

    def __init__(self, model_path: str | os.PathLike, *,
                 poll_interval: float = DEFAULT_POLL_INTERVAL,
                 metrics=None, mutable: bool = False, n_shards: int = 4,
                 score_workers: int = 0, **load_kwargs) -> None:
        self.model_path = Path(model_path)
        self.poll_interval = float(poll_interval)
        self.mutable = bool(mutable)
        self.n_shards = int(n_shards)
        self.score_workers = int(score_workers)
        if self.score_workers < 0:
            raise ServingError(
                f"score_workers must be >= 0, got {score_workers}")
        if self.score_workers and self.mutable:
            raise ServingError(
                "score_workers cannot be combined with online ingestion "
                "(mutable=True): worker processes score against the "
                "artifact on disk and would miss unpublished corpus "
                "mutations")
        self._load_kwargs = dict(load_kwargs)
        self._metrics = metrics
        self._swap_lock = threading.Lock()
        # Model passes share mutable per-index memo caches and, under
        # the GIL, gain nothing from running concurrently — serialise
        # them so multiple coalescer workers stay correct.  Corpus
        # mutations and generation swaps take this lock too, so a
        # mutation never lands on a just-swapped-out service.
        self._predict_lock = threading.Lock()
        # Serialises whole reload/publish cycles: the watcher thread
        # racing a manual maybe_reload() must not double-load one
        # publish, and _failed_signature is only touched under this
        # lock.
        self._reload_lock = threading.Lock()
        self._service: ClassificationService | None = None
        self._generation = 0
        self._signature: tuple[int, int, int] | None = None
        self._failed_signature: tuple[int, int, int] | None = None
        self._stop = threading.Event()
        self._watcher: threading.Thread | None = None
        self._worker_pool: ScoringWorkerPool | None = None
        if metrics is not None:
            self._generation_gauge = metrics.gauge("model_generation")
            self._reloads = metrics.counter("model_reloads_total")
            self._reload_failures = metrics.counter(
                "model_reload_failures_total")
            if self.mutable:
                self._members_gauge = metrics.gauge("corpus_members")
                self._tombstones_gauge = metrics.gauge("corpus_tombstones")
                self._ingested = metrics.counter("ingested_samples_total")
                self._purged = metrics.counter("purged_samples_total")
        self._load_initial()
        if self.score_workers:
            # Warm the pool now, before the server starts its coalescer
            # and watcher threads: the workers fork from a (still)
            # single-threaded parent, and with mmap the artifact's pages
            # are already hot in the page cache from the load above.
            pool = ScoringWorkerPool(self.model_path, self.score_workers,
                                     load_kwargs=self._load_kwargs)
            try:
                pool.warm(self._signature)
            except ParallelExecutionError as exc:
                pool.close()
                raise ServingError(
                    f"cannot start {self.score_workers} scoring workers: "
                    f"{exc}") from exc
            self._worker_pool = pool

    # ------------------------------------------------------------ lifecycle
    def _load_initial(self) -> None:
        # A missing artifact must surface as a ReproError so the CLI
        # prints `error: ...` and exits 2 instead of a traceback.
        try:
            signature = self._stat_signature()
        except OSError as exc:
            raise ServingError(
                f"cannot serve model artifact {self.model_path}: "
                f"{exc}") from exc
        service, signature = self._load_converged(signature)
        self._service = service
        self._signature = signature
        self._generation = 1
        if self._metrics is not None:
            self._generation_gauge.set(1)
        self._update_corpus_gauges()
        _LOG.info("loaded model generation 1 from %s", self.model_path)

    def _stat_signature(self) -> tuple[int, int, int]:
        stat = os.stat(self.model_path)
        return (stat.st_mtime_ns, stat.st_size, stat.st_ino)

    def _load_service(self) -> ClassificationService:
        service = ClassificationService.load(self.model_path,
                                             **self._load_kwargs)
        if self.mutable:
            service.enable_mutation(n_shards=self.n_shards)
        return service

    def _load_converged(self, signature: tuple[int, int, int]
                        ) -> tuple[ClassificationService,
                                   tuple[int, int, int]]:
        """Load the artifact until its stat signature stops moving.

        ``os.stat`` before the load alone is a TOCTOU: a publish landing
        between the stat and the read would be served under the *old*
        signature, and the next poll — seeing that stale signature as
        current — would skip the new bytes entirely.  So the file is
        re-stat'ed after every successful load and the load repeats
        until the pre- and post-load signatures agree (bounded by
        ``RELOAD_STAT_ATTEMPTS``; on exhaustion the freshest load is
        returned under its pre-load signature, which the next poll will
        see as changed and converge then).
        """

        for _ in range(RELOAD_STAT_ATTEMPTS):
            service = self._load_service()
            try:
                after = self._stat_signature()
            except OSError:
                # The artifact vanished right after a successful read;
                # serve what was loaded under the signature it was
                # opened with.
                return service, signature
            if after == signature:
                return service, signature
            _LOG.info("model artifact %s changed during load; re-reading",
                      self.model_path)
            signature = after
        return service, signature

    @property
    def generation(self) -> int:
        with self._swap_lock:
            return self._generation

    @property
    def service(self) -> ClassificationService:
        with self._swap_lock:
            return self._service

    @property
    def load_mode(self) -> str:
        """``"mmap"`` or ``"eager"`` — how artifact loads materialise."""

        return "mmap" if self._load_kwargs.get("mmap") else "eager"

    def worker_stats(self) -> dict | None:
        """Scoring worker pool counters, or ``None`` without a pool."""

        pool = self._worker_pool
        return None if pool is None else pool.stats()

    # -------------------------------------------------------------- serving
    def classify_items(self, items: Sequence[tuple[str, bytes]]
                       ) -> tuple[list[Decision], int]:
        """Classify ``(sample_id, bytes)`` pairs on one generation.

        The ``(service, generation)`` pair is snapshotted once, so the
        whole batch — even one raced by a hot reload — is scored by a
        single model generation.  With a scoring worker pool the batch
        is dispatched across the worker processes *without* taking the
        predict lock (workers share no in-process caches), so multiple
        coalescer threads drain concurrently; a dead pool falls back to
        in-process scoring for the rest of this manager's lifetime.
        """

        with self._swap_lock:
            service = self._service
            generation = self._generation
            signature = self._signature
        pool = self._worker_pool
        if pool is not None:
            try:
                return pool.classify(items, signature), generation
            except ParallelExecutionError as exc:
                _LOG.warning(
                    "scoring worker pool unavailable (%s); falling back to "
                    "in-process scoring", exc)
                self._worker_pool = None
                pool.close()
        with self._predict_lock:
            return service.classify_bytes(items), generation

    # ------------------------------------------------------------ ingestion
    def ingest_items(self, items: Sequence[tuple[str, bytes, str]]
                     ) -> tuple[list[dict], int]:
        """Ingest ``(sample_id, bytes, class_name)`` triples online.

        Returns ``(reports, generation)`` — the generation whose corpus
        absorbed the batch.  Holding the predict lock across snapshot
        and mutation means a concurrent hot reload (which swaps under
        the predict lock) can never strand the batch on a swapped-out
        service.
        """

        with self._predict_lock:
            with self._swap_lock:
                service = self._service
                generation = self._generation
            reports = service.ingest_bytes(items)
        if self._metrics is not None and self.mutable:
            self._ingested.inc(len(reports))
        self._update_corpus_gauges()
        return reports, generation

    def purge(self, sample_id: str) -> tuple[int, int]:
        """Tombstone a sample id; returns ``(removed, generation)``."""

        with self._predict_lock:
            with self._swap_lock:
                service = self._service
                generation = self._generation
            removed = service.purge(sample_id)
        if removed and self._metrics is not None and self.mutable:
            self._purged.inc(removed)
        self._update_corpus_gauges()
        return removed, generation

    def compact(self) -> int:
        """Physically drop tombstoned members; returns how many."""

        with self._predict_lock:
            with self._swap_lock:
                service = self._service
            dropped = service.compact()
        self._update_corpus_gauges()
        return dropped

    def corpus_info(self) -> dict:
        """Live corpus statistics (see
        :meth:`ClassificationService.corpus_info`)."""

        return self.service.corpus_info()

    def publish(self, path: str | os.PathLike | None = None) -> Path:
        """Export the live corpus as an atomic artifact (default: the
        watched ``model_path``).

        The artifact is written to a sibling temporary file and moved
        into place with ``os.replace`` — readers (replicas polling the
        same path, or this very manager's watcher) only ever see the old
        or the new complete file.  When publishing over ``model_path``
        the published signature is recorded under the reload lock, so
        the watcher does not pointlessly reload the server's own
        snapshot.
        """

        target = self.model_path if path is None else Path(path)
        tmp = target.with_name(target.name + f".publish-{os.getpid()}.tmp")
        with self._reload_lock:
            with self._predict_lock:
                with self._swap_lock:
                    service = self._service
                    generation = self._generation
                try:
                    service.save(tmp)
                    # os.replace preserves the temporary file's inode,
                    # mtime and size, so its stat IS the published
                    # file's signature — taken before the rename, there
                    # is no window for a foreign publish to be
                    # mistaken for ours.
                    stat = os.stat(tmp)
                    signature = (stat.st_mtime_ns, stat.st_size, stat.st_ino)
                    os.replace(tmp, target)
                except BaseException:
                    try:
                        os.unlink(tmp)
                    except OSError:
                        pass
                    raise
            if target == self.model_path:
                with self._swap_lock:
                    self._signature = signature
                self._failed_signature = None
        _LOG.info("published generation %d corpus to %s", generation, target)
        return target

    # ------------------------------------------------------------ hot reload
    def maybe_reload(self) -> bool:
        """Reload if the artifact changed on disk; True when swapped.

        The load happens outside the swap lock: traffic keeps flowing on
        the old generation while the new model loads and seals its
        index.  Failures leave the old generation serving and are not
        retried until the file changes again (a half-copied artifact
        would otherwise be re-parsed every poll).  The whole cycle runs
        under the reload lock, so the watcher thread racing a manual
        call loads each publish exactly once.
        """

        with self._reload_lock:
            try:
                signature = self._stat_signature()
            except OSError as exc:
                # The artifact vanished mid-publish (unlink before the
                # new os.replace landed, or an operator mistake).  Keep
                # serving.
                _LOG.warning("model artifact %s is unreadable (%s); keeping "
                             "generation %d", self.model_path, exc,
                             self.generation)
                return False
            with self._swap_lock:
                if signature == self._signature:
                    return False
            if signature == self._failed_signature:
                return False
            try:
                service, signature = self._load_converged(signature)
            except (ReproError, OSError) as exc:
                self._failed_signature = signature
                if self._metrics is not None:
                    self._reload_failures.inc()
                _LOG.warning("hot reload of %s failed (%s); keeping "
                             "generation %d", self.model_path, exc,
                             self.generation)
                return False
            with self._predict_lock, self._swap_lock:
                self._service = service
                self._signature = signature
                self._generation += 1
                generation = self._generation
            self._failed_signature = None
        if self._metrics is not None:
            self._reloads.inc()
            self._generation_gauge.set(generation)
        self._update_corpus_gauges()
        _LOG.info("hot-reloaded %s as model generation %d",
                  self.model_path, generation)
        return True

    def start_watching(self) -> None:
        """Start the artifact poll thread (no-op when disabled)."""

        if self.poll_interval <= 0 or self._watcher is not None:
            return
        self._watcher = threading.Thread(target=self._watch_loop,
                                         name="repro-model-watch",
                                         daemon=True)
        self._watcher.start()

    def stop(self) -> None:
        """Stop the watcher thread and scoring workers (idempotent)."""

        self._stop.set()
        if self._watcher is not None:
            self._watcher.join(timeout=self.poll_interval + 5.0)
            self._watcher = None
        pool = self._worker_pool
        if pool is not None:
            self._worker_pool = None
            pool.close()

    def _watch_loop(self) -> None:
        while not self._stop.wait(self.poll_interval):
            try:
                self.maybe_reload()
            except Exception:  # noqa: BLE001 — the watcher must survive
                _LOG.exception("model watcher poll failed; continuing")

    def _update_corpus_gauges(self) -> None:
        if self._metrics is None or not self.mutable:
            return
        info = self.corpus_info()
        self._members_gauge.set(info["members"])
        self._tombstones_gauge.set(info.get("tombstones", 0))
