"""Corpus lifecycle policies: age-off, per-class caps, compaction,
periodic republish.

A continuously-learning corpus needs the other half of ingestion:
samples that leave.  :class:`LifecycleManager` owns that half for a
:class:`~repro.serving.model_manager.ModelManager` in mutable mode:

* **age-off** — samples ingested online are tracked with their arrival
  time; past ``max_age_seconds`` they are purged (tombstoned);
* **per-class caps** — when online growth pushes a class past
  ``max_members_per_class``, the oldest *tracked* (i.e. online-ingested)
  members are evicted first; the offline-trained corpus is never aged
  out, because only tracked samples are eligible;
* **compaction** — once tombstones pass ``compact_ratio`` of resident
  members (and an absolute floor, so tiny corpora don't thrash), the
  index is physically compacted;
* **republish** — every ``republish_interval`` seconds the grown corpus
  is re-exported through :meth:`ModelManager.publish` as an atomic
  artifact, so restarts and replicas watching the same path pick it up
  via the ordinary generation-tracked hot reload.

Policies are evaluated by :meth:`run_once` — directly from tests, or
periodically by the daemon thread (:meth:`start` / :meth:`stop`).
Everything funnels through the manager's own mutation API, so the
locking story is the manager's; this class only needs its small
tracking lock.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path

from ..exceptions import ReproError, ValidationError
from ..logging_utils import get_logger

__all__ = ["LifecycleConfig", "LifecycleManager"]

_LOG = get_logger("serving.lifecycle")


@dataclass(frozen=True)
class LifecycleConfig:
    """Knobs of the corpus lifecycle (``None`` disables a policy)."""

    #: Age-off horizon for online-ingested samples, in seconds.
    max_age_seconds: float | None = None
    #: Cap on surviving members per class; online-ingested samples are
    #: evicted oldest-first when a class exceeds it.
    max_members_per_class: int | None = None
    #: Tombstone fraction past which the index is compacted.
    compact_ratio: float = 0.25
    #: Minimum tombstones before a compaction is worth its rebuild.
    min_compact_tombstones: int = 8
    #: Seconds between corpus republishes (``None`` disables them).
    republish_interval: float | None = None
    #: Republish target; defaults to the manager's watched model path.
    republish_path: str | Path | None = None
    #: Ceiling of the exponential backoff applied after a failed
    #: republish (disk full, artifact directory gone...).  The retry
    #: delay doubles from the sweep interval up to this cap, so a
    #: persistent failure doesn't hammer the disk every sweep.
    republish_backoff_max: float = 300.0
    #: Seconds between policy sweeps of the daemon thread.
    sweep_interval: float = 5.0

    def __post_init__(self) -> None:
        if self.max_age_seconds is not None and self.max_age_seconds <= 0:
            raise ValidationError("max_age_seconds must be positive")
        if (self.max_members_per_class is not None
                and self.max_members_per_class < 1):
            raise ValidationError("max_members_per_class must be >= 1")
        if not 0.0 < self.compact_ratio <= 1.0:
            raise ValidationError("compact_ratio must be in (0, 1]")
        if self.min_compact_tombstones < 1:
            raise ValidationError("min_compact_tombstones must be >= 1")
        if (self.republish_interval is not None
                and self.republish_interval <= 0):
            raise ValidationError("republish_interval must be positive")
        if self.republish_backoff_max <= 0:
            raise ValidationError("republish_backoff_max must be positive")
        if self.sweep_interval <= 0:
            raise ValidationError("sweep_interval must be positive")


class LifecycleManager:
    """Apply a :class:`LifecycleConfig` to a mutable model manager.

    Parameters
    ----------
    manager:
        A :class:`~repro.serving.model_manager.ModelManager` in mutable
        mode; all mutation goes through its API.
    config:
        The policy knobs.
    metrics:
        Optional :class:`~repro.serving.metrics.MetricsRegistry`.
    time_source:
        Injectable clock (tests advance a fake one instead of
        sleeping).
    """

    def __init__(self, manager, config: LifecycleConfig, *,
                 metrics=None, time_source=time.time) -> None:
        if not getattr(manager, "mutable", False):
            raise ValidationError(
                "LifecycleManager needs a ModelManager in mutable mode")
        self.manager = manager
        self.config = config
        self._now = time_source
        self._lock = threading.Lock()
        # sample_id -> (ingest time, class); insertion order is arrival
        # order, which is what oldest-first eviction walks.
        self._tracked: "OrderedDict[str, tuple[float, str]]" = OrderedDict()
        self._last_publish = self._now()
        self._publish_failures = 0          # consecutive, reset on success
        self._publish_retry_at = 0.0
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._metrics = metrics
        if metrics is not None:
            self._aged_off = metrics.counter("lifecycle_aged_off_total")
            self._cap_evicted = metrics.counter("lifecycle_cap_evicted_total")
            self._compactions = metrics.counter("lifecycle_compactions_total")
            self._publishes = metrics.counter("lifecycle_publishes_total")
            self._republish_failures = metrics.counter(
                "lifecycle_republish_failures")

    @property
    def tracked_count(self) -> int:
        with self._lock:
            return len(self._tracked)

    # -------------------------------------------------------------- tracking
    def note_ingested(self, reports, *, when: float | None = None) -> None:
        """Record freshly ingested samples (the server calls this with
        every successful ingest batch's reports)."""

        when = self._now() if when is None else float(when)
        with self._lock:
            for report in reports:
                self._tracked[report["sample_id"]] = (when, report["class"])

    # -------------------------------------------------------------- policies
    def run_once(self, *, now: float | None = None,
                 force_publish: bool = False) -> dict:
        """Evaluate every policy once; returns what happened.

        The report maps ``aged_off`` / ``cap_evicted`` to the purged
        sample ids, ``compacted`` to the members physically dropped and
        ``published`` to the artifact path (or ``None``).
        """

        now = self._now() if now is None else float(now)
        report = {"aged_off": self._age_off(now),
                  "cap_evicted": self._enforce_caps(),
                  "compacted": self._maybe_compact(),
                  "published": self._maybe_publish(now, force_publish)}
        return report

    def _age_off(self, now: float) -> list[str]:
        horizon = self.config.max_age_seconds
        if horizon is None:
            return []
        with self._lock:
            expired = [sample_id
                       for sample_id, (when, _) in self._tracked.items()
                       if now - when >= horizon]
        return [sample_id for sample_id in expired
                if self._purge_tracked(sample_id, self._aged_off_inc)]

    def _enforce_caps(self) -> list[str]:
        cap = self.config.max_members_per_class
        if cap is None:
            return []
        info = self.manager.corpus_info()
        over = {name: count - cap
                for name, count in info["classes"].items() if count > cap}
        if not over:
            return []
        victims: list[str] = []
        with self._lock:
            # Oldest tracked samples first; offline-trained members are
            # not tracked and therefore never evicted by the cap.
            for sample_id, (_, class_name) in self._tracked.items():
                excess = over.get(class_name, 0)
                if excess > 0:
                    victims.append(sample_id)
                    over[class_name] = excess - 1
        return [sample_id for sample_id in victims
                if self._purge_tracked(sample_id, self._cap_evicted_inc)]

    def _purge_tracked(self, sample_id: str, count) -> bool:
        try:
            removed, _ = self.manager.purge(sample_id)
        except ReproError as exc:
            # e.g. the sample became a class's last anchor; dropping it
            # from tracking stops the sweep from retrying forever.
            _LOG.warning("lifecycle purge of %r skipped: %s", sample_id, exc)
            removed = 0
        with self._lock:
            self._tracked.pop(sample_id, None)
        if removed:
            count(removed)
            return True
        return False

    def _maybe_compact(self) -> int:
        info = self.manager.corpus_info()
        tombstones = info.get("tombstones", 0)
        if (tombstones < self.config.min_compact_tombstones
                or info.get("tombstone_ratio", 0.0)
                < self.config.compact_ratio):
            return 0
        dropped = self.manager.compact()
        if dropped:
            self._compactions_inc()
            _LOG.info("lifecycle compaction dropped %d members", dropped)
        return dropped

    def _maybe_publish(self, now: float, force: bool) -> str | None:
        interval = self.config.republish_interval
        due = force or (interval is not None
                        and now - self._last_publish >= interval)
        if not due:
            return None
        if not force and self._publish_failures and now < self._publish_retry_at:
            return None
        try:
            path = self.manager.publish(self.config.republish_path)
        except (ReproError, OSError) as exc:
            # Doubling backoff from the sweep interval: a full disk
            # stays a full disk for a while, and every failed attempt
            # writes (and unlinks) a whole artifact-sized temp file.
            self._publish_failures += 1
            delay = min(
                self.config.sweep_interval * (2 ** self._publish_failures),
                self.config.republish_backoff_max)
            self._publish_retry_at = now + delay
            self._republish_failures_inc()
            _LOG.warning(
                "lifecycle republish failed (attempt %d): %s; retrying in "
                "%.1fs", self._publish_failures, exc, delay)
            if force:
                raise
            return None
        self._publish_failures = 0
        self._last_publish = now
        self._publishes_inc()
        return str(path)

    # ------------------------------------------------------- metrics helpers
    def _aged_off_inc(self, n: int) -> None:
        if self._metrics is not None:
            self._aged_off.inc(n)

    def _cap_evicted_inc(self, n: int) -> None:
        if self._metrics is not None:
            self._cap_evicted.inc(n)

    def _compactions_inc(self) -> None:
        if self._metrics is not None:
            self._compactions.inc()

    def _publishes_inc(self) -> None:
        if self._metrics is not None:
            self._publishes.inc()

    def _republish_failures_inc(self) -> None:
        if self._metrics is not None:
            self._republish_failures.inc()

    # ------------------------------------------------------------ the thread
    def start(self) -> None:
        """Start the periodic policy sweep thread (idempotent)."""

        if self._thread is not None:
            return
        self._thread = threading.Thread(target=self._sweep_loop,
                                        name="repro-lifecycle",
                                        daemon=True)
        self._thread.start()

    def stop(self) -> None:
        """Stop the sweep thread (idempotent)."""

        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=self.config.sweep_interval + 5.0)
            self._thread = None

    def _sweep_loop(self) -> None:
        while not self._stop.wait(self.config.sweep_interval):
            try:
                self.run_once()
            except Exception:  # noqa: BLE001 — the sweep must survive
                _LOG.exception("lifecycle sweep failed; continuing")
