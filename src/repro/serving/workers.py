"""Multi-process scoring workers behind the serving coalescer.

One serving process can only score one batch at a time: model passes
share per-index memo caches and therefore run under the manager's
predict lock.  :class:`ScoringWorkerPool` lifts that ceiling by putting
the already-pluggable :class:`~repro.parallel.backend.ProcessBackend`
behind the coalescer: ``repro-classify serve --score-workers N`` forks
``N`` worker processes, each of which loads the *same* artifact file —
with ``mmap=True`` the bulk arrays land in the OS page cache exactly
once and every worker maps the same physical pages, so N workers cost
one model's worth of RAM.

Protocol
--------
* Every worker runs :func:`_worker_init` once at start-up (the
  :class:`ProcessBackend` ``initializer`` hook) and caches its
  :class:`~repro.api.service.ClassificationService` in module state.
* The parent dispatches micro-batches with :func:`_score_batch`
  payloads that carry the artifact's current stat signature.  A worker
  whose cached service was loaded under a different signature reloads
  (for a mapped artifact: a remap) before scoring — hot reload
  propagates to workers with no extra plumbing.
* Results come back as ``(pid, cumulative_batches, decisions, spans)``
  so the parent can publish per-worker batch counters on ``/metrics``
  and attribute scoring-stage time per worker pid.  Span clocks are
  process-local, so workers ship ``(name, offset, duration, meta)``
  tuples relative to their own batch start and the parent re-bases
  them onto its dispatch timestamp (see
  :func:`repro.observability.trace.record_shipped_spans`).

Decisions are **bit-identical** to the single-process path: items are
scored independently of their batch-mates, so splitting a batch into
contiguous per-worker chunks and concatenating the results in order
reproduces exactly what one in-process ``classify_bytes`` call returns.
"""

from __future__ import annotations

import os
import threading
import time
from pathlib import Path
from typing import Sequence

from ..api.service import ClassificationService, Decision
from ..exceptions import ValidationError
from ..logging_utils import get_logger
from ..observability import trace as trace_mod
from ..parallel.backend import ProcessBackend

__all__ = ["ScoringWorkerPool"]

_LOG = get_logger("serving.workers")

#: Per-process worker state, populated by :func:`_worker_init`.
_WORKER_STATE: dict = {}


def _worker_init(model_path: str, load_kwargs: dict) -> None:
    """Process-pool initializer: remember how to load the model.

    The actual load is deferred to the first batch (or ping) so that a
    worker that dies during start-up degrades the pool the same way a
    mid-batch death does — through the backend's error path.
    """

    _WORKER_STATE.clear()
    _WORKER_STATE.update(model_path=model_path,
                         load_kwargs=dict(load_kwargs),
                         service=None, signature=None, batches=0)


def _worker_service(signature: tuple) -> ClassificationService:
    """The cached service, (re)loaded when the signature moved."""

    if _WORKER_STATE.get("service") is None \
            or _WORKER_STATE.get("signature") != signature:
        _WORKER_STATE["service"] = ClassificationService.load(
            _WORKER_STATE["model_path"], **_WORKER_STATE["load_kwargs"])
        _WORKER_STATE["signature"] = signature
    return _WORKER_STATE["service"]


def _worker_ping(signature: tuple) -> int:
    """Warm-up task: load the model, report the worker's pid."""

    _worker_service(signature)
    return os.getpid()


def _score_batch(payload: tuple) -> tuple[int, int, list[Decision], list]:
    """Score one contiguous chunk in this worker process.

    Returns ``(pid, batches, decisions, spans)`` where ``spans`` are
    the stage spans recorded during the chunk's model pass, shipped as
    process-portable tuples (offsets relative to this chunk's start).
    """

    signature, items, want_spans = payload
    service = _worker_service(signature)
    if want_spans:
        collector = trace_mod.SpanCollector()
        token = trace_mod.activate(collector)
        try:
            decisions = service.classify_bytes(list(items))
        finally:
            trace_mod.deactivate(token)
        shipped = collector.shipped()
    else:
        decisions = service.classify_bytes(list(items))
        shipped = []
    _WORKER_STATE["batches"] += 1
    return os.getpid(), _WORKER_STATE["batches"], decisions, shipped


class ScoringWorkerPool:
    """N scoring processes sharing one (ideally mapped) artifact.

    The pool is ``strict``: a dead or unspawnable process pool raises
    :class:`~repro.exceptions.ParallelExecutionError` from
    :meth:`classify` instead of silently running the batch serially —
    the owner (:class:`~repro.serving.model_manager.ModelManager`)
    decides how to degrade.
    """

    def __init__(self, model_path: str | os.PathLike, n_workers: int, *,
                 load_kwargs: dict | None = None) -> None:
        n_workers = int(n_workers)
        if n_workers < 1:
            raise ValidationError(
                f"score worker count must be >= 1, got {n_workers}")
        self.n_workers = n_workers
        self._backend = ProcessBackend(
            n_workers, strict=True, initializer=_worker_init,
            initargs=(str(Path(model_path)), dict(load_kwargs or {})))
        self._lock = threading.Lock()
        self._batches_by_pid: dict[int, int] = {}

    def warm(self, signature: tuple) -> None:
        """Spawn every worker and load the model in each, eagerly.

        Called before the server starts its coalescer and watcher
        threads, so the processes are forked from a single-threaded
        parent and the first real batch pays no cold-start.
        """

        pids = self._backend.map(_worker_ping,
                                 [signature] * self.n_workers, chunksize=1)
        with self._lock:
            for pid in pids:
                self._batches_by_pid.setdefault(int(pid), 0)
        _LOG.info("scoring worker pool ready: %d workers (pids %s)",
                  self.n_workers, sorted(set(int(p) for p in pids)))

    def classify(self, items: Sequence[tuple[str, bytes]],
                 signature: tuple) -> list[Decision]:
        """Score a batch across the workers; results in input order.

        The batch splits into at most ``n_workers`` contiguous chunks
        (never empty ones), each worker scores its chunk independently,
        and the concatenation is bit-identical to a single in-process
        ``classify_bytes`` over the whole batch.
        """

        items = list(items)
        if not items:
            return []
        # Only ask workers to record spans when this batch is traced —
        # an unsampled request must not pay span-collection cost.
        want_spans = trace_mod.current_sink() is not None
        dispatch_start = time.perf_counter()
        n_chunks = min(self.n_workers, len(items))
        chunk_size = -(-len(items) // n_chunks)
        payloads = [(signature, items[lo:lo + chunk_size], want_spans)
                    for lo in range(0, len(items), chunk_size)]
        results = self._backend.map(_score_batch, payloads, chunksize=1)
        decisions: list[Decision] = []
        with self._lock:
            for pid, batches, part, shipped in results:
                # Cumulative per-worker counts: chunks of one batch may
                # land on the same worker, so keep the max, not the sum.
                if batches > self._batches_by_pid.get(int(pid), 0):
                    self._batches_by_pid[int(pid)] = int(batches)
                decisions.extend(part)
                if shipped:
                    trace_mod.record_shipped_spans(
                        shipped, dispatch_start, worker=int(pid))
        return decisions

    def stats(self) -> dict:
        """Per-worker batch counters for ``/metrics``."""

        with self._lock:
            per_worker = {str(pid): count for pid, count
                          in sorted(self._batches_by_pid.items())}
        return {
            "workers": self.n_workers,
            "batches_total": sum(per_worker.values()),
            "batches_by_worker": per_worker,
        }

    def close(self) -> None:
        """Shut the process pool down (idempotent)."""

        self._backend.close()

    def __enter__(self) -> "ScoringWorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
