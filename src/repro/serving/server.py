"""The long-running classification server (stdlib HTTP, threads).

``ClassificationServer`` is the resident serving tier the paper's
continuous-monitoring deployment needs: load the model artifact once
(the expensive cold start PR 2 optimised), keep the sealed index hot in
memory, and answer classification requests over plain HTTP until told
to stop.  Three endpoints:

``POST /classify``
    Classify executables (JSON protocol, see
    :mod:`repro.serving.protocol`).  Requests are admitted into the
    bounded :class:`~repro.serving.batcher.RequestCoalescer` queue and
    drained into shared micro-batches; a full queue answers ``503``
    with a ``Retry-After`` header instead of queueing unboundedly.
``GET /healthz``
    Liveness: status, live model generation, uptime, drain state,
    tracing configuration, and (in ingest mode) live corpus
    membership.
``GET /metrics``
    JSON snapshot of the
    :class:`~repro.serving.metrics.MetricsRegistry` (request counters,
    latency histogram with p50/p95/p99, batch sizes, queue depth,
    reload counts) plus the service's digest-cache counters.  With
    ``?format=prometheus`` the same registry renders as Prometheus
    text exposition (format 0.0.4) instead.
``GET /debug/trace``
    The tracer's ring buffers: the last-N sampled request traces plus
    the traces that exceeded ``--slow-request-ms``, each with its
    per-stage breakdown (see :mod:`repro.observability.trace`).
``GET /debug/profile?seconds=N``
    Open a cProfile window over the coalescer workers and answer with
    merged pstats text.  Refused (403) unless the server was started
    with ``--enable-profiling``.

Every response carries an ``X-Request-Id`` header; classified
decisions repeat the id in their decision-log lines and ingest acks
carry it in the body, so one client call correlates across the audit
trail, ``/debug/trace`` and the slow-request log.

With ``enable_ingest=True`` (and a mutable
:class:`~repro.serving.model_manager.ModelManager`) two more verbs turn
the server into a live metastore:

``POST /ingest``
    Add labelled samples to the in-process corpus (JSON protocol, see
    :mod:`repro.serving.ingest`).  Ingest requests flow through the
    *same* bounded coalescer queue as classification — an ingest burst
    is admission-controlled by the same 503/Retry-After backpressure
    and can never starve classification through a private path.
``DELETE /samples/<id>``
    Tombstone every corpus member registered under the (URL-encoded)
    sample id.  Answers 404 for an unknown id and 409 when the purge
    would leave a class without anchors.

Shutdown is graceful by default: stop accepting connections, drain the
queued requests so every admitted client gets its answer, flush and
fsync the decision log, then exit — wired to SIGTERM/SIGINT by
:meth:`run_until_signalled` (the CLI path).
"""

from __future__ import annotations

import json
import signal
import threading
import time
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlsplit

from ..exceptions import (
    ProtocolError,
    ReproError,
    ServerClosedError,
    ServerOverloadedError,
    ServingError,
    ValidationError,
)
from ..logging_utils import get_logger
from ..observability import promtext
from ..observability import trace as trace_mod
from ..observability.profiler import ProfilerBusyError, WorkerProfiler
from ..observability.trace import REQUEST_ID_HEADER, Tracer, span
from . import ingest as ingest_protocol
from . import protocol
from .batcher import RequestCoalescer
from .metrics import MetricsRegistry

__all__ = ["ServerConfig", "ClassificationServer"]

_LOG = get_logger("serving.server")


@dataclass(frozen=True)
class ServerConfig:
    """Tunables of one :class:`ClassificationServer`."""

    host: str = "127.0.0.1"
    port: int = 8080                      # 0 = pick an ephemeral port
    workers: int = 2                      # coalescer drain threads
    max_batch: int = 32                   # items per coalesced batch
    queue_depth: int = 256                # admission cap, in queued items
    max_items_per_request: int = protocol.DEFAULT_MAX_ITEMS
    max_item_bytes: int = protocol.DEFAULT_MAX_ITEM_BYTES
    max_request_bytes: int = protocol.DEFAULT_MAX_REQUEST_BYTES
    retry_after_seconds: float = 1.0      # hint sent with every 503
    request_timeout_seconds: float = 120.0
    enable_ingest: bool = False           # POST /ingest + DELETE /samples
    max_ingest_items: int = ingest_protocol.DEFAULT_MAX_INGEST_ITEMS
    trace_sample: float = 1.0             # fraction of requests traced
    slow_request_ms: float = 1000.0       # slow-ring + warn threshold
    trace_ring: int = trace_mod.DEFAULT_RING_SIZE
    enable_profiling: bool = False        # GET /debug/profile


class _HTTPServer(ThreadingHTTPServer):
    """One handler thread per connection.

    Handler threads stay daemonic — an idle keep-alive connection parks
    its handler in a blocking read, and joining that on close would
    hang shutdown forever.  Graceful drain is guaranteed by the app's
    in-flight request counter instead (see
    :meth:`ClassificationServer.shutdown`).
    """

    daemon_threads = True
    app: "ClassificationServer" = None


class ClassificationServer:
    """HTTP front end over a :class:`ModelManager` and a coalescer.

    ``manager`` only needs the :meth:`ModelManager.classify_items`
    contract (``items -> (decisions, generation)``) plus a
    ``generation`` property — tests substitute stubs to exercise the
    overload and failure paths deterministically.
    """

    def __init__(self, manager, config: ServerConfig | None = None, *,
                 metrics: MetricsRegistry | None = None,
                 decision_log=None, lifecycle=None) -> None:
        self.manager = manager
        self.config = config or ServerConfig()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.decision_log = decision_log
        self.lifecycle = lifecycle
        self._requests = self.metrics.counter("http_requests_total")
        self._ok = self.metrics.counter("http_responses_ok")
        self._bad = self.metrics.counter("http_responses_bad_request")
        self._overloaded = self.metrics.counter("http_responses_overloaded")
        self._errors = self.metrics.counter("http_responses_error")
        self._items = self.metrics.counter("items_classified_total")
        self._latency = self.metrics.histogram("request_latency_seconds")
        self.tracer = Tracer(
            self.metrics,
            sample_rate=self.config.trace_sample,
            slow_request_ms=self.config.slow_request_ms,
            ring_size=self.config.trace_ring)
        self.profiler = (WorkerProfiler()
                         if self.config.enable_profiling else None)
        handlers = {"classify": self._classify_batch}
        if self.config.enable_ingest:
            handlers["ingest"] = self._ingest_batch
            self._items_ingested = self.metrics.counter(
                "items_ingested_total")
        self._coalescer = RequestCoalescer(
            handlers,
            max_batch=self.config.max_batch,
            queue_depth=self.config.queue_depth,
            workers=self.config.workers,
            metrics=self.metrics,
            profiler=self.profiler)
        self._batch_latency = self.metrics.histogram("batch_latency_seconds")
        self._httpd: _HTTPServer | None = None
        self._serve_thread: threading.Thread | None = None
        self._started = threading.Event()
        self._draining = threading.Event()
        self._stopped = threading.Event()
        self._started_at = time.monotonic()
        # Classify requests currently inside handle_classify.  Handler
        # threads are daemonic and never joined (see _HTTPServer), so
        # shutdown waits on this counter before closing the decision
        # log out from under a handler mid-append.
        self._inflight = 0
        self._idle = threading.Condition()

    # ------------------------------------------------------------ lifecycle
    @property
    def port(self) -> int:
        """The bound port (useful with ``port=0``)."""

        if self._httpd is None:
            raise ServingError("server is not started")
        return self._httpd.server_address[1]

    def start(self) -> "ClassificationServer":
        """Bind the socket and serve in a background thread."""

        if self._httpd is not None:
            raise ServingError("server already started")
        self._httpd = _HTTPServer((self.config.host, self.config.port),
                                  _Handler)
        self._httpd.app = self
        self._started_at = time.monotonic()
        if hasattr(self.manager, "start_watching"):
            self.manager.start_watching()
        if self.lifecycle is not None:
            self.lifecycle.start()
        self._serve_thread = threading.Thread(
            target=self._httpd.serve_forever, name="repro-serve",
            kwargs={"poll_interval": 0.1}, daemon=True)
        self._serve_thread.start()
        self._started.set()
        _LOG.info("serving on http://%s:%d (workers=%d, max_batch=%d, "
                  "queue_depth=%d)", self.config.host, self.port,
                  self.config.workers, self.config.max_batch,
                  self.config.queue_depth)
        return self

    def shutdown(self, *, drain: bool = True) -> None:
        """Stop serving; with ``drain`` every admitted request finishes.

        Idempotent.  Order matters: stop accepting first, then drain the
        coalescer so blocked handler threads resolve, then join the
        handler threads and durably flush the decision log.
        """

        if self._stopped.is_set():
            return
        self._draining.set()
        if self.lifecycle is not None:
            self.lifecycle.stop()
        if hasattr(self.manager, "stop"):
            self.manager.stop()
        if self._httpd is not None:
            self._httpd.shutdown()            # stop the accept loop
        self._coalescer.close(drain=drain)
        # The coalescer has resolved (or abandoned) every future, so
        # the remaining in-flight handlers only need to write their
        # responses and decision-log lines; wait for that, bounded so a
        # wedged client socket cannot hold shutdown hostage.
        with self._idle:
            self._idle.wait_for(lambda: self._inflight == 0, timeout=30)
        if self._httpd is not None:
            self._httpd.server_close()
        if self.decision_log is not None:
            self.decision_log.close()
        self._stopped.set()
        _LOG.info("server stopped (drained=%s)", drain)

    def run_until_signalled(self,
                            signals=(signal.SIGTERM, signal.SIGINT)) -> int:
        """Block until SIGTERM/SIGINT, drain gracefully, return 0.

        Must run on the main thread (signal handler requirement); the
        accept loop runs on a background thread either way.
        """

        if self._httpd is None:
            self.start()
        stop = threading.Event()
        previous = {}

        def _on_signal(signum, _frame):
            _LOG.info("received signal %d; draining", signum)
            stop.set()

        for signum in signals:
            previous[signum] = signal.signal(signum, _on_signal)
        try:
            stop.wait()
        finally:
            for signum, handler in previous.items():
                signal.signal(signum, handler)
            self.shutdown(drain=True)
        return 0

    # ------------------------------------------------------------- requests
    def _classify_batch(self, items):
        start = time.perf_counter()
        decisions, generation = self.manager.classify_items(
            [(item.sample_id, item.data) for item in items])
        self._batch_latency.observe(time.perf_counter() - start)
        return decisions, generation

    def handle_classify(self, body: bytes) -> tuple[int, dict, bytes]:
        """Run one ``/classify`` body; ``(status, headers, response)``."""

        with self._idle:
            self._inflight += 1
        try:
            return self._handle_classify(body)
        finally:
            with self._idle:
                self._inflight -= 1
                self._idle.notify_all()

    def _handle_classify(self, body: bytes) -> tuple[int, dict, bytes]:
        started = time.perf_counter()
        self._requests.inc()
        # The request id is issued at the server edge for *every*
        # request (sampled or not); the trace only exists for sampled
        # ones.  Activating the trace as the contextvar sink lets the
        # handler-thread stages (parse, serialize, decision_log)
        # record without plumbing.
        request_id = trace_mod.new_request_id()
        trace = self.tracer.begin(request_id, "classify")
        headers = {REQUEST_ID_HEADER: request_id}
        token = trace_mod.activate(trace) if trace is not None else None
        items = ()
        status = 500
        try:
            try:
                with span("parse"):
                    items = protocol.parse_classify_request(
                        body, max_items=self.config.max_items_per_request,
                        max_item_bytes=self.config.max_item_bytes)
                future = self._coalescer.submit(items, trace=trace)
                decisions, generation = future.result(
                    timeout=self.config.request_timeout_seconds)
            except ProtocolError as exc:
                self._bad.inc()
                status = 400
                return 400, headers, _error_body(str(exc))
            except (ServerOverloadedError, ServerClosedError, TimeoutError,
                    FutureTimeoutError) as exc:
                self._overloaded.inc()
                status = 503
                headers["Retry-After"] = str(
                    max(1, round(self.config.retry_after_seconds)))
                return 503, headers, _error_body(str(exc))
            except Exception as exc:  # noqa: BLE001 — must answer the client
                self._errors.inc()
                _LOG.exception("classification request failed")
                return 500, headers, _error_body(f"internal error: {exc}")
            self._ok.inc()
            status = 200
            self._items.inc(len(decisions))
            self._latency.observe(time.perf_counter() - started)
            if self.decision_log is not None:
                with span("decision_log"):
                    now = time.time()
                    for decision in decisions:
                        record = protocol.decision_to_dict(decision)
                        record["model_generation"] = generation
                        record["unix_time"] = round(now, 3)
                        record["request_id"] = request_id
                        self.decision_log.append(record)
            with span("serialize"):
                response = protocol.encode_decisions(decisions, generation)
            return 200, headers, response
        finally:
            if token is not None:
                trace_mod.deactivate(token)
            self.tracer.finish(trace, items=len(items), status=status)

    # ------------------------------------------------------------- ingestion
    def _ingest_batch(self, items):
        reports, generation = self.manager.ingest_items(
            [item.as_triple() for item in items])
        if self.lifecycle is not None:
            self.lifecycle.note_ingested(reports)
        return reports, generation

    def handle_ingest(self, body: bytes) -> tuple[int, dict, bytes]:
        """Run one ``/ingest`` body; ``(status, headers, response)``."""

        with self._idle:
            self._inflight += 1
        try:
            return self._handle_ingest(body)
        finally:
            with self._idle:
                self._inflight -= 1
                self._idle.notify_all()

    def _handle_ingest(self, body: bytes) -> tuple[int, dict, bytes]:
        started = time.perf_counter()
        self._requests.inc()
        request_id = trace_mod.new_request_id()
        headers = {REQUEST_ID_HEADER: request_id}
        if not self.config.enable_ingest:
            self._bad.inc()
            return 403, headers, _error_body(
                "ingestion is disabled on this server (start it with "
                "--ingest)")
        trace = self.tracer.begin(request_id, "ingest")
        token = trace_mod.activate(trace) if trace is not None else None
        items = ()
        status = 500
        try:
            try:
                with span("parse"):
                    items = ingest_protocol.parse_ingest_request(
                        body, max_items=self.config.max_ingest_items,
                        max_item_bytes=self.config.max_item_bytes)
                future = self._coalescer.submit(items, kind="ingest",
                                                trace=trace)
                reports, generation = future.result(
                    timeout=self.config.request_timeout_seconds)
            except (ProtocolError, ValidationError) as exc:
                # ValidationError covers corpus-level rejections (unknown
                # class, unlabelled sample) raised inside the ingest pass.
                self._bad.inc()
                status = 400
                return 400, headers, _error_body(str(exc))
            except (ServerOverloadedError, ServerClosedError, TimeoutError,
                    FutureTimeoutError) as exc:
                self._overloaded.inc()
                status = 503
                headers["Retry-After"] = str(
                    max(1, round(self.config.retry_after_seconds)))
                return 503, headers, _error_body(str(exc))
            except Exception as exc:  # noqa: BLE001 — must answer the client
                self._errors.inc()
                _LOG.exception("ingest request failed")
                return 500, headers, _error_body(f"internal error: {exc}")
            self._ok.inc()
            status = 200
            self._items_ingested.inc(len(reports))
            self._latency.observe(time.perf_counter() - started)
            members = self.manager.corpus_info()["members"]
            with span("serialize"):
                response = ingest_protocol.encode_ingest_report(
                    reports, generation, members,
                    durable=self._wal_active(), request_id=request_id)
            return 200, headers, response
        finally:
            if token is not None:
                trace_mod.deactivate(token)
            self.tracer.finish(trace, items=len(items), status=status)

    def handle_purge(self, path: str) -> tuple[int, dict, bytes]:
        """Run one ``DELETE /samples/<id>``; ``(status, hdrs, body)``.

        Purges run directly (not through the coalescer): they carry no
        payload to batch, and the manager's mutation path serialises
        them against model passes anyway.
        """

        with self._idle:
            self._inflight += 1
        try:
            return self._handle_purge(path)
        finally:
            with self._idle:
                self._inflight -= 1
                self._idle.notify_all()

    def _handle_purge(self, path: str) -> tuple[int, dict, bytes]:
        self._requests.inc()
        headers = {REQUEST_ID_HEADER: trace_mod.new_request_id()}
        if not self.config.enable_ingest:
            self._bad.inc()
            return 403, headers, _error_body(
                "ingestion is disabled on this server (start it with "
                "--ingest)")
        try:
            sample_id = ingest_protocol.parse_purge_path(path)
            removed, generation = self.manager.purge(sample_id)
        except ProtocolError as exc:
            self._bad.inc()
            return 400, headers, _error_body(str(exc))
        except ValidationError as exc:
            # Refused because the purge would strand a class without
            # anchors: a conflict with the corpus state, not a bad
            # request shape.
            self._bad.inc()
            return 409, headers, _error_body(str(exc))
        except Exception as exc:  # noqa: BLE001 — must answer the client
            self._errors.inc()
            _LOG.exception("purge request failed")
            return 500, headers, _error_body(f"internal error: {exc}")
        if not removed:
            self._bad.inc()
            return 404, headers, _error_body(
                f"no corpus member is registered under {sample_id!r}")
        self._ok.inc()
        return 200, headers, json.dumps({
            "purged": int(removed), "sample_id": sample_id,
            "model_generation": int(generation),
        }, sort_keys=True).encode("utf-8")

    def _wal_active(self) -> bool:
        """Whether the manager acks mutations through a write-ahead log."""

        info = getattr(self.manager, "durability_info", None)
        return callable(info) and info() is not None

    def health_payload(self) -> dict:
        payload = {
            "status": "draining" if self._draining.is_set() else "ok",
            "model_generation": int(self.manager.generation),
            "model_path": str(getattr(self.manager, "model_path", "")),
            "uptime_seconds": round(time.monotonic() - self._started_at, 3),
            "ingest_enabled": bool(self.config.enable_ingest),
        }
        classifier = getattr(getattr(self.manager, "service", None),
                             "classifier", None)
        family = getattr(classifier, "family", None)
        if family is not None:
            payload["model_family"] = str(family)
        load_mode = getattr(self.manager, "load_mode", None)
        if load_mode is not None:
            payload["load_mode"] = str(load_mode)
        payload["score_workers"] = int(
            getattr(self.manager, "score_workers", 0) or 0)
        corpus_info = getattr(self.manager, "corpus_info", None)
        if self.config.enable_ingest and callable(corpus_info):
            try:
                payload["corpus"] = corpus_info()
            except ReproError:   # pragma: no cover — health must answer
                pass
        durability_info = getattr(self.manager, "durability_info", None)
        if callable(durability_info):
            try:
                durability = durability_info()
            except ReproError:   # pragma: no cover — health must answer
                durability = None
            if durability is not None:
                payload["durability"] = durability
        payload["tracing"] = {
            **self.tracer.config_payload(),
            "profiling_enabled": self.profiler is not None,
        }
        return payload

    def metrics_payload(self) -> dict:
        payload = dict(self.metrics.snapshot())
        service = getattr(self.manager, "service", None)
        cache_info = getattr(service, "cache_info", None)
        if callable(cache_info):
            payload["service_cache"] = cache_info()
        # Process-wide CTPH comparability counters: how many digest
        # comparisons were structurally impossible, by typed reason.
        from ..hashing.compare import incomparable_counts

        payload["incomparable_comparisons"] = incomparable_counts()
        load_mode = getattr(self.manager, "load_mode", None)
        if load_mode is not None:
            payload["load_mode"] = str(load_mode)
        worker_stats = getattr(self.manager, "worker_stats", None)
        if callable(worker_stats):
            stats = worker_stats()
            if stats is not None:
                # Per-worker batch counters: {"workers": N,
                # "batches_total": ..., "batches_by_worker": {pid: n}}.
                payload["scoring_workers"] = stats
        return payload


def _error_body(message: str) -> bytes:
    return json.dumps({"error": message}, sort_keys=True).encode("utf-8")


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"

    # ------------------------------------------------------------- plumbing
    @property
    def app(self) -> ClassificationServer:
        return self.server.app

    def log_message(self, format, *args):  # noqa: A002 — stdlib signature
        _LOG.debug("%s %s", self.address_string(), format % args)

    def _send_json(self, status: int, body: bytes,
                   headers: dict | None = None) -> None:
        self._send_body(status, body, "application/json", headers)

    def _send_text(self, status: int, text: str,
                   content_type: str = "text/plain; charset=utf-8",
                   headers: dict | None = None) -> None:
        self._send_body(status, text.encode("utf-8"), content_type, headers)

    def _send_body(self, status: int, body: bytes, content_type: str,
                   headers: dict | None = None) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    # --------------------------------------------------------------- routes
    def do_GET(self) -> None:  # noqa: N802 — stdlib naming
        parsed = urlsplit(self.path)
        query = parse_qs(parsed.query)
        if parsed.path == "/healthz":
            payload = self.app.health_payload()
            status = 200 if payload["status"] == "ok" else 503
            self._send_json(status,
                            json.dumps(payload, sort_keys=True).encode())
        elif parsed.path == "/metrics":
            wire_format = (query.get("format") or ["json"])[-1]
            if wire_format == "prometheus":
                self._send_text(200, promtext.render_prometheus(
                    self.app.metrics), content_type=promtext.CONTENT_TYPE)
            elif wire_format == "json":
                self._send_json(200, json.dumps(self.app.metrics_payload(),
                                                sort_keys=True).encode())
            else:
                self._send_json(400, _error_body(
                    f"unknown metrics format {wire_format!r} (expected "
                    f"json or prometheus)"))
        elif parsed.path == "/debug/trace":
            try:
                limit = int((query.get("limit") or [-1])[-1])
            except ValueError:
                self._send_json(400, _error_body("limit must be an integer"))
                return
            payload = self.app.tracer.trace_payload(
                None if limit < 0 else limit)
            self._send_json(200,
                            json.dumps(payload, sort_keys=True).encode())
        elif parsed.path == "/debug/profile":
            self._handle_profile(query)
        else:
            self._send_json(404, _error_body(f"no such endpoint: "
                                             f"{self.path}"))

    def _handle_profile(self, query: dict) -> None:
        if self.app.profiler is None:
            self._send_json(403, _error_body(
                "profiling is disabled on this server (start it with "
                "--enable-profiling)"))
            return
        try:
            seconds = float((query.get("seconds") or ["2"])[-1])
        except ValueError:
            self._send_json(400, _error_body("seconds must be a number"))
            return
        try:
            # Blocks this handler thread for the window — that is the
            # point: the response carries what ran *during* it.
            text = self.app.profiler.run(seconds)
        except ProfilerBusyError as exc:
            self._send_json(409, _error_body(str(exc)))
            return
        except ValueError as exc:
            self._send_json(400, _error_body(str(exc)))
            return
        self._send_text(200, text)

    def do_POST(self) -> None:  # noqa: N802 — stdlib naming
        if self.path not in ("/classify", "/ingest"):
            self._send_json(404, _error_body(f"no such endpoint: "
                                             f"{self.path}"))
            return
        body = self._read_body()
        if body is None:
            return
        if self.path == "/classify":
            status, headers, response = self.app.handle_classify(body)
        else:
            status, headers, response = self.app.handle_ingest(body)
        self._send_json(status, response, headers)

    def do_DELETE(self) -> None:  # noqa: N802 — stdlib naming
        if not self.path.startswith(ingest_protocol.PURGE_PREFIX):
            self._send_json(404, _error_body(f"no such endpoint: "
                                             f"{self.path}"))
            return
        status, headers, response = self.app.handle_purge(self.path)
        self._send_json(status, response, headers)

    def _read_body(self) -> bytes | None:
        """The request body, or None after answering with an error."""

        length = self.headers.get("Content-Length")
        try:
            length = int(length)
        except (TypeError, ValueError):
            self._send_json(411, _error_body("Content-Length required"))
            return None
        if length < 0:
            # rfile.read(-1) would block until EOF, parking this
            # handler thread for as long as the client holds the
            # connection open.
            self._send_json(400, _error_body("Content-Length must be "
                                             "non-negative"))
            return None
        if length > self.app.config.max_request_bytes:
            self._send_json(413, _error_body(
                f"request body of {length} bytes exceeds the "
                f"{self.app.config.max_request_bytes}-byte cap"))
            return None
        return self.rfile.read(length)
