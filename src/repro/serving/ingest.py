"""JSON wire protocol of online corpus ingestion.

One ``POST /ingest`` request carries labelled samples to add to the
live corpus::

    {"items": [{"id": "node7/job-99/a.out", "class": "GromacsLike",
                "data": "<base64 bytes>"},
               {"id": "spool-9", "class": "LammpsLike",
                "path": "/var/spool/repro/exe-9"}]}

Each item reuses the ``/classify`` submission styles (inline base64
``data`` or a server-local ``path``) and must carry the sample's
``class`` — online samples extend classes the model already knows; a
brand-new class needs a retrain, because the forest's feature columns
are per (type, class).  The response reports every admitted sample and
the corpus it landed in::

    {"ingested": [{"sample_id": ..., "class": ..., "sequence": ...}],
     "model_generation": 2,
     "corpus_members": 41,
     "count": 1,
     "request_id": "6f1f0b9c63d1a27e"}

``request_id`` echoes the server-edge id (also the ``X-Request-Id``
response header), so an acked ingest can be correlated with the
server's trace ring and slow-request log lines.

``DELETE /samples/<id>`` (the purge verb) has no body; the sample id
lives URL-encoded in the path and every corpus member registered under
it is tombstoned.

Validation failures raise :class:`~repro.exceptions.ProtocolError`
(HTTP 400).  The per-request item cap is intentionally lower than the
classify cap: ingest requests mutate the corpus and pass through the
same bounded queue as classification, so one burst should not occupy
a disproportionate share of it.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Sequence
from urllib.parse import unquote

from ..exceptions import ProtocolError
from .protocol import DEFAULT_MAX_ITEM_BYTES, _decode_b64, _read_local

__all__ = ["IngestItem", "parse_ingest_request", "parse_purge_path",
           "encode_ingest_report", "DEFAULT_MAX_INGEST_ITEMS"]

#: Default cap on samples per ingest request (deliberately below the
#: classify cap; see module docstring).
DEFAULT_MAX_INGEST_ITEMS = 32

#: URL prefix of the purge verb.
PURGE_PREFIX = "/samples/"


@dataclass(frozen=True)
class IngestItem:
    """One labelled sample to add: id, class label and raw bytes."""

    sample_id: str
    class_name: str
    data: bytes

    def as_triple(self) -> tuple[str, bytes, str]:
        """The ``(sample_id, data, class_name)`` shape
        :meth:`ModelManager.ingest_items` consumes."""

        return (self.sample_id, self.data, self.class_name)


def parse_ingest_request(body: bytes, *,
                         max_items: int = DEFAULT_MAX_INGEST_ITEMS,
                         max_item_bytes: int = DEFAULT_MAX_ITEM_BYTES
                         ) -> list[IngestItem]:
    """Decode and validate one ``POST /ingest`` body."""

    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"request body is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise ProtocolError("request body must be a JSON object")
    items = payload.get("items")
    if not isinstance(items, list) or not items:
        raise ProtocolError('request needs a non-empty "items" list')
    if len(items) > max_items:
        raise ProtocolError(f"request carries {len(items)} items; "
                            f"the per-request ingest cap is {max_items}")
    work: list[IngestItem] = []
    for position, item in enumerate(items):
        if not isinstance(item, dict):
            raise ProtocolError(f"items[{position}] must be a JSON object")
        sample_id = item.get("id")
        if not isinstance(sample_id, str) or not sample_id:
            raise ProtocolError(f"items[{position}] needs a non-empty "
                                'string "id"')
        class_name = item.get("class")
        if not isinstance(class_name, str) or not class_name:
            raise ProtocolError(f"items[{position}] needs a non-empty "
                                'string "class" (online samples must be '
                                "labelled)")
        has_data = "data" in item
        has_path = "path" in item
        if has_data == has_path:
            raise ProtocolError(f"items[{position}] needs exactly one of "
                                '"data" (base64) or "path" (server-local '
                                "file)")
        if has_data:
            data = _decode_b64(item["data"], position, max_item_bytes)
        else:
            data = _read_local(item["path"], position, max_item_bytes)
        work.append(IngestItem(sample_id=sample_id, class_name=class_name,
                               data=data))
    return work


def parse_purge_path(path: str) -> str:
    """The sample id addressed by one ``DELETE /samples/<id>`` path."""

    if not path.startswith(PURGE_PREFIX):
        raise ProtocolError(f"purge path must start with {PURGE_PREFIX}")
    sample_id = unquote(path[len(PURGE_PREFIX):])
    if not sample_id:
        raise ProtocolError("purge path carries no sample id")
    return sample_id


def encode_ingest_report(reports: Sequence[dict], generation: int,
                         members: int, *, durable: bool = False,
                         request_id: str | None = None) -> bytes:
    """Serialise one ingest response body (reports in input order).

    ``durable`` reports whether the batch was fsynced to a write-ahead
    log before this acknowledgement — i.e. whether the ingest survives
    a crash of the serving process.  ``request_id`` stamps the
    server-edge id into the ack for trace correlation.
    """

    payload = {
        "ingested": list(reports),
        "model_generation": int(generation),
        "corpus_members": int(members),
        "count": len(reports),
        "durable": bool(durable),
    }
    if request_id is not None:
        payload["request_id"] = str(request_id)
    return json.dumps(payload, sort_keys=True).encode("utf-8")
