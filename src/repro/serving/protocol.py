"""JSON wire protocol of the classification server.

One ``POST /classify`` request carries a list of work items, each an
executable to classify::

    {"items": [{"id": "node7/job-123/a.out", "data": "<base64 bytes>"},
               {"id": "spool-4", "path": "/var/spool/repro/exe-4"}]}

``data`` submits the executable's bytes inline (base64); ``path`` names
a file readable by the *server* process (the collector-on-the-same-host
deployment, which skips shipping megabytes through the request body).
The response mirrors the item order exactly::

    {"decisions": [{"sample_id": ..., "predicted_class": ...,
                    "confidence": ..., "decision": ...}, ...],
     "model_generation": 2,
     "count": 2}

``model_generation`` identifies the model artifact generation that
produced *every* decision in the response — the server never mixes
generations within one response, so a collector can detect hot-reloads
by watching the field change.  Confidences are serialised with Python's
shortest-round-trip float repr, so decisions are bit-identical to a
direct :meth:`ClassificationService.classify_bytes` call.

Validation failures raise :class:`~repro.exceptions.ProtocolError`
(HTTP 400); payload caps are enforced here so oversized requests are
rejected before any hashing work happens.
"""

from __future__ import annotations

import base64
import binascii
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Sequence

from ..exceptions import ProtocolError

__all__ = ["WorkItem", "parse_classify_request", "decision_to_dict",
           "encode_decisions", "DEFAULT_MAX_ITEMS", "DEFAULT_MAX_ITEM_BYTES",
           "DEFAULT_MAX_REQUEST_BYTES"]

#: Default cap on work items per request.
DEFAULT_MAX_ITEMS = 64

#: Default cap on one decoded executable, in bytes (32 MiB).
DEFAULT_MAX_ITEM_BYTES = 32 * 1024 * 1024

#: Default cap on the raw request body, in bytes (64 MiB).
DEFAULT_MAX_REQUEST_BYTES = 64 * 1024 * 1024


@dataclass(frozen=True)
class WorkItem:
    """One executable to classify: its client-chosen id and raw bytes."""

    sample_id: str
    data: bytes


def parse_classify_request(body: bytes, *,
                           max_items: int = DEFAULT_MAX_ITEMS,
                           max_item_bytes: int = DEFAULT_MAX_ITEM_BYTES
                           ) -> list[WorkItem]:
    """Decode and validate one ``POST /classify`` body.

    Server-local ``path`` items are read here (and capped like inline
    payloads), so the caller always works with in-memory bytes and the
    decisions cannot depend on which submission style the client chose.
    """

    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"request body is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise ProtocolError("request body must be a JSON object")
    items = payload.get("items")
    if not isinstance(items, list) or not items:
        raise ProtocolError('request needs a non-empty "items" list')
    if len(items) > max_items:
        raise ProtocolError(f"request carries {len(items)} items; "
                            f"the per-request cap is {max_items}")
    work: list[WorkItem] = []
    for position, item in enumerate(items):
        if not isinstance(item, dict):
            raise ProtocolError(f"items[{position}] must be a JSON object")
        sample_id = item.get("id")
        if not isinstance(sample_id, str) or not sample_id:
            raise ProtocolError(f"items[{position}] needs a non-empty "
                                'string "id"')
        has_data = "data" in item
        has_path = "path" in item
        if has_data == has_path:
            raise ProtocolError(f"items[{position}] needs exactly one of "
                                '"data" (base64) or "path" (server-local '
                                "file)")
        if has_data:
            data = _decode_b64(item["data"], position, max_item_bytes)
        else:
            data = _read_local(item["path"], position, max_item_bytes)
        work.append(WorkItem(sample_id=sample_id, data=data))
    return work


def _decode_b64(value, position: int, max_item_bytes: int) -> bytes:
    if not isinstance(value, str):
        raise ProtocolError(f'items[{position}].data must be a base64 string')
    # 4 base64 chars encode 3 bytes; reject before decoding so a huge
    # payload cannot balloon in memory past the cap.
    if len(value) > (max_item_bytes * 4) // 3 + 4:
        raise ProtocolError(f"items[{position}] payload exceeds the "
                            f"{max_item_bytes}-byte cap")
    try:
        data = base64.b64decode(value, validate=True)
    except (binascii.Error, ValueError) as exc:
        raise ProtocolError(f"items[{position}].data is not valid base64: "
                            f"{exc}") from exc
    if len(data) > max_item_bytes:
        raise ProtocolError(f"items[{position}] payload exceeds the "
                            f"{max_item_bytes}-byte cap")
    if not data:
        raise ProtocolError(f"items[{position}] payload is empty")
    return data


def _read_local(value, position: int, max_item_bytes: int) -> bytes:
    if not isinstance(value, str) or not value:
        raise ProtocolError(f'items[{position}].path must be a non-empty '
                            "string")
    path = Path(value)
    try:
        size = path.stat().st_size
    except OSError as exc:
        raise ProtocolError(f"items[{position}].path is not readable on the "
                            f"server: {exc}") from exc
    if size > max_item_bytes:
        raise ProtocolError(f"items[{position}] file is {size} bytes; the "
                            f"per-item cap is {max_item_bytes}")
    try:
        data = path.read_bytes()
    except OSError as exc:
        raise ProtocolError(f"items[{position}].path is not readable on the "
                            f"server: {exc}") from exc
    if not data:
        raise ProtocolError(f"items[{position}] file is empty")
    return data


def decision_to_dict(decision) -> dict:
    """JSON-ready mapping of one :class:`~repro.api.service.Decision`.

    ``predicted_class`` survives as-is when JSON can carry it (str, int,
    float — numpy scalars included via their Python parents) and is
    stringified otherwise, matching the CLI's ``--jsonl`` convention.
    """

    predicted = decision.predicted_class
    if not isinstance(predicted, (str, int, float)):
        predicted = str(predicted)
    return {
        "sample_id": decision.sample_id,
        "predicted_class": predicted,
        "confidence": float(decision.confidence),
        "decision": decision.decision,
    }


def encode_decisions(decisions: Sequence, generation: int) -> bytes:
    """Serialise one response body (decisions in input order)."""

    return json.dumps({
        "decisions": [decision_to_dict(d) for d in decisions],
        "model_generation": int(generation),
        "count": len(decisions),
    }, sort_keys=True).encode("utf-8")
