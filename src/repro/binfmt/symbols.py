"""``nm`` equivalent: global defined symbols of an executable.

The paper's third — and, per its Table 5, by far most informative —
feature is the SSDeep hash of "the global text symbols extracted using
the nm command (function and variable names in the symbol table)".

:func:`extract_global_symbols` returns the defined global symbol names;
:func:`nm_output` renders the text that is actually fuzzy-hashed (one
symbol per line, sorted by name like ``nm``'s default ordering, with an
optional ``nm``-style address/letter prefix).  :func:`is_stripped`
implements the collection rule that skips binaries without an intact
symbol table.
"""

from __future__ import annotations

from ..exceptions import SymbolTableError
from .reader import ElfReader
from .structs import ElfSymbol

__all__ = ["extract_global_symbols", "nm_output", "is_stripped"]


def _reader_from(data_or_reader: bytes | ElfReader) -> ElfReader:
    if isinstance(data_or_reader, ElfReader):
        return data_or_reader
    return ElfReader(data_or_reader)


def extract_global_symbols(data_or_reader: bytes | ElfReader,
                           *, include_objects: bool = True) -> list[ElfSymbol]:
    """Defined global (or weak) symbols, sorted by name.

    Parameters
    ----------
    include_objects:
        When False, only function (text) symbols are returned; the
        default also includes global data objects, matching the paper's
        "function and variable names in the symbol table".

    Raises
    ------
    SymbolTableError
        If the binary has no symbol table.
    """

    reader = _reader_from(data_or_reader)
    selected: list[ElfSymbol] = []
    for symbol in reader.symbols:
        if not symbol.name:
            continue
        if not symbol.is_global or not symbol.is_defined:
            continue
        if not include_objects and symbol.type != 2:  # STT_FUNC
            continue
        selected.append(symbol)
    selected.sort(key=lambda s: s.name)
    return selected


def nm_output(data_or_reader: bytes | ElfReader,
              *, include_addresses: bool = False,
              include_objects: bool = True) -> str:
    """The text whose fuzzy hash is the ``ssdeep-symbols`` feature.

    By default one sorted symbol name per line.  With
    ``include_addresses=True`` each line looks like ``nm -g`` output
    (``<address> <letter> <name>``); addresses change with every
    recompilation and would add noise, which is why the default feeds
    only the names to the fuzzy hash.
    """

    reader = _reader_from(data_or_reader)
    symbols = extract_global_symbols(reader, include_objects=include_objects)
    if not symbols:
        return ""
    if not include_addresses:
        return "\n".join(symbol.name for symbol in symbols) + "\n"
    text_sections = reader.text_section_indices
    lines = [
        f"{symbol.value:016x} {symbol.nm_letter(text_sections)} {symbol.name}"
        for symbol in symbols
    ]
    return "\n".join(lines) + "\n"


def is_stripped(data_or_reader: bytes | ElfReader) -> bool:
    """True if the binary lacks a usable symbol table.

    The paper's data collection "collect[s] the executable files that
    ... are not stripped of information (e.g. that have an intact symbol
    table)"; the corpus scanner uses this predicate to apply the same
    rule.
    """

    try:
        reader = _reader_from(data_or_reader)
    except Exception:
        return True
    if not reader.has_symbol_table:
        return True
    try:
        return len(reader.symbols) == 0
    except SymbolTableError:
        return True
