"""``strip`` equivalent: remove the symbol table from an ELF binary.

Used by the stripped-binary limitation experiment (paper, Section 5
"Limitations"): without a symbol table the ``ssdeep-symbols`` feature
disappears and classification quality degrades.  The function rebuilds
the file without ``.symtab``/``.strtab`` rather than zeroing them, so
the output is what a real ``strip -s`` would leave behind structurally.
"""

from __future__ import annotations

from . import constants as C
from .reader import ElfReader
from .structs import SectionHeader

__all__ = ["strip_symbols"]

_REMOVED_TYPES = {C.SHT_SYMTAB}
_REMOVED_NAMES = {".symtab", ".strtab"}


def strip_symbols(data: bytes) -> bytes:
    """Return a copy of the ELF binary without ``.symtab``/``.strtab``.

    All remaining section contents are preserved byte for byte; section
    offsets are re-packed, the section header table rebuilt, and the
    header's section count/string-table index updated.
    """

    reader = ElfReader(data)
    kept = []
    for section in reader.sections:
        if section.header.sh_type in _REMOVED_TYPES:
            continue
        if section.name in _REMOVED_NAMES:
            continue
        kept.append(section)

    # Rebuild the file: header + program headers verbatim, then kept
    # section contents, then a fresh section header table.
    header = reader.header
    phdr_end = header.e_phoff + header.e_phnum * header.e_phentsize \
        if header.e_phnum else C.EHDR_SIZE
    blob = bytearray(reader.data[:max(phdr_end, C.EHDR_SIZE)])

    new_headers: list[SectionHeader] = []
    for section in kept:
        old = section.header
        if old.sh_type == C.SHT_NULL:
            new_headers.append(SectionHeader())
            continue
        align = max(old.sh_addralign, 1)
        offset = (len(blob) + align - 1) // align * align
        blob.extend(b"\x00" * (offset - len(blob)))
        new_headers.append(SectionHeader(
            sh_name=old.sh_name, sh_type=old.sh_type, sh_flags=old.sh_flags,
            sh_addr=old.sh_addr, sh_offset=offset, sh_size=len(section.data),
            sh_link=min(old.sh_link, len(kept) - 1), sh_info=old.sh_info,
            sh_addralign=old.sh_addralign, sh_entsize=old.sh_entsize,
        ))
        blob.extend(section.data)

    shoff = (len(blob) + 7) // 8 * 8
    blob.extend(b"\x00" * (shoff - len(blob)))
    for new_header in new_headers:
        blob.extend(new_header.pack())

    # Patch the ELF header: new section table offset/count and shstrndx.
    shstrndx = 0
    for index, section in enumerate(kept):
        if section.name == ".shstrtab":
            shstrndx = index
            break
    patched = header.__class__(
        e_type=header.e_type, e_machine=header.e_machine,
        e_version=header.e_version, e_entry=header.e_entry,
        e_phoff=header.e_phoff, e_shoff=shoff, e_flags=header.e_flags,
        e_ehsize=header.e_ehsize, e_phentsize=header.e_phentsize,
        e_phnum=header.e_phnum, e_shentsize=header.e_shentsize,
        e_shnum=len(new_headers), e_shstrndx=shstrndx,
    )
    blob[0:C.EHDR_SIZE] = patched.pack()

    # Note: sh_name offsets still point into the original .shstrtab, whose
    # contents we preserved verbatim, so names keep resolving correctly.
    return bytes(blob)
