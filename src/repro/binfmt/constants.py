"""ELF constants used by the reader and writer.

Only the subset needed for small 64-bit little-endian executables is
defined; names follow the ELF specification so that the code reads like
any other ELF tooling.
"""

from __future__ import annotations

__all__ = [
    "ELF_MAGIC",
    "ELFCLASS64",
    "ELFDATA2LSB",
    "EV_CURRENT",
    "ELFOSABI_SYSV",
    "ET_EXEC",
    "ET_DYN",
    "EM_X86_64",
    "EHDR_SIZE",
    "SHDR_SIZE",
    "PHDR_SIZE",
    "SYM_SIZE",
    "SHT_NULL",
    "SHT_PROGBITS",
    "SHT_SYMTAB",
    "SHT_STRTAB",
    "SHT_NOBITS",
    "SHF_ALLOC",
    "SHF_EXECINSTR",
    "SHF_WRITE",
    "SHN_UNDEF",
    "SHN_ABS",
    "STB_LOCAL",
    "STB_GLOBAL",
    "STB_WEAK",
    "STT_NOTYPE",
    "STT_OBJECT",
    "STT_FUNC",
    "STT_SECTION",
    "STT_FILE",
    "PT_LOAD",
    "SHT_DYNAMIC",
    "DYN_SIZE",
    "DT_NULL",
    "DT_NEEDED",
    "PF_X",
    "PF_W",
    "PF_R",
    "DEFAULT_BASE_VADDR",
]

# --- identification -------------------------------------------------------
ELF_MAGIC = b"\x7fELF"
ELFCLASS64 = 2
ELFDATA2LSB = 1
EV_CURRENT = 1
ELFOSABI_SYSV = 0

# --- object file types ----------------------------------------------------
ET_EXEC = 2
ET_DYN = 3
EM_X86_64 = 62

# --- structure sizes (ELF64) ----------------------------------------------
EHDR_SIZE = 64
SHDR_SIZE = 64
PHDR_SIZE = 56
SYM_SIZE = 24

# --- section header types / flags -----------------------------------------
SHT_NULL = 0
SHT_PROGBITS = 1
SHT_SYMTAB = 2
SHT_STRTAB = 3
SHT_NOBITS = 8

SHF_WRITE = 0x1
SHF_ALLOC = 0x2
SHF_EXECINSTR = 0x4

SHN_UNDEF = 0
SHN_ABS = 0xFFF1

# --- symbol binding / type -------------------------------------------------
STB_LOCAL = 0
STB_GLOBAL = 1
STB_WEAK = 2

STT_NOTYPE = 0
STT_OBJECT = 1
STT_FUNC = 2
STT_SECTION = 3
STT_FILE = 4

# --- program headers --------------------------------------------------------
PT_LOAD = 1
PF_X = 0x1
PF_W = 0x2
PF_R = 0x4

#: Virtual address at which synthetic executables pretend to be loaded.
DEFAULT_BASE_VADDR = 0x400000

# --- dynamic section -------------------------------------------------------
#: Section type of ``.dynamic``.
SHT_DYNAMIC = 6
#: Size of one Elf64_Dyn entry.
DYN_SIZE = 16
#: Dynamic-table tag: end of table.
DT_NULL = 0
#: Dynamic-table tag: name of a needed shared library (offset into .dynstr).
DT_NEEDED = 1
