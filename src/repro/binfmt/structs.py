"""Dataclasses and (de)serialisation for ELF64 structures.

Everything is little-endian ELF64, the format of every x86-64 HPC
executable the paper's data set consists of.  The structures are kept
deliberately close to the on-disk layout so that the writer and reader
stay symmetric and easy to audit.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from ..exceptions import TruncatedBinaryError
from . import constants as C

__all__ = ["ElfHeader", "SectionHeader", "ProgramHeader", "ElfSymbol",
           "ElfSection", "SymbolSpec"]

_EHDR_FMT = "<16sHHIQQQIHHHHHH"
_SHDR_FMT = "<IIQQQQIIQQ"
_PHDR_FMT = "<IIQQQQQQ"
_SYM_FMT = "<IBBHQQ"


@dataclass
class ElfHeader:
    """The ELF file header (Elf64_Ehdr)."""

    e_type: int = C.ET_EXEC
    e_machine: int = C.EM_X86_64
    e_version: int = C.EV_CURRENT
    e_entry: int = C.DEFAULT_BASE_VADDR
    e_phoff: int = 0
    e_shoff: int = 0
    e_flags: int = 0
    e_ehsize: int = C.EHDR_SIZE
    e_phentsize: int = C.PHDR_SIZE
    e_phnum: int = 0
    e_shentsize: int = C.SHDR_SIZE
    e_shnum: int = 0
    e_shstrndx: int = 0

    def pack(self) -> bytes:
        """Serialise to the 64-byte on-disk representation."""

        ident = (C.ELF_MAGIC +
                 bytes([C.ELFCLASS64, C.ELFDATA2LSB, C.EV_CURRENT,
                        C.ELFOSABI_SYSV]) +
                 bytes(8))
        return struct.pack(
            _EHDR_FMT, ident, self.e_type, self.e_machine, self.e_version,
            self.e_entry, self.e_phoff, self.e_shoff, self.e_flags,
            self.e_ehsize, self.e_phentsize, self.e_phnum,
            self.e_shentsize, self.e_shnum, self.e_shstrndx,
        )

    @classmethod
    def unpack(cls, data: bytes) -> "ElfHeader":
        """Parse the header from the start of ``data``."""

        if len(data) < C.EHDR_SIZE:
            raise TruncatedBinaryError(
                f"file too small for an ELF header ({len(data)} bytes)"
            )
        fields = struct.unpack_from(_EHDR_FMT, data, 0)
        (_ident, e_type, e_machine, e_version, e_entry, e_phoff, e_shoff,
         e_flags, e_ehsize, e_phentsize, e_phnum, e_shentsize, e_shnum,
         e_shstrndx) = fields
        return cls(e_type=e_type, e_machine=e_machine, e_version=e_version,
                   e_entry=e_entry, e_phoff=e_phoff, e_shoff=e_shoff,
                   e_flags=e_flags, e_ehsize=e_ehsize, e_phentsize=e_phentsize,
                   e_phnum=e_phnum, e_shentsize=e_shentsize, e_shnum=e_shnum,
                   e_shstrndx=e_shstrndx)


@dataclass
class SectionHeader:
    """A section header (Elf64_Shdr)."""

    sh_name: int = 0
    sh_type: int = C.SHT_NULL
    sh_flags: int = 0
    sh_addr: int = 0
    sh_offset: int = 0
    sh_size: int = 0
    sh_link: int = 0
    sh_info: int = 0
    sh_addralign: int = 1
    sh_entsize: int = 0

    def pack(self) -> bytes:
        return struct.pack(_SHDR_FMT, self.sh_name, self.sh_type, self.sh_flags,
                           self.sh_addr, self.sh_offset, self.sh_size,
                           self.sh_link, self.sh_info, self.sh_addralign,
                           self.sh_entsize)

    @classmethod
    def unpack(cls, data: bytes, offset: int) -> "SectionHeader":
        if offset + C.SHDR_SIZE > len(data):
            raise TruncatedBinaryError(
                f"section header at offset {offset} extends past end of file"
            )
        fields = struct.unpack_from(_SHDR_FMT, data, offset)
        return cls(*fields)


@dataclass
class ProgramHeader:
    """A program header (Elf64_Phdr)."""

    p_type: int = C.PT_LOAD
    p_flags: int = C.PF_R | C.PF_X
    p_offset: int = 0
    p_vaddr: int = C.DEFAULT_BASE_VADDR
    p_paddr: int = C.DEFAULT_BASE_VADDR
    p_filesz: int = 0
    p_memsz: int = 0
    p_align: int = 0x1000

    def pack(self) -> bytes:
        return struct.pack(_PHDR_FMT, self.p_type, self.p_flags, self.p_offset,
                           self.p_vaddr, self.p_paddr, self.p_filesz,
                           self.p_memsz, self.p_align)

    @classmethod
    def unpack(cls, data: bytes, offset: int) -> "ProgramHeader":
        if offset + C.PHDR_SIZE > len(data):
            raise TruncatedBinaryError(
                f"program header at offset {offset} extends past end of file"
            )
        fields = struct.unpack_from(_PHDR_FMT, data, offset)
        return cls(*fields)


@dataclass
class ElfSymbol:
    """A symbol-table entry (Elf64_Sym) plus its resolved name."""

    name: str
    value: int
    size: int
    bind: int
    type: int
    shndx: int

    @property
    def is_global(self) -> bool:
        """True for GLOBAL or WEAK binding."""

        return self.bind in (C.STB_GLOBAL, C.STB_WEAK)

    @property
    def is_defined(self) -> bool:
        """True if the symbol is defined in this object (not SHN_UNDEF)."""

        return self.shndx != C.SHN_UNDEF

    def nm_letter(self, text_section_indices: frozenset[int]) -> str:
        """The single-letter code ``nm`` would print for this symbol."""

        if not self.is_defined:
            return "U"
        if self.shndx in text_section_indices or self.type == C.STT_FUNC:
            letter = "t"
        elif self.type == C.STT_OBJECT:
            letter = "d"
        elif self.shndx == C.SHN_ABS:
            letter = "a"
        else:
            letter = "n"
        return letter.upper() if self.is_global else letter

    def pack(self, name_offset: int) -> bytes:
        info = ((self.bind & 0xF) << 4) | (self.type & 0xF)
        return struct.pack(_SYM_FMT, name_offset, info, 0, self.shndx,
                           self.value, self.size)

    @classmethod
    def unpack(cls, data: bytes, offset: int, strtab: bytes) -> "ElfSymbol":
        if offset + C.SYM_SIZE > len(data):
            raise TruncatedBinaryError(
                f"symbol entry at offset {offset} extends past end of file"
            )
        st_name, st_info, _st_other, st_shndx, st_value, st_size = \
            struct.unpack_from(_SYM_FMT, data, offset)
        name = _read_cstring(strtab, st_name)
        return cls(name=name, value=st_value, size=st_size,
                   bind=st_info >> 4, type=st_info & 0xF, shndx=st_shndx)


@dataclass
class ElfSection:
    """A parsed section: header metadata plus resolved name and content."""

    name: str
    header: SectionHeader
    data: bytes = b""

    @property
    def is_symtab(self) -> bool:
        return self.header.sh_type == C.SHT_SYMTAB


@dataclass
class SymbolSpec:
    """Writer-side description of a symbol to be emitted.

    ``kind`` is ``"func"`` (global text symbol, the paper's primary
    feature), ``"object"`` (global data symbol) or ``"local"``.
    """

    name: str
    kind: str = "func"
    size: int = 0
    value: int | None = None

    def to_symbol(self, shndx: int, value: int) -> ElfSymbol:
        if self.kind == "func":
            bind, stype = C.STB_GLOBAL, C.STT_FUNC
        elif self.kind == "object":
            bind, stype = C.STB_GLOBAL, C.STT_OBJECT
        elif self.kind == "weak":
            bind, stype = C.STB_WEAK, C.STT_FUNC
        elif self.kind == "local":
            bind, stype = C.STB_LOCAL, C.STT_FUNC
        else:
            raise ValueError(f"unknown symbol kind {self.kind!r}")
        return ElfSymbol(name=self.name, value=value, size=self.size,
                         bind=bind, type=stype, shndx=shndx)


def _read_cstring(strtab: bytes, offset: int) -> str:
    """Read a NUL-terminated string from a string table."""

    if offset >= len(strtab):
        return ""
    end = strtab.find(b"\x00", offset)
    if end == -1:
        end = len(strtab)
    return strtab[offset:end].decode("utf-8", errors="replace")
