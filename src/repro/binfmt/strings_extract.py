"""``strings`` equivalent: printable character runs in a binary.

The paper's second feature is the SSDeep hash of "the continuous
printable characters extracted using the strings command".  GNU
``strings`` prints every run of at least 4 printable characters
(ASCII 0x20–0x7E plus tab) found anywhere in the file.

:func:`extract_strings` reproduces that behaviour with a vectorised
NumPy scan (a boolean mask of printable bytes, run boundaries via
``diff``), which keeps whole-binary extraction fast even for larger
files.  :func:`strings_output` renders the newline-joined text that the
command would print — this is the exact text that gets fuzzy-hashed.
"""

from __future__ import annotations

import numpy as np

__all__ = ["DEFAULT_MIN_LENGTH", "extract_strings", "strings_output"]

#: GNU strings' default minimum run length.
DEFAULT_MIN_LENGTH = 4

# Printable ASCII (space..tilde) plus horizontal tab, as GNU strings does.
_PRINTABLE_MASK = np.zeros(256, dtype=bool)
_PRINTABLE_MASK[0x20:0x7F] = True
_PRINTABLE_MASK[0x09] = True


def extract_strings(data: bytes, min_length: int = DEFAULT_MIN_LENGTH) -> list[str]:
    """Return all printable runs of at least ``min_length`` characters."""

    if min_length < 1:
        raise ValueError("min_length must be >= 1")
    if not data:
        return []

    buf = np.frombuffer(data, dtype=np.uint8)
    printable = _PRINTABLE_MASK[buf]

    # Find run boundaries: prepend/append False so every run has a start
    # and an end transition.
    padded = np.concatenate(([False], printable, [False]))
    transitions = np.flatnonzero(np.diff(padded.astype(np.int8)))
    starts = transitions[0::2]
    ends = transitions[1::2]
    lengths = ends - starts

    keep = lengths >= min_length
    results: list[str] = []
    for start, end in zip(starts[keep], ends[keep]):
        results.append(data[start:end].decode("ascii"))
    return results


def strings_output(data: bytes, min_length: int = DEFAULT_MIN_LENGTH) -> str:
    """The newline-joined text ``strings`` would print for ``data``."""

    runs = extract_strings(data, min_length=min_length)
    if not runs:
        return ""
    return "\n".join(runs) + "\n"
