"""Executable-format substrate: a minimal ELF64 toolkit.

The paper's feature extraction shells out to ``strings`` and ``nm`` and
reads the raw executable bytes.  This subpackage provides equivalents
with no external dependencies:

* :mod:`repro.binfmt.writer` — build small but structurally valid ELF64
  executables (used by the synthetic corpus generator),
* :mod:`repro.binfmt.reader` — parse ELF headers, sections and the
  symbol table,
* :mod:`repro.binfmt.strings_extract` — the ``strings`` equivalent
  (printable character runs, NumPy-vectorised),
* :mod:`repro.binfmt.symbols` — the ``nm -g --defined-only`` equivalent
  (global defined symbol names),
* :mod:`repro.binfmt.strip` — the ``strip`` equivalent used by the
  stripped-binary limitation experiments.
"""

from .constants import SHT_SYMTAB, SHT_STRTAB, STB_GLOBAL, STT_FUNC, STT_OBJECT
from .structs import ElfSection, ElfSymbol, SymbolSpec
from .writer import ElfWriter, build_executable
from .reader import ElfReader, is_elf
from .strings_extract import extract_strings, strings_output
from .symbols import extract_global_symbols, nm_output, is_stripped
from .strip import strip_symbols
from .dynamic import ldd_output, needed_libraries

__all__ = [
    "SHT_SYMTAB",
    "SHT_STRTAB",
    "STB_GLOBAL",
    "STT_FUNC",
    "STT_OBJECT",
    "ElfSection",
    "ElfSymbol",
    "SymbolSpec",
    "ElfWriter",
    "build_executable",
    "ElfReader",
    "is_elf",
    "extract_strings",
    "strings_output",
    "extract_global_symbols",
    "nm_output",
    "is_stripped",
    "strip_symbols",
    "needed_libraries",
    "ldd_output",
]
