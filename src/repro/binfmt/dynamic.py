"""``ldd`` equivalent: shared-library dependencies of an executable.

The paper's future-work section proposes extending the feature set with
"loading shared objects extracted through the ldd command" (citing
Yamamoto et al.).  Statically, the authoritative source of that
information is the ``DT_NEEDED`` entries of the ``.dynamic`` section —
the libraries the loader must resolve — which is what this module
extracts (``ldd`` itself additionally resolves paths at run time, which
is irrelevant for fingerprinting).

:func:`needed_libraries` returns the dependency names;
:func:`ldd_output` renders the text that gets fuzzy-hashed when the
optional ``ssdeep-libs`` feature is enabled
(:data:`repro.features.extractors.EXTENDED_FEATURE_TYPES`).
"""

from __future__ import annotations

import struct

from . import constants as C
from .reader import ElfReader

__all__ = ["needed_libraries", "ldd_output"]


def _reader_from(data_or_reader: bytes | ElfReader) -> ElfReader:
    if isinstance(data_or_reader, ElfReader):
        return data_or_reader
    return ElfReader(data_or_reader)


def needed_libraries(data_or_reader: bytes | ElfReader) -> list[str]:
    """Names of the shared libraries listed as ``DT_NEEDED``.

    Returns an empty list for statically linked binaries (no
    ``.dynamic`` section), preserving the order of the dynamic table.
    """

    reader = _reader_from(data_or_reader)
    dynamic = None
    for section in reader.sections:
        if section.header.sh_type == C.SHT_DYNAMIC:
            dynamic = section
            break
    if dynamic is None:
        return []

    link = dynamic.header.sh_link
    strtab = reader.sections[link].data if link < len(reader.sections) else b""

    names: list[str] = []
    count = len(dynamic.data) // C.DYN_SIZE
    for index in range(count):
        d_tag, d_val = struct.unpack_from("<qQ", dynamic.data, index * C.DYN_SIZE)
        if d_tag == C.DT_NULL:
            break
        if d_tag != C.DT_NEEDED:
            continue
        end = strtab.find(b"\x00", d_val)
        if end == -1:
            end = len(strtab)
        name = strtab[d_val:end].decode("utf-8", errors="replace")
        if name:
            names.append(name)
    return names


def ldd_output(data_or_reader: bytes | ElfReader) -> str:
    """The dependency text fed to the optional ``ssdeep-libs`` feature.

    One library name per line, in dynamic-table order (like the
    left-hand column of ``ldd`` output, without resolved paths).
    """

    names = needed_libraries(data_or_reader)
    if not names:
        return ""
    return "\n".join(names) + "\n"
