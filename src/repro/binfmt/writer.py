"""Minimal ELF64 writer.

The synthetic corpus generator (:mod:`repro.corpus`) needs to
materialise executables that behave like real HPC application binaries
under the paper's feature extractors:

* raw bytes that an SSDeep file hash can fingerprint,
* a ``.rodata``/``.comment`` section full of printable strings that the
  ``strings`` equivalent recovers,
* a ``.symtab``/``.strtab`` pair containing global function symbols
  that the ``nm`` equivalent recovers (and that a ``strip`` equivalent
  can remove).

:class:`ElfWriter` assembles such files.  The layout is intentionally
simple — header, one ``PT_LOAD`` program header, section contents, then
the section header table — but structurally valid: our reader, and any
standard ELF tool, can parse the result.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Sequence

from ..exceptions import BinaryFormatError
from . import constants as C
from .structs import ElfHeader, ElfSymbol, ProgramHeader, SectionHeader, SymbolSpec

__all__ = ["ElfWriter", "build_executable"]


def _align(value: int, alignment: int) -> int:
    """Round ``value`` up to the next multiple of ``alignment``."""

    if alignment <= 1:
        return value
    return (value + alignment - 1) // alignment * alignment


@dataclass
class _PendingSection:
    """A section queued for emission."""

    name: str
    sh_type: int
    flags: int
    data: bytes
    addralign: int = 1
    entsize: int = 0
    link: int = 0
    info: int = 0
    addr: int = 0


class ElfWriter:
    """Assemble a small ELF64 executable from code, strings and symbols.

    Typical use (what the corpus builder does)::

        writer = ElfWriter()
        writer.set_text(code_bytes)
        writer.set_rodata(["OpenMalaria simulator", "usage: ..."])
        writer.add_symbols([SymbolSpec("om_simulate_timestep"), ...])
        writer.set_comment("GCC: (GNU) 10.3.0")
        blob = writer.build()
    """

    def __init__(self, *, base_vaddr: int = C.DEFAULT_BASE_VADDR,
                 elf_type: int = C.ET_EXEC) -> None:
        self.base_vaddr = int(base_vaddr)
        self.elf_type = int(elf_type)
        self._text: bytes = b""
        self._rodata_strings: list[str] = []
        self._extra_rodata: bytes = b""
        self._comment: str = ""
        self._symbols: list[SymbolSpec] = []
        self._data_section: bytes = b""
        self._strip_symbols: bool = False
        self._needed_libraries: list[str] = []

    # ------------------------------------------------------------ builders
    def set_text(self, code: bytes) -> "ElfWriter":
        """Set the contents of the ``.text`` section (the "machine code")."""

        self._text = bytes(code)
        return self

    def set_rodata(self, strings: Sequence[str], extra: bytes = b"") -> "ElfWriter":
        """Set printable strings (NUL-separated) and optional raw bytes."""

        self._rodata_strings = [str(s) for s in strings]
        self._extra_rodata = bytes(extra)
        return self

    def set_data(self, data: bytes) -> "ElfWriter":
        """Set contents of a writable ``.data`` section."""

        self._data_section = bytes(data)
        return self

    def set_comment(self, comment: str) -> "ElfWriter":
        """Set the ``.comment`` section (toolchain identification string)."""

        self._comment = str(comment)
        return self

    def add_symbols(self, symbols: Sequence[SymbolSpec]) -> "ElfWriter":
        """Queue symbols for the symbol table."""

        self._symbols.extend(symbols)
        return self

    def set_needed_libraries(self, names: Sequence[str]) -> "ElfWriter":
        """Declare shared-library dependencies (``DT_NEEDED`` entries).

        Emits a ``.dynstr`` string table and a ``.dynamic`` section the
        :mod:`repro.binfmt.dynamic` reader (the ``ldd`` equivalent) can
        recover.
        """

        self._needed_libraries = [str(n) for n in names if n]
        return self

    def without_symbol_table(self, stripped: bool = True) -> "ElfWriter":
        """Omit ``.symtab``/``.strtab`` entirely (a pre-stripped binary)."""

        self._strip_symbols = bool(stripped)
        return self

    # --------------------------------------------------------------- build
    def build(self) -> bytes:
        """Serialise the executable and return its bytes."""

        if not self._text:
            raise BinaryFormatError("cannot build an executable with empty .text")

        rodata = b"\x00".join(s.encode("utf-8", errors="replace")
                              for s in self._rodata_strings)
        if rodata:
            rodata += b"\x00"
        rodata += self._extra_rodata
        comment = self._comment.encode("utf-8", errors="replace") + b"\x00" \
            if self._comment else b""

        sections: list[_PendingSection] = [
            _PendingSection(name="", sh_type=C.SHT_NULL, flags=0, data=b""),
            _PendingSection(name=".text", sh_type=C.SHT_PROGBITS,
                            flags=C.SHF_ALLOC | C.SHF_EXECINSTR,
                            data=self._text, addralign=16),
        ]
        text_index = 1
        if rodata:
            sections.append(_PendingSection(name=".rodata", sh_type=C.SHT_PROGBITS,
                                            flags=C.SHF_ALLOC, data=rodata,
                                            addralign=8))
        if self._data_section:
            sections.append(_PendingSection(name=".data", sh_type=C.SHT_PROGBITS,
                                            flags=C.SHF_ALLOC | C.SHF_WRITE,
                                            data=self._data_section, addralign=8))
        if comment:
            sections.append(_PendingSection(name=".comment", sh_type=C.SHT_PROGBITS,
                                            flags=0, data=comment))

        if self._needed_libraries:
            dynstr, dynamic = self._build_dynamic()
            dynstr_index = len(sections) + 1
            sections.append(_PendingSection(name=".dynamic", sh_type=C.SHT_DYNAMIC,
                                            flags=C.SHF_ALLOC, data=dynamic,
                                            addralign=8, entsize=C.DYN_SIZE,
                                            link=dynstr_index))
            sections.append(_PendingSection(name=".dynstr", sh_type=C.SHT_STRTAB,
                                            flags=C.SHF_ALLOC, data=dynstr))

        symtab_data = b""
        strtab_data = b""
        symtab_link = 0
        first_global_index = 1
        if self._symbols and not self._strip_symbols:
            symtab_data, strtab_data, first_global_index = self._build_symtab(text_index)
            # .strtab will be appended right after .symtab below.
            symtab_link = len(sections) + 1
            sections.append(_PendingSection(name=".symtab", sh_type=C.SHT_SYMTAB,
                                            flags=0, data=symtab_data,
                                            addralign=8, entsize=C.SYM_SIZE,
                                            link=symtab_link,
                                            info=first_global_index))
            sections.append(_PendingSection(name=".strtab", sh_type=C.SHT_STRTAB,
                                            flags=0, data=strtab_data))

        # Section name string table, always last.
        shstrtab, name_offsets = self._build_shstrtab(
            [s.name for s in sections] + [".shstrtab"])
        sections.append(_PendingSection(name=".shstrtab", sh_type=C.SHT_STRTAB,
                                        flags=0, data=shstrtab))

        # ------------------------------------------------ lay out the file
        phnum = 1
        offset = C.EHDR_SIZE + phnum * C.PHDR_SIZE
        headers: list[SectionHeader] = []
        blob = bytearray()
        blob += b"\x00" * offset  # placeholder for ELF header + phdrs

        vaddr_cursor = self.base_vaddr + offset
        for section in sections:
            if section.sh_type == C.SHT_NULL:
                headers.append(SectionHeader())
                continue
            offset = _align(len(blob), section.addralign)
            blob += b"\x00" * (offset - len(blob))
            addr = 0
            if section.flags & C.SHF_ALLOC:
                addr = self.base_vaddr + offset
                vaddr_cursor = addr + len(section.data)
            headers.append(SectionHeader(
                sh_name=name_offsets[section.name],
                sh_type=section.sh_type,
                sh_flags=section.flags,
                sh_addr=addr,
                sh_offset=offset,
                sh_size=len(section.data),
                sh_link=section.link,
                sh_info=section.info,
                sh_addralign=section.addralign,
                sh_entsize=section.entsize,
            ))
            blob += section.data

        shoff = _align(len(blob), 8)
        blob += b"\x00" * (shoff - len(blob))
        for header in headers:
            blob += header.pack()

        # ----------------------------------------------- header + program
        ehdr = ElfHeader(
            e_type=self.elf_type,
            e_entry=self.base_vaddr + C.EHDR_SIZE + phnum * C.PHDR_SIZE,
            e_phoff=C.EHDR_SIZE,
            e_shoff=shoff,
            e_phnum=phnum,
            e_shnum=len(headers),
            e_shstrndx=len(headers) - 1,
        )
        phdr = ProgramHeader(
            p_offset=0,
            p_vaddr=self.base_vaddr,
            p_paddr=self.base_vaddr,
            p_filesz=len(blob),
            p_memsz=len(blob),
            p_flags=C.PF_R | C.PF_X,
        )
        blob[0:C.EHDR_SIZE] = ehdr.pack()
        blob[C.EHDR_SIZE:C.EHDR_SIZE + C.PHDR_SIZE] = phdr.pack()
        return bytes(blob)

    def write(self, path: str | os.PathLike) -> int:
        """Build and write the executable to ``path``; returns its size."""

        blob = self.build()
        with open(path, "wb") as fh:
            fh.write(blob)
        os.chmod(path, 0o755)
        return len(blob)

    # ----------------------------------------------------------- internals
    def _build_dynamic(self) -> tuple[bytes, bytes]:
        """Build ``.dynstr`` and ``.dynamic`` (DT_NEEDED entries + DT_NULL)."""

        import struct

        dynstr = bytearray(b"\x00")
        entries = bytearray()
        for name in self._needed_libraries:
            offset = len(dynstr)
            dynstr.extend(name.encode("utf-8", errors="replace") + b"\x00")
            entries += struct.pack("<qQ", C.DT_NEEDED, offset)
        entries += struct.pack("<qQ", C.DT_NULL, 0)
        return bytes(dynstr), bytes(entries)

    def _build_symtab(self, text_index: int) -> tuple[bytes, bytes, int]:
        """Build ``.symtab`` and ``.strtab`` contents.

        Local symbols must precede global ones (sh_info is the index of
        the first global symbol), so the specs are partitioned first.
        """

        strtab = bytearray(b"\x00")
        entries = bytearray()
        # Leading NULL symbol.
        entries += ElfSymbol(name="", value=0, size=0, bind=C.STB_LOCAL,
                             type=C.STT_NOTYPE, shndx=C.SHN_UNDEF).pack(0)

        local = [s for s in self._symbols if s.kind == "local"]
        non_local = [s for s in self._symbols if s.kind != "local"]
        value_cursor = self.base_vaddr + 0x1000

        def emit(spec: SymbolSpec) -> None:
            nonlocal value_cursor
            name_offset = len(strtab)
            strtab.extend(spec.name.encode("utf-8", errors="replace") + b"\x00")
            value = spec.value if spec.value is not None else value_cursor
            value_cursor += max(spec.size, 16)
            symbol = spec.to_symbol(shndx=text_index, value=value)
            entries.extend(symbol.pack(name_offset))

        for spec in local:
            emit(spec)
        first_global_index = 1 + len(local)
        for spec in non_local:
            emit(spec)
        return bytes(entries), bytes(strtab), first_global_index

    @staticmethod
    def _build_shstrtab(names: Sequence[str]) -> tuple[bytes, dict[str, int]]:
        """Build the section-name string table and per-name offsets."""

        table = bytearray(b"\x00")
        offsets: dict[str, int] = {"": 0}
        for name in names:
            if not name or name in offsets:
                continue
            offsets[name] = len(table)
            table.extend(name.encode("ascii") + b"\x00")
        return bytes(table), offsets


def build_executable(*, code: bytes, strings: Sequence[str],
                     symbols: Sequence[SymbolSpec],
                     comment: str = "",
                     data: bytes = b"",
                     needed_libraries: Sequence[str] = (),
                     stripped: bool = False,
                     base_vaddr: int = C.DEFAULT_BASE_VADDR) -> bytes:
    """One-call convenience wrapper around :class:`ElfWriter`."""

    writer = ElfWriter(base_vaddr=base_vaddr)
    writer.set_text(code)
    writer.set_rodata(strings)
    if data:
        writer.set_data(data)
    if comment:
        writer.set_comment(comment)
    if needed_libraries:
        writer.set_needed_libraries(needed_libraries)
    writer.add_symbols(symbols)
    writer.without_symbol_table(stripped)
    return writer.build()
