"""Minimal ELF64 reader.

Parses the ELF header, section header table, section contents and the
symbol table of small 64-bit little-endian executables — enough for the
three feature extractors (raw bytes, strings, symbols) and for the
corpus scanner's "is this stripped?" check.
"""

from __future__ import annotations

import os
from functools import cached_property

from ..exceptions import BinaryFormatError, SymbolTableError, TruncatedBinaryError
from . import constants as C
from .structs import ElfHeader, ElfSection, ElfSymbol, SectionHeader

__all__ = ["ElfReader", "is_elf"]


def is_elf(data: bytes) -> bool:
    """Cheap check whether ``data`` starts with the ELF magic."""

    return len(data) >= 4 and data[:4] == C.ELF_MAGIC


class ElfReader:
    """Parse an ELF64 little-endian binary held in memory.

    Parameters
    ----------
    data:
        The complete file contents.

    Raises
    ------
    BinaryFormatError
        If the data is not a little-endian 64-bit ELF file, or declared
        structures extend past the end of the data.
    """

    def __init__(self, data: bytes) -> None:
        self.data = bytes(data)
        if not is_elf(self.data):
            raise BinaryFormatError("not an ELF file (bad magic)")
        if len(self.data) < C.EHDR_SIZE:
            raise TruncatedBinaryError("file too small for an ELF header")
        ei_class = self.data[4]
        ei_data = self.data[5]
        if ei_class != C.ELFCLASS64:
            raise BinaryFormatError(f"only ELF64 is supported (EI_CLASS={ei_class})")
        if ei_data != C.ELFDATA2LSB:
            raise BinaryFormatError(
                f"only little-endian ELF is supported (EI_DATA={ei_data})"
            )
        self.header = ElfHeader.unpack(self.data)

    @classmethod
    def from_file(cls, path: str | os.PathLike) -> "ElfReader":
        """Read and parse an ELF file from disk."""

        with open(path, "rb") as fh:
            return cls(fh.read())

    # ------------------------------------------------------------ sections
    @cached_property
    def section_headers(self) -> list[SectionHeader]:
        """All section headers, in table order."""

        headers: list[SectionHeader] = []
        shoff = self.header.e_shoff
        for index in range(self.header.e_shnum):
            headers.append(SectionHeader.unpack(self.data, shoff + index * C.SHDR_SIZE))
        return headers

    @cached_property
    def _shstrtab(self) -> bytes:
        headers = self.section_headers
        idx = self.header.e_shstrndx
        if not headers or idx >= len(headers):
            return b""
        return self._section_bytes(headers[idx])

    @cached_property
    def sections(self) -> list[ElfSection]:
        """All sections with resolved names and contents."""

        result: list[ElfSection] = []
        for header in self.section_headers:
            name = self._section_name(header)
            data = b"" if header.sh_type == C.SHT_NOBITS else self._section_bytes(header)
            result.append(ElfSection(name=name, header=header, data=data))
        return result

    def section(self, name: str) -> ElfSection | None:
        """Return the first section with the given name, or ``None``."""

        for section in self.sections:
            if section.name == name:
                return section
        return None

    def section_names(self) -> list[str]:
        """Names of all sections (excluding the NULL section)."""

        return [s.name for s in self.sections if s.header.sh_type != C.SHT_NULL]

    # -------------------------------------------------------------- symbols
    @cached_property
    def symbols(self) -> list[ElfSymbol]:
        """All symbol-table entries (excluding the leading NULL symbol).

        Raises
        ------
        SymbolTableError
            If the binary has no symbol table (i.e. it was stripped).
        """

        symtab = None
        for section in self.sections:
            if section.header.sh_type == C.SHT_SYMTAB:
                symtab = section
                break
        if symtab is None:
            raise SymbolTableError("binary has no symbol table (stripped?)")

        link = symtab.header.sh_link
        if link >= len(self.sections):
            raise SymbolTableError(f"symbol table links to invalid strtab index {link}")
        strtab = self.sections[link].data

        count = symtab.header.sh_size // C.SYM_SIZE
        symbols: list[ElfSymbol] = []
        for index in range(1, count):  # skip the NULL symbol
            offset = index * C.SYM_SIZE
            if offset + C.SYM_SIZE > len(symtab.data):
                raise SymbolTableError("symbol table is truncated")
            symbols.append(ElfSymbol.unpack(symtab.data, offset, strtab))
        return symbols

    @property
    def has_symbol_table(self) -> bool:
        """True if a ``SHT_SYMTAB`` section is present."""

        return any(s.header.sh_type == C.SHT_SYMTAB for s in self.sections)

    @cached_property
    def text_section_indices(self) -> frozenset[int]:
        """Indices of executable (``SHF_EXECINSTR``) sections."""

        return frozenset(
            index for index, header in enumerate(self.section_headers)
            if header.sh_flags & C.SHF_EXECINSTR
        )

    # ----------------------------------------------------------- internals
    def _section_name(self, header: SectionHeader) -> str:
        table = self._shstrtab
        offset = header.sh_name
        if offset >= len(table):
            return ""
        end = table.find(b"\x00", offset)
        if end == -1:
            end = len(table)
        return table[offset:end].decode("utf-8", errors="replace")

    def _section_bytes(self, header: SectionHeader) -> bytes:
        start = header.sh_offset
        end = start + header.sh_size
        if end > len(self.data):
            raise TruncatedBinaryError(
                f"section at offset {start} (size {header.sh_size}) extends past end of file"
            )
        return self.data[start:end]
