"""The batched classification service facade.

:class:`ClassificationService` is the serve-oriented front door of the
library: one object that owns a fitted
:class:`~repro.core.classifier.FuzzyHashClassifier`, an extraction
pipeline and an allocation policy, and turns executables — file paths,
raw bytes, pre-extracted feature records, or an unbounded stream — into
typed :class:`Decision` records.

Construction paths mirror the deployment lifecycle:

* ``ClassificationService.train(features, ...)`` — fit from labelled
  feature records (one-off, expensive);
* ``service.save("model.rpm")`` — persist the fitted model as a
  versioned artifact (:mod:`repro.api.artifact`);
* ``ClassificationService.load("model.rpm")`` — cold-start a serving
  process without retraining.

Classification is batched end to end: feature extraction fans out over
a pluggable execution backend (``executor=`` spec, see
:mod:`repro.parallel.backend`; plain ``n_jobs`` process counts still
work), and each batch runs the anchor index's candidate generation plus
the vectorised :class:`~repro.distance.batch.BatchEditDistance` scoring
once — fanned across shards when the model's anchor index is a
:class:`~repro.index.ShardedSimilarityIndex` — followed by a single
forest pass (labels and confidences come from the same probability
matrix).  ``classify_stream`` applies the same micro-batching to an
iterable of arbitrary length while yielding decisions in input order.

The serving hot path additionally keeps an LRU digest→score cache: an
executable whose digests were already scored (same binary resubmitted,
a re-scanned allocation, a polling collector) skips the similarity
transform and the forest entirely.  The cache stores
threshold-independent ``(best class, confidence)`` pairs, so changing
``confidence_threshold`` after load never serves stale decisions.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, Mapping, Sequence

import numpy as np

from ..core.classifier import FuzzyHashClassifier
from ..exceptions import EvaluationError, NotFittedError, ValidationError
from ..features.pipeline import FeatureExtractionPipeline
from ..features.records import SampleFeatures
from ..index import ShardedSimilarityIndex, SimilarityIndex
from ..logging_utils import get_logger
from ..observability.trace import span

__all__ = ["Decision", "ClassificationService", "render_report",
           "list_directory",
           "DECISION_EXPECTED", "DECISION_UNEXPECTED", "DECISION_UNKNOWN"]

_LOG = get_logger("api.service")

#: Decision labels attached to classified executables.
DECISION_EXPECTED = "within-allocation"
DECISION_UNEXPECTED = "unexpected-application"
DECISION_UNKNOWN = "unknown-application"

#: Default micro-batch size for ``classify_stream``.
DEFAULT_BATCH_SIZE = 64

#: Default capacity of the digest→score LRU cache (0 disables it).
DEFAULT_CACHE_SIZE = 1024


@dataclass(frozen=True)
class Decision:
    """Outcome for one classified executable."""

    sample_id: str
    predicted_class: object
    confidence: float
    decision: str

    def is_suspicious(self) -> bool:
        """True if an operator should take a closer look."""

        return self.decision in (DECISION_UNEXPECTED, DECISION_UNKNOWN)


def list_directory(directory: str | os.PathLike,
                   pattern: str = "**/*") -> list[str]:
    """Every regular file below ``directory``, sorted.

    The one directory-walk rule shared by
    :meth:`ClassificationService.classify_directory` and the CLI's
    streaming ``classify --jsonl`` path; raises
    :class:`~repro.exceptions.EvaluationError` for a missing directory
    or an empty match.
    """

    root = Path(directory)
    if not root.is_dir():
        raise EvaluationError(f"{root} is not a directory")
    paths = sorted(str(p) for p in root.glob(pattern) if p.is_file())
    if not paths:
        raise EvaluationError(f"no files found under {root}")
    return paths


def render_report(items: Sequence) -> str:
    """Multi-line operator-facing summary of classification outcomes.

    Accepts :class:`Decision` records or any objects exposing
    ``predicted_class`` / ``confidence`` / ``decision`` and a
    ``sample_id`` (or legacy ``path``) identifier — the single formatter
    behind both the CLI report and
    :meth:`repro.core.workflow.ClassificationWorkflow.report`.
    """

    lines = [f"{'decision':<24} {'class':<24} {'conf':>5}  path"]
    for item in sorted(items,
                       key=lambda i: (i.decision, str(i.predicted_class))):
        ident = getattr(item, "sample_id", None)
        if ident is None:
            ident = getattr(item, "path", "")
        lines.append(f"{item.decision:<24} {str(item.predicted_class):<24} "
                     f"{item.confidence:>5.2f}  {ident}")
    return "\n".join(lines)


class ClassificationService:
    """Facade: fitted model + extraction pipeline + allocation policy.

    Parameters
    ----------
    classifier:
        A fitted :class:`FuzzyHashClassifier`.
    allowed_classes:
        Application classes this allocation is expected to run; ``None``
        accepts every known class and only flags unknown applications.
    n_jobs:
        Worker processes for feature extraction (ignored when
        ``executor`` is set).
    executor:
        Execution backend spec (``"serial"``, ``"thread:4"``,
        ``"process:8"``, ...) or an
        :class:`~repro.parallel.ExecutionBackend` instance, used for
        feature extraction; takes precedence over ``n_jobs``.
    batch_size:
        Default micro-batch size for :meth:`classify_stream`.
    cache_size:
        Capacity of the LRU digest→score cache on the classify hot
        path (0 disables caching).
    """

    def __init__(self, classifier: FuzzyHashClassifier, *,
                 allowed_classes: Iterable[str] | None = None,
                 n_jobs: int = 1, executor=None,
                 batch_size: int = DEFAULT_BATCH_SIZE,
                 cache_size: int = DEFAULT_CACHE_SIZE) -> None:
        if not hasattr(classifier, "model_"):
            raise NotFittedError(
                "ClassificationService needs a fitted classifier; use "
                "ClassificationService.train(...) or .load(...)")
        if batch_size < 1:
            raise ValidationError("batch_size must be >= 1")
        if cache_size < 0:
            raise ValidationError("cache_size must be >= 0")
        self.classifier = classifier
        self.allowed_classes = (set(allowed_classes)
                                if allowed_classes is not None else None)
        self.n_jobs = n_jobs
        self.executor = executor
        self.batch_size = int(batch_size)
        self.cache_size = int(cache_size)
        self.cache_hits = 0
        self.cache_misses = 0
        self._cache: OrderedDict[tuple, tuple[object, float]] = OrderedDict()
        # The cache (and its counters) are shared by every thread of a
        # serving process; OrderedDict mutation is not atomic, so all
        # lookup/insert/evict passes run under this lock.
        self._cache_lock = threading.Lock()
        # Family-aware classifiers expand their base feature types
        # (``family="both"`` adds the vector siblings); extraction must
        # produce every digest the model's anchor index will score.
        active_types = getattr(classifier, "active_feature_types",
                               classifier.feature_types)
        self._pipeline = FeatureExtractionPipeline(active_types,
                                                   n_jobs=n_jobs,
                                                   executor=executor)
        # An explicitly requested executor must reach the anchor index
        # too: a sharded index restored from an artifact comes up with a
        # serial backend, and shard fan-out on the scoring hot path is
        # the whole point of asking for one.
        anchor = getattr(getattr(classifier, "builder_", None),
                         "index_", None)
        if executor is not None and isinstance(anchor,
                                               ShardedSimilarityIndex):
            anchor.set_executor(executor)
        # Seal pending posting tails up front: the index merges them
        # lazily on first query, and a serving process should pay that
        # once at start-up, not on its first request.
        if anchor is not None and hasattr(anchor, "seal"):
            anchor.seal()

    # ------------------------------------------------------------ lifecycle
    @classmethod
    def train(cls, features: Sequence[SampleFeatures], *,
              allowed_classes: Iterable[str] | None = None,
              n_jobs: int = 1, executor=None,
              batch_size: int = DEFAULT_BATCH_SIZE,
              cache_size: int = DEFAULT_CACHE_SIZE,
              index: "SimilarityIndex | ShardedSimilarityIndex | None" = None,
              **classifier_params) -> "ClassificationService":
        """Fit a fresh model on labelled feature records.

        ``classifier_params`` are forwarded to
        :class:`FuzzyHashClassifier` (``n_estimators``,
        ``confidence_threshold``, ``random_state``, ...); ``index``
        optionally supplies a prebuilt anchor index (single or sharded).
        """

        classifier = FuzzyHashClassifier(n_jobs=n_jobs, **classifier_params)
        classifier.fit(list(features), index=index)
        return cls(classifier, allowed_classes=allowed_classes,
                   n_jobs=n_jobs, executor=executor, batch_size=batch_size,
                   cache_size=cache_size)

    @classmethod
    def load(cls, path: str | os.PathLike, *,
             allowed_classes: Iterable[str] | None = None,
             n_jobs: int = 1, executor=None,
             batch_size: int = DEFAULT_BATCH_SIZE,
             cache_size: int = DEFAULT_CACHE_SIZE,
             index: "SimilarityIndex | ShardedSimilarityIndex | str | "
                    "os.PathLike | None" = None,
             mmap: bool = False
             ) -> "ClassificationService":
        """Cold-start from a model artifact — no retraining.

        ``index`` is only needed for headless artifacts saved with
        ``include_index=False``.  ``mmap=True`` memory-maps the bulk
        arrays instead of materialising them (O(header) load; N
        processes loading the same file share its pages through the OS
        page cache).  Older, unaligned artifacts silently fall back to
        the materialising path.
        """

        from .artifact import load_model

        return cls(load_model(path, index=index,
                              mmap_mode="r" if mmap else None),
                   allowed_classes=allowed_classes, n_jobs=n_jobs,
                   executor=executor, batch_size=batch_size,
                   cache_size=cache_size)

    def save(self, path: str | os.PathLike, *,
             include_index: bool = True,
             wal_checkpoint: dict | None = None) -> Path:
        """Persist the fitted model as a versioned artifact file.

        ``wal_checkpoint`` stamps the artifact with the last
        write-ahead-log sequence it contains (see
        :func:`repro.api.artifact.save_model`); the serving tier's
        publish path supplies it so crash recovery can tell which log
        records the artifact already absorbed.
        """

        from .artifact import save_model

        return save_model(self.classifier, path, include_index=include_index,
                          wal_checkpoint=wal_checkpoint)

    # ------------------------------------------------------------ properties
    @property
    def classes_(self):
        """Known application classes of the underlying model."""

        return self.classifier.classes_

    @property
    def similarity_index(self) -> "SimilarityIndex | ShardedSimilarityIndex":
        """The model's fitted anchor index (single or sharded)."""

        builder = getattr(self.classifier, "builder_", None)
        index = getattr(builder, "index_", None)
        if index is None:
            raise EvaluationError(
                "this service's classifier carries no similarity index")
        return index

    def cache_info(self) -> dict:
        """Consistent snapshot of the digest-cache counters.

        ``hits``/``misses``/``size`` are read under the cache lock, so a
        metrics scrape during concurrent traffic never sees counters
        mid-update; the serving tier surfaces this under
        ``service_cache`` in ``GET /metrics``.
        """

        with self._cache_lock:
            return {"hits": self.cache_hits, "misses": self.cache_misses,
                    "size": len(self._cache), "capacity": self.cache_size}

    # ------------------------------------------------------------- mutation
    @property
    def mutable(self) -> bool:
        """True once :meth:`enable_mutation` has run."""

        return getattr(self, "_mutable", False)

    def enable_mutation(self, *, n_shards: int = 4) -> None:
        """Switch the service into mutable-corpus mode (idempotent).

        The anchor index becomes a :class:`ShardedSimilarityIndex`
        (converted in place when the artifact carried a single index),
        unlocking :meth:`ingest_features` / :meth:`ingest_bytes` /
        :meth:`purge` / :meth:`compact`.  Only the per-class anchor
        strategies support this: under ``all-train`` every anchor is its
        own feature column, so growing the corpus would change the
        matrix layout under the trained forest.

        Mutations themselves are **not** internally synchronised against
        concurrent classification — the serving tier
        (:class:`~repro.serving.model_manager.ModelManager`) serialises
        them against model passes.
        """

        if self.mutable:
            return
        builder = getattr(self.classifier, "builder_", None)
        if builder is None or not hasattr(builder, "index_"):
            raise ValidationError(
                "this service's classifier carries no similarity index; "
                "online ingestion needs one")
        if getattr(builder, "anchor_strategy", None) == "all-train":
            raise ValidationError(
                "online ingestion is unsupported under anchor_strategy="
                "'all-train': each anchor is a feature column, so adding "
                "anchors would change the feature layout under the "
                "trained forest")
        index = builder.index_
        if not isinstance(index, ShardedSimilarityIndex):
            index = ShardedSimilarityIndex.from_index(
                index, n_shards=n_shards, executor=self.executor)
            builder.refresh_from_index(index)
        index.seal()
        self._mutable = True

    def _check_mutable(self) -> ShardedSimilarityIndex:
        if not self.mutable:
            raise ValidationError(
                "this service is immutable; call enable_mutation() first")
        return self.classifier.builder_.index_

    def ingest_features(self, records: Sequence[SampleFeatures]
                        ) -> list[dict]:
        """Add labelled feature records to the live corpus.

        Every record's class must already be known to the model: the
        forest's feature columns are per (type, class), so a brand-new
        class cannot be learned online — it needs a retrain.  Validation
        runs before any mutation, so a rejected batch leaves the corpus
        untouched.  Returns one report dict per record.
        """

        index = self._check_mutable()
        records = list(records)
        if not records:
            return []
        builder = self.classifier.builder_
        known = set(builder.classes_)
        for record in records:
            if not record.class_name:
                raise ValidationError(
                    f"ingest sample {record.sample_id!r} carries no class "
                    "label; online samples must be labelled")
            if record.class_name not in known:
                raise ValidationError(
                    f"ingest sample {record.sample_id!r} has unknown class "
                    f"{record.class_name!r}; known classes are "
                    f"{sorted(known)} (new classes need a retrain)")
        reports = []
        for record in records:
            sequence = index.add(record.sample_id, record.digests,
                                 class_name=record.class_name)
            reports.append({"sample_id": record.sample_id,
                            "class": record.class_name,
                            "sequence": int(sequence)})
        builder.refresh_from_index()
        self._invalidate_cache()
        _LOG.info("ingested %d samples; corpus now holds %d members",
                  len(records), index.n_members)
        return reports

    def ingest_bytes(self, items: Sequence[tuple[str, bytes, str]]
                     ) -> list[dict]:
        """Extract and ingest ``(sample_id, data, class_name)`` triples."""

        from dataclasses import replace

        items = list(items)
        if not items:
            return []
        self._check_mutable()
        with span("extract_features"):
            extracted = self._pipeline.extract_bytes(
                [(sample_id, data) for sample_id, data, _ in items])
        labelled = [replace(record, class_name=str(class_name))
                    for record, (_, _, class_name) in zip(extracted, items)]
        # ingest_apply covers only the corpus application, a *sibling*
        # of extract_features — nesting one top-level span inside
        # another would double-count the time in stage rollups.
        with span("ingest_apply"):
            return self.ingest_features(labelled)

    def purge(self, sample_id: str) -> int:
        """Tombstone every corpus member under ``sample_id``.

        Refuses to drop the last surviving anchors of a class (the
        per-class feature columns must keep at least one anchor each);
        returns how many members were newly tombstoned (0 when the id
        is unknown).
        """

        index = self._check_mutable()
        members = index.members_for_id(sample_id)
        if not members:
            return 0
        class_names = index.class_names
        doomed: dict[str, int] = {}
        for member in members:
            name = class_names[member]
            doomed[name] = doomed.get(name, 0) + 1
        totals: dict[str, int] = {}
        for name in class_names:
            totals[name] = totals.get(name, 0) + 1
        for name, count in doomed.items():
            if count >= totals.get(name, 0):
                raise ValidationError(
                    f"cannot purge {sample_id!r}: it holds the last "
                    f"surviving anchors of class {name!r}, and every "
                    "class needs at least one anchor")
        removed = index.remove(sample_id)
        self.classifier.builder_.refresh_from_index()
        self._invalidate_cache()
        _LOG.info("purged %r (%d members tombstoned); %d survive",
                  sample_id, removed, index.n_members)
        return removed

    def compact(self) -> int:
        """Physically drop tombstoned members; returns how many."""

        index = self._check_mutable()
        dropped = index.compact()
        if dropped:
            # Member indices renumber densely but scores are unchanged,
            # so the digest cache stays valid.
            self.classifier.builder_.refresh_from_index()
        return dropped

    def corpus_info(self) -> dict:
        """Live corpus statistics for lifecycle policies and /healthz."""

        index = self.similarity_index
        classes: dict[str, int] = {}
        for name in index.class_names:
            classes[name] = classes.get(name, 0) + 1
        info = {"members": int(index.n_members), "classes": classes,
                "mutable": self.mutable}
        if isinstance(index, ShardedSimilarityIndex):
            info["total_members"] = int(index.total_members)
            info["tombstones"] = int(index.n_tombstones)
            info["tombstone_ratio"] = float(index.tombstone_ratio)
        return info

    def _invalidate_cache(self) -> None:
        # A corpus mutation changes similarity scores (a new anchor can
        # raise its class's max; a purge can lower it), so every cached
        # (best class, confidence) pair is suspect.
        with self._cache_lock:
            self._cache.clear()

    # -------------------------------------------------------------- classify
    def classify_features(self, features: Sequence[SampleFeatures]
                          ) -> list[Decision]:
        """Classify pre-extracted feature records (e.g. a prolog hook)."""

        features = list(features)
        if not features:
            return []
        return self._decide(features)

    def classify_paths(self, paths: Sequence[str | os.PathLike]
                       ) -> list[Decision]:
        """Classify explicit executable paths."""

        paths = [str(p) for p in paths]
        if not paths:
            return []
        return self._decide(self._pipeline.extract_paths(paths))

    def classify_bytes(self, items: Mapping[str, bytes]
                       | Iterable[tuple[str, bytes]]) -> list[Decision]:
        """Classify in-memory executables, given ``(sample_id, bytes)``
        pairs or a mapping of ids to bytes."""

        pairs = list(items.items()) if isinstance(items, Mapping) else list(items)
        if not pairs:
            return []
        with span("extract_features"):
            features = self._pipeline.extract_bytes(pairs)
        return self._decide(features)

    def classify_directory(self, directory: str | os.PathLike,
                           pattern: str = "**/*") -> list[Decision]:
        """Classify every regular file below ``directory``."""

        return self.classify_paths(list_directory(directory, pattern))

    def classify_stream(self, items: Iterable, *,
                        batch_size: int | None = None) -> Iterator[Decision]:
        """Classify an iterable of arbitrary length, in input order.

        Items may be mixed: :class:`SampleFeatures` records,
        ``(sample_id, bytes)`` pairs, or path strings /
        :class:`os.PathLike`.  The stream is consumed in micro-batches of
        ``batch_size`` (default: the service's ``batch_size``), so each
        batch pays one vectorised scoring-plus-forest pass and memory
        stays bounded regardless of stream length.
        """

        batch_size = self.batch_size if batch_size is None else int(batch_size)
        if batch_size < 1:
            raise ValidationError("batch_size must be >= 1")
        batch: list = []
        for item in items:
            batch.append(item)
            if len(batch) >= batch_size:
                yield from self._classify_batch(batch)
                batch = []
        if batch:
            yield from self._classify_batch(batch)

    # ----------------------------------------------------------- internals
    def _classify_batch(self, batch: list) -> list[Decision]:
        features: list[SampleFeatures | None] = [None] * len(batch)
        paths: list[tuple[int, str]] = []
        blobs: list[tuple[int, tuple[str, bytes]]] = []
        for position, item in enumerate(batch):
            if isinstance(item, SampleFeatures):
                features[position] = item
            elif isinstance(item, tuple) and len(item) == 2:
                blobs.append((position, (str(item[0]), item[1])))
            elif isinstance(item, (str, os.PathLike)):
                paths.append((position, str(item)))
            else:
                raise ValidationError(
                    "classify_stream items must be SampleFeatures, "
                    "(sample_id, bytes) pairs or paths, got "
                    f"{type(item).__name__}")
        if paths:
            extracted = self._pipeline.extract_paths([p for _, p in paths])
            for (position, _), record in zip(paths, extracted):
                features[position] = record
        if blobs:
            extracted = self._pipeline.extract_bytes([b for _, b in blobs])
            for (position, _), record in zip(blobs, extracted):
                features[position] = record
        return self._decide(features)

    def _decide(self, features: Sequence[SampleFeatures]) -> list[Decision]:
        known_labels, confidences = self._predict_cached(features)
        # Duck-typed classifiers without a thresholded model are taken
        # at their word (threshold None); the real FuzzyHashClassifier
        # path defers rejection to here so cached scores stay valid.
        threshold = getattr(self.classifier.model_,
                            "confidence_threshold", None)
        unknown = self.classifier.unknown_label
        allowed = self.allowed_classes
        decisions: list[Decision] = []
        for record, known, confidence in zip(features, known_labels,
                                             confidences):
            # The cache stores the pre-threshold best class, so the
            # rejection rule is applied fresh on every call — a
            # threshold changed after load takes effect immediately.
            predicted = unknown if (threshold is not None
                                    and confidence < threshold) else known
            if predicted == unknown:
                decision = DECISION_UNKNOWN
            elif allowed is not None and predicted not in allowed:
                decision = DECISION_UNEXPECTED
            else:
                decision = DECISION_EXPECTED
            decisions.append(Decision(
                sample_id=record.sample_id, predicted_class=predicted,
                confidence=float(confidence), decision=decision))
        flagged = sum(1 for d in decisions if d.is_suspicious())
        _LOG.info("service classified %d executables (%d flagged)",
                  len(decisions), flagged)
        return decisions

    def _predict_cached(self, features: Sequence[SampleFeatures]
                        ) -> tuple[list, np.ndarray]:
        """``(best class, confidence)`` per record, through the LRU cache.

        Predictions are computed with the rejection threshold disabled
        (``confidence_threshold=0.0``), so cached values stay valid when
        the service's threshold is tuned later; only cache misses pay
        the similarity transform and the forest pass.  Duck-typed
        classifiers whose ``model_`` carries no threshold are called
        with their own default instead.
        """

        threshold = getattr(self.classifier.model_,
                            "confidence_threshold", None)
        override = None if threshold is None else 0.0
        if not self.cache_size:
            labels, confidences = self.classifier.predict_with_confidence(
                features, confidence_threshold=override)
            with self._cache_lock:
                self.cache_misses += len(features)
            return list(labels), np.asarray(confidences, dtype=np.float64)

        feature_types = getattr(self.classifier, "active_feature_types",
                                self.classifier.feature_types)
        keys = [tuple(record.digest(ft) for ft in feature_types)
                for record in features]
        known: list = [None] * len(features)
        confidence = np.zeros(len(features), dtype=np.float64)
        misses: list[int] = []
        # Two locked phases around the (expensive, unlocked) model pass:
        # concurrent callers missing the same key both compute it — a
        # harmless duplicate pass, each honestly counted as a miss —
        # but the OrderedDict itself is never touched concurrently and
        # the hit/miss counters stay exact.
        with self._cache_lock:
            for position, key in enumerate(keys):
                hit = self._cache.get(key)
                if hit is None:
                    misses.append(position)
                else:
                    self._cache.move_to_end(key)
                    known[position], confidence[position] = hit
            self.cache_hits += len(features) - len(misses)
            self.cache_misses += len(misses)
        if misses:
            labels, scores = self.classifier.predict_with_confidence(
                [features[i] for i in misses], confidence_threshold=override)
            with self._cache_lock:
                for position, label, score in zip(misses, labels, scores):
                    known[position] = label
                    confidence[position] = float(score)
                    self._cache[keys[position]] = (label, float(score))
                    self._cache.move_to_end(keys[position])
                while len(self._cache) > self.cache_size:
                    self._cache.popitem(last=False)
        return known, confidence
