"""Versioned single-file model artifacts (``.rpm``).

A saved model is one container file (same physical layout as the
similarity index, :mod:`repro.index.storage`) with magic ``RPROMODL``:
a JSON header carrying everything that is not bulk data, followed by
raw little-endian array payloads.

Header fields::

    kind                   "repro.fuzzy-hash-classifier"
    format_version         written by the container (currently 2)
    library_version        repro.__version__ that wrote the file
    params                 FuzzyHashClassifier hyper-parameters
    classes                {"kind": "str"|"int"|"float", "values": [...]}
    feature_names          column names of the similarity matrix
    feature_groups         feature type -> column indices
    forest                 {"classes", "n_features_in", "n_trees"}
    index                  {"included": bool, "header": ... | null}

Array payloads hold the flattened forest (per-tree node tables
concatenated, with offset arrays) and, when ``include_index`` is left
on, the anchor index under ``index.*`` names.

Format version 2 additionally allows the embedded anchor index to be a
:class:`~repro.index.ShardedSimilarityIndex`: its header (under
``index.header``) carries ``"sharded": true`` plus the shard layout,
and its arrays are prefixed ``index.shardN.*``.  Format version 3
adds the second hash family: the classifier may carry a ``family``
parameter (``"ctph"``/``"vector"``/``"both"``) and the embedded index
may hold packed ``uint64`` vector-digest matrices (``v{idx}.*``
sections, :mod:`repro.index.knn`).  Format version 4 (this build)
changes only the physical layout: array payloads are padded so each
starts on a 64-byte boundary (``payload_alignment`` in the container
header), which lets :func:`load_model` with ``mmap_mode="r"`` adopt
the bulk arrays as zero-copy memory-mapped views — an O(header) load
whose pages N serving processes share through the OS page cache.
Version 1–3 artifacts load unchanged (bit-identically, through the
materialising path) and predict identically; readers accept any
version up to the current one.

Validation on load is strict: bad magic, truncation, a future format
version, unknown feature types, or a feature layout that does not match
the embedded (or supplied) anchor index all raise
:class:`~repro.exceptions.ModelFormatError` — the CLI turns that into a
one-line message and exit status 2.  A model restored by
:func:`load_model` predicts **bit-identically** to the instance passed
to :func:`save_model`.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Mapping

import numpy as np

from .. import __version__
from ..core.classifier import FuzzyHashClassifier
from ..exceptions import (
    ModelArtifactError,
    ModelFormatError,
    NotFittedError,
    ReproError,
)
from ..features.extractors import (
    ALL_FEATURE_TYPES,
    resolve_family_feature_types,
)
from ..index import ShardedSimilarityIndex, SimilarityIndex, load_index
from ..index.storage import (
    ContainerFormat,
    read_container,
    read_container_header,
    write_container,
)
from ..logging_utils import get_logger

__all__ = ["MODEL_FORMAT_VERSION", "MODEL_MAGIC", "MODEL_SUFFIX", "MODEL_KIND",
           "save_model", "load_model", "inspect_model", "validate_model",
           "read_wal_checkpoint"]

_LOG = get_logger("api.artifact")

#: Current model artifact format version; v1 (single-index anchors
#: only), v2 (sharded anchors, CTPH-only) and v3 (unaligned payloads)
#: files remain readable.
MODEL_FORMAT_VERSION = 4

#: File magic identifying a repro model artifact.
MODEL_MAGIC = b"RPROMODL"

#: Conventional file suffix for model artifacts ("repro model").
MODEL_SUFFIX = ".rpm"

#: The ``kind`` string a readable artifact must declare.
MODEL_KIND = "repro.fuzzy-hash-classifier"

#: Container format of model artifact files (adds float64 for the
#: forest's thresholds, node values and importances, and uint64 for
#: packed vector-digest matrices).
MODEL_CONTAINER = ContainerFormat(
    magic=MODEL_MAGIC,
    version=MODEL_FORMAT_VERSION,
    allowed_dtypes=("<i2", "<i4", "<i8", "|u1", "<f8", "<u8"),
    kind="model artifact",
    format_error=ModelFormatError,
    io_error=ModelArtifactError,
)


# --------------------------------------------------------------- label codec
def _encode_labels(arr: np.ndarray) -> dict:
    """JSON-safe encoding of a class-label array, tagged with its kind."""

    values = np.asarray(arr).tolist()
    if all(isinstance(v, str) for v in values):
        kind = "str"
    elif all(isinstance(v, bool) for v in values):
        raise ModelArtifactError("boolean class labels are not supported "
                                 "by the model artifact format")
    elif all(isinstance(v, int) for v in values):
        kind = "int"
    elif all(isinstance(v, (int, float)) for v in values):
        kind = "float"
    else:
        raise ModelArtifactError(
            "class labels must be uniformly str, int or float to be saved "
            f"in a model artifact, got {sorted({type(v).__name__ for v in values})}")
    return {"kind": kind, "values": values}


def _decode_labels(payload: Mapping, *, source: str) -> np.ndarray:
    try:
        kind = payload["kind"]
        values = list(payload["values"])
    except (KeyError, TypeError) as exc:
        raise ModelFormatError(
            f"{source} has a malformed class-label block: {exc}") from exc
    if kind == "str":
        return np.array([str(v) for v in values])
    if kind == "int":
        return np.array(values, dtype=np.int64)
    if kind == "float":
        return np.array(values, dtype=np.float64)
    raise ModelFormatError(
        f"{source} declares unknown class-label kind {kind!r}")


# ------------------------------------------------------------ forest codec
def _flatten_forest(forest_state: Mapping) -> tuple[dict, dict[str, np.ndarray]]:
    """Flatten a forest ``get_state`` snapshot into header + arrays."""

    trees = forest_state["trees"]
    node_offsets = np.zeros(len(trees) + 1, dtype=np.int64)
    class_offsets = np.zeros(len(trees) + 1, dtype=np.int64)
    feature, left, right, samples = [], [], [], []
    threshold, values, tree_classes, tree_importances = [], [], [], []
    for i, tree in enumerate(trees):
        classes = np.asarray(tree["classes"])
        if not np.issubdtype(classes.dtype, np.integer):
            raise ModelArtifactError(
                "forest trees must carry integer-encoded class indices")
        node_offsets[i + 1] = node_offsets[i] + len(tree["feature"])
        class_offsets[i + 1] = class_offsets[i] + len(classes)
        feature.append(tree["feature"])
        left.append(tree["left"])
        right.append(tree["right"])
        samples.append(tree["n_node_samples"])
        threshold.append(tree["threshold"])
        values.append(np.asarray(tree["values"], dtype=np.float64).ravel())
        tree_classes.append(classes.astype(np.int64))
        tree_importances.append(tree["feature_importances"])

    def _cat(parts, dtype):
        return (np.concatenate(parts).astype(dtype) if parts
                else np.zeros(0, dtype=dtype))

    header = {
        "classes": _encode_labels(forest_state["classes"]),
        "n_features_in": int(forest_state["n_features_in"]),
        "n_trees": len(trees),
    }
    arrays = {
        "forest.tree_node_offsets": node_offsets,
        "forest.tree_class_offsets": class_offsets,
        "forest.node_feature": _cat(feature, np.int64),
        "forest.node_left": _cat(left, np.int64),
        "forest.node_right": _cat(right, np.int64),
        "forest.node_samples": _cat(samples, np.int64),
        "forest.node_threshold": _cat(threshold, np.float64),
        "forest.node_values": _cat(values, np.float64),
        "forest.tree_classes": _cat(tree_classes, np.int64),
        "forest.tree_importances": np.stack(tree_importances).astype(np.float64),
        "forest.importances": np.asarray(forest_state["feature_importances"],
                                         dtype=np.float64),
    }
    return header, arrays


def _unflatten_forest(forest_header: Mapping, arrays: Mapping[str, np.ndarray],
                      *, source: str) -> dict:
    """Rebuild a forest ``set_state`` snapshot from header + arrays."""

    try:
        n_trees = int(forest_header["n_trees"])
        n_features = int(forest_header["n_features_in"])
        classes = _decode_labels(forest_header["classes"], source=source)
        node_offsets = arrays["forest.tree_node_offsets"]
        class_offsets = arrays["forest.tree_class_offsets"]
        node_feature = arrays["forest.node_feature"]
        node_left = arrays["forest.node_left"]
        node_right = arrays["forest.node_right"]
        node_samples = arrays["forest.node_samples"]
        node_threshold = arrays["forest.node_threshold"]
        node_values = arrays["forest.node_values"]
        tree_classes = arrays["forest.tree_classes"]
        tree_importances = arrays["forest.tree_importances"]
        forest_importances = arrays["forest.importances"]
    except (KeyError, TypeError, ValueError) as exc:
        raise ModelFormatError(
            f"{source} is missing forest payload fields: {exc}") from exc

    if len(node_offsets) != n_trees + 1 or len(class_offsets) != n_trees + 1:
        raise ModelFormatError(f"{source} has inconsistent forest offsets")
    if np.any(np.diff(node_offsets) < 0) or np.any(np.diff(class_offsets) < 0):
        raise ModelFormatError(f"{source} has decreasing forest offsets")
    n_nodes_total = int(node_offsets[-1]) if n_trees else 0
    for name, array in (("node_feature", node_feature),
                        ("node_left", node_left),
                        ("node_right", node_right),
                        ("node_samples", node_samples),
                        ("node_threshold", node_threshold)):
        if len(array) != n_nodes_total:
            raise ModelFormatError(
                f"{source} has a forest array {name!r} of length "
                f"{len(array)}, expected {n_nodes_total}")
    if n_trees and (len(tree_classes) != int(class_offsets[-1])
                    or tree_importances.shape != (n_trees, n_features)):
        raise ModelFormatError(f"{source} has inconsistent per-tree arrays")

    trees = []
    value_offset = 0
    for t in range(n_trees):
        node_lo, node_hi = int(node_offsets[t]), int(node_offsets[t + 1])
        class_lo, class_hi = int(class_offsets[t]), int(class_offsets[t + 1])
        n_nodes = node_hi - node_lo
        n_classes = class_hi - class_lo
        n_values = n_nodes * n_classes
        if value_offset + n_values > len(node_values):
            raise ModelFormatError(
                f"{source} has a truncated forest value table")
        values = node_values[value_offset:value_offset + n_values]
        value_offset += n_values
        trees.append({
            "feature": node_feature[node_lo:node_hi],
            "threshold": node_threshold[node_lo:node_hi],
            "left": node_left[node_lo:node_hi],
            "right": node_right[node_lo:node_hi],
            "values": values.reshape(n_nodes, n_classes),
            "n_node_samples": node_samples[node_lo:node_hi],
            "classes": tree_classes[class_lo:class_hi],
            "n_features_in": n_features,
            "feature_importances": tree_importances[t],
        })
    if value_offset != len(node_values):
        raise ModelFormatError(
            f"{source} has {len(node_values) - value_offset} trailing "
            "forest values")
    return {
        "classes": classes,
        "n_features_in": n_features,
        "feature_importances": forest_importances,
        "trees": trees,
    }


# ------------------------------------------------------------------- save
def save_model(classifier: FuzzyHashClassifier, path: str | os.PathLike, *,
               include_index: bool = True,
               wal_checkpoint: Mapping | None = None) -> Path:
    """Persist a fitted classifier as one versioned artifact file.

    ``include_index=False`` writes a *headless* artifact without the
    anchor index (much smaller); loading one requires passing the
    matching index explicitly to :func:`load_model`.

    ``wal_checkpoint`` (``{"sequence": N, "generation": G}``) stamps
    the artifact as already containing every write-ahead-log mutation
    with seq <= N — the durable half of the serving tier's
    publish/checkpoint protocol (:mod:`repro.serving.wal`).  The field
    is an optional header entry: artifacts without it (every pre-WAL
    file) load unchanged, and readers that don't know it ignore it.
    """

    if not isinstance(classifier, FuzzyHashClassifier):
        raise ModelArtifactError(
            f"save_model expects a FuzzyHashClassifier, got "
            f"{type(classifier).__name__}")
    if not hasattr(classifier, "model_"):
        raise NotFittedError("cannot save an unfitted classifier; call fit "
                             "(or ClassificationService.train) first")
    path = Path(path)
    params = {key: (list(value) if isinstance(value, tuple) else value)
              for key, value in classifier.get_params(deep=False).items()}
    try:
        json.dumps(params)
        json.dumps(classifier.unknown_label)
    except (TypeError, ValueError) as exc:
        raise ModelArtifactError(
            f"classifier parameters are not JSON-serialisable: {exc}") from exc

    forest_header, arrays = _flatten_forest(
        classifier.model_.get_state()["forest"])
    header = {
        "kind": MODEL_KIND,
        "library_version": __version__,
        "params": params,
        "classes": _encode_labels(np.asarray(classifier.classes_)),
        "feature_names": list(classifier.feature_names_),
        "feature_groups": {k: list(v)
                           for k, v in classifier.feature_groups_.items()},
        "forest": forest_header,
        "index": {"included": bool(include_index), "header": None},
    }
    if wal_checkpoint is not None:
        try:
            header["wal_checkpoint"] = {
                "sequence": int(wal_checkpoint["sequence"]),
                "generation": int(wal_checkpoint["generation"]),
            }
        except (KeyError, TypeError, ValueError) as exc:
            raise ModelArtifactError(
                f"wal_checkpoint needs integer 'sequence' and "
                f"'generation' fields: {exc}") from exc
    if include_index:
        # Serialised only on demand: a headless save skips the (large)
        # anchor-index payload entirely, not just its write.
        builder_state = classifier.builder_.get_state()
        header["index"]["header"] = builder_state["index_header"]
        for name, array in builder_state["index_arrays"].items():
            arrays[f"index.{name}"] = array

    path = write_container(path, header, arrays, fmt=MODEL_CONTAINER)
    _LOG.info("saved model artifact (%d classes, %d trees%s) to %s",
              len(classifier.classes_), forest_header["n_trees"],
              ", with index" if include_index else "", path)
    return path


# ------------------------------------------------------------------- load
def load_model(path: str | os.PathLike,
               index: "SimilarityIndex | ShardedSimilarityIndex | str | "
                      "os.PathLike | None" = None, *,
               mmap_mode: str | None = None) -> FuzzyHashClassifier:
    """Load a model artifact; the result predicts bit-identically.

    ``index`` supplies the anchor index for headless artifacts (a loaded
    :class:`~repro.index.SimilarityIndex` or
    :class:`~repro.index.ShardedSimilarityIndex`, or a path to either
    format); it
    is ignored with a warning when the artifact embeds its own.
    ``mmap_mode="r"`` adopts the bulk arrays as read-only zero-copy
    views into a shared memory map (v4 aligned artifacts; older files
    transparently fall back to the materialising path).  Raises
    :class:`~repro.exceptions.ModelFormatError` on missing, corrupt,
    truncated, version- or feature-type-incompatible files.
    """

    return _restore(Path(path), index, mmap_mode=mmap_mode)[0]


def _restore(path: Path,
             index: "SimilarityIndex | ShardedSimilarityIndex | str | "
                    "os.PathLike | None",
             mmap_mode: str | None = None
             ) -> tuple[FuzzyHashClassifier, dict]:
    """Fully restore an artifact; returns ``(classifier, header)``."""

    source = f"model artifact {path}"
    header, arrays = read_container(path, fmt=MODEL_CONTAINER,
                                    mmap_mode=mmap_mode)

    kind = header.get("kind")
    if kind != MODEL_KIND:
        raise ModelFormatError(
            f"{source} holds a {kind!r} model; this build reads {MODEL_KIND!r}")
    try:
        params = dict(header["params"])
        feature_names = list(header["feature_names"])
        feature_groups = dict(header["feature_groups"])
        forest_header = header["forest"]
        index_block = dict(header["index"])
    except (KeyError, TypeError, ValueError) as exc:
        raise ModelFormatError(
            f"{source} is missing required header fields: {exc}") from exc

    feature_types = params.get("feature_types", ())
    unknown_types = [ft for ft in feature_types
                     if ft not in ALL_FEATURE_TYPES]
    if not feature_types or unknown_types:
        raise ModelFormatError(
            f"{source} uses feature types {unknown_types or '[]'} unknown to "
            f"this build (supported: {list(ALL_FEATURE_TYPES)})")

    try:
        classifier = FuzzyHashClassifier(**params)
    except (TypeError, ReproError) as exc:
        raise ModelFormatError(
            f"{source} declares invalid classifier parameters: {exc}") from exc

    if index_block.get("included"):
        if index is not None:
            _LOG.warning("%s embeds its anchor index; ignoring the explicitly "
                         "supplied one", source)
        index_header = index_block.get("header")
        index_arrays = {name.split(".", 1)[1]: array
                        for name, array in arrays.items()
                        if name.startswith("index.")}
        if not isinstance(index_header, dict) or not index_arrays:
            raise ModelFormatError(
                f"{source} declares an embedded index but carries no "
                "index payload")
        # The container arrays are exclusively owned (eager read) or
        # immutable mapped views, so the index adopts them without a
        # second copy; a mapped load also defers the O(payload) content
        # scans (the file was validated when written).
        try:
            if index_header.get("sharded"):
                anchor: SimilarityIndex | ShardedSimilarityIndex = \
                    ShardedSimilarityIndex.from_state(
                        index_header, index_arrays, source=source,
                        copy=False, deep_validate=mmap_mode is None)
            else:
                anchor = SimilarityIndex.from_state(
                    index_header, index_arrays, source=source,
                    copy=False, deep_validate=mmap_mode is None)
        except ReproError as exc:
            raise ModelFormatError(
                f"{source} cannot be restored: {exc}") from exc
        builder_state: dict = {"index": anchor}
    else:
        if index is None:
            raise ModelFormatError(
                f"{source} was saved without its anchor index "
                "(include_index=False); pass index=<SimilarityIndex or path>")
        if not isinstance(index, (SimilarityIndex, ShardedSimilarityIndex)):
            # A path: we own the freshly-loaded index, so the builder
            # can adopt it directly (mmap_mode flows through).
            builder_state = {"index": load_index(index, mmap_mode=mmap_mode)}
        else:
            # A caller-owned index object: snapshot it so the restored
            # model never aliases (and is never mutated through) the
            # caller's instance.
            index_header, index_arrays = index.get_state()
            builder_state = {"index_header": index_header,
                             "index_arrays": index_arrays}

    forest_state = _unflatten_forest(forest_header, arrays, source=source)
    try:
        classifier.set_state({
            "builder": builder_state,
            "model": {"forest": forest_state},
            "feature_names": feature_names,
            "feature_groups": feature_groups,
        })
    except ReproError as exc:
        raise ModelFormatError(f"{source} cannot be restored: {exc}") from exc

    # The feature layout the forest was trained on must be exactly what
    # the restored builder produces — this is what catches a headless
    # artifact paired with the wrong index, or tampered anchor labels.
    restored_names = list(classifier.builder_.feature_names_)
    if restored_names != feature_names:
        raise ModelFormatError(
            f"{source} feature layout does not match its anchor index "
            f"({len(feature_names)} declared vs {len(restored_names)} "
            "reconstructed columns)")
    _LOG.info("loaded model artifact (%d classes, %d trees) from %s",
              len(classifier.classes_), forest_header.get("n_trees"), path)
    return classifier, header


# ---------------------------------------------------------------- inspect
def _summarise(path: Path, header: Mapping) -> dict:
    """Build the inspect summary from an already-read header."""

    source = f"model artifact {path}"
    if header.get("kind") != MODEL_KIND:
        raise ModelFormatError(
            f"{source} holds a {header.get('kind')!r} model; this build "
            f"reads {MODEL_KIND!r}")
    try:
        params = dict(header["params"])
        classes = _decode_labels(header["classes"], source=source)
        forest = dict(header["forest"])
        index_block = dict(header["index"])
    except (KeyError, TypeError, ValueError) as exc:
        raise ModelFormatError(
            f"{source} is missing required header fields: {exc}") from exc
    index_header = index_block.get("header") or {}
    index_sharded = bool(index_header.get("sharded"))
    if index_block.get("included"):
        if index_sharded:
            tombstones = sum(len(dead)
                             for dead in index_header.get("tombstones", []))
            index_members = len(index_header.get("order", [])) - tombstones
        else:
            index_members = len(index_header.get("sample_ids", []))
    else:
        index_members = 0
    family = str(params.get("family", "ctph"))
    try:
        active_types = list(resolve_family_feature_types(
            params.get("feature_types", ()), family))
    except ReproError:
        active_types = list(params.get("feature_types", []))
    families = {
        "ctph": [ft for ft in active_types if not ft.startswith("vector-")],
        "vector": [ft for ft in active_types if ft.startswith("vector-")],
    }
    return {
        "path": str(path),
        "file_bytes": path.stat().st_size,
        "format_version": header.get("format_version"),
        "library_version": header.get("library_version"),
        "kind": header["kind"],
        "feature_types": list(params.get("feature_types", [])),
        "family": family,
        "active_feature_types": active_types,
        "families": families,
        "classes": [str(c) for c in classes.tolist()],
        "n_classes": len(classes),
        "n_trees": int(forest.get("n_trees", 0)),
        "n_features": int(forest.get("n_features_in", 0)),
        "confidence_threshold": params.get("confidence_threshold"),
        "anchor_strategy": params.get("anchor_strategy"),
        "index_included": bool(index_block.get("included")),
        "index_sharded": index_sharded,
        "index_shards": int(index_header.get("n_shards", 0))
        if index_sharded else 0,
        "index_members": index_members,
        "wal_checkpoint": header.get("wal_checkpoint"),
    }


def read_wal_checkpoint(path: str | os.PathLike) -> dict | None:
    """The artifact's ``wal_checkpoint`` header field, or ``None``.

    O(header): only the container preamble and JSON header are read.
    ``None`` means the artifact predates (or was published outside) the
    WAL protocol, i.e. the whole log must be replayed over it.
    """

    header = read_container_header(Path(path), fmt=MODEL_CONTAINER)
    checkpoint = header.get("wal_checkpoint")
    if checkpoint is None:
        return None
    try:
        return {"sequence": int(checkpoint["sequence"]),
                "generation": int(checkpoint["generation"])}
    except (KeyError, TypeError, ValueError) as exc:
        raise ModelFormatError(
            f"model artifact {path} carries a malformed wal_checkpoint "
            f"header: {checkpoint!r} ({exc})") from exc


def inspect_model(path: str | os.PathLike) -> dict:
    """Header-level summary of an artifact (no model reconstruction)."""

    path = Path(path)
    # Mapped read: inspection only touches the header, so the (possibly
    # huge) payloads are never faulted in on v4 aligned files.
    header, _arrays = read_container(path, fmt=MODEL_CONTAINER,
                                     mmap_mode="r")
    return _summarise(path, header)


def validate_model(path: str | os.PathLike,
                   index: "SimilarityIndex | ShardedSimilarityIndex | str | "
                          "os.PathLike | None" = None
                   ) -> dict:
    """Fully restore an artifact, then return its :func:`inspect_model`
    summary — the load exercises every structural check, so success
    means the file will serve.  The container is read and parsed once."""

    path = Path(path)
    _classifier, header = _restore(path, index)
    return _summarise(path, header)
