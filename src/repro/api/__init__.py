"""Public, serve-oriented facade of the library.

The paper's envisioned deployment (Figure 1) is a long-lived service
labelling executables collected from HPC jobs.  This package is the
stable surface that deployment programs against:

* :mod:`repro.api.artifact` — the versioned single-file **model
  artifact** format (``.rpm``): :func:`save_model` persists a fitted
  :class:`~repro.core.classifier.FuzzyHashClassifier` (forest, labels,
  confidence threshold, feature layout and — by default — the anchor
  :class:`~repro.index.SimilarityIndex`); :func:`load_model` restores it
  with strict version and feature-type validation, so a later process
  classifies without retraining and predicts bit-identically.
* :mod:`repro.api.service` — :class:`ClassificationService`, the
  batched classification facade: ``train`` / ``load`` / ``save`` plus
  ``classify_paths`` / ``classify_bytes`` / ``classify_stream``, all
  returning typed :class:`Decision` records.

The old hand-wired path (hasher → pipeline → builder → classifier →
workflow) keeps working; :class:`~repro.core.workflow.ClassificationWorkflow`
is now a thin wrapper over the service.
"""

from .artifact import (
    MODEL_FORMAT_VERSION,
    MODEL_MAGIC,
    MODEL_SUFFIX,
    inspect_model,
    load_model,
    save_model,
    validate_model,
)
from .service import (
    DECISION_EXPECTED,
    DECISION_UNEXPECTED,
    DECISION_UNKNOWN,
    ClassificationService,
    Decision,
)

__all__ = [
    "MODEL_FORMAT_VERSION",
    "MODEL_MAGIC",
    "MODEL_SUFFIX",
    "save_model",
    "load_model",
    "inspect_model",
    "validate_model",
    "ClassificationService",
    "Decision",
    "DECISION_EXPECTED",
    "DECISION_UNEXPECTED",
    "DECISION_UNKNOWN",
]
