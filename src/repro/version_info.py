"""Version and environment reporting (used by ``repro-classify info``)."""

from __future__ import annotations

import platform
import sys

import numpy as np

__all__ = ["version_string", "describe_environment"]


def version_string() -> str:
    """Short ``prog version`` line (used by ``repro --version``)."""

    from . import __version__

    return f"repro {__version__}"


def describe_environment() -> str:
    """Multi-line description of the library and its environment."""

    from . import __version__

    lines = [
        f"repro {__version__} — Fuzzy Hash Classifier reproduction",
        f"  paper: Jakobsche & Ciorba, 'Using Malware Detection Techniques for "
        f"HPC Application Classification' (SC 2024, arXiv:2411.18327)",
        f"  python: {sys.version.split()[0]} ({platform.python_implementation()})",
        f"  numpy: {np.__version__}",
        f"  platform: {platform.system()} {platform.machine()}",
    ]
    return "\n".join(lines)
