"""Exception hierarchy for the :mod:`repro` package.

Every error raised intentionally by the library derives from
:class:`ReproError` so that callers can catch library failures without
accidentally swallowing unrelated Python errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ConfigurationError(ReproError):
    """Raised when a configuration value or scale preset is invalid."""


class ValidationError(ReproError, ValueError):
    """Raised when a user-supplied argument fails validation.

    Inherits from :class:`ValueError` so that generic ``except ValueError``
    handlers written against the scikit-learn API keep working.
    """


class HashingError(ReproError):
    """Raised when fuzzy hashing of an input fails."""


class DigestFormatError(HashingError, ValueError):
    """Raised when an SSDeep digest string cannot be parsed."""


class BinaryFormatError(ReproError):
    """Raised when an executable file cannot be parsed as ELF."""


class TruncatedBinaryError(BinaryFormatError):
    """Raised when an ELF file ends before a declared structure."""


class SymbolTableError(BinaryFormatError):
    """Raised when the symbol table of a binary is missing or malformed.

    The paper's collection rules skip binaries that have been stripped of
    their symbol table; this error is the signal used for that filtering.
    """


class CorpusError(ReproError):
    """Raised when corpus generation or scanning fails."""


class CorpusLayoutError(CorpusError):
    """Raised when an on-disk software tree does not follow the expected
    ``<Class>/<version>/<executable>`` layout."""


class ParallelExecutionError(ReproError):
    """Raised when an execution backend cannot run a parallel workload
    and the caller asked for strict behaviour instead of the serial
    fallback."""


class SimilarityIndexError(ReproError):
    """Raised when a similarity-index operation fails."""


class IndexFormatError(SimilarityIndexError):
    """Raised when an on-disk similarity index file is missing, corrupt,
    truncated, or written by an unsupported format version."""


class ModelArtifactError(ReproError):
    """Raised when a model artifact cannot be saved or restored."""


class ModelFormatError(ModelArtifactError):
    """Raised when an on-disk model artifact file is missing, corrupt,
    truncated, incompatible with this build's feature types, or written
    by an unsupported format version."""


class NotFittedError(ReproError, RuntimeError):
    """Raised when ``predict``/``transform`` is called before ``fit``."""


class FeatureExtractionError(ReproError):
    """Raised when fuzzy-hash feature extraction for a sample fails."""


class EvaluationError(ReproError):
    """Raised when an experiment or evaluation cannot be completed."""


class ServingError(ReproError):
    """Raised when the long-running classification server fails."""


class ProtocolError(ServingError, ValueError):
    """Raised when a serving request violates the JSON wire protocol
    (malformed JSON, bad base64, missing fields, payload over the
    per-request caps).  Maps to HTTP 400."""


class ServerOverloadedError(ServingError):
    """Raised when the serving request queue is full and admission
    control rejects new work.  Maps to HTTP 503 + ``Retry-After``."""


class WALError(ServingError):
    """Raised when the ingestion write-ahead log cannot be opened,
    appended to, or checkpointed."""


class WALCorruptionError(WALError):
    """Raised when the write-ahead log holds corrupt records *before*
    its final one (a torn final record is truncated silently; damage
    earlier in the log means history was lost and recovery refuses to
    guess unless explicitly asked to repair)."""


class FaultInjectedError(ReproError):
    """Raised by an armed :class:`repro.testing.faults.FaultInjector`
    failpoint with the ``raise`` action.  Only tests should ever see
    this."""


class ServerClosedError(ServingError):
    """Raised when work is submitted to a coalescer that is draining or
    has shut down."""
