"""Scale presets and experiment configuration.

The paper's evaluation uses 92 application classes and 5333 samples
collected from the sciCORE production cluster.  Regenerating that scale
with the synthetic corpus is possible but slow on small CI machines, so
experiments in this repository run at one of three *scale presets*:

``small``
    A dozen classes, a few samples each.  Used by the unit/integration
    tests so the whole suite stays fast.
``medium``
    All 92 classes from the paper's catalogue, but with per-class sample
    counts capped.  This is the default for ``pytest benchmarks/``.
``full``
    The paper-scale corpus: all 92 classes with the per-class sample
    counts reconstructed from Tables 3 and 4 (≈5333 samples).

The preset is chosen with the ``REPRO_SCALE`` environment variable or
explicitly through :class:`ExperimentConfig`.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import Mapping

from .exceptions import ConfigurationError

__all__ = [
    "ScalePreset",
    "ExperimentConfig",
    "get_scale_preset",
    "default_config",
    "SCALE_PRESETS",
]

#: Environment variable that selects the default scale preset.
SCALE_ENV_VAR = "REPRO_SCALE"


@dataclass(frozen=True)
class ScalePreset:
    """Describes how large the synthetic corpus and experiment should be.

    Attributes
    ----------
    name:
        Preset identifier (``small``/``medium``/``full``).
    max_classes:
        Number of application classes drawn from the catalogue
        (``None`` means all 92).
    max_samples_per_class:
        Cap applied to the per-class sample count from the catalogue
        (``None`` means the paper-scale counts).
    binary_size_range:
        Inclusive (min, max) size in bytes of the synthetic ``.text``
        section.  Real HPC binaries are larger; nothing in the evaluation
        depends on absolute size (see DESIGN.md).
    n_estimators:
        Number of trees for the default Random Forest.
    grid_search_budget:
        Rough number of hyper-parameter combinations explored by the
        default grid search (``core.gridsearch`` trims its grid to this).
    """

    name: str
    max_classes: int | None
    max_samples_per_class: int | None
    binary_size_range: tuple[int, int]
    n_estimators: int
    grid_search_budget: int

    def describe(self) -> str:
        """Return a one-line human readable description of the preset."""

        classes = "all 92" if self.max_classes is None else str(self.max_classes)
        cap = ("paper-scale" if self.max_samples_per_class is None
               else f"<= {self.max_samples_per_class}/class")
        return (f"preset '{self.name}': {classes} classes, samples {cap}, "
                f"binaries {self.binary_size_range[0]}-{self.binary_size_range[1]} B, "
                f"{self.n_estimators} trees")


SCALE_PRESETS: Mapping[str, ScalePreset] = {
    "small": ScalePreset(
        name="small",
        max_classes=12,
        max_samples_per_class=8,
        binary_size_range=(2_048, 8_192),
        n_estimators=30,
        grid_search_budget=4,
    ),
    "medium": ScalePreset(
        name="medium",
        max_classes=None,
        max_samples_per_class=24,
        binary_size_range=(3_072, 16_384),
        n_estimators=80,
        grid_search_budget=8,
    ),
    "full": ScalePreset(
        name="full",
        max_classes=None,
        max_samples_per_class=None,
        binary_size_range=(4_096, 32_768),
        n_estimators=120,
        grid_search_budget=12,
    ),
}


def get_scale_preset(name: str | None = None) -> ScalePreset:
    """Resolve a scale preset by name or from ``REPRO_SCALE``.

    Raises
    ------
    ConfigurationError
        If the name is not one of ``small``, ``medium`` or ``full``.
    """

    if name is None:
        name = os.environ.get(SCALE_ENV_VAR, "medium")
    key = str(name).strip().lower()
    if key not in SCALE_PRESETS:
        raise ConfigurationError(
            f"Unknown scale preset {name!r}; expected one of {sorted(SCALE_PRESETS)}"
        )
    return SCALE_PRESETS[key]


@dataclass(frozen=True)
class ExperimentConfig:
    """Bundle of knobs that define one end-to-end experiment.

    The defaults reproduce the paper's methodology:

    * 80/20 class-level split into known/unknown classes,
    * stratified 60/40 sample split of the known classes,
    * Random Forest with balanced class weights,
    * confidence threshold tuned on the training set only.
    """

    scale: ScalePreset = field(default_factory=get_scale_preset)
    seed: int = 20241127  # arXiv submission date of the paper
    unknown_class_fraction: float = 0.20
    test_sample_fraction: float = 0.40
    unknown_label: int = -1
    confidence_threshold: float | None = None  # None -> tuned by grid search
    anchor_strategy: str = "class-max"
    feature_types: tuple[str, ...] = ("ssdeep-file", "ssdeep-strings", "ssdeep-symbols")
    n_jobs: int = 1

    def with_scale(self, name: str) -> "ExperimentConfig":
        """Return a copy of this config with a different scale preset."""

        return replace(self, scale=get_scale_preset(name))

    def validate(self) -> "ExperimentConfig":
        """Check value ranges; returns ``self`` for chaining."""

        if not (0.0 < self.unknown_class_fraction < 1.0):
            raise ConfigurationError(
                "unknown_class_fraction must be in (0, 1), got "
                f"{self.unknown_class_fraction}"
            )
        if not (0.0 < self.test_sample_fraction < 1.0):
            raise ConfigurationError(
                f"test_sample_fraction must be in (0, 1), got {self.test_sample_fraction}"
            )
        if self.confidence_threshold is not None and not (
            0.0 <= self.confidence_threshold <= 1.0
        ):
            raise ConfigurationError(
                "confidence_threshold must be None or in [0, 1], got "
                f"{self.confidence_threshold}"
            )
        if self.anchor_strategy not in ("class-max", "class-medoids", "all-train"):
            raise ConfigurationError(
                f"Unknown anchor_strategy {self.anchor_strategy!r}"
            )
        if not self.feature_types:
            raise ConfigurationError("feature_types must not be empty")
        return self


def default_config(scale: str | None = None, **overrides) -> ExperimentConfig:
    """Build an :class:`ExperimentConfig` for the given scale preset.

    Keyword overrides are applied on top of the defaults, e.g.
    ``default_config("small", seed=7)``.
    """

    cfg = ExperimentConfig(scale=get_scale_preset(scale))
    if overrides:
        cfg = replace(cfg, **overrides)
    return cfg.validate()
