"""repro — Fuzzy Hash Classifier for HPC application classification.

A from-scratch, dependency-light reproduction of

    Thomas Jakobsche and Florina M. Ciorba,
    "Using Malware Detection Techniques for HPC Application
    Classification", SC 2024 workshops (arXiv:2411.18327).

The library classifies HPC application executables into application
classes (or "unknown") by comparing SSDeep fuzzy hashes of the raw
binary, its embedded strings and its global symbols with a Random
Forest trained on similarity scores.  All substrates — the SSDeep/CTPH
implementation, the Damerau–Levenshtein engine, a minimal ELF toolkit
(``strings``/``nm``/``strip`` equivalents), the synthetic sciCORE-like
corpus and the Random-Forest / metrics / model-selection stack — are
implemented in this package; the only runtime dependency is NumPy.

Quick start
-----------
>>> from repro import (ClassificationService, CorpusBuilder,
...                    FeatureExtractionPipeline, default_config)
>>> config = default_config("small")
>>> samples = CorpusBuilder(config=config).build_samples()
>>> features = FeatureExtractionPipeline().extract_generated(samples)
>>> service = ClassificationService.train(features, n_estimators=30,
...                                       random_state=0)
>>> service.save("model.rpm")            # versioned single-file artifact
PosixPath('model.rpm')
>>> service = ClassificationService.load("model.rpm")   # no retraining
>>> decisions = service.classify_features(features[:5])
>>> decisions[0].decision                # 'within-allocation', or flagged
'within-allocation'

See ``examples/`` for runnable end-to-end scenarios and
``benchmarks/`` for the scripts that regenerate every table and figure
of the paper.
"""

from __future__ import annotations

__version__ = "1.0.0"

# Configuration
from .config import ExperimentConfig, ScalePreset, default_config, get_scale_preset

# Substrates
from .hashing import (
    FuzzyHasher,
    SsdeepDigest,
    compare_digests,
    crypto_digest,
    fuzzy_hash,
    fuzzy_hash_file,
)
from .binfmt import (
    ElfReader,
    ElfWriter,
    build_executable,
    extract_strings,
    nm_output,
    strings_output,
    strip_symbols,
)
from .distance import (
    damerau_levenshtein_distance,
    levenshtein_distance,
    osa_distance,
)

# Corpus
from .corpus import (
    ApplicationCatalog,
    CorpusBuilder,
    CorpusDataset,
    CorpusScanner,
    SampleRecord,
    default_catalog,
)

# Features
from .features import (
    FEATURE_TYPES,
    FeatureExtractionPipeline,
    FeatureExtractor,
    FeatureStore,
    SampleFeatures,
    SimilarityFeatureBuilder,
)

# Similarity index
from .index import (
    IndexMatch,
    PairScore,
    ShardedSimilarityIndex,
    SimilarityIndex,
    load_index,
)

# Machine learning substrate
from .ml import (
    DecisionTreeClassifier,
    KNeighborsClassifier,
    LinearSVMClassifier,
    RandomForestClassifier,
    classification_report,
    f1_score,
    train_test_split,
)

# Core contribution
from .core import (
    ClassificationWorkflow,
    ExperimentResult,
    ExperimentRunner,
    FuzzyHashClassifier,
    FuzzyHashGridSearch,
    ThresholdRandomForest,
    TwoPhaseSplit,
    run_baseline_comparison,
    two_phase_split,
)

# Public API facade (model artifacts + classification service)
from .api import (
    ClassificationService,
    Decision,
    inspect_model,
    load_model,
    save_model,
)

# Analysis
from .analysis import build_usage_report, confused_pairs, group_importances

# Exceptions
from .exceptions import ReproError

__all__ = [
    "__version__",
    # config
    "ExperimentConfig",
    "ScalePreset",
    "default_config",
    "get_scale_preset",
    # hashing / binfmt / distance substrates
    "FuzzyHasher",
    "SsdeepDigest",
    "compare_digests",
    "crypto_digest",
    "fuzzy_hash",
    "fuzzy_hash_file",
    "ElfReader",
    "ElfWriter",
    "build_executable",
    "extract_strings",
    "strings_output",
    "nm_output",
    "strip_symbols",
    "damerau_levenshtein_distance",
    "osa_distance",
    "levenshtein_distance",
    # corpus
    "ApplicationCatalog",
    "default_catalog",
    "CorpusBuilder",
    "CorpusScanner",
    "CorpusDataset",
    "SampleRecord",
    # features
    "FEATURE_TYPES",
    "FeatureExtractor",
    "FeatureExtractionPipeline",
    "FeatureStore",
    "SampleFeatures",
    "SimilarityFeatureBuilder",
    # similarity index
    "ShardedSimilarityIndex",
    "SimilarityIndex",
    "load_index",
    "IndexMatch",
    "PairScore",
    # ml
    "RandomForestClassifier",
    "DecisionTreeClassifier",
    "KNeighborsClassifier",
    "LinearSVMClassifier",
    "classification_report",
    "f1_score",
    "train_test_split",
    # core
    "FuzzyHashClassifier",
    "ThresholdRandomForest",
    "FuzzyHashGridSearch",
    "ExperimentRunner",
    "ExperimentResult",
    "ClassificationWorkflow",
    "TwoPhaseSplit",
    "two_phase_split",
    "run_baseline_comparison",
    # api facade
    "ClassificationService",
    "Decision",
    "save_model",
    "load_model",
    "inspect_model",
    # analysis
    "group_importances",
    "confused_pairs",
    "build_usage_report",
    # errors
    "ReproError",
]
