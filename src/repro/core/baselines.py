"""Baselines the paper motivates against or proposes as future work.

* :class:`CryptoHashBaseline` — exact cryptographic-hash matching, the
  technique the paper explicitly contrasts with fuzzy hashing
  ("cryptographic hashes can only be used to find exact matches");
* :class:`ExecutableNameBaseline` — label by executable file name, the
  unreliable identifier the introduction warns about (names like
  ``a.out`` can be reused arbitrarily);
* KNN and linear-SVM models over the *same* similarity feature matrix,
  the comparator models named in the paper's future work.

:func:`run_baseline_comparison` evaluates all of them (plus the Fuzzy
Hash Classifier's own Random Forest) under the identical two-phase
split and reports macro/micro/weighted f1 for each.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from ..exceptions import NotFittedError, ValidationError
from ..features.records import SampleFeatures
from ..logging_utils import get_logger
from ..ml.linear import LinearSVMClassifier
from ..ml.metrics import f1_score
from ..ml.neighbors import KNeighborsClassifier
from .classifier import ThresholdRandomForest
from .thresholds import apply_threshold

__all__ = ["BaselineOutcome", "CryptoHashBaseline", "ExecutableNameBaseline",
           "run_baseline_comparison"]

_LOG = get_logger("core.baselines")


@dataclass(frozen=True)
class BaselineOutcome:
    """Scores of one baseline under the shared evaluation protocol."""

    name: str
    macro_f1: float
    micro_f1: float
    weighted_f1: float
    unknown_recall: float

    def as_row(self) -> dict:
        return {
            "baseline": self.name,
            "macro_f1": self.macro_f1,
            "micro_f1": self.micro_f1,
            "weighted_f1": self.weighted_f1,
            "unknown_recall": self.unknown_recall,
        }


class CryptoHashBaseline:
    """Exact-match classification by cryptographic digest.

    A test sample receives the class of a training sample with an
    identical SHA-256 — otherwise it is labelled unknown.  This
    recognises repeated executions of the *same* binary but, as the
    paper argues, cannot bridge version or compiler changes.
    """

    def __init__(self, unknown_label=-1) -> None:
        self.unknown_label = unknown_label

    def fit(self, features: Sequence[SampleFeatures], y: Sequence[str] | None = None
            ) -> "CryptoHashBaseline":
        labels = list(y) if y is not None else [f.class_name for f in features]
        if len(labels) != len(features):
            raise ValidationError("y must align with features")
        self._lookup: dict[str, str] = {}
        for feature, label in zip(features, labels):
            if feature.sha256:
                self._lookup[feature.sha256] = label
        return self

    def predict(self, features: Sequence[SampleFeatures]) -> np.ndarray:
        if not hasattr(self, "_lookup"):
            raise NotFittedError("CryptoHashBaseline is not fitted")
        return np.array(
            [self._lookup.get(f.sha256, self.unknown_label) for f in features],
            dtype=object)


class ExecutableNameBaseline:
    """Classification by executable file name (majority vote per name)."""

    def __init__(self, unknown_label=-1) -> None:
        self.unknown_label = unknown_label

    def fit(self, features: Sequence[SampleFeatures], y: Sequence[str] | None = None
            ) -> "ExecutableNameBaseline":
        labels = list(y) if y is not None else [f.class_name for f in features]
        if len(labels) != len(features):
            raise ValidationError("y must align with features")
        votes: dict[str, Counter] = defaultdict(Counter)
        for feature, label in zip(features, labels):
            votes[feature.executable][label] += 1
        self._lookup = {name: counter.most_common(1)[0][0]
                        for name, counter in votes.items()}
        return self

    def predict(self, features: Sequence[SampleFeatures]) -> np.ndarray:
        if not hasattr(self, "_lookup"):
            raise NotFittedError("ExecutableNameBaseline is not fitted")
        return np.array(
            [self._lookup.get(f.executable, self.unknown_label) for f in features],
            dtype=object)


def _scores(name: str, expected: Sequence, predicted: Sequence,
            unknown_label) -> BaselineOutcome:
    expected = np.asarray(list(expected), dtype=object)
    predicted = np.asarray(list(predicted), dtype=object)
    unknown_mask = expected == unknown_label
    unknown_recall = (float(np.mean(predicted[unknown_mask] == unknown_label))
                      if np.any(unknown_mask) else float("nan"))
    return BaselineOutcome(
        name=name,
        macro_f1=f1_score(expected, predicted, average="macro"),
        micro_f1=f1_score(expected, predicted, average="micro"),
        weighted_f1=f1_score(expected, predicted, average="weighted"),
        unknown_recall=unknown_recall,
    )


def run_baseline_comparison(train_features: Sequence[SampleFeatures],
                            train_labels: Sequence[str],
                            test_features: Sequence[SampleFeatures],
                            expected_test_labels: Sequence,
                            X_train: np.ndarray, X_test: np.ndarray, *,
                            unknown_label=-1,
                            confidence_threshold: float = 0.5,
                            n_estimators: int = 100,
                            random_state=None) -> list[BaselineOutcome]:
    """Evaluate all baselines plus the Random Forest on a shared split.

    ``X_train``/``X_test`` must be the similarity feature matrices the
    Fuzzy Hash Classifier itself uses, so that the model comparison
    isolates the *classifier family* rather than the features.
    """

    outcomes: list[BaselineOutcome] = []
    y_train = np.asarray(list(train_labels), dtype=object)

    crypto = CryptoHashBaseline(unknown_label).fit(train_features, train_labels)
    outcomes.append(_scores("crypto-hash exact match", expected_test_labels,
                            crypto.predict(test_features), unknown_label))

    names = ExecutableNameBaseline(unknown_label).fit(train_features, train_labels)
    outcomes.append(_scores("executable name", expected_test_labels,
                            names.predict(test_features), unknown_label))

    forest = ThresholdRandomForest(
        n_estimators=n_estimators, confidence_threshold=confidence_threshold,
        unknown_label=unknown_label, class_weight="balanced",
        random_state=random_state)
    forest.fit(X_train, y_train)
    outcomes.append(_scores("fuzzy-hash random forest", expected_test_labels,
                            forest.predict(X_test), unknown_label))

    knn = KNeighborsClassifier(n_neighbors=min(5, max(1, len(y_train) // 10)))
    knn.fit(X_train, y_train)
    knn_labels = apply_threshold(knn.predict_proba(X_test), knn.classes_,
                                 confidence_threshold, unknown_label)
    outcomes.append(_scores("fuzzy-hash KNN", expected_test_labels,
                            knn_labels, unknown_label))

    svm = LinearSVMClassifier(max_iter=15, class_weight="balanced",
                              random_state=random_state)
    svm.fit(X_train, y_train)
    svm_labels = apply_threshold(svm.predict_proba(X_test), svm.classes_,
                                 confidence_threshold, unknown_label)
    outcomes.append(_scores("fuzzy-hash linear SVM", expected_test_labels,
                            svm_labels, unknown_label))

    for outcome in outcomes:
        _LOG.info("baseline %-28s macro %.3f micro %.3f weighted %.3f unknown-recall %s",
                  outcome.name, outcome.macro_f1, outcome.micro_f1,
                  outcome.weighted_f1,
                  f"{outcome.unknown_recall:.3f}" if outcome.unknown_recall == outcome.unknown_recall else "n/a")
    return outcomes
