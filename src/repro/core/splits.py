"""The paper's two-phase train/test split.

Section 3, "Fuzzy Hash Classifier":

    "In the first phase we split the application classes in a 80-20
    train-test manner into known and unknown classes to ensure we have
    completely unknown application samples in our test set.  In the
    second phase we further split the known classes through a
    stratified 60-40 train-test split on the samples."

:func:`two_phase_split` implements exactly that.  The class-level split
can either be random (seeded) or pinned to the paper's own unknown
class list (Table 3), which is what the table-reproduction benchmarks
use so that e.g. Schrodinger and OpenMalaria really are the held-out
classes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from .._validation import check_random_state
from ..corpus.catalog import PAPER_UNKNOWN_CLASSES
from ..exceptions import ValidationError

__all__ = ["TwoPhaseSplit", "two_phase_split"]


@dataclass
class TwoPhaseSplit:
    """Result of the two-phase split.

    ``expected_test_labels`` carries the ground truth the classifier is
    scored against: the true class name for known classes and
    ``unknown_label`` for samples of held-out classes.
    """

    known_classes: list[str]
    unknown_classes: list[str]
    train_indices: np.ndarray
    test_indices: np.ndarray
    train_labels: list[str]
    test_labels: list[str]
    expected_test_labels: list
    unknown_label: object = -1

    @property
    def n_train(self) -> int:
        return len(self.train_indices)

    @property
    def n_test(self) -> int:
        return len(self.test_indices)

    @property
    def n_unknown_test(self) -> int:
        return sum(1 for label in self.expected_test_labels
                   if label == self.unknown_label)

    def unknown_class_counts(self) -> dict[str, int]:
        """Samples per held-out class in the test set (Table 3)."""

        counts: dict[str, int] = {}
        for label in self.test_labels:
            if label in self.unknown_classes:
                counts[label] = counts.get(label, 0) + 1
        return dict(sorted(counts.items(), key=lambda kv: (-kv[1], kv[0])))

    def summary(self) -> str:
        return (f"{len(self.known_classes)} known classes / "
                f"{len(self.unknown_classes)} unknown classes; "
                f"train {self.n_train} samples, test {self.n_test} samples "
                f"({self.n_unknown_test} from unknown classes)")


def two_phase_split(labels: Sequence[str], *,
                    unknown_class_fraction: float = 0.20,
                    test_sample_fraction: float = 0.40,
                    unknown_label=-1,
                    mode: str = "random",
                    unknown_classes: Sequence[str] | None = None,
                    random_state=None) -> TwoPhaseSplit:
    """Split sample labels into the paper's train/test structure.

    Parameters
    ----------
    labels:
        Class label of every sample.
    unknown_class_fraction:
        Fraction of classes held out entirely (phase one, default 20 %).
    test_sample_fraction:
        Fraction of each known class's samples placed in the test set
        (phase two, default 40 %).
    unknown_label:
        Label used for held-out classes in ``expected_test_labels``
        (the paper uses ``-1``).
    mode:
        ``"random"`` — draw the unknown classes at random (seeded);
        ``"paper"`` — use the intersection of the paper's Table 3 class
        list with the classes present in ``labels``;
        ``"explicit"`` — use the ``unknown_classes`` argument.
    unknown_classes:
        Explicit unknown class list for ``mode="explicit"``.
    random_state:
        Seed for the random choices.
    """

    labels = list(labels)
    if not labels:
        raise ValidationError("cannot split an empty label list")
    if not (0.0 < unknown_class_fraction < 1.0):
        raise ValidationError("unknown_class_fraction must be in (0, 1)")
    if not (0.0 < test_sample_fraction < 1.0):
        raise ValidationError("test_sample_fraction must be in (0, 1)")

    rng = check_random_state(random_state)
    classes = sorted(set(labels))
    if len(classes) < 2:
        raise ValidationError("need at least 2 classes for a two-phase split")

    if mode == "paper":
        unknown = [c for c in classes if c in set(PAPER_UNKNOWN_CLASSES)]
        if not unknown:
            raise ValidationError(
                "mode='paper' but none of the paper's unknown classes are present")
    elif mode == "explicit":
        if not unknown_classes:
            raise ValidationError("mode='explicit' requires unknown_classes")
        missing = set(unknown_classes) - set(classes)
        if missing:
            raise ValidationError(f"unknown_classes not present in labels: {sorted(missing)}")
        unknown = sorted(unknown_classes)
    elif mode == "random":
        n_unknown = max(1, int(round(len(classes) * unknown_class_fraction)))
        n_unknown = min(n_unknown, len(classes) - 1)
        unknown = sorted(rng.choice(classes, size=n_unknown, replace=False).tolist())
    else:
        raise ValidationError(f"mode must be 'random', 'paper' or 'explicit', got {mode!r}")

    known = [c for c in classes if c not in set(unknown)]
    if not known:
        raise ValidationError("the unknown split left no known classes")

    labels_arr = np.asarray(labels, dtype=object)
    train_indices: list[int] = []
    test_indices: list[int] = []

    # Phase two: stratified sample split of the known classes.
    for class_name in known:
        indices = np.flatnonzero(labels_arr == class_name)
        rng.shuffle(indices)
        n_test = int(round(len(indices) * test_sample_fraction))
        if len(indices) >= 2:
            n_test = min(max(n_test, 1), len(indices) - 1)
        test_indices.extend(indices[:n_test].tolist())
        train_indices.extend(indices[n_test:].tolist())

    # Unknown classes contribute all of their samples to the test set.
    for class_name in unknown:
        indices = np.flatnonzero(labels_arr == class_name)
        test_indices.extend(indices.tolist())

    train_indices_arr = np.array(sorted(train_indices), dtype=np.int64)
    test_indices_arr = np.array(sorted(test_indices), dtype=np.int64)

    train_labels = [labels[i] for i in train_indices_arr]
    test_labels = [labels[i] for i in test_indices_arr]
    unknown_set = set(unknown)
    expected = [unknown_label if label in unknown_set else label
                for label in test_labels]

    return TwoPhaseSplit(
        known_classes=known,
        unknown_classes=unknown,
        train_indices=train_indices_arr,
        test_indices=test_indices_arr,
        train_labels=train_labels,
        test_labels=test_labels,
        expected_test_labels=expected,
        unknown_label=unknown_label,
    )
