"""End-to-end experiment runner.

:class:`ExperimentRunner` reproduces the paper's full pipeline:

1. generate (or scan) the application corpus,
2. extract the three fuzzy-hash features per sample,
3. two-phase train/test split (known/unknown classes, stratified
   samples),
4. build the similarity feature matrices (training samples as anchors),
5. grid-search the Random-Forest hyper-parameters and the confidence
   threshold within the training set,
6. fit the final model, classify the test set,
7. produce the classification report (Table 4), the per-hash-type
   feature importances (Table 5), the threshold sweep (Figure 3) and
   the unknown-class composition (Table 3).

Every benchmark and most examples are thin wrappers over this runner.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..analysis.importance import group_importances
from ..config import ExperimentConfig, default_config
from ..corpus.builder import CorpusBuilder, GeneratedSample
from ..corpus.catalog import ApplicationCatalog
from ..corpus.dataset import CorpusDataset
from ..corpus.scanner import CorpusScanner
from ..exceptions import EvaluationError
from ..features.pipeline import FeatureExtractionPipeline
from ..features.records import SampleFeatures
from ..features.similarity import SimilarityFeatureBuilder
from ..logging_utils import get_logger
from ..ml.metrics import ClassificationReport, classification_report, confusion_matrix
from ..parallel.timing import Stopwatch
from .classifier import ThresholdRandomForest
from .gridsearch import FuzzyHashGridSearch, GridSearchOutcome, default_param_grid
from .splits import TwoPhaseSplit, two_phase_split
from .thresholds import ThresholdSweep

__all__ = ["ExperimentResult", "ExperimentRunner"]

_LOG = get_logger("core.evaluation")


@dataclass
class ExperimentResult:
    """Everything one end-to-end run produces."""

    config: ExperimentConfig
    split: TwoPhaseSplit
    report: ClassificationReport
    grouped_importance: dict[str, float]
    grid_outcome: GridSearchOutcome | None
    threshold_sweep: ThresholdSweep | None
    best_threshold: float
    predictions: list
    expected: list
    test_sample_ids: list[str]
    timings: dict[str, float] = field(default_factory=dict)
    n_features: int = 0

    @property
    def macro_f1(self) -> float:
        return self.report.macro_f1

    @property
    def micro_f1(self) -> float:
        return self.report.micro_f1

    @property
    def weighted_f1(self) -> float:
        return self.report.weighted_f1

    def confusion(self) -> np.ndarray:
        return confusion_matrix(self.expected, self.predictions)

    def summary(self) -> str:
        return (f"macro f1 {self.macro_f1:.3f}, micro f1 {self.micro_f1:.3f}, "
                f"weighted f1 {self.weighted_f1:.3f} on {len(self.expected)} "
                f"test samples ({self.split.n_unknown_test} unknown-class); "
                f"threshold {self.best_threshold:.2f}; "
                f"feature importance {self.grouped_importance}")


class ExperimentRunner:
    """Drives the full pipeline for one configuration.

    Parameters
    ----------
    config:
        Experiment configuration (scale preset, seed, split fractions,
        anchor strategy, feature types...).
    split_mode:
        ``"paper"`` holds out exactly the paper's Table 3 classes (when
        present); ``"random"`` draws the unknown classes at random.
    catalog:
        Optional custom application catalogue.
    use_disk:
        Materialise the corpus on disk and run the scanner (slower but
        exercises the full collection path); otherwise samples are
        generated in memory.
    workdir:
        Directory for the on-disk corpus when ``use_disk`` is set.
    run_grid_search:
        Tune hyper-parameters/threshold (otherwise defaults plus
        ``config.confidence_threshold`` are used).
    """

    def __init__(self, config: ExperimentConfig | None = None, *,
                 split_mode: str = "paper",
                 catalog: ApplicationCatalog | None = None,
                 use_disk: bool = False,
                 workdir: str | os.PathLike | None = None,
                 run_grid_search: bool = True) -> None:
        self.config = (config or default_config()).validate()
        self.split_mode = split_mode
        self.catalog = catalog
        self.use_disk = bool(use_disk)
        self.workdir = workdir
        self.run_grid_search = bool(run_grid_search)
        if self.use_disk and self.workdir is None:
            raise EvaluationError("use_disk=True requires a workdir")

    # ----------------------------------------------------------------- API
    def build_corpus(self) -> tuple[list[GeneratedSample] | CorpusDataset, list[str]]:
        """Generate the corpus; returns ``(samples_or_dataset, labels)``."""

        builder = CorpusBuilder(catalog=self.catalog, config=self.config)
        if self.use_disk:
            dataset = builder.materialize_tree(self.workdir)
            scan = CorpusScanner(self.workdir).scan()
            return scan.dataset, scan.dataset.labels
        samples = builder.build_samples()
        return samples, [s.class_name for s in samples]

    def extract_features(self, corpus) -> list[SampleFeatures]:
        """Extract fuzzy-hash features from the generated corpus."""

        pipeline = FeatureExtractionPipeline(self.config.feature_types,
                                             n_jobs=self.config.n_jobs)
        if isinstance(corpus, CorpusDataset):
            return pipeline.extract_dataset(corpus)
        return pipeline.extract_generated(corpus)

    def run(self) -> ExperimentResult:
        """Execute the whole experiment and return its results."""

        watch = Stopwatch()
        watch.start("corpus")
        corpus, labels = self.build_corpus()
        watch.start("features")
        features = self.extract_features(corpus)
        watch.start("split")
        split = two_phase_split(
            labels,
            unknown_class_fraction=self.config.unknown_class_fraction,
            test_sample_fraction=self.config.test_sample_fraction,
            unknown_label=self.config.unknown_label,
            mode=self.split_mode,
            random_state=self.config.seed,
        )
        train_features = [features[i] for i in split.train_indices]
        test_features = [features[i] for i in split.test_indices]

        watch.start("similarity")
        builder = SimilarityFeatureBuilder(
            self.config.feature_types,
            anchor_strategy=self.config.anchor_strategy,
        )
        train_matrix = builder.fit_transform(train_features, exclude_self=True)
        test_matrix = builder.transform(test_features)
        y_train = np.asarray(split.train_labels, dtype=object)

        grid_outcome: GridSearchOutcome | None = None
        sweep: ThresholdSweep | None = None
        watch.start("grid-search")
        if self.run_grid_search:
            grid = FuzzyHashGridSearch(
                param_grid=default_param_grid(
                    budget=self.config.scale.grid_search_budget,
                    n_estimators=self.config.scale.n_estimators),
                unknown_label=self.config.unknown_label,
                random_state=self.config.seed,
                n_jobs=self.config.n_jobs,
            )
            grid_outcome = grid.search(train_matrix.X, y_train)
            sweep = grid_outcome.threshold_sweep
            best_params = grid_outcome.best_params
            best_threshold = (self.config.confidence_threshold
                              if self.config.confidence_threshold is not None
                              else grid_outcome.best_threshold)
        else:
            best_params = default_param_grid(
                budget=1, n_estimators=self.config.scale.n_estimators)[0]
            best_threshold = (self.config.confidence_threshold
                              if self.config.confidence_threshold is not None
                              else 0.5)

        watch.start("final-fit")
        model = ThresholdRandomForest(
            confidence_threshold=best_threshold,
            unknown_label=self.config.unknown_label,
            random_state=self.config.seed,
            n_jobs=self.config.n_jobs,
            class_weight="balanced",
            **best_params,
        )
        model.fit(train_matrix.X, y_train)

        watch.start("predict")
        predictions = model.predict(test_matrix.X).tolist()
        expected = list(split.expected_test_labels)

        watch.start("report")
        report = classification_report(expected, predictions)
        grouped = group_importances(model.feature_importances_,
                                    train_matrix.feature_groups)
        watch.stop()

        result = ExperimentResult(
            config=self.config,
            split=split,
            report=report,
            grouped_importance=grouped,
            grid_outcome=grid_outcome,
            threshold_sweep=sweep,
            best_threshold=best_threshold,
            predictions=predictions,
            expected=expected,
            test_sample_ids=[f.sample_id for f in test_features],
            timings=watch.laps,
            n_features=train_matrix.n_features,
        )
        _LOG.info("experiment finished: %s", result.summary())
        return result
