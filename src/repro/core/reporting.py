"""Text renderings of the paper's tables and figure data.

Every benchmark prints its table/figure through one of these helpers so
that the output of ``pytest benchmarks/`` can be compared side by side
with the paper (EXPERIMENTS.md records that comparison).
"""

from __future__ import annotations

from typing import Mapping, Sequence

from ..corpus.dataset import CorpusDataset
from ..hashing.compare import compare_digests
from ..ml.metrics import ClassificationReport
from .splits import TwoPhaseSplit
from .thresholds import ThresholdSweep

__all__ = [
    "render_table",
    "class_size_table",
    "velvet_style_table",
    "hash_similarity_example",
    "unknown_class_table",
    "feature_importance_table",
    "threshold_sweep_table",
    "classification_report_table",
]


def render_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 title: str = "") -> str:
    """Render a simple fixed-width text table."""

    columns = [[str(h)] + [str(row[i]) for row in rows] for i, h in enumerate(headers)]
    widths = [max(len(cell) for cell in column) for column in columns]
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(str(cell).ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def class_size_table(dataset_or_counts, top: int | None = None) -> str:
    """Samples per application class (the data behind Figure 2)."""

    if isinstance(dataset_or_counts, CorpusDataset):
        counts = dataset_or_counts.class_counts()
    else:
        counts = dict(dataset_or_counts)
        counts = dict(sorted(counts.items(), key=lambda kv: (-kv[1], kv[0])))
    items = list(counts.items())
    if top is not None:
        items = items[:top]
    rows = [(name, count) for name, count in items]
    return render_table(["Application Class", "Samples"], rows,
                        title="Figure 2 data: number of samples per application class")


def velvet_style_table(dataset: CorpusDataset, class_name: str = "Velvet") -> str:
    """Versions and executables of one class (paper Table 1)."""

    subset = dataset.filter(lambda r: r.class_name == class_name)
    by_version: dict[str, list[str]] = {}
    for record in subset:
        by_version.setdefault(record.version, []).append(record.executable)
    rows = [(class_name if i == 0 else "", version, ", ".join(sorted(execs)))
            for i, (version, execs) in enumerate(sorted(by_version.items()))]
    return render_table(["Class", "Application Version", "Samples"], rows,
                        title=f"Table 1 style: versions and executables for {class_name}")


def hash_similarity_example(class_name: str, entries: Sequence[tuple[str, str]]) -> str:
    """Digest comparison of two versions of one class (paper Table 2).

    ``entries`` is a list of ``(version, digest)`` pairs; all pairwise
    SSDeep similarities are reported.
    """

    rows = []
    for version, digest in entries:
        shown = digest if len(digest) <= 70 else digest[:67] + "..."
        rows.append((class_name, version, shown))
    table = render_table(["Class", "Version", "Fuzzy Hash of Symbols"], rows,
                         title=f"Table 2 style: fuzzy hashes for {class_name}")
    scores = []
    for i in range(len(entries)):
        for j in range(i + 1, len(entries)):
            score = compare_digests(entries[i][1], entries[j][1])
            scores.append(f"similarity({entries[i][0]} vs {entries[j][0]}) = {score}")
    return table + "\n" + "\n".join(scores)


def unknown_class_table(split: TwoPhaseSplit) -> str:
    """Composition of the unknown class (paper Table 3)."""

    counts = split.unknown_class_counts()
    rows = list(counts.items()) + [("total", sum(counts.values()))]
    return render_table(["Application Class", "Sample Count"], rows,
                        title="Table 3 style: class of unknown samples")


def feature_importance_table(grouped: Mapping[str, float]) -> str:
    """Normalised per-hash-type feature importance (paper Table 5)."""

    rows = [(name, f"{value:.4f}") for name, value in grouped.items()]
    return render_table(["Features", "Importance"], rows,
                        title="Table 5 style: feature importance (normalized)")


def threshold_sweep_table(sweep: ThresholdSweep) -> str:
    """f1 score vs confidence threshold (paper Figure 3)."""

    rows = [(f"{p.threshold:.2f}", f"{p.micro_f1:.3f}", f"{p.macro_f1:.3f}",
             f"{p.weighted_f1:.3f}") for p in sweep.points]
    return render_table(["threshold", "micro f1", "macro f1", "weighted f1"], rows,
                        title="Figure 3 data: f1-score over confidence threshold "
                              "(grid search within the training set)")


def classification_report_table(report: ClassificationReport) -> str:
    """The classification report (paper Table 4)."""

    return "Table 4 style: classification report\n" + report.as_text()
