"""Joint Random-Forest / confidence-threshold grid search.

The paper tunes "standard parameters of the Random Forest Classifier
(such as n_estimators, criterion, max_depth, min_samples_split,
min_samples_leaf, and max_features)" *and* the confidence threshold,
using grid search "only within the training set" (Sections 3 and 4).

Tuning the threshold requires unknown-class behaviour inside the
training set, which the training set by construction does not contain.
The search therefore uses *class-holdout cross-validation*: in every
fold a fraction of the known classes is treated as unknown — their
fold-validation samples are relabelled ``-1`` and their samples are
removed from the fold's training portion — mirroring at small scale
exactly what the outer two-phase split does to the final test set.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Mapping, Sequence

import numpy as np

from .._validation import check_random_state
from ..exceptions import ValidationError
from ..logging_utils import get_logger
from ..parallel import parallel_map
from .classifier import ThresholdRandomForest
from .thresholds import (
    DEFAULT_THRESHOLD_GRID,
    ThresholdPoint,
    ThresholdSweep,
    sweep_thresholds,
)

__all__ = ["default_param_grid", "GridSearchOutcome", "FuzzyHashGridSearch"]

_LOG = get_logger("core.gridsearch")


def default_param_grid(budget: int = 8, n_estimators: int = 100) -> list[dict]:
    """A Random-Forest parameter grid trimmed to roughly ``budget`` combos.

    The full grid covers the hyper-parameters named in the paper; the
    scale presets trim it so that small machines still finish the
    benchmark in reasonable time.
    """

    full: list[dict] = [
        {"n_estimators": n_estimators, "criterion": "gini", "max_depth": None,
         "min_samples_split": 2, "min_samples_leaf": 1, "max_features": "sqrt"},
        {"n_estimators": n_estimators, "criterion": "gini", "max_depth": None,
         "min_samples_split": 4, "min_samples_leaf": 2, "max_features": "sqrt"},
        {"n_estimators": n_estimators, "criterion": "entropy", "max_depth": None,
         "min_samples_split": 2, "min_samples_leaf": 1, "max_features": "sqrt"},
        {"n_estimators": n_estimators, "criterion": "gini", "max_depth": 20,
         "min_samples_split": 2, "min_samples_leaf": 1, "max_features": "sqrt"},
        {"n_estimators": n_estimators, "criterion": "gini", "max_depth": None,
         "min_samples_split": 2, "min_samples_leaf": 1, "max_features": "log2"},
        {"n_estimators": n_estimators, "criterion": "entropy", "max_depth": 20,
         "min_samples_split": 4, "min_samples_leaf": 1, "max_features": "sqrt"},
        {"n_estimators": n_estimators, "criterion": "gini", "max_depth": 30,
         "min_samples_split": 2, "min_samples_leaf": 1, "max_features": 0.3},
        {"n_estimators": n_estimators // 2 or 1, "criterion": "gini", "max_depth": None,
         "min_samples_split": 2, "min_samples_leaf": 1, "max_features": "sqrt"},
        {"n_estimators": n_estimators * 2, "criterion": "gini", "max_depth": None,
         "min_samples_split": 2, "min_samples_leaf": 1, "max_features": "sqrt"},
        {"n_estimators": n_estimators, "criterion": "entropy", "max_depth": None,
         "min_samples_split": 2, "min_samples_leaf": 2, "max_features": "log2"},
        {"n_estimators": n_estimators, "criterion": "gini", "max_depth": 10,
         "min_samples_split": 2, "min_samples_leaf": 1, "max_features": "sqrt"},
        {"n_estimators": n_estimators, "criterion": "gini", "max_depth": None,
         "min_samples_split": 8, "min_samples_leaf": 4, "max_features": "sqrt"},
    ]
    if budget < 1:
        raise ValidationError("budget must be >= 1")
    return full[:budget]


@dataclass
class GridSearchOutcome:
    """Result of the joint parameter/threshold search."""

    best_params: dict
    best_threshold: float
    best_combined_f1: float
    threshold_sweep: ThresholdSweep
    candidate_scores: list[dict] = field(default_factory=list)

    def summary(self) -> str:
        return (f"best params {self.best_params} at threshold "
                f"{self.best_threshold:.2f} (combined f1 {self.best_combined_f1:.3f})")


def class_holdout_folds(y: Sequence[str], *, n_splits: int = 3,
                        holdout_class_fraction: float = 0.2,
                        validation_fraction: float = 0.4,
                        random_state=None
                        ) -> Iterator[tuple[np.ndarray, np.ndarray, np.ndarray]]:
    """Yield ``(train_idx, val_idx, val_expected_labels)`` folds.

    Each fold simulates the outer evaluation protocol inside the
    training data: a random subset of classes is treated as unknown
    (all their samples go to validation with expected label ``-1``) and
    the remaining classes are split stratified into fold-train and
    fold-validation.
    """

    y = np.asarray(list(y), dtype=object)
    classes = sorted(set(y.tolist()))
    if len(classes) < 3:
        raise ValidationError("class-holdout CV needs at least 3 classes")
    rng = check_random_state(random_state)

    for fold in range(n_splits):
        n_holdout = max(1, int(round(len(classes) * holdout_class_fraction)))
        n_holdout = min(n_holdout, len(classes) - 2)
        holdout = set(rng.choice(classes, size=n_holdout, replace=False).tolist())

        train_idx: list[int] = []
        val_idx: list[int] = []
        for class_name in classes:
            indices = np.flatnonzero(y == class_name)
            if class_name in holdout:
                val_idx.extend(indices.tolist())
                continue
            rng.shuffle(indices)
            n_val = int(round(len(indices) * validation_fraction))
            if len(indices) >= 2:
                n_val = min(max(n_val, 1), len(indices) - 1)
            val_idx.extend(indices[:n_val].tolist())
            train_idx.extend(indices[n_val:].tolist())

        train_arr = np.array(sorted(train_idx), dtype=np.int64)
        val_arr = np.array(sorted(val_idx), dtype=np.int64)
        expected = np.array(
            [-1 if label in holdout else label for label in y[val_arr]], dtype=object)
        yield train_arr, val_arr, expected


def _evaluate_params(args) -> dict:
    """Evaluate one parameter combination over all folds (picklable)."""

    (params, X, y, folds, thresholds, unknown_label, random_state) = args
    per_threshold = np.zeros((len(thresholds), 3), dtype=np.float64)
    for train_idx, val_idx, expected in folds:
        model = ThresholdRandomForest(random_state=random_state, **params)
        model.fit(X[train_idx], y[train_idx])
        proba = model.predict_proba(X[val_idx])
        sweep = sweep_thresholds(proba, model.classes_, expected,
                                 thresholds=thresholds,
                                 unknown_label=unknown_label)
        per_threshold += np.array(
            [[p.micro_f1, p.macro_f1, p.weighted_f1] for p in sweep.points])
    per_threshold /= max(len(folds), 1)
    points = [
        ThresholdPoint(threshold=float(t), micro_f1=float(row[0]),
                       macro_f1=float(row[1]), weighted_f1=float(row[2]))
        for t, row in zip(thresholds, per_threshold)
    ]
    sweep = ThresholdSweep(points=points)
    best = sweep.best()
    return {
        "params": params,
        "sweep": sweep,
        "best_threshold": best.threshold,
        "best_combined": best.combined,
    }


class FuzzyHashGridSearch:
    """Joint grid search over forest hyper-parameters and threshold.

    Parameters
    ----------
    param_grid:
        List of Random-Forest parameter dicts
        (:func:`default_param_grid` provides the default).
    thresholds:
        Confidence thresholds to sweep.
    n_splits:
        Class-holdout CV folds.
    holdout_class_fraction:
        Fraction of classes treated as unknown per fold (mirrors the
        outer 80/20 class split).
    n_jobs:
        Parameter combinations evaluated in parallel processes.
    """

    def __init__(self, param_grid: Sequence[Mapping] | None = None, *,
                 thresholds: Sequence[float] = DEFAULT_THRESHOLD_GRID,
                 n_splits: int = 3, holdout_class_fraction: float = 0.2,
                 validation_fraction: float = 0.4, unknown_label=-1,
                 random_state=None, n_jobs: int = 1) -> None:
        self.param_grid = [dict(p) for p in (param_grid or default_param_grid())]
        self.thresholds = tuple(float(t) for t in thresholds)
        self.n_splits = int(n_splits)
        self.holdout_class_fraction = float(holdout_class_fraction)
        self.validation_fraction = float(validation_fraction)
        self.unknown_label = unknown_label
        self.random_state = random_state
        self.n_jobs = n_jobs

    def search(self, X, y) -> GridSearchOutcome:
        """Run the search on the training matrix and labels."""

        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(list(y), dtype=object)
        folds = list(class_holdout_folds(
            y, n_splits=self.n_splits,
            holdout_class_fraction=self.holdout_class_fraction,
            validation_fraction=self.validation_fraction,
            random_state=self.random_state))

        seed = None if self.random_state is None else int(
            check_random_state(self.random_state).integers(0, 2**31 - 1))
        tasks = [(params, X, y, folds, self.thresholds, self.unknown_label, seed)
                 for params in self.param_grid]
        if self.n_jobs and self.n_jobs != 1 and len(tasks) > 1:
            results = parallel_map(_evaluate_params, tasks, n_jobs=self.n_jobs,
                                   chunksize=1, min_items_per_worker=1)
        else:
            results = [_evaluate_params(task) for task in tasks]

        results.sort(key=lambda r: r["best_combined"], reverse=True)
        best = results[0]
        _LOG.info("grid search best: %s (threshold %.2f, combined %.3f)",
                  best["params"], best["best_threshold"], best["best_combined"])
        return GridSearchOutcome(
            best_params=best["params"],
            best_threshold=best["best_threshold"],
            best_combined_f1=best["best_combined"],
            threshold_sweep=best["sweep"],
            candidate_scores=[
                {"params": r["params"], "best_threshold": r["best_threshold"],
                 "best_combined": r["best_combined"]}
                for r in results
            ],
        )
