"""The paper's contribution: the Fuzzy Hash Classifier and its evaluation.

* :mod:`repro.core.splits` — the two-phase train/test split (80/20
  class-level known/unknown split, then stratified 60/40 sample split),
* :mod:`repro.core.classifier` — :class:`ThresholdRandomForest` (Random
  Forest + confidence threshold + "-1" unknown label) and
  :class:`FuzzyHashClassifier` (the end-to-end model operating on
  fuzzy-hash feature records),
* :mod:`repro.core.thresholds` — confidence-threshold sweeps (Figure 3),
* :mod:`repro.core.gridsearch` — the joint Random-Forest/threshold grid
  search performed within the training set,
* :mod:`repro.core.evaluation` — the experiment runner that regenerates
  the paper's tables and figures end to end,
* :mod:`repro.core.baselines` — cryptographic-hash, executable-name,
  KNN and linear-SVM baselines,
* :mod:`repro.core.workflow` — the envisioned production workflow
  (Figure 1): collect → hash → classify → decide,
* :mod:`repro.core.reporting` — text renderings of the paper's tables.
"""

from .splits import TwoPhaseSplit, two_phase_split
from .classifier import FuzzyHashClassifier, ThresholdRandomForest
from .thresholds import ThresholdSweep, sweep_thresholds, select_best_threshold
from .gridsearch import FuzzyHashGridSearch, GridSearchOutcome, default_param_grid
from .evaluation import ExperimentResult, ExperimentRunner
from .baselines import (
    BaselineOutcome,
    CryptoHashBaseline,
    ExecutableNameBaseline,
    run_baseline_comparison,
)
from .workflow import ClassificationWorkflow, JobClassification

__all__ = [
    "TwoPhaseSplit",
    "two_phase_split",
    "FuzzyHashClassifier",
    "ThresholdRandomForest",
    "ThresholdSweep",
    "sweep_thresholds",
    "select_best_threshold",
    "FuzzyHashGridSearch",
    "GridSearchOutcome",
    "default_param_grid",
    "ExperimentResult",
    "ExperimentRunner",
    "BaselineOutcome",
    "CryptoHashBaseline",
    "ExecutableNameBaseline",
    "run_baseline_comparison",
    "ClassificationWorkflow",
    "JobClassification",
]
