"""Confidence-threshold sweeps (the data behind Figure 3).

The confidence threshold decides when the classifier abstains and
labels a sample ``-1`` (unknown).  The paper sweeps the threshold
during the grid search *within the training set* and reports micro,
macro and weighted f1 per threshold (Figure 3), choosing the threshold
"that maximizes the combined micro, macro, and weighted f1-scores".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..exceptions import ValidationError
from ..ml.metrics import f1_score

__all__ = ["ThresholdPoint", "ThresholdSweep", "sweep_thresholds",
           "select_best_threshold", "DEFAULT_THRESHOLD_GRID"]

#: Threshold grid used by the default grid search (matches the 0–0.9
#: range visible in the paper's Figure 3).
DEFAULT_THRESHOLD_GRID: tuple[float, ...] = tuple(np.round(np.arange(0.0, 0.95, 0.05), 2))


@dataclass(frozen=True)
class ThresholdPoint:
    """Scores obtained at one confidence threshold."""

    threshold: float
    micro_f1: float
    macro_f1: float
    weighted_f1: float

    @property
    def combined(self) -> float:
        """The selection criterion: sum of the three f1 averages."""

        return self.micro_f1 + self.macro_f1 + self.weighted_f1


@dataclass
class ThresholdSweep:
    """A full sweep over thresholds (one Figure 3 curve set)."""

    points: list[ThresholdPoint] = field(default_factory=list)

    def best(self) -> ThresholdPoint:
        if not self.points:
            raise ValidationError("threshold sweep is empty")
        return max(self.points, key=lambda p: p.combined)

    def as_rows(self) -> list[dict]:
        return [
            {"threshold": p.threshold, "micro_f1": p.micro_f1,
             "macro_f1": p.macro_f1, "weighted_f1": p.weighted_f1}
            for p in self.points
        ]

    def as_text(self) -> str:
        lines = [f"{'threshold':>9}  {'micro-f1':>8}  {'macro-f1':>8}  {'weighted-f1':>11}"]
        for p in self.points:
            lines.append(f"{p.threshold:>9.2f}  {p.micro_f1:>8.3f}  "
                         f"{p.macro_f1:>8.3f}  {p.weighted_f1:>11.3f}")
        return "\n".join(lines)


def apply_threshold(proba: np.ndarray, classes: np.ndarray, threshold: float,
                    unknown_label=-1) -> np.ndarray:
    """Turn class probabilities into labels with unknown rejection."""

    proba = np.asarray(proba, dtype=np.float64)
    if proba.ndim != 2 or proba.shape[1] != len(classes):
        raise ValidationError("proba must be (n_samples, n_classes)")
    best = np.argmax(proba, axis=1)
    confidence = proba[np.arange(len(best)), best]
    labels = np.asarray(classes, dtype=object)[best]
    labels = labels.astype(object)
    labels[confidence < threshold] = unknown_label
    return labels


def sweep_thresholds(proba: np.ndarray, classes: np.ndarray, y_true: Sequence,
                     thresholds: Sequence[float] = DEFAULT_THRESHOLD_GRID,
                     unknown_label=-1) -> ThresholdSweep:
    """Evaluate micro/macro/weighted f1 at every threshold.

    ``y_true`` must already use ``unknown_label`` for samples whose true
    class is not among ``classes`` (i.e. simulated or real unknowns).
    """

    if len(proba) != len(y_true):
        raise ValidationError("proba and y_true must have the same length")
    y_true = np.asarray(list(y_true), dtype=object)
    sweep = ThresholdSweep()
    for threshold in thresholds:
        predicted = apply_threshold(proba, classes, float(threshold), unknown_label)
        sweep.points.append(ThresholdPoint(
            threshold=float(threshold),
            micro_f1=f1_score(y_true, predicted, average="micro"),
            macro_f1=f1_score(y_true, predicted, average="macro"),
            weighted_f1=f1_score(y_true, predicted, average="weighted"),
        ))
    return sweep


def select_best_threshold(sweep: ThresholdSweep) -> float:
    """The threshold maximising the combined micro+macro+weighted f1."""

    return sweep.best().threshold
