"""The Fuzzy Hash Classifier.

Two layers are provided:

* :class:`ThresholdRandomForest` — a Random Forest over an already-built
  similarity feature matrix whose predictions fall back to the ``-1``
  "unknown" label whenever the forest's highest class probability is
  below a confidence threshold.  This is the estimator the grid search
  tunes (both the forest hyper-parameters and the threshold).
* :class:`FuzzyHashClassifier` — the user-facing model of the paper: it
  is fitted on :class:`~repro.features.records.SampleFeatures` records
  (digests + labels), builds the similarity feature matrix internally
  (training samples are the anchors) and classifies new feature records
  into application classes or "unknown".
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .._validation import check_array_2d, check_probability
from ..exceptions import NotFittedError, ValidationError
from ..features.extractors import FEATURE_TYPES
from ..features.records import SampleFeatures
from ..features.similarity import SimilarityFeatureBuilder, SimilarityMatrix
from ..ml.base import BaseEstimator, ClassifierMixin, check_is_fitted
from ..ml.forest import RandomForestClassifier

__all__ = ["ThresholdRandomForest", "FuzzyHashClassifier"]


class ThresholdRandomForest(BaseEstimator, ClassifierMixin):
    """Random Forest with an "unknown" rejection threshold.

    Parameters mirror the forest's, plus:

    confidence_threshold:
        If the maximum class probability of a sample is *below* this
        value, the sample is labelled ``unknown_label`` instead of the
        most probable class ("Samples not similar to any other known
        samples are labeled as unknown", Section 3).
    unknown_label:
        The label emitted for rejected samples (the paper uses ``-1``).
    """

    def __init__(self, n_estimators: int = 100, *, criterion: str = "gini",
                 max_depth: int | None = None, min_samples_split: int = 2,
                 min_samples_leaf: int = 1, max_features="sqrt",
                 class_weight="balanced", confidence_threshold: float = 0.5,
                 unknown_label=-1, random_state=None, n_jobs: int = 1) -> None:
        self.n_estimators = n_estimators
        self.criterion = criterion
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.class_weight = class_weight
        self.confidence_threshold = confidence_threshold
        self.unknown_label = unknown_label
        self.random_state = random_state
        self.n_jobs = n_jobs

    # ------------------------------------------------------------------ fit
    def fit(self, X, y) -> "ThresholdRandomForest":
        check_probability(self.confidence_threshold, "confidence_threshold")
        self.forest_ = RandomForestClassifier(
            n_estimators=self.n_estimators,
            criterion=self.criterion,
            max_depth=self.max_depth,
            min_samples_split=self.min_samples_split,
            min_samples_leaf=self.min_samples_leaf,
            max_features=self.max_features,
            class_weight=self.class_weight,
            random_state=self.random_state,
            n_jobs=self.n_jobs,
        )
        self.forest_.fit(X, y)
        self.classes_ = self.forest_.classes_
        self.feature_importances_ = self.forest_.feature_importances_
        self.n_features_in_ = self.forest_.n_features_in_
        return self

    # ------------------------------------------------------------- predict
    def predict_proba(self, X) -> np.ndarray:
        check_is_fitted(self, "forest_")
        return self.forest_.predict_proba(X)

    def predict(self, X, confidence_threshold: float | None = None) -> np.ndarray:
        """Predict class labels, rejecting low-confidence samples.

        ``confidence_threshold`` overrides the fitted threshold without
        refitting (used by the threshold sweep of Figure 3).
        """

        check_is_fitted(self, "forest_")
        threshold = self.confidence_threshold if confidence_threshold is None \
            else check_probability(confidence_threshold, "confidence_threshold")
        proba = self.predict_proba(X)
        best = np.argmax(proba, axis=1)
        confidence = proba[np.arange(len(best)), best]
        labels = self.classes_[best].astype(object)
        labels[confidence < threshold] = self.unknown_label
        return labels

    def predict_known(self, X) -> np.ndarray:
        """Predict without the unknown rejection (pure forest argmax)."""

        check_is_fitted(self, "forest_")
        return self.forest_.predict(X)

    def confidence(self, X) -> np.ndarray:
        """The maximum class probability per sample."""

        proba = self.predict_proba(X)
        return proba.max(axis=1)


class FuzzyHashClassifier(BaseEstimator, ClassifierMixin):
    """End-to-end Fuzzy Hash Classifier over feature records.

    ``fit`` takes the training samples' :class:`SampleFeatures` (their
    ``class_name`` is the label unless ``y`` is passed explicitly),
    builds the similarity feature matrix with the training samples as
    anchors, and fits the thresholded Random Forest.  ``predict``
    accepts new feature records and returns class names or the unknown
    label.

    Parameters
    ----------
    feature_types:
        Fuzzy-hash types used as features.
    anchor_strategy, medoids_per_class:
        Passed to :class:`~repro.features.similarity.SimilarityFeatureBuilder`.
    n_estimators, criterion, max_depth, min_samples_split,
    min_samples_leaf, max_features, class_weight, random_state, n_jobs:
        Random-Forest hyper-parameters (class weights default to
        ``"balanced"`` as in the paper).
    confidence_threshold:
        Rejection threshold for the unknown label.
    unknown_label:
        Label for unknown samples (default ``-1``).
    """

    def __init__(self, *, feature_types: Sequence[str] = FEATURE_TYPES,
                 anchor_strategy: str = "class-max", medoids_per_class: int = 5,
                 n_estimators: int = 100, criterion: str = "gini",
                 max_depth: int | None = None, min_samples_split: int = 2,
                 min_samples_leaf: int = 1, max_features="sqrt",
                 class_weight="balanced", confidence_threshold: float = 0.5,
                 unknown_label=-1, random_state=None, n_jobs: int = 1) -> None:
        self.feature_types = tuple(feature_types)
        self.anchor_strategy = anchor_strategy
        self.medoids_per_class = medoids_per_class
        self.n_estimators = n_estimators
        self.criterion = criterion
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.class_weight = class_weight
        self.confidence_threshold = confidence_threshold
        self.unknown_label = unknown_label
        self.random_state = random_state
        self.n_jobs = n_jobs

    # ------------------------------------------------------------------ fit
    def fit(self, features: Sequence[SampleFeatures], y=None, *,
            index=None) -> "FuzzyHashClassifier":
        """Fit on feature records; optionally reuse a prebuilt anchor index.

        ``index`` is a :class:`~repro.index.SimilarityIndex` previously
        built over (a superset of) the training corpus — typically
        ``SimilarityIndex.load(path)`` from a persisted workflow.  When
        given, the anchors come from the index instead of being
        re-indexed from ``features``; the records still provide the
        training rows and labels.
        """

        features = list(features)
        if not features:
            raise ValidationError("cannot fit on an empty feature list")
        labels = list(y) if y is not None else [f.class_name for f in features]
        if len(labels) != len(features):
            raise ValidationError("y must have the same length as features")
        if any(label in ("", None) for label in labels):
            raise ValidationError("every training sample needs a class label")

        self.builder_ = SimilarityFeatureBuilder(
            self.feature_types,
            anchor_strategy=self.anchor_strategy,
            medoids_per_class=self.medoids_per_class,
        )
        if index is not None:
            self.builder_.fit_from_index(index)
            uncovered = sorted(set(labels) - set(self.builder_.classes_))
            if uncovered:
                raise ValidationError(
                    f"training labels {uncovered} have no anchors in the "
                    "supplied index; rebuild the index over the current "
                    "training corpus")
            matrix = self.builder_.transform(features, exclude_self=True)
        else:
            matrix = self.builder_.fit_transform(features, exclude_self=True)
        self.feature_names_ = matrix.feature_names
        self.feature_groups_ = matrix.feature_groups
        self.model_ = ThresholdRandomForest(
            n_estimators=self.n_estimators,
            criterion=self.criterion,
            max_depth=self.max_depth,
            min_samples_split=self.min_samples_split,
            min_samples_leaf=self.min_samples_leaf,
            max_features=self.max_features,
            class_weight=self.class_weight,
            confidence_threshold=self.confidence_threshold,
            unknown_label=self.unknown_label,
            random_state=self.random_state,
            n_jobs=self.n_jobs,
        )
        self.model_.fit(matrix.X, np.asarray(labels, dtype=object))
        self.classes_ = self.model_.classes_
        self.feature_importances_ = self.model_.feature_importances_
        return self

    # ------------------------------------------------------------ transform
    def transform(self, features: Sequence[SampleFeatures]) -> SimilarityMatrix:
        """Similarity feature matrix of new samples against the anchors."""

        check_is_fitted(self, "builder_")
        return self.builder_.transform(list(features))

    # ------------------------------------------------------------- predict
    def predict(self, features: Sequence[SampleFeatures],
                confidence_threshold: float | None = None) -> np.ndarray:
        check_is_fitted(self, "model_")
        matrix = self.transform(features)
        return self.model_.predict(matrix.X, confidence_threshold=confidence_threshold)

    def predict_proba(self, features: Sequence[SampleFeatures]) -> np.ndarray:
        check_is_fitted(self, "model_")
        matrix = self.transform(features)
        return self.model_.predict_proba(matrix.X)

    def confidence(self, features: Sequence[SampleFeatures]) -> np.ndarray:
        """Maximum class probability per sample."""

        check_is_fitted(self, "model_")
        matrix = self.transform(features)
        return self.model_.confidence(matrix.X)

    # ------------------------------------------------------------ analysis
    def feature_importances_by_type(self) -> dict[str, float]:
        """Normalised importance aggregated per fuzzy-hash type (Table 5)."""

        check_is_fitted(self, "model_")
        from ..analysis.importance import group_importances

        return group_importances(self.feature_importances_, self.feature_groups_)
