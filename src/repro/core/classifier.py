"""The Fuzzy Hash Classifier.

Two layers are provided:

* :class:`ThresholdRandomForest` — a Random Forest over an already-built
  similarity feature matrix whose predictions fall back to the ``-1``
  "unknown" label whenever the forest's highest class probability is
  below a confidence threshold.  This is the estimator the grid search
  tunes (both the forest hyper-parameters and the threshold).
* :class:`FuzzyHashClassifier` — the user-facing model of the paper: it
  is fitted on :class:`~repro.features.records.SampleFeatures` records
  (digests + labels), builds the similarity feature matrix internally
  (training samples are the anchors) and classifies new feature records
  into application classes or "unknown".
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .._validation import check_array_2d, check_probability
from ..exceptions import NotFittedError, ValidationError
from ..features.extractors import FEATURE_TYPES, resolve_family_feature_types
from ..features.records import SampleFeatures
from ..features.similarity import SimilarityFeatureBuilder, SimilarityMatrix
from ..ml.base import BaseEstimator, ClassifierMixin, check_is_fitted
from ..ml.forest import RandomForestClassifier
from ..observability.trace import span

__all__ = ["ThresholdRandomForest", "FuzzyHashClassifier"]


class ThresholdRandomForest(BaseEstimator, ClassifierMixin):
    """Random Forest with an "unknown" rejection threshold.

    Parameters mirror the forest's, plus:

    confidence_threshold:
        If the maximum class probability of a sample is *below* this
        value, the sample is labelled ``unknown_label`` instead of the
        most probable class ("Samples not similar to any other known
        samples are labeled as unknown", Section 3).
    unknown_label:
        The label emitted for rejected samples (the paper uses ``-1``).
    """

    def __init__(self, n_estimators: int = 100, *, criterion: str = "gini",
                 max_depth: int | None = None, min_samples_split: int = 2,
                 min_samples_leaf: int = 1, max_features="sqrt",
                 class_weight="balanced", confidence_threshold: float = 0.5,
                 unknown_label=-1, random_state=None, n_jobs: int = 1) -> None:
        self.n_estimators = n_estimators
        self.criterion = criterion
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.class_weight = class_weight
        self.confidence_threshold = confidence_threshold
        self.unknown_label = unknown_label
        self.random_state = random_state
        self.n_jobs = n_jobs

    # ------------------------------------------------------------------ fit
    def fit(self, X, y) -> "ThresholdRandomForest":
        check_probability(self.confidence_threshold, "confidence_threshold")
        self.forest_ = RandomForestClassifier(
            n_estimators=self.n_estimators,
            criterion=self.criterion,
            max_depth=self.max_depth,
            min_samples_split=self.min_samples_split,
            min_samples_leaf=self.min_samples_leaf,
            max_features=self.max_features,
            class_weight=self.class_weight,
            random_state=self.random_state,
            n_jobs=self.n_jobs,
        )
        self.forest_.fit(X, y)
        self.classes_ = self.forest_.classes_
        self.feature_importances_ = self.forest_.feature_importances_
        self.n_features_in_ = self.forest_.n_features_in_
        return self

    # ------------------------------------------------------------- predict
    def predict_proba(self, X) -> np.ndarray:
        check_is_fitted(self, "forest_")
        return self.forest_.predict_proba(X)

    def predict(self, X, confidence_threshold: float | None = None) -> np.ndarray:
        """Predict class labels, rejecting low-confidence samples.

        ``confidence_threshold`` overrides the fitted threshold without
        refitting (used by the threshold sweep of Figure 3).
        """

        return self.predict_with_confidence(
            X, confidence_threshold=confidence_threshold)[0]

    def predict_with_confidence(self, X, confidence_threshold: float | None = None
                                ) -> tuple[np.ndarray, np.ndarray]:
        """Predict ``(labels, confidences)`` from one probability pass.

        Serving paths want both the thresholded label and the confidence
        behind it; computing them together halves the forest work
        compared to calling :meth:`predict` and :meth:`confidence`.
        """

        check_is_fitted(self, "forest_")
        threshold = self.confidence_threshold if confidence_threshold is None \
            else check_probability(confidence_threshold, "confidence_threshold")
        proba = self.predict_proba(X)
        best = np.argmax(proba, axis=1)
        confidence = proba[np.arange(len(best)), best]
        labels = self.classes_[best].astype(object)
        labels[confidence < threshold] = self.unknown_label
        return labels, confidence

    def predict_known(self, X) -> np.ndarray:
        """Predict without the unknown rejection (pure forest argmax)."""

        check_is_fitted(self, "forest_")
        return self.forest_.predict(X)

    def confidence(self, X) -> np.ndarray:
        """The maximum class probability per sample."""

        proba = self.predict_proba(X)
        return proba.max(axis=1)

    # ---------------------------------------------------------- persistence
    def get_state(self) -> dict:
        """Serialisable snapshot of the fitted model (model artifacts)."""

        check_is_fitted(self, "forest_")
        return {"forest": self.forest_.get_state()}

    def set_state(self, state: dict) -> "ThresholdRandomForest":
        """Restore a snapshot produced by :meth:`get_state`.

        The constructor hyper-parameters (including the confidence
        threshold and unknown label) are taken from ``self``; the state
        only carries fitted arrays.
        """

        check_probability(self.confidence_threshold, "confidence_threshold")
        try:
            forest_state = state["forest"]
        except (KeyError, TypeError) as exc:
            raise ValidationError(
                f"invalid threshold-forest state: {exc}") from exc
        forest = RandomForestClassifier(
            n_estimators=self.n_estimators,
            criterion=self.criterion,
            max_depth=self.max_depth,
            min_samples_split=self.min_samples_split,
            min_samples_leaf=self.min_samples_leaf,
            max_features=self.max_features,
            class_weight=self.class_weight,
            random_state=self.random_state,
            n_jobs=self.n_jobs,
        )
        forest.set_state(forest_state)
        self.forest_ = forest
        self.classes_ = forest.classes_
        self.feature_importances_ = forest.feature_importances_
        self.n_features_in_ = forest.n_features_in_
        return self


class FuzzyHashClassifier(BaseEstimator, ClassifierMixin):
    """End-to-end Fuzzy Hash Classifier over feature records.

    ``fit`` takes the training samples' :class:`SampleFeatures` (their
    ``class_name`` is the label unless ``y`` is passed explicitly),
    builds the similarity feature matrix with the training samples as
    anchors, and fits the thresholded Random Forest.  ``predict``
    accepts new feature records and returns class names or the unknown
    label.

    Parameters
    ----------
    feature_types:
        Fuzzy-hash types used as features (base CTPH names; ``family``
        expands them).
    family:
        Hash family the similarity columns come from: ``"ctph"``
        (default, the paper's SSDeep features), ``"vector"`` (the
        fixed-length TLSH-style digests over the same content sources),
        or ``"both"`` (parallel per-class blocks from each family).
    anchor_strategy, medoids_per_class:
        Passed to :class:`~repro.features.similarity.SimilarityFeatureBuilder`.
    n_estimators, criterion, max_depth, min_samples_split,
    min_samples_leaf, max_features, class_weight, random_state, n_jobs:
        Random-Forest hyper-parameters (class weights default to
        ``"balanced"`` as in the paper).
    confidence_threshold:
        Rejection threshold for the unknown label.
    unknown_label:
        Label for unknown samples (default ``-1``).
    """

    def __init__(self, *, feature_types: Sequence[str] = FEATURE_TYPES,
                 family: str = "ctph",
                 anchor_strategy: str = "class-max", medoids_per_class: int = 5,
                 n_estimators: int = 100, criterion: str = "gini",
                 max_depth: int | None = None, min_samples_split: int = 2,
                 min_samples_leaf: int = 1, max_features="sqrt",
                 class_weight="balanced", confidence_threshold: float = 0.5,
                 unknown_label=-1, random_state=None, n_jobs: int = 1) -> None:
        self.feature_types = tuple(feature_types)
        self.family = family
        self.anchor_strategy = anchor_strategy
        self.medoids_per_class = medoids_per_class
        self.n_estimators = n_estimators
        self.criterion = criterion
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.class_weight = class_weight
        self.confidence_threshold = confidence_threshold
        self.unknown_label = unknown_label
        self.random_state = random_state
        self.n_jobs = n_jobs

    # ------------------------------------------------------------ features
    @property
    def active_feature_types(self) -> tuple[str, ...]:
        """The feature types actually indexed, after family expansion."""

        return resolve_family_feature_types(self.feature_types, self.family)

    # ------------------------------------------------------------------ fit
    def fit(self, features: Sequence[SampleFeatures], y=None, *,
            index=None) -> "FuzzyHashClassifier":
        """Fit on feature records; optionally reuse a prebuilt anchor index.

        ``index`` is a :class:`~repro.index.SimilarityIndex` previously
        built over (a superset of) the training corpus — typically
        ``SimilarityIndex.load(path)`` from a persisted workflow.  When
        given, the anchors come from the index instead of being
        re-indexed from ``features``; the records still provide the
        training rows and labels.
        """

        features = list(features)
        if not features:
            raise ValidationError("cannot fit on an empty feature list")
        labels = list(y) if y is not None else [f.class_name for f in features]
        if len(labels) != len(features):
            raise ValidationError("y must have the same length as features")
        if any(label in ("", None) for label in labels):
            raise ValidationError("every training sample needs a class label")

        self.builder_ = SimilarityFeatureBuilder(
            self.active_feature_types,
            anchor_strategy=self.anchor_strategy,
            medoids_per_class=self.medoids_per_class,
        )
        if index is not None:
            self.builder_.fit_from_index(index)
            uncovered = sorted(set(labels) - set(self.builder_.classes_))
            if uncovered:
                raise ValidationError(
                    f"training labels {uncovered} have no anchors in the "
                    "supplied index; rebuild the index over the current "
                    "training corpus")
            matrix = self.builder_.transform(features, exclude_self=True)
        else:
            matrix = self.builder_.fit_transform(features, exclude_self=True)
        self.feature_names_ = matrix.feature_names
        self.feature_groups_ = matrix.feature_groups
        self.model_ = ThresholdRandomForest(
            n_estimators=self.n_estimators,
            criterion=self.criterion,
            max_depth=self.max_depth,
            min_samples_split=self.min_samples_split,
            min_samples_leaf=self.min_samples_leaf,
            max_features=self.max_features,
            class_weight=self.class_weight,
            confidence_threshold=self.confidence_threshold,
            unknown_label=self.unknown_label,
            random_state=self.random_state,
            n_jobs=self.n_jobs,
        )
        self.model_.fit(matrix.X, np.asarray(labels, dtype=object))
        self.classes_ = self.model_.classes_
        self.feature_importances_ = self.model_.feature_importances_
        return self

    # ------------------------------------------------------------ transform
    def transform(self, features: Sequence[SampleFeatures]) -> SimilarityMatrix:
        """Similarity feature matrix of new samples against the anchors."""

        check_is_fitted(self, "builder_")
        return self.builder_.transform(list(features))

    # ------------------------------------------------------------- predict
    def predict(self, features: Sequence[SampleFeatures],
                confidence_threshold: float | None = None) -> np.ndarray:
        check_is_fitted(self, "model_")
        matrix = self.transform(features)
        return self.model_.predict(matrix.X, confidence_threshold=confidence_threshold)

    def predict_with_confidence(self, features: Sequence[SampleFeatures],
                                confidence_threshold: float | None = None
                                ) -> tuple[np.ndarray, np.ndarray]:
        """Predict ``(labels, confidences)`` with one transform pass.

        The serving path (:class:`repro.api.ClassificationService`) needs
        both; computing them together builds the similarity matrix and
        runs the forest once instead of twice.
        """

        check_is_fitted(self, "model_")
        matrix = self.transform(features)
        with span("forest_predict"):
            return self.model_.predict_with_confidence(
                matrix.X, confidence_threshold=confidence_threshold)

    def predict_proba(self, features: Sequence[SampleFeatures]) -> np.ndarray:
        check_is_fitted(self, "model_")
        matrix = self.transform(features)
        return self.model_.predict_proba(matrix.X)

    def confidence(self, features: Sequence[SampleFeatures]) -> np.ndarray:
        """Maximum class probability per sample."""

        check_is_fitted(self, "model_")
        matrix = self.transform(features)
        return self.model_.confidence(matrix.X)

    # ---------------------------------------------------------- persistence
    def get_state(self) -> dict:
        """Serialisable snapshot of the fitted classifier.

        Bundles the feature builder (anchor index), the thresholded
        forest and the feature layout; :func:`repro.api.save_model` is
        the on-disk form of exactly this snapshot.
        """

        check_is_fitted(self, "model_")
        return {
            "builder": self.builder_.get_state(),
            "model": self.model_.get_state(),
            "feature_names": list(self.feature_names_),
            "feature_groups": {k: list(v)
                               for k, v in self.feature_groups_.items()},
        }

    def set_state(self, state: dict) -> "FuzzyHashClassifier":
        """Restore a snapshot produced by :meth:`get_state`.

        Constructor hyper-parameters come from ``self`` (they are stored
        alongside the state in a model artifact); the state carries the
        fitted builder/forest payloads.
        """

        try:
            builder_state = state["builder"]
            model_state = state["model"]
            feature_names = list(state["feature_names"])
            feature_groups = {str(k): [int(i) for i in v]
                              for k, v in dict(state["feature_groups"]).items()}
        except (KeyError, TypeError, ValueError) as exc:
            raise ValidationError(
                f"invalid FuzzyHashClassifier state: {exc}") from exc
        builder = SimilarityFeatureBuilder(
            self.active_feature_types,
            anchor_strategy=self.anchor_strategy,
            medoids_per_class=self.medoids_per_class,
        )
        builder.set_state(builder_state)
        model = ThresholdRandomForest(
            n_estimators=self.n_estimators,
            criterion=self.criterion,
            max_depth=self.max_depth,
            min_samples_split=self.min_samples_split,
            min_samples_leaf=self.min_samples_leaf,
            max_features=self.max_features,
            class_weight=self.class_weight,
            confidence_threshold=self.confidence_threshold,
            unknown_label=self.unknown_label,
            random_state=self.random_state,
            n_jobs=self.n_jobs,
        )
        model.set_state(model_state)
        if len(feature_names) != model.n_features_in_:
            raise ValidationError(
                f"state declares {len(feature_names)} feature names but the "
                f"forest consumes {model.n_features_in_} features")
        self.builder_ = builder
        self.model_ = model
        self.feature_names_ = feature_names
        self.feature_groups_ = feature_groups
        self.classes_ = model.classes_
        self.feature_importances_ = model.feature_importances_
        return self

    # ------------------------------------------------------------ analysis
    def feature_importances_by_type(self) -> dict[str, float]:
        """Normalised importance aggregated per fuzzy-hash type (Table 5)."""

        check_is_fitted(self, "model_")
        from ..analysis.importance import group_importances

        return group_importances(self.feature_importances_, self.feature_groups_)
