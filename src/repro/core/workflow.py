"""The envisioned production workflow (paper Figure 1).

"Fuzzy hash features are collected from applications executed inside
HPC jobs.  The jobs receive an application label based on the
similarity of these fuzzy hashes ...  Researchers and administrators
can analyze and/or make decisions about HPC jobs based on these
labels."

:class:`ClassificationWorkflow` wires a fitted
:class:`~repro.core.classifier.FuzzyHashClassifier` to a directory (or
explicit list) of executables collected from jobs, attaches a
per-allocation policy (the set of application classes an allocation is
expected to run) and produces per-executable decisions that an
operator could act on.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Sequence

import numpy as np

from ..exceptions import EvaluationError
from ..features.pipeline import FeatureExtractionPipeline
from ..features.records import SampleFeatures
from ..logging_utils import get_logger
from .classifier import FuzzyHashClassifier

__all__ = ["JobClassification", "ClassificationWorkflow"]

_LOG = get_logger("core.workflow")

#: Decision labels emitted by the workflow.
DECISION_EXPECTED = "within-allocation"
DECISION_UNEXPECTED = "unexpected-application"
DECISION_UNKNOWN = "unknown-application"


@dataclass(frozen=True)
class JobClassification:
    """Outcome for one collected executable."""

    path: str
    predicted_class: object
    confidence: float
    decision: str

    def is_suspicious(self) -> bool:
        """True if an operator should take a closer look."""

        return self.decision in (DECISION_UNEXPECTED, DECISION_UNKNOWN)


class ClassificationWorkflow:
    """Collect → hash → classify → decide, for executables from jobs.

    Parameters
    ----------
    classifier:
        A fitted :class:`FuzzyHashClassifier`.
    allowed_classes:
        The application classes the allocation is expected to run; when
        ``None`` every known class is considered acceptable and only
        unknown applications are flagged.
    n_jobs:
        Worker processes for feature extraction.
    """

    def __init__(self, classifier: FuzzyHashClassifier, *,
                 allowed_classes: Iterable[str] | None = None,
                 n_jobs: int = 1) -> None:
        if not hasattr(classifier, "model_"):
            raise EvaluationError("ClassificationWorkflow needs a fitted classifier")
        self.classifier = classifier
        self.allowed_classes = set(allowed_classes) if allowed_classes is not None else None
        self.n_jobs = n_jobs
        self._pipeline = FeatureExtractionPipeline(classifier.feature_types,
                                                   n_jobs=n_jobs)

    # ----------------------------------------------------------------- API
    @property
    def similarity_index(self):
        """The classifier's fitted anchor :class:`~repro.index.SimilarityIndex`.

        Raises :class:`EvaluationError` when the classifier was fitted on
        a raw matrix and carries no index.
        """

        builder = getattr(self.classifier, "builder_", None)
        index = getattr(builder, "index_", None)
        if index is None:
            raise EvaluationError(
                "this workflow's classifier carries no similarity index")
        return index

    def save_index(self, path: str | os.PathLike) -> Path:
        """Persist the anchor index so a later process can reuse it.

        The saved file round-trips through
        :meth:`repro.index.SimilarityIndex.load`; pass the loaded index
        to :meth:`FuzzyHashClassifier.fit(..., index=...)
        <repro.core.classifier.FuzzyHashClassifier.fit>` (or the CLI's
        ``classify --index``) to skip re-indexing the training corpus.
        """

        saved = self.similarity_index.save(path)
        _LOG.info("workflow persisted similarity index to %s", saved)
        return saved

    def classify_paths(self, paths: Sequence[str | os.PathLike]
                       ) -> list[JobClassification]:
        """Classify explicit executable paths."""

        paths = [str(p) for p in paths]
        if not paths:
            return []
        features = self._pipeline.extract_paths(paths)
        return self._decide(paths, features)

    def classify_directory(self, directory: str | os.PathLike,
                           pattern: str = "**/*") -> list[JobClassification]:
        """Classify every regular file below ``directory``."""

        root = Path(directory)
        if not root.is_dir():
            raise EvaluationError(f"{root} is not a directory")
        paths = sorted(str(p) for p in root.glob(pattern) if p.is_file())
        if not paths:
            raise EvaluationError(f"no files found under {root}")
        return self.classify_paths(paths)

    def classify_features(self, features: Sequence[SampleFeatures]
                          ) -> list[JobClassification]:
        """Classify pre-extracted feature records (e.g. from a prolog hook)."""

        return self._decide([f.sample_id for f in features], list(features))

    # ----------------------------------------------------------- internals
    def _decide(self, paths: Sequence[str],
                features: Sequence[SampleFeatures]) -> list[JobClassification]:
        predictions = self.classifier.predict(features)
        confidences = self.classifier.confidence(features)
        results: list[JobClassification] = []
        for path, predicted, confidence in zip(paths, predictions, confidences):
            if predicted == self.classifier.unknown_label:
                decision = DECISION_UNKNOWN
            elif self.allowed_classes is not None and predicted not in self.allowed_classes:
                decision = DECISION_UNEXPECTED
            else:
                decision = DECISION_EXPECTED
            results.append(JobClassification(
                path=str(path), predicted_class=predicted,
                confidence=float(confidence), decision=decision))
        flagged = sum(1 for r in results if r.is_suspicious())
        _LOG.info("workflow classified %d executables (%d flagged)",
                  len(results), flagged)
        return results

    def report(self, classifications: Sequence[JobClassification]) -> str:
        """Multi-line operator-facing summary."""

        lines = [f"{'decision':<24} {'class':<24} {'conf':>5}  path"]
        for item in sorted(classifications, key=lambda c: (c.decision, str(c.predicted_class))):
            lines.append(f"{item.decision:<24} {str(item.predicted_class):<24} "
                         f"{item.confidence:>5.2f}  {item.path}")
        return "\n".join(lines)
