"""The envisioned production workflow (paper Figure 1).

"Fuzzy hash features are collected from applications executed inside
HPC jobs.  The jobs receive an application label based on the
similarity of these fuzzy hashes ...  Researchers and administrators
can analyze and/or make decisions about HPC jobs based on these
labels."

:class:`ClassificationWorkflow` is the original entry point for that
scenario and is kept for backwards compatibility; since the
introduction of :mod:`repro.api` it is a thin wrapper around
:class:`~repro.api.service.ClassificationService`, which owns the
batching, policy and persistence logic.  New code should use the
service (or the ``repro train`` / ``repro classify --model`` CLI)
directly.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Sequence

from ..api.service import (
    DECISION_EXPECTED,
    DECISION_UNEXPECTED,
    DECISION_UNKNOWN,
    ClassificationService,
    Decision,
    render_report,
)
from ..exceptions import EvaluationError
from ..features.records import SampleFeatures
from .classifier import FuzzyHashClassifier

__all__ = ["JobClassification", "ClassificationWorkflow",
           "DECISION_EXPECTED", "DECISION_UNEXPECTED", "DECISION_UNKNOWN"]


@dataclass(frozen=True)
class JobClassification:
    """Outcome for one collected executable."""

    path: str
    predicted_class: object
    confidence: float
    decision: str

    def is_suspicious(self) -> bool:
        """True if an operator should take a closer look."""

        return self.decision in (DECISION_UNEXPECTED, DECISION_UNKNOWN)

    @classmethod
    def from_decision(cls, decision: Decision) -> "JobClassification":
        return cls(path=decision.sample_id,
                   predicted_class=decision.predicted_class,
                   confidence=decision.confidence,
                   decision=decision.decision)


class ClassificationWorkflow:
    """Collect → hash → classify → decide, for executables from jobs.

    Thin compatibility wrapper over
    :class:`~repro.api.service.ClassificationService`; every classify
    method delegates to the service and converts its typed
    :class:`~repro.api.service.Decision` records into
    :class:`JobClassification`.

    Parameters
    ----------
    classifier:
        A fitted :class:`FuzzyHashClassifier`.
    allowed_classes:
        The application classes the allocation is expected to run; when
        ``None`` every known class is considered acceptable and only
        unknown applications are flagged.
    n_jobs:
        Worker processes for feature extraction.
    """

    def __init__(self, classifier: FuzzyHashClassifier, *,
                 allowed_classes: Iterable[str] | None = None,
                 n_jobs: int = 1) -> None:
        if not hasattr(classifier, "model_"):
            raise EvaluationError("ClassificationWorkflow needs a fitted classifier")
        self.classifier = classifier
        self.allowed_classes = set(allowed_classes) if allowed_classes is not None else None
        self.n_jobs = n_jobs
        self._service = ClassificationService(
            classifier, allowed_classes=allowed_classes, n_jobs=n_jobs)

    # ----------------------------------------------------------------- API
    @property
    def service(self) -> ClassificationService:
        """The underlying :class:`ClassificationService`."""

        return self._service

    @property
    def similarity_index(self):
        """The classifier's fitted anchor :class:`~repro.index.SimilarityIndex`.

        Raises :class:`EvaluationError` when the classifier was fitted on
        a raw matrix and carries no index.
        """

        return self._service.similarity_index

    def save_index(self, path: str | os.PathLike) -> Path:
        """Persist the anchor index so a later process can reuse it.

        The saved file round-trips through
        :meth:`repro.index.SimilarityIndex.load`; pass the loaded index
        to :meth:`FuzzyHashClassifier.fit(..., index=...)
        <repro.core.classifier.FuzzyHashClassifier.fit>` (or the CLI's
        ``classify --index``) to skip re-indexing the training corpus.
        """

        return self.similarity_index.save(path)

    def save_model(self, path: str | os.PathLike) -> Path:
        """Persist the whole fitted model as a versioned artifact.

        The artifact restores through :func:`repro.api.load_model` (or
        ``repro classify --model``) without retraining.
        """

        return self._service.save(path)

    def classify_paths(self, paths: Sequence[str | os.PathLike]
                       ) -> list[JobClassification]:
        """Classify explicit executable paths."""

        return [JobClassification.from_decision(d)
                for d in self._service.classify_paths(paths)]

    def classify_directory(self, directory: str | os.PathLike,
                           pattern: str = "**/*") -> list[JobClassification]:
        """Classify every regular file below ``directory``."""

        return [JobClassification.from_decision(d)
                for d in self._service.classify_directory(directory, pattern)]

    def classify_features(self, features: Sequence[SampleFeatures]
                          ) -> list[JobClassification]:
        """Classify pre-extracted feature records (e.g. from a prolog hook)."""

        return [JobClassification.from_decision(d)
                for d in self._service.classify_features(list(features))]

    def report(self, classifications: Sequence[JobClassification]) -> str:
        """Multi-line operator-facing summary."""

        return render_report(classifications)
