"""Batch feature extraction over a corpus.

Feature extraction is embarrassingly parallel across samples (one
executable = three digests), so the pipeline fans the work out over
worker processes when ``n_jobs > 1``.  Inputs can be either a
:class:`~repro.corpus.dataset.CorpusDataset` (files on disk, the
production path of the paper's workflow) or in-memory
:class:`~repro.corpus.builder.GeneratedSample` objects (used by tests
and by benchmarks that skip the on-disk tree).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from ..corpus.builder import GeneratedSample
from ..corpus.dataset import CorpusDataset, SampleRecord
from ..exceptions import FeatureExtractionError
from ..logging_utils import get_logger
from ..parallel import parallel_map
from ..parallel.timing import Stopwatch
from .extractors import FEATURE_TYPES, FeatureExtractor
from .records import SampleFeatures

__all__ = ["FeatureExtractionPipeline"]

_LOG = get_logger("features.pipeline")


@dataclass(frozen=True)
class _FileTask:
    """Work item describing one on-disk sample."""

    sample_id: str
    path: str
    class_name: str
    version: str
    executable: str
    feature_types: tuple[str, ...]
    include_symbol_addresses: bool


@dataclass(frozen=True)
class _BytesTask:
    """Work item describing one in-memory sample."""

    sample_id: str
    data: bytes
    class_name: str
    version: str
    executable: str
    feature_types: tuple[str, ...]
    include_symbol_addresses: bool


def _run_task(task) -> SampleFeatures:
    """Extract the features of a single task (module-level for pickling)."""

    extractor = FeatureExtractor(task.feature_types,
                                 include_symbol_addresses=task.include_symbol_addresses)
    if isinstance(task, _FileTask):
        return extractor.extract_file(task.path, sample_id=task.sample_id,
                                      class_name=task.class_name,
                                      version=task.version,
                                      executable=task.executable)
    return extractor.extract(task.data, sample_id=task.sample_id,
                             class_name=task.class_name, version=task.version,
                             executable=task.executable)


class FeatureExtractionPipeline:
    """Extract fuzzy-hash features for every sample of a corpus.

    Parameters
    ----------
    feature_types:
        Which digests to compute (defaults to all three).
    n_jobs:
        Worker processes (1 = serial); ignored when ``executor`` is set.
    executor:
        Execution backend spec (``"serial"``, ``"thread:4"``,
        ``"process:8"``, ...) or an
        :class:`~repro.parallel.ExecutionBackend` instance; takes
        precedence over ``n_jobs``.
    include_symbol_addresses:
        Forwarded to :class:`~repro.features.extractors.FeatureExtractor`.
    """

    def __init__(self, feature_types: Sequence[str] = FEATURE_TYPES, *,
                 n_jobs: int = 1, executor=None,
                 include_symbol_addresses: bool = False) -> None:
        self.feature_types = tuple(feature_types)
        self.n_jobs = n_jobs
        self.executor = executor
        self.include_symbol_addresses = bool(include_symbol_addresses)
        self.last_timings: dict[str, float] = {}

    # ----------------------------------------------------------------- API
    def extract_dataset(self, dataset: CorpusDataset) -> list[SampleFeatures]:
        """Extract features for every record of an on-disk dataset."""

        tasks = [
            _FileTask(sample_id=r.sample_id, path=r.path, class_name=r.class_name,
                      version=r.version, executable=r.executable,
                      feature_types=self.feature_types,
                      include_symbol_addresses=self.include_symbol_addresses)
            for r in dataset
        ]
        return self._run(tasks)

    def extract_generated(self, samples: Iterable[GeneratedSample]
                          ) -> list[SampleFeatures]:
        """Extract features for in-memory generated samples."""

        tasks = [
            _BytesTask(sample_id=s.relative_path, data=s.data,
                       class_name=s.class_name, version=s.version,
                       executable=s.executable,
                       feature_types=self.feature_types,
                       include_symbol_addresses=self.include_symbol_addresses)
            for s in samples
        ]
        return self._run(tasks)

    def extract_bytes(self, items: Sequence[tuple[str, bytes]]
                      ) -> list[SampleFeatures]:
        """Extract features for ``(sample_id, bytes)`` pairs.

        Serving entry point for executables that arrive in memory (e.g.
        pushed over the wire) instead of as files; labels are left
        empty like :meth:`extract_paths`.
        """

        tasks = [
            _BytesTask(sample_id=str(sample_id), data=data, class_name="",
                       version="", executable=str(sample_id).rsplit("/", 1)[-1],
                       feature_types=self.feature_types,
                       include_symbol_addresses=self.include_symbol_addresses)
            for sample_id, data in items
        ]
        return self._run(tasks)

    def extract_paths(self, paths: Sequence[str]) -> list[SampleFeatures]:
        """Extract features for bare file paths (labels left empty).

        This is the entry point of the envisioned production workflow
        (Figure 1), where executables collected from jobs arrive without
        trusted labels.
        """

        tasks = [
            _FileTask(sample_id=path, path=path, class_name="", version="",
                      executable=path.rsplit("/", 1)[-1],
                      feature_types=self.feature_types,
                      include_symbol_addresses=self.include_symbol_addresses)
            for path in paths
        ]
        return self._run(tasks)

    # ----------------------------------------------------------- internals
    def _run(self, tasks: list) -> list[SampleFeatures]:
        if not tasks:
            raise FeatureExtractionError("no samples to extract features from")
        watch = Stopwatch().start("feature-extraction")
        results = parallel_map(_run_task, tasks, n_jobs=self.n_jobs,
                               executor=self.executor,
                               min_items_per_worker=8)
        watch.stop()
        self.last_timings = watch.laps
        _LOG.info("extracted %d feature records (%d feature types) in %.2f s",
                  len(results), len(self.feature_types),
                  watch.laps.get("feature-extraction", 0.0))
        return results
