"""On-disk feature cache.

Extracting fuzzy hashes for thousands of executables takes a while, so
experiments persist the extracted :class:`SampleFeatures` records as a
JSON file keyed by corpus fingerprint.  The cache is content-addressed:
if the corpus (paths and sizes) or the extraction settings change, a
different cache file is used.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Iterable, Sequence

from ..exceptions import FeatureExtractionError
from ..logging_utils import get_logger
from .records import SampleFeatures, features_from_json, features_to_json

__all__ = ["FeatureStore"]

_LOG = get_logger("features.store")


class FeatureStore:
    """Directory-backed cache of extracted feature records."""

    def __init__(self, directory: str | os.PathLike) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    # ----------------------------------------------------------------- API
    def key_for(self, sample_descriptors: Iterable[tuple[str, int]],
                feature_types: Sequence[str]) -> str:
        """Cache key derived from (sample id, size) pairs and settings."""

        hasher = hashlib.sha256()
        for sample_id, size in sorted(sample_descriptors):
            hasher.update(f"{sample_id}\x00{size}\x1e".encode("utf-8"))
        hasher.update("|".join(sorted(feature_types)).encode("utf-8"))
        return hasher.hexdigest()[:24]

    def path_for(self, key: str) -> Path:
        return self.directory / f"features-{key}.json"

    def load(self, key: str) -> list[SampleFeatures] | None:
        """Return cached records for ``key``, or ``None`` if absent/corrupt."""

        path = self.path_for(key)
        if not path.is_file():
            return None
        try:
            records = features_from_json(path.read_text(encoding="utf-8"))
        except (FeatureExtractionError, OSError) as exc:
            _LOG.warning("ignoring corrupt feature cache %s (%s)", path, exc)
            return None
        _LOG.info("loaded %d cached feature records from %s", len(records), path)
        return records

    def save(self, key: str, features: Sequence[SampleFeatures]) -> Path:
        """Persist records under ``key``; returns the file path.

        The write is atomic (temp file in the same directory +
        :func:`os.replace`), so an interrupted run can never leave a
        truncated cache entry that a later :meth:`load` half-reads.
        """

        path = self.path_for(key)
        tmp_path = path.with_name(path.name + ".tmp")
        try:
            tmp_path.write_text(features_to_json(features), encoding="utf-8")
            os.replace(tmp_path, path)
        except OSError:
            try:
                tmp_path.unlink()
            except OSError:
                pass
            raise
        _LOG.info("cached %d feature records to %s", len(features), path)
        return path

    def clear(self) -> int:
        """Delete all cache files; returns how many were removed."""

        removed = 0
        for path in self.directory.glob("features-*.json"):
            path.unlink()
            removed += 1
        return removed
