"""Digest extraction for one executable.

The three features of the paper (Section 3, "Feature Extraction"):

* ``ssdeep-file`` — fuzzy hash of the raw binary content,
* ``ssdeep-strings`` — fuzzy hash of the ``strings`` output (continuous
  printable characters),
* ``ssdeep-symbols`` — fuzzy hash of the ``nm`` output (global symbols
  from the symbol table).

plus the cryptographic digest (``sha256``) of the raw content used by
the exact-match baseline.  Stripped binaries yield an empty symbols
digest and are flagged, matching the paper's limitation discussion.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from ..binfmt.dynamic import ldd_output
from ..binfmt.reader import ElfReader, is_elf
from ..binfmt.strings_extract import extract_strings, strings_output
from ..binfmt.symbols import extract_global_symbols, nm_output
from ..exceptions import FeatureExtractionError, SymbolTableError
from ..hashing.crypto import crypto_digest
from ..hashing.ssdeep import FuzzyHasher
from .records import SampleFeatures

__all__ = ["FEATURE_TYPES", "EXTENDED_FEATURE_TYPES", "FeatureExtractor"]

#: The canonical feature types of the paper, in the order used throughout
#: the library.
FEATURE_TYPES: tuple[str, ...] = ("ssdeep-file", "ssdeep-strings", "ssdeep-symbols")

#: The paper's features plus the future-work ``ldd`` feature (fuzzy hash of
#: the shared-library dependency list).
EXTENDED_FEATURE_TYPES: tuple[str, ...] = FEATURE_TYPES + ("ssdeep-libs",)


class FeatureExtractor:
    """Compute the fuzzy-hash features of executable bytes.

    Parameters
    ----------
    feature_types:
        Subset of :data:`FEATURE_TYPES` to compute (ablation experiments
        use this to drop features).
    min_string_length:
        Minimum printable-run length for the ``strings`` feature.
    include_symbol_addresses:
        Include addresses in the ``nm`` output before hashing (off by
        default; addresses change with every build and only add noise).
    """

    def __init__(self, feature_types: Sequence[str] = FEATURE_TYPES, *,
                 min_string_length: int = 4,
                 include_symbol_addresses: bool = False) -> None:
        unknown = set(feature_types) - set(EXTENDED_FEATURE_TYPES)
        if unknown:
            raise FeatureExtractionError(
                f"unknown feature types {sorted(unknown)}; expected a subset of "
                f"{EXTENDED_FEATURE_TYPES}")
        if not feature_types:
            raise FeatureExtractionError("feature_types must not be empty")
        self.feature_types = tuple(feature_types)
        self.min_string_length = int(min_string_length)
        self.include_symbol_addresses = bool(include_symbol_addresses)
        self._hasher = FuzzyHasher()

    # ----------------------------------------------------------------- API
    def extract(self, data: bytes, *, sample_id: str = "", class_name: str = "",
                version: str = "", executable: str = "") -> SampleFeatures:
        """Extract features from in-memory executable bytes."""

        if not data:
            raise FeatureExtractionError(f"sample {sample_id!r} is empty")

        digests: dict[str, str] = {}
        n_symbols = 0
        n_strings = 0
        stripped = False

        if "ssdeep-file" in self.feature_types:
            digests["ssdeep-file"] = str(self._hasher.hash(data))

        if "ssdeep-strings" in self.feature_types:
            text = strings_output(data, min_length=self.min_string_length)
            n_strings = text.count("\n")
            digests["ssdeep-strings"] = str(self._hasher.hash(text))

        if "ssdeep-symbols" in self.feature_types:
            symbol_text = ""
            if is_elf(data):
                try:
                    reader = ElfReader(data)
                    symbol_text = nm_output(
                        reader, include_addresses=self.include_symbol_addresses)
                    n_symbols = symbol_text.count("\n")
                except (SymbolTableError, Exception) as exc:
                    if isinstance(exc, SymbolTableError):
                        stripped = True
                        symbol_text = ""
                    else:
                        raise
            else:
                stripped = True
            digests["ssdeep-symbols"] = str(self._hasher.hash(symbol_text))

        if "ssdeep-libs" in self.feature_types:
            libs_text = ""
            if is_elf(data):
                try:
                    libs_text = ldd_output(data)
                except Exception:
                    libs_text = ""
            digests["ssdeep-libs"] = str(self._hasher.hash(libs_text))

        return SampleFeatures(
            sample_id=sample_id or crypto_digest(data)[:16],
            class_name=class_name,
            version=version,
            executable=executable,
            digests=digests,
            sha256=crypto_digest(data),
            file_size=len(data),
            n_symbols=n_symbols,
            n_strings=n_strings,
            stripped=stripped,
        )

    def extract_file(self, path: str, *, sample_id: str = "",
                     class_name: str = "", version: str = "",
                     executable: str = "") -> SampleFeatures:
        """Extract features from a file on disk."""

        try:
            with open(path, "rb") as fh:
                data = fh.read()
        except OSError as exc:
            raise FeatureExtractionError(f"cannot read {path}: {exc}") from exc
        return self.extract(data, sample_id=sample_id or path,
                            class_name=class_name, version=version,
                            executable=executable)
